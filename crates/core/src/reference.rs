//! Naive exact attention — the correctness oracle.
//!
//! `O = softmax(scale · Q Kᵀ) V` computed the obvious O(n²)-memory way with
//! a numerically stable row softmax, entirely in f32 on FP16-quantised
//! inputs. Every other kernel in this crate is tested against this one.

use crate::config::AttentionConfig;
use ft_num::{Matrix, MatrixF32, Tensor4F16, Tensor4F32};
use ft_sim::{gemm_nn, gemm_nt};
use rayon::prelude::*;

/// Stable row softmax of `s`, in place; returns (row_max, row_sum) pairs.
pub fn row_softmax(s: &mut MatrixF32) -> Vec<(f32, f32)> {
    let (m, _n) = s.shape();
    let mut stats = Vec::with_capacity(m);
    for i in 0..m {
        let row = s.row_mut(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
        stats.push((max, sum));
    }
    stats
}

/// Apply a causal mask: positions `j > i` are excluded (−∞ score).
pub fn causal_mask(s: &mut MatrixF32) {
    let (m, n) = s.shape();
    for i in 0..m {
        let row = s.row_mut(i);
        for (j, v) in row.iter_mut().enumerate().take(n) {
            if j > i {
                *v = f32::NEG_INFINITY;
            }
        }
    }
}

/// Exact attention on one (batch, head) slot.
pub fn reference_attention_slot(
    q: &MatrixF32,
    k: &MatrixF32,
    v: &MatrixF32,
    scale: f32,
    causal: bool,
) -> MatrixF32 {
    let q_scaled = Matrix::from_fn(q.rows(), q.cols(), |i, j| q.get(i, j) * scale);
    let mut s = gemm_nt(&q_scaled, k);
    if causal {
        causal_mask(&mut s);
    }
    row_softmax(&mut s);
    gemm_nn(&s, v)
}

/// Exact attention over a full `batch × heads × seq × dim` problem.
///
/// Compatibility shim: new code should go through the unified API —
/// `BackendKind::Reference` and [`crate::backend::AttentionBackend::run`]
/// (whose [`crate::types::AttentionOutput::o`] is this tensor).
#[doc(hidden)]
pub fn reference_attention(
    cfg: &AttentionConfig,
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
) -> Tensor4F32 {
    use crate::backend::{AttentionBackend, AttentionRequest, ReferenceBackend};
    ReferenceBackend
        .run(&AttentionRequest::new(*cfg, q, k, v))
        .o
}

/// Reference kernel body; [`crate::backend::ReferenceBackend`] is the
/// public entry point.
pub(crate) fn reference_forward(
    cfg: &AttentionConfig,
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
) -> Tensor4F32 {
    let slots: Vec<MatrixF32> = (0..cfg.num_slots())
        .into_par_iter()
        .map(|i| {
            reference_attention_slot(
                &q.slot_flat(i).to_f32(),
                &k.slot_flat(i).to_f32(),
                &v.slot_flat(i).to_f32(),
                cfg.scale,
                cfg.causal,
            )
        })
        .collect();
    Tensor4F32::from_slots(cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_num::rng::normal_tensor_f16;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut s = MatrixF32::from_fn(4, 8, |i, j| (i * 8 + j) as f32 * 0.3 - 2.0);
        row_softmax(&mut s);
        for i in 0..4 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i}: {sum}");
            assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = MatrixF32::from_fn(2, 6, |i, j| (i + j) as f32);
        let b = MatrixF32::from_fn(2, 6, |i, j| (i + j) as f32 + 1000.0);
        let mut sa = a.clone();
        let mut sb = b.clone();
        row_softmax(&mut sa);
        row_softmax(&mut sb);
        assert!(sa.max_abs_diff(&sb) < 1e-6);
    }

    #[test]
    fn softmax_handles_large_scores_without_overflow() {
        let mut s = MatrixF32::from_fn(1, 4, |_, j| 200.0 + j as f32 * 50.0);
        row_softmax(&mut s);
        assert!(!s.has_non_finite());
        let sum: f32 = s.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn causal_mask_zeroes_upper_triangle_after_softmax() {
        let mut s = MatrixF32::from_fn(4, 4, |_, _| 1.0);
        causal_mask(&mut s);
        row_softmax(&mut s);
        for i in 0..4 {
            for j in 0..4 {
                if j > i {
                    assert_eq!(s.get(i, j), 0.0);
                } else {
                    assert!((s.get(i, j) - 1.0 / (i + 1) as f32).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn attention_of_identity_values_recovers_attention_weights_shape() {
        // With V = I (seq == dim), O rows are the softmax weights.
        let cfg = AttentionConfig::new(1, 1, 8, 8);
        let q = normal_tensor_f16(1, 1, 1, 8, 8, 0.5);
        let k = normal_tensor_f16(2, 1, 1, 8, 8, 0.5);
        let mut v = ft_num::Tensor4F16::zeros(1, 1, 8, 8);
        for i in 0..8 {
            v.slot_mut(0, 0).set(i, i, ft_num::F16::ONE);
        }
        let o = reference_attention(&cfg, &q, &k, &v);
        for i in 0..8 {
            let sum: f32 = o.slot(0, 0).row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn output_is_convex_combination_of_values() {
        let cfg = AttentionConfig::new(2, 2, 16, 8);
        let q = normal_tensor_f16(3, 2, 2, 16, 8, 0.5);
        let k = normal_tensor_f16(4, 2, 2, 16, 8, 0.5);
        let v = normal_tensor_f16(5, 2, 2, 16, 8, 1.0);
        let o = reference_attention(&cfg, &q, &k, &v);
        // Each output element lies within [min V col, max V col].
        for slot in 0..4 {
            let vm = v.slot_flat(slot).to_f32();
            for c in 0..8 {
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for r in 0..16 {
                    lo = lo.min(vm.get(r, c));
                    hi = hi.max(vm.get(r, c));
                }
                for r in 0..16 {
                    let x = o.slot_flat(slot).get(r, c);
                    assert!(x >= lo - 1e-4 && x <= hi + 1e-4);
                }
            }
        }
    }
}
