//! # ft-core — end-to-end fault tolerant attention (EFTA)
//!
//! The primary contribution of *FT-Transformer: Resilient and Reliable
//! Transformer with End-to-End Fault Tolerant Attention* (SC 2025),
//! reproduced in safe Rust on the simulated tensor-core substrate of
//! [`ft_sim`]:
//!
//! * [`reference`] — naive exact attention (correctness oracle);
//! * [`flash`] — tiled online-softmax flash attention, the unprotected
//!   baseline;
//! * [`decoupled`] — the traditional three-kernel ABFT + DMR pipeline with
//!   O(n²) HBM materialisation (§3.1);
//! * [`efta`] — the fused single-kernel EFTA with hybrid strided-ABFT +
//!   SNVR protection and per-step or unified verification (§3.2–3.4,
//!   Algorithm 1);
//! * [`dmr`] / [`snvr`] — the softmax protection schemes compared in
//!   Fig. 13.
//!
//! ```
//! use ft_core::config::AttentionConfig;
//! use ft_core::efta::{efta_attention, EftaOptions};
//! use ft_num::rng::normal_tensor_f16;
//! use ft_sim::NoFaults;
//!
//! let cfg = AttentionConfig::new(1, 2, 64, 32).with_block(32);
//! let q = normal_tensor_f16(1, 1, 2, 64, 32, 0.5);
//! let k = normal_tensor_f16(2, 1, 2, 64, 32, 0.5);
//! let v = normal_tensor_f16(3, 1, 2, 64, 32, 0.5);
//! let out = efta_attention(&cfg, &q, &k, &v, &NoFaults, &EftaOptions::optimized());
//! assert!(out.report.clean());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod decoupled;
pub mod dmr;
pub mod efta;
pub mod flash;
pub mod reference;
pub mod snvr;
pub mod types;

pub use config::AttentionConfig;
pub use decoupled::{decoupled_ft_attention, DecoupledOptions};
pub use efta::{
    efta_attention, efta_attention_clean, EftaOptions, GemmProtection, SoftmaxProtection,
    VerifyMode,
};
pub use decoupled::{analytic_timeline as decoupled_analytic_timeline, hbm_demand as decoupled_hbm_demand};
pub use efta::analytic_stats as efta_analytic_stats;
pub use flash::flash_attention;
pub use reference::reference_attention;
pub use types::{AttentionOutput, FtReport, PhaseBreakdown};
