//! # ft-core — end-to-end fault tolerant attention (EFTA)
//!
//! The primary contribution of *FT-Transformer: Resilient and Reliable
//! Transformer with End-to-End Fault Tolerant Attention* (SC 2025),
//! reproduced in safe Rust on the simulated tensor-core substrate of
//! [`ft_sim`].
//!
//! ## The unified backend API
//!
//! Every kernel family is a strategy behind one trait: build an
//! [`AttentionRequest`], pick a
//! [`BackendKind`] — by variant or by name — and
//! [`run`](backend::AttentionBackend::run) it:
//!
//! ```
//! use ft_core::backend::{AttentionBackend, AttentionRequest, BackendKind};
//! use ft_core::config::AttentionConfig;
//! use ft_num::rng::normal_tensor_f16;
//! use ft_sim::{FaultSite, OpCoord, SeuInjector};
//!
//! let cfg = AttentionConfig::new(1, 2, 64, 32).with_auto_block();
//! let q = normal_tensor_f16(1, 1, 2, 64, 32, 0.5);
//! let k = normal_tensor_f16(2, 1, 2, 64, 32, 0.5);
//! let v = normal_tensor_f16(3, 1, 2, 64, 32, 0.5);
//!
//! // Select the optimised EFTA pipeline by name, as a CLI would.
//! let backend: BackendKind = "efta-o".parse().unwrap();
//!
//! // Fault-free run.
//! let clean = backend.run(&AttentionRequest::new(cfg, &q, &k, &v));
//! assert!(clean.report.clean());
//!
//! // The same request under a single-event upset: detected and repaired.
//! let seu = SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(1, 5, 40, 0), 30)
//!     .at_chain_step(20);
//! let out = backend.run(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&seu));
//! assert!(out.report.total_detected() > 0);
//! assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
//! ```
//!
//! ## The kernel families
//!
//! * [`backend::ReferenceBackend`] (`"reference"`) — naive exact attention,
//!   the correctness oracle ([`mod@reference`]);
//! * [`backend::FlashBackend`] (`"flash"`) — tiled online-softmax flash
//!   attention, the unprotected baseline ([`flash`]);
//! * [`backend::DecoupledBackend`] (`"decoupled"`) — the traditional
//!   three-kernel ABFT + DMR pipeline with O(n²) HBM materialisation
//!   (§3.1, [`decoupled`]); the only backend that can legitimately fail
//!   (OOM), surfaced through
//!   [`try_run`](backend::AttentionBackend::try_run);
//! * [`backend::EftaBackend`] (`"efta"`, `"efta-o"`) — the fused
//!   single-kernel EFTA with hybrid strided-ABFT + SNVR protection and
//!   per-step or unified verification (§3.2–3.4, Algorithm 1, [`efta`]);
//! * [`dmr`] / [`snvr`] — the softmax protection schemes compared in
//!   Fig. 13, selectable through [`efta::EftaOptions`].
//!
//! ## Incremental decode and serving
//!
//! Serving traffic decodes one token at a time over cached K/V. The
//! checksum-protected store is [`kv::KvCache`]; a
//! [`DecodeRequest`] runs one step through
//! [`try_decode`](backend::AttentionBackend::try_decode) on any backend —
//! EFTA's variant re-verifies cache-resident state on read and carries its
//! output checksums across the online-softmax rescales ([`decode`]).
//!
//! Under multi-user traffic, many streams share one kernel sweep:
//! [`serve`] holds the continuous-batching machinery — the
//! [`DecodeScheduler`] slot table, chunked-prefill
//! admission, and the batched
//! [`try_decode_sweep`](backend::AttentionBackend::try_decode_sweep) that
//! multiplexes every stream's `(row, slot)` work units through one fan-out
//! while attributing fault events to per-stream [`FtReport`]s.
//!
//! The pre-API free functions (`efta_attention` & friends) remain as
//! hidden shims delegating to the trait.

#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod decode;
pub mod decoupled;
pub mod dmr;
pub mod efta;
pub mod flash;
pub mod kv;
pub mod protect;
pub mod reference;
pub mod serve;
pub mod snvr;
pub mod types;

pub use backend::{
    AttentionBackend, AttentionRequest, BackendError, BackendKind, DecoupledBackend, EftaBackend,
    FlashBackend, ReferenceBackend,
};
pub use config::AttentionConfig;
pub use decode::DecodeRequest;
pub use decoupled::{
    analytic_timeline as decoupled_analytic_timeline, hbm_demand as decoupled_hbm_demand,
    DecoupledOptions,
};
pub use efta::{
    analytic_stats as efta_analytic_stats, EftaOptions, GemmProtection, SoftmaxProtection,
    VerifyMode,
};
pub use kv::{KvCache, KvReadReport};
pub use protect::ProtectionLevel;
pub use serve::{
    DecodeScheduler, PlanItem, SchedulerConfig, StreamId, StreamSlice, StreamState,
    StreamSweepOutput,
};
pub use types::{AttentionOutput, FtReport, PhaseBreakdown};

#[doc(hidden)]
pub use decoupled::decoupled_ft_attention;
#[doc(hidden)]
pub use efta::{efta_attention, efta_attention_clean};
#[doc(hidden)]
pub use flash::flash_attention;
#[doc(hidden)]
pub use reference::reference_attention;
