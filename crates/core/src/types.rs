//! Shared output and accounting types for all attention kernels.

use core::sync::atomic::{AtomicU64, Ordering};
use ft_num::Tensor4F32;
use ft_sim::cost::Timeline;

/// Fault-tolerance event counters accumulated during one kernel run.
///
/// Thread-safe: kernels update these from rayon workers; campaigns read the
/// totals afterwards.
#[derive(Debug, Default)]
pub struct FtCounters {
    /// Checksum mismatches detected on GEMM I (QKᵀ).
    pub gemm1_detected: AtomicU64,
    /// GEMM I errors corrected via checksums.
    pub gemm1_corrected: AtomicU64,
    /// GEMM I mismatches that required recomputation.
    pub gemm1_recomputed: AtomicU64,
    /// Product-check mismatches attributed to subtraction/EXP.
    pub exp_detected: AtomicU64,
    /// EXP errors repaired by recomputation.
    pub exp_recomputed: AtomicU64,
    /// Reduce-max range violations repaired.
    pub max_restricted: AtomicU64,
    /// Rowsum (ℓ) range violations repaired (restriction / approximation).
    pub sum_restricted: AtomicU64,
    /// Checksum mismatches detected on GEMM II / rescale / normalise.
    pub gemm2_detected: AtomicU64,
    /// GEMM II errors corrected via checksums.
    pub gemm2_corrected: AtomicU64,
    /// GEMM II mismatches that required recomputation.
    pub gemm2_recomputed: AtomicU64,
    /// DMR disagreement events (decoupled / DMR-softmax paths).
    pub dmr_retries: AtomicU64,
    /// Checksum mismatches detected on cache-resident K/V state at read.
    pub cache_detected: AtomicU64,
    /// Cache-resident errors located and corrected on read.
    pub cache_corrected: AtomicU64,
    /// Cache-resident mismatches that could not be located (the original
    /// data is gone — unlike GEMM faults there is nothing to recompute
    /// from, so these are surfaced for the serving layer to re-prefill).
    pub cache_uncorrectable: AtomicU64,
    /// Cache-resident checksum residuals absorbed without correction
    /// under [`ProtectionLevel::Approximate`](crate::protect::ProtectionLevel):
    /// above the read-check floor but within the stream's tolerance, so
    /// no locate/correct ran and nothing was poisoned.
    pub cache_tolerated: AtomicU64,
}

impl FtCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Immutable snapshot.
    pub fn snapshot(&self) -> FtReport {
        FtReport {
            gemm1_detected: self.gemm1_detected.load(Ordering::Relaxed),
            gemm1_corrected: self.gemm1_corrected.load(Ordering::Relaxed),
            gemm1_recomputed: self.gemm1_recomputed.load(Ordering::Relaxed),
            exp_detected: self.exp_detected.load(Ordering::Relaxed),
            exp_recomputed: self.exp_recomputed.load(Ordering::Relaxed),
            max_restricted: self.max_restricted.load(Ordering::Relaxed),
            sum_restricted: self.sum_restricted.load(Ordering::Relaxed),
            gemm2_detected: self.gemm2_detected.load(Ordering::Relaxed),
            gemm2_corrected: self.gemm2_corrected.load(Ordering::Relaxed),
            gemm2_recomputed: self.gemm2_recomputed.load(Ordering::Relaxed),
            dmr_retries: self.dmr_retries.load(Ordering::Relaxed),
            cache_detected: self.cache_detected.load(Ordering::Relaxed),
            cache_corrected: self.cache_corrected.load(Ordering::Relaxed),
            cache_uncorrectable: self.cache_uncorrectable.load(Ordering::Relaxed),
            cache_tolerated: self.cache_tolerated.load(Ordering::Relaxed),
            // Eviction is a storage policy executed by the cache owner
            // (the attention module), not by the kernels these counters
            // instrument; it lands in reports via field updates upstream.
            cache_evicted_blocks: 0,
        }
    }

    /// Bump a counter by `n` (convenience for call sites).
    pub fn add(counter: &AtomicU64, n: u64) {
        if n > 0 {
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Plain-data snapshot of [`FtCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FtReport {
    /// Checksum mismatches detected on GEMM I (QKᵀ).
    pub gemm1_detected: u64,
    /// GEMM I errors corrected via checksums.
    pub gemm1_corrected: u64,
    /// GEMM I mismatches requiring recomputation.
    pub gemm1_recomputed: u64,
    /// Product-check mismatches attributed to subtraction/EXP.
    pub exp_detected: u64,
    /// EXP errors repaired by recomputation.
    pub exp_recomputed: u64,
    /// Reduce-max range violations repaired.
    pub max_restricted: u64,
    /// Rowsum range violations repaired.
    pub sum_restricted: u64,
    /// Checksum mismatches detected on GEMM II / rescale / normalise.
    pub gemm2_detected: u64,
    /// GEMM II errors corrected via checksums.
    pub gemm2_corrected: u64,
    /// GEMM II mismatches requiring recomputation.
    pub gemm2_recomputed: u64,
    /// DMR disagreement events.
    pub dmr_retries: u64,
    /// Checksum mismatches detected on cache-resident K/V state at read.
    pub cache_detected: u64,
    /// Cache-resident errors located and corrected on read.
    pub cache_corrected: u64,
    /// Cache-resident mismatches that could not be located.
    pub cache_uncorrectable: u64,
    /// Checksum residuals tolerated (absorbed uncorrected) under
    /// approximate protection. Deliberate policy, not a repair: like
    /// eviction these do not count toward
    /// [`total_detected`](FtReport::total_detected) and do not dirty
    /// [`clean`](FtReport::clean) — a stream that opted into tolerance
    /// is behaving as configured.
    pub cache_tolerated: u64,
    /// KV-cache blocks evicted by the sliding-window storage policy.
    /// An *event* count, not a fault count: eviction is deliberate
    /// bounded-memory bookkeeping, so it does not dirty
    /// [`clean`](FtReport::clean) — it is surfaced here so per-stream
    /// serving reports show when (and how often) a stream's history was
    /// trimmed.
    pub cache_evicted_blocks: u64,
}

impl FtReport {
    /// Total detections across every check family.
    pub fn total_detected(&self) -> u64 {
        self.gemm1_detected
            + self.exp_detected
            + self.max_restricted
            + self.sum_restricted
            + self.gemm2_detected
            + self.dmr_retries
            + self.cache_detected
    }

    /// Total repair actions (corrections + recomputations + restrictions).
    pub fn total_repaired(&self) -> u64 {
        self.gemm1_corrected
            + self.gemm1_recomputed
            + self.exp_recomputed
            + self.max_restricted
            + self.sum_restricted
            + self.gemm2_corrected
            + self.gemm2_recomputed
            + self.cache_corrected
    }

    /// True when nothing fired *and* no unrepairable cache damage is on
    /// record (sticky `cache_uncorrectable` alone must keep a report dirty:
    /// laundered cache corruption raises no fresh detections afterwards).
    pub fn clean(&self) -> bool {
        self.total_detected() == 0 && self.cache_uncorrectable == 0
    }

    /// Field-wise sum with another report (batched/multi-run aggregation).
    pub fn merged(&self, other: &FtReport) -> FtReport {
        FtReport {
            gemm1_detected: self.gemm1_detected + other.gemm1_detected,
            gemm1_corrected: self.gemm1_corrected + other.gemm1_corrected,
            gemm1_recomputed: self.gemm1_recomputed + other.gemm1_recomputed,
            exp_detected: self.exp_detected + other.exp_detected,
            exp_recomputed: self.exp_recomputed + other.exp_recomputed,
            max_restricted: self.max_restricted + other.max_restricted,
            sum_restricted: self.sum_restricted + other.sum_restricted,
            gemm2_detected: self.gemm2_detected + other.gemm2_detected,
            gemm2_corrected: self.gemm2_corrected + other.gemm2_corrected,
            gemm2_recomputed: self.gemm2_recomputed + other.gemm2_recomputed,
            dmr_retries: self.dmr_retries + other.dmr_retries,
            cache_detected: self.cache_detected + other.cache_detected,
            cache_corrected: self.cache_corrected + other.cache_corrected,
            cache_uncorrectable: self.cache_uncorrectable + other.cache_uncorrectable,
            cache_tolerated: self.cache_tolerated + other.cache_tolerated,
            cache_evicted_blocks: self.cache_evicted_blocks + other.cache_evicted_blocks,
        }
    }
}

/// Per-phase wall-clock accumulators (nanoseconds, summed across rayon
/// workers) powering the overhead-breakdown figures.
#[derive(Debug, Default)]
pub struct PhaseTimers {
    /// GEMM I compute.
    pub gemm1: AtomicU64,
    /// GEMM I protection (checksum encode + verify + correct).
    pub gemm1_protect: AtomicU64,
    /// Softmax compute (max, subtract, exp, sums, rescale).
    pub softmax: AtomicU64,
    /// Softmax protection (DMR replicas or SNVR checks).
    pub softmax_protect: AtomicU64,
    /// GEMM II compute.
    pub gemm2: AtomicU64,
    /// GEMM II protection.
    pub gemm2_protect: AtomicU64,
}

impl PhaseTimers {
    /// Fresh zeroed timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `nanos` to a phase accumulator.
    pub fn add(phase: &AtomicU64, nanos: u64) {
        phase.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Snapshot in seconds: (gemm1, gemm1_prot, softmax, softmax_prot,
    /// gemm2, gemm2_prot).
    pub fn snapshot_secs(&self) -> PhaseBreakdown {
        let f = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64 * 1e-9;
        PhaseBreakdown {
            gemm1: f(&self.gemm1),
            gemm1_protect: f(&self.gemm1_protect),
            softmax: f(&self.softmax),
            softmax_protect: f(&self.softmax_protect),
            gemm2: f(&self.gemm2),
            gemm2_protect: f(&self.gemm2_protect),
        }
    }
}

/// Plain-data snapshot of [`PhaseTimers`] in seconds of accumulated worker
/// time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// GEMM I compute seconds.
    pub gemm1: f64,
    /// GEMM I protection seconds.
    pub gemm1_protect: f64,
    /// Softmax compute seconds.
    pub softmax: f64,
    /// Softmax protection seconds.
    pub softmax_protect: f64,
    /// GEMM II compute seconds.
    pub gemm2: f64,
    /// GEMM II protection seconds.
    pub gemm2_protect: f64,
}

impl PhaseBreakdown {
    /// Total protection time.
    pub fn protect_total(&self) -> f64 {
        self.gemm1_protect + self.softmax_protect + self.gemm2_protect
    }

    /// Total compute (unprotected work) time.
    pub fn compute_total(&self) -> f64 {
        self.gemm1 + self.softmax + self.gemm2
    }

    /// Field-wise sum with another breakdown (batched aggregation).
    pub fn merged(&self, other: &PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            gemm1: self.gemm1 + other.gemm1,
            gemm1_protect: self.gemm1_protect + other.gemm1_protect,
            softmax: self.softmax + other.softmax,
            softmax_protect: self.softmax_protect + other.softmax_protect,
            gemm2: self.gemm2 + other.gemm2,
            gemm2_protect: self.gemm2_protect + other.gemm2_protect,
        }
    }
}

/// Result of one attention forward pass.
#[derive(Debug)]
pub struct AttentionOutput {
    /// The attention tensor O in f32 (callers quantise as needed).
    pub o: Tensor4F32,
    /// Kernel-level stats for the simulated-A100 cost model.
    pub timeline: Timeline,
    /// Fault-tolerance event counts.
    pub report: FtReport,
    /// Per-phase wall-clock breakdown.
    pub phases: PhaseBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_round_trip() {
        let c = FtCounters::new();
        FtCounters::add(&c.gemm1_detected, 3);
        FtCounters::add(&c.exp_recomputed, 2);
        FtCounters::add(&c.sum_restricted, 0); // no-op
        let r = c.snapshot();
        assert_eq!(r.gemm1_detected, 3);
        assert_eq!(r.exp_recomputed, 2);
        assert_eq!(r.sum_restricted, 0);
        assert_eq!(r.total_detected(), 3);
        assert_eq!(r.total_repaired(), 2);
        assert!(!r.clean());
        assert!(FtReport::default().clean());
    }

    #[test]
    fn phase_timers_accumulate() {
        let t = PhaseTimers::new();
        PhaseTimers::add(&t.gemm1, 1_000_000_000);
        PhaseTimers::add(&t.gemm1_protect, 500_000_000);
        PhaseTimers::add(&t.softmax_protect, 250_000_000);
        let b = t.snapshot_secs();
        assert!((b.gemm1 - 1.0).abs() < 1e-9);
        assert!((b.protect_total() - 0.75).abs() < 1e-9);
        assert!((b.compute_total() - 1.0).abs() < 1e-9);
    }
}
