//! The traditional operation-level fault-tolerance pipeline (paper §3.1,
//! Figs. 2–3) — the baseline EFTA is compared against in Fig. 9.
//!
//! Three kernels execute sequentially, each round-tripping through HBM:
//!
//! 1. **ABFT-GEMM I** — `S = Q·Kᵀ`, block-tiled, protected by traditional
//!    element checksums in *both* directions; S is materialised in HBM
//!    (the O(n²) memory the paper eliminates — with a 40 GB device this is
//!    the OOM at seq = 16k in Fig. 9).
//! 2. **DMR-RSM** — row softmax with dual modular redundancy (Eqs. 10–11);
//!    P is materialised in HBM.
//! 3. **ABFT-GEMM II** — `O = P·V`, row-tiled, element-checksum protected.

use crate::config::AttentionConfig;
use crate::dmr::{dmr_row_softmax, DmrConfig};
use crate::types::{AttentionOutput, FtCounters, PhaseTimers};
use ft_abft::element::{augment_rows, encode_cols, verify_correct_by_cols, verify_correct_by_rows};
use ft_abft::thresholds::Thresholds;
use ft_num::{block_starts, Matrix, MatrixF32, Tensor4F16, Tensor4F32};
use ft_sim::cost::Timeline;
use ft_sim::device::{Device, KernelStats, OomError};
use ft_sim::{gemm_flops, gemm_nn_inj, gemm_nt, gemm_nt_inj, FaultInjector, FaultSite, GemmCtx};
use rayon::prelude::*;
use std::time::Instant;

/// Options for the decoupled pipeline.
#[derive(Clone, Copy, Debug)]
pub struct DecoupledOptions {
    /// Detection thresholds (element checksums use the `gemm` check).
    pub thresholds: Thresholds,
    /// DMR settings for the softmax kernel.
    pub dmr: DmrConfig,
    /// Quantise checksum vectors through binary16.
    pub quantize_checksums: bool,
    /// Apply fault tolerance. `false` runs the same three-kernel pipeline
    /// without checksums or DMR — the "Baseline" bars of Fig. 9.
    pub protect: bool,
}

impl Default for DecoupledOptions {
    fn default() -> Self {
        DecoupledOptions {
            // Element checksums fold whole block rows/columns through
            // FP16-quantised checksum vectors, so their rounding-noise
            // floor sits an order of magnitude above the stride-8 lanes';
            // the floors here are calibrated to that wider fold.
            thresholds: Thresholds {
                gemm: ft_abft::thresholds::Check::new(0.48, 0.05),
                output: ft_abft::thresholds::Check::new(0.05, 0.02),
                ..Thresholds::calibrated()
            },
            dmr: DmrConfig::default(),
            quantize_checksums: true,
            protect: true,
        }
    }
}

impl DecoupledOptions {
    /// The unprotected three-kernel baseline.
    pub fn unprotected() -> Self {
        DecoupledOptions {
            protect: false,
            ..Self::default()
        }
    }
}

/// Simulated-HBM residency the pipeline needs for `cfg` (Q/K/V/O tensors,
/// FP32 S, per-block checksums, FP16 P). Exceeding the device capacity is
/// the Fig. 9 OOM.
pub fn hbm_demand(cfg: &AttentionConfig, protect: bool) -> u64 {
    let nb = cfg.num_blocks();
    let checksum_bytes = if protect {
        (cfg.num_slots() * nb * nb * (4 * cfg.block + 4) * 2) as u64
    } else {
        0
    };
    4 * cfg.tensor_bytes() + 2 * cfg.score_bytes() + checksum_bytes + cfg.score_bytes()
}

/// Analytic kernel statistics of the three-kernel pipeline — shape-derived,
/// used to evaluate the simulated-A100 roofline at full paper sizes.
pub fn analytic_timeline(cfg: &AttentionConfig, protect: bool) -> Timeline {
    let b = cfg.block;
    let d = cfg.head_dim;
    let nb = cfg.num_blocks();
    let slots_u = cfg.num_slots() as u64;
    let seq = cfg.seq as u64;
    let seq2 = seq * seq;
    let blk_bytes = (b * d * 2) as u64;
    let nb_u = nb as u64;
    let checksum_bytes = if protect {
        (cfg.num_slots() * nb * nb * (4 * b + 4) * 2) as u64
    } else {
        0
    };
    let aug = if protect { 2 * nb } else { 0 };
    let k1 = KernelStats {
        launches: 1,
        hbm_read: slots_u * (nb_u * nb_u * 2 * blk_bytes),
        hbm_written: slots_u * (seq2 * 4) + checksum_bytes,
        tc_flops: slots_u * gemm_flops(cfg.seq + aug, cfg.seq + aug, d),
        fp32_flops: 0,
        sfu_ops: 0,
        // Element-checksum verification reduces S twice (rows and columns)
        // with the inter-thread gathers of the traditional layout.
        serial_flops: slots_u
            * if protect {
                3 * (4 * seq2 + 2 * (cfg.seq * d) as u64 * nb_u)
            } else {
                0
            },
    };
    let dmr_reads = if protect { 2 } else { 1 };
    let k2 = KernelStats {
        launches: 1,
        hbm_read: slots_u * (dmr_reads * seq2 * 4),
        hbm_written: slots_u * (seq2 * 2),
        tc_flops: 0,
        fp32_flops: slots_u * 3 * seq2,
        sfu_ops: slots_u * if protect { 2 * seq2 } else { seq2 },
        serial_flops: slots_u * if protect { 4 * seq2 } else { 0 },
    };
    let k3 = KernelStats {
        launches: 1,
        hbm_read: slots_u * (seq2 * 2 + nb_u * (cfg.seq * d * 2) as u64),
        hbm_written: slots_u * (cfg.seq * d * 2) as u64,
        tc_flops: slots_u * gemm_flops(cfg.seq + aug, d, cfg.seq),
        fp32_flops: 0,
        sfu_ops: 0,
        serial_flops: slots_u
            * if protect {
                3 * (2 * seq2 + 2 * (cfg.seq * d) as u64)
            } else {
                0
            },
    };
    let mut timeline = Timeline::new();
    timeline.push("kernel1/abft-gemm-qkt", k1);
    timeline.push("kernel2/dmr-softmax", k2);
    timeline.push("kernel3/abft-gemm-pv", k3);
    timeline
}

/// Run the decoupled fault-tolerant attention pipeline.
///
/// `device` provides the simulated HBM; the S and P tensors are reserved on
/// it and the run fails with [`OomError`] exactly where the paper's baseline
/// does. Pass [`Device::a100_40gb`] for the paper's card.
///
/// Compatibility shim: new code should go through the unified API —
/// `BackendKind::Decoupled(opts)` with
/// [`crate::backend::AttentionRequest::with_device`] and
/// [`crate::backend::AttentionBackend::try_run`].
#[doc(hidden)]
pub fn decoupled_ft_attention<I: FaultInjector>(
    cfg: &AttentionConfig,
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
    inj: &I,
    opts: &DecoupledOptions,
    device: &Device,
) -> Result<AttentionOutput, OomError> {
    use crate::backend::{AttentionBackend, AttentionRequest, BackendError, DecoupledBackend};
    DecoupledBackend { options: *opts }
        .try_run(
            &AttentionRequest::new(*cfg, q, k, v)
                .with_injector(inj)
                .with_device(device),
        )
        .map_err(|e| match e {
            BackendError::Oom(oom) => oom,
            other => panic!("decoupled attention failed: {other}"),
        })
}

/// Decoupled pipeline body; [`crate::backend::DecoupledBackend`] is the
/// public entry point.
pub(crate) fn decoupled_forward<I: FaultInjector>(
    cfg: &AttentionConfig,
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
    inj: &I,
    opts: &DecoupledOptions,
    device: &Device,
) -> Result<AttentionOutput, OomError> {
    assert!(
        !cfg.causal,
        "the decoupled baseline protects unmasked attention"
    );
    let counters = FtCounters::new();
    let timers = PhaseTimers::new();
    let b = cfg.block;
    let d = cfg.head_dim;
    let nb = cfg.num_blocks();
    let chk = opts.thresholds.gemm;

    // Input/output tensors resident in HBM.
    let _qkv_alloc = device
        .hbm
        .alloc(3 * cfg.tensor_bytes() + cfg.tensor_bytes())?;
    // Kernel I materialises S in FP32 (accumulator precision — the softmax
    // kernel and the checksum comparisons consume it directly), plus the
    // per-block checksum rows/cols.
    let checksum_bytes = (cfg.num_slots() * nb * nb * (4 * b + 4) * 2) as u64;
    let s_alloc = device.hbm.alloc(2 * cfg.score_bytes() + checksum_bytes)?;
    // Kernel II materialises P (FP16, the GEMM III operand precision).
    let p_alloc = device.hbm.alloc(cfg.score_bytes())?;

    let slots = cfg.num_slots();

    // ---- Kernel I: ABFT-GEMM S = Q·Kᵀ ---------------------------------
    let k1_start = Instant::now();
    let s_tensors: Vec<MatrixF32> = (0..slots)
        .into_par_iter()
        .map(|slot| {
            let qm = q.slot_flat(slot).to_f32();
            let km = k.slot_flat(slot).to_f32();
            let q_scaled = Matrix::from_fn(qm.rows(), qm.cols(), |i, j| qm.get(i, j) * cfg.scale);
            let mut s_full = Matrix::zeros(cfg.seq, cfg.seq);
            for (ib, r0) in block_starts(cfg.seq, b).enumerate() {
                let q_blk = q_scaled.block(r0, 0, b, d);
                // Column checksums of S_ij come from encoding Q's rows.
                let q_aug = if opts.protect {
                    let q_cs = encode_cols(&q_blk, opts.quantize_checksums);
                    augment_rows(&q_blk, &q_cs)
                } else {
                    q_blk.clone()
                };
                for (jb, c0) in block_starts(cfg.seq, b).enumerate() {
                    let k_blk = km.block(c0, 0, b, d);
                    // Row checksums of S_ij come from encoding K's rows.
                    let k_aug = if opts.protect {
                        let k_cs = encode_cols(&k_blk, opts.quantize_checksums);
                        augment_rows(&k_blk, &k_cs)
                    } else {
                        k_blk.clone()
                    };
                    let t0 = Instant::now();
                    let full = gemm_nt_inj(
                        &q_aug,
                        &k_aug,
                        inj,
                        GemmCtx::new(FaultSite::GemmIAccum, slot)
                            .at(r0, c0)
                            .iter(ib * nb + jb),
                    );
                    PhaseTimers::add(&timers.gemm1, t0.elapsed().as_nanos() as u64);

                    if !opts.protect {
                        s_full.set_block(r0, c0, &full);
                        continue;
                    }
                    let t0 = Instant::now();
                    let br = q_blk.rows();
                    let bc = k_blk.rows();
                    let mut s_blk = full.block(0, 0, br, bc);
                    let row1: Vec<f32> = (0..bc).map(|j| full.get(br, j)).collect();
                    let row2: Vec<f32> = (0..bc).map(|j| full.get(br + 1, j)).collect();
                    let col1: Vec<f32> = (0..br).map(|i| full.get(i, bc)).collect();
                    let col2: Vec<f32> = (0..br).map(|i| full.get(i, bc + 1)).collect();
                    let rep_c = verify_correct_by_cols(&mut s_blk, &row1, &row2, chk);
                    let rep_r = verify_correct_by_rows(&mut s_blk, &col1, &col2, chk);
                    // Located elements are recomputed exactly: a 2^100-scale
                    // delta swamps f32, so subtraction alone cannot restore
                    // the true value.
                    for loc in rep_c.corrected.iter().chain(rep_r.corrected.iter()) {
                        let mut acc = 0.0f32;
                        for (a, bb) in q_blk.row(loc.row).iter().zip(k_blk.row(loc.col)) {
                            acc += a * bb;
                        }
                        s_blk.set(loc.row, loc.col, acc);
                    }
                    FtCounters::add(
                        &counters.gemm1_detected,
                        (rep_c.detections + rep_r.detections) as u64,
                    );
                    FtCounters::add(
                        &counters.gemm1_corrected,
                        (rep_c.corrected.len() + rep_r.corrected.len()) as u64,
                    );
                    let uncorrectable = rep_c.uncorrectable + rep_r.uncorrectable;
                    if uncorrectable > 0 {
                        // Recompute the block without protection mishaps.
                        s_blk = gemm_nt(&q_blk, &k_blk);
                        FtCounters::add(&counters.gemm1_recomputed, uncorrectable as u64);
                    }
                    PhaseTimers::add(&timers.gemm1_protect, t0.elapsed().as_nanos() as u64);
                    s_full.set_block(r0, c0, &s_blk);
                }
            }
            // Stored to HBM in FP32 accumulator precision.
            s_full
        })
        .collect();
    let k1_time = k1_start.elapsed();

    // ---- Kernel II: DMR row softmax ------------------------------------
    let k2_start = Instant::now();
    let p_tensors: Vec<MatrixF32> = s_tensors
        .into_par_iter()
        .enumerate()
        .map(|(slot, s_mat)| {
            let mut p_full = Matrix::zeros(cfg.seq, cfg.seq);
            for r0 in block_starts(cfg.seq, b) {
                let mut s_blk = s_mat.block(r0, 0, b, cfg.seq);
                if opts.protect {
                    let t0 = Instant::now();
                    let (p_blk, outcome) = dmr_row_softmax(&s_blk, inj, slot, r0, &opts.dmr);
                    // First replica is "compute", the rest is protection.
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    let per_exec = elapsed / outcome.executions as u64;
                    PhaseTimers::add(&timers.softmax, per_exec);
                    PhaseTimers::add(&timers.softmax_protect, elapsed - per_exec);
                    FtCounters::add(&counters.dmr_retries, outcome.retries as u64);
                    p_full.set_block(r0, 0, &p_blk);
                } else {
                    let t0 = Instant::now();
                    crate::reference::row_softmax(&mut s_blk);
                    PhaseTimers::add(&timers.softmax, t0.elapsed().as_nanos() as u64);
                    p_full.set_block(r0, 0, &s_blk);
                }
            }
            p_full.to_f16().to_f32()
        })
        .collect();
    let k2_time = k2_start.elapsed();

    // ---- Kernel III: ABFT-GEMM O = P·V ----------------------------------
    let k3_start = Instant::now();
    let o_slots: Vec<MatrixF32> = p_tensors
        .into_par_iter()
        .enumerate()
        .map(|(slot, p_mat)| {
            let vm = v.slot_flat(slot).to_f32();
            let mut o_full = Matrix::zeros(cfg.seq, d);
            for (ib, r0) in block_starts(cfg.seq, b).enumerate() {
                let p_blk = p_mat.block(r0, 0, b, cfg.seq);
                let p_aug = if opts.protect {
                    let t0 = Instant::now();
                    let p_cs = encode_cols(&p_blk, opts.quantize_checksums);
                    let aug = augment_rows(&p_blk, &p_cs);
                    PhaseTimers::add(&timers.gemm2_protect, t0.elapsed().as_nanos() as u64);
                    aug
                } else {
                    p_blk.clone()
                };

                let t0 = Instant::now();
                let full = gemm_nn_inj(
                    &p_aug,
                    &vm,
                    inj,
                    GemmCtx::new(FaultSite::GemmIiAccum, slot)
                        .at(r0, 0)
                        .iter(ib),
                );
                PhaseTimers::add(&timers.gemm2, t0.elapsed().as_nanos() as u64);

                if !opts.protect {
                    o_full.set_block(r0, 0, &full);
                    continue;
                }
                let t0 = Instant::now();
                let br = p_blk.rows();
                let mut o_blk = full.block(0, 0, br, d);
                let row1: Vec<f32> = (0..d).map(|j| full.get(br, j)).collect();
                let row2: Vec<f32> = (0..d).map(|j| full.get(br + 1, j)).collect();
                let rep = verify_correct_by_cols(&mut o_blk, &row1, &row2, opts.thresholds.output);
                for loc in &rep.corrected {
                    let mut acc = 0.0f32;
                    for (kk, a) in p_blk.row(loc.row).iter().enumerate() {
                        acc += a * vm.get(kk, loc.col);
                    }
                    o_blk.set(loc.row, loc.col, acc);
                }
                FtCounters::add(&counters.gemm2_detected, rep.detections as u64);
                FtCounters::add(&counters.gemm2_corrected, rep.corrected.len() as u64);
                if rep.uncorrectable > 0 {
                    let clean = ft_sim::gemm_nn(&p_blk, &vm);
                    o_blk = clean;
                    FtCounters::add(&counters.gemm2_recomputed, rep.uncorrectable as u64);
                }
                PhaseTimers::add(&timers.gemm2_protect, t0.elapsed().as_nanos() as u64);
                o_full.set_block(r0, 0, &o_blk);
            }
            o_full
        })
        .collect();
    let k3_time = k3_start.elapsed();

    drop(s_alloc);
    drop(p_alloc);

    let o = Tensor4F32::from_slots(cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, o_slots);

    let timeline = analytic_timeline(cfg, opts.protect);

    // Record the real kernel wall-clock spans too (sequential pipeline).
    let _ = (k1_time, k2_time, k3_time);

    Ok(AttentionOutput {
        o,
        timeline,
        report: counters.snapshot(),
        phases: timers.snapshot_secs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_attention;
    use ft_num::rng::normal_tensor_f16;
    use ft_sim::{NoFaults, OpCoord, SeuInjector};

    fn qkv(cfg: &AttentionConfig, seed: u64) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
        let q = normal_tensor_f16(seed, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
        let k = normal_tensor_f16(seed + 1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
        let v = normal_tensor_f16(seed + 2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
        (q, k, v)
    }

    #[test]
    fn clean_decoupled_matches_reference() {
        let cfg = AttentionConfig::new(1, 2, 64, 32).with_block(32);
        let (q, k, v) = qkv(&cfg, 70);
        let dev = Device::a100_40gb();
        let out = decoupled_ft_attention(
            &cfg,
            &q,
            &k,
            &v,
            &NoFaults,
            &DecoupledOptions::default(),
            &dev,
        )
        .unwrap();
        let reference = reference_attention(&cfg, &q, &k, &v);
        // S and P round-trip through FP16 in HBM, so tolerance is FP16-ish.
        let diff = out.o.max_abs_diff(&reference);
        assert!(diff < 5e-3, "diff {diff}");
        assert!(out.report.clean(), "{:?}", out.report);
    }

    #[test]
    fn three_kernel_launches_and_quadratic_writes() {
        let cfg = AttentionConfig::new(1, 2, 128, 32).with_block(64);
        let (q, k, v) = qkv(&cfg, 71);
        let dev = Device::a100_40gb();
        let out = decoupled_ft_attention(
            &cfg,
            &q,
            &k,
            &v,
            &NoFaults,
            &DecoupledOptions::default(),
            &dev,
        )
        .unwrap();
        let total = out.timeline.total();
        assert_eq!(total.launches, 3);
        // Writes include two full seq² tensors.
        assert!(total.hbm_written >= 2 * cfg.score_bytes());
    }

    #[test]
    fn oom_at_paper_scale_for_large_config() {
        // h=32, seq=16k, batch=1: S (FP32) is 32 GiB and P (FP16) 16 GiB —
        // past the 40 GB card, the Fig. 9 OOM. The medium config (h=16,
        // d=64) still fits, matching the paper (no OOM in its plot).
        let large = AttentionConfig::large(1, 16 * 1024);
        let dev = Device::a100_40gb();
        let need = 4 * large.tensor_bytes() + 3 * large.score_bytes();
        assert!(need > dev.hbm.capacity(), "large must exceed 40 GB: {need}");
        let medium = AttentionConfig::medium(1, 16 * 1024);
        let fits = 4 * medium.tensor_bytes() + 3 * medium.score_bytes();
        assert!(fits < dev.hbm.capacity(), "medium must fit: {fits}");
    }

    #[test]
    fn gemm1_seu_corrected_by_element_checksums() {
        let cfg = AttentionConfig::new(1, 1, 64, 32).with_block(32);
        let (q, k, v) = qkv(&cfg, 72);
        let dev = Device::a100_40gb();
        let clean = decoupled_ft_attention(
            &cfg,
            &q,
            &k,
            &v,
            &NoFaults,
            &DecoupledOptions::default(),
            &dev,
        )
        .unwrap();
        // Setting exponent bit 30 of a sub-2.0 accumulator scales it by
        // ~2^128: a guaranteed-large error, detected at any threshold.
        let inj = SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(0, 10, 20, 0), 30)
            .at_chain_step(15);
        let out =
            decoupled_ft_attention(&cfg, &q, &k, &v, &inj, &DecoupledOptions::default(), &dev)
                .unwrap();
        assert_eq!(inj.fired(), 1);
        assert!(out.report.gemm1_detected > 0, "{:?}", out.report);
        assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
    }

    #[test]
    fn softmax_seu_masked_by_dmr() {
        let cfg = AttentionConfig::new(1, 1, 64, 32).with_block(32);
        let (q, k, v) = qkv(&cfg, 73);
        let dev = Device::a100_40gb();
        let clean = decoupled_ft_attention(
            &cfg,
            &q,
            &k,
            &v,
            &NoFaults,
            &DecoupledOptions::default(),
            &dev,
        )
        .unwrap();
        let inj = SeuInjector::new(FaultSite::ExpUnit, OpCoord::new(0, 5, 9, 0), 28);
        let out =
            decoupled_ft_attention(&cfg, &q, &k, &v, &inj, &DecoupledOptions::default(), &dev)
                .unwrap();
        assert!(inj.fired() >= 1);
        assert!(out.report.dmr_retries > 0, "{:?}", out.report);
        assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
    }

    #[test]
    fn gemm2_seu_corrected() {
        let cfg = AttentionConfig::new(1, 1, 64, 32).with_block(32);
        let (q, k, v) = qkv(&cfg, 74);
        let dev = Device::a100_40gb();
        let clean = decoupled_ft_attention(
            &cfg,
            &q,
            &k,
            &v,
            &NoFaults,
            &DecoupledOptions::default(),
            &dev,
        )
        .unwrap();
        let inj = SeuInjector::new(FaultSite::GemmIiAccum, OpCoord::new(0, 7, 11, 0), 30)
            .at_chain_step(30);
        let out =
            decoupled_ft_attention(&cfg, &q, &k, &v, &inj, &DecoupledOptions::default(), &dev)
                .unwrap();
        assert_eq!(inj.fired(), 1);
        assert!(out.report.gemm2_detected > 0, "{:?}", out.report);
        assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
    }

    #[test]
    fn device_memory_is_released_after_run() {
        let cfg = AttentionConfig::new(1, 2, 64, 32).with_block(32);
        let (q, k, v) = qkv(&cfg, 75);
        let dev = Device::a100_40gb();
        let _ = decoupled_ft_attention(
            &cfg,
            &q,
            &k,
            &v,
            &NoFaults,
            &DecoupledOptions::default(),
            &dev,
        )
        .unwrap();
        assert_eq!(dev.hbm.in_use(), 0);
        assert!(dev.hbm.peak() > 0);
    }
}
