//! Single-query incremental decode over a [`KvCache`].
//!
//! Autoregressive serving computes, per step, the attention of **one** new
//! query row against every cached K/V row. This module provides the two
//! decode kernels behind [`AttentionBackend::try_decode`]:
//!
//! * [`reference_decode`] — unprotected online-softmax single-query
//!   attention reading the cache raw (what every backend without its own
//!   protected decode path runs);
//! * [`efta_decode`] — the EFTA-protected variant: cached K/V blocks are
//!   re-verified on read against their append-time checksums (SEUs that
//!   landed in cache-resident state between steps are corrected, not just
//!   faults inside the GEMM), GEMM I + subtract + EXP are covered by the
//!   transported product check, the rowsum is SNVR-range-restricted, and
//!   output checksums `O_c1`/`O_c2` ride the online-softmax rescaling state
//!   across cache-block steps to one final post-loop verification — the
//!   prefill kernel's Algorithm 1 restructured around a 1-row tile.
//!
//! The checksum GEMM operands are **not** re-encoded per call the way the
//! prefill kernel must: they are the cache's stored append-time checksums,
//! so the encode cost is amortised over every decode step that reuses the
//! block.
//!
//! Both kernels are built from per-slot bodies that accept a *visible
//! length* — the causal prefix of the cache a query row may attend to. The
//! single-query entry points use the full cache; the multi-stream serving
//! sweep in [`crate::serve`] reuses the same bodies for chunked prefill,
//! where a chunk's interior rows see only their own prefix of the trailing
//! block (whose checksums are then re-encoded on the fly over the visible
//! rows, exactly as the prefill kernel encodes per call).
//!
//! The same visible-length machinery is what makes speculative decoding
//! ([`SpeculationPolicy`](crate::serve::SpeculationPolicy)) free at this
//! layer: a draft/verify sweep is just a multi-row chunk whose trailing
//! rows happen to be provisional. Each row attends exactly its own causal
//! prefix, so the logits of the accepted rows are bit-identical to what a
//! row-at-a-time decode would have produced, and rejected rows are undone
//! by [`KvCache::truncate_to`] without this module ever knowing they were
//! speculative.
//!
//! ```
//! use ft_core::decode::{efta_decode, DecodeRequest};
//! use ft_core::efta::EftaOptions;
//! use ft_core::kv::KvCache;
//! use ft_num::rng::normal_tensor_f16;
//!
//! // A (batch=1, heads=2) cache at head dim 16; append four token rows.
//! let mut cache = KvCache::new(1, 2, 16, 8, 8, 0.25);
//! for t in 0..4 {
//!     let k = normal_tensor_f16(10 + t, 1, 2, 1, 16, 0.6);
//!     let v = normal_tensor_f16(20 + t, 1, 2, 1, 16, 0.8);
//!     assert!(cache.append(&k, &v).clean());
//! }
//! // Decode the newest token's query against the protected cache.
//! let q = normal_tensor_f16(30, 1, 2, 1, 16, 0.6);
//! let out = efta_decode(&DecodeRequest::new(&cache, &q), &EftaOptions::optimized()).unwrap();
//! assert_eq!((out.o.seq(), out.o.dim()), (1, 16));
//! assert!(out.report.clean());
//! ```
//!
//! [`AttentionBackend::try_decode`]: crate::backend::AttentionBackend::try_decode

use crate::backend::BackendError;
use crate::efta::{EftaOptions, GemmProtection, SoftmaxProtection};
use crate::kv::KvCache;
use crate::snvr::{restrict_row_max, restrict_rowsum, Restriction};
use crate::types::{AttentionOutput, FtCounters, PhaseBreakdown};
use ft_abft::propagate::{residue_counts, transport_subtract_max, verify_products};
use ft_abft::strided::{
    correct_strided, encode_cols_strided, encode_rows_strided, strided_sums, strided_sums_weighted,
    StridedChecksums, StridedMismatch,
};
use ft_abft::thresholds::Thresholds;
use ft_num::{Matrix, MatrixF32, Tensor4F16, Tensor4F32};
use ft_sim::cost::Timeline;
use ft_sim::device::KernelStats;
use ft_sim::{
    gemm_flops, gemm_nn_inj, gemm_nt, gemm_nt_inj, FaultInjector, FaultSite, GemmCtx, NoFaults,
    OpCoord,
};
use rayon::prelude::*;

static NO_FAULTS: NoFaults = NoFaults;

/// One decode step: the cache, the new per-slot query row, an injector and
/// optional threshold override.
///
/// Built with [`DecodeRequest::new`] plus the `with_*` builders; consumed by
/// [`AttentionBackend::try_decode`](crate::backend::AttentionBackend::try_decode).
#[derive(Clone, Copy)]
pub struct DecodeRequest<'a> {
    /// The checksum-protected K/V store (already containing the current
    /// token's K/V row — decode attends to itself like causal prefill).
    /// May have been front-evicted ([`KvCache::evict_front`]): the kernels
    /// iterate resident blocks only.
    pub cache: &'a KvCache,
    /// Query tensor, `batch × heads × 1 × dim`: one new row per slot.
    pub q: &'a Tensor4F16,
    /// Fault injector consulted by protected operations.
    pub injector: &'a dyn FaultInjector,
    /// Per-request detection-threshold override.
    pub thresholds: Option<Thresholds>,
    /// Decode step index (namespaces fault coordinates across steps).
    pub step: usize,
    /// Sliding-window attention: attend only the cache blocks holding the
    /// most recent `window` rows (rounded down to a block boundary, so the
    /// attended set is exactly what a fresh cache holding only the window
    /// would contain). `None` attends every resident row.
    pub window: Option<usize>,
}

impl<'a> DecodeRequest<'a> {
    /// Request decoding `q` against `cache`, fault-free, at step
    /// `cache.len() - 1` (the just-appended token).
    ///
    /// Panics if the query shape disagrees with the cache geometry or the
    /// cache is empty.
    pub fn new(cache: &'a KvCache, q: &'a Tensor4F16) -> Self {
        assert!(!cache.is_empty(), "decode against an empty cache");
        assert_eq!(
            (q.batch(), q.heads(), q.seq(), q.dim()),
            (cache.batch(), cache.heads(), 1, cache.dim()),
            "query tensor shape does not match the cache geometry",
        );
        DecodeRequest {
            cache,
            q,
            injector: &NO_FAULTS,
            thresholds: None,
            step: cache.len() - 1,
            window: None,
        }
    }

    /// Attach a fault injector.
    pub fn with_injector(mut self, injector: &'a dyn FaultInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Override the detection thresholds.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = Some(thresholds);
        self
    }

    /// Set the decode step index used for fault coordinates.
    pub fn at_step(mut self, step: usize) -> Self {
        self.step = step;
        self
    }

    /// Restrict attention to the most recent `window` cached rows
    /// (block-granular sliding window; `None` attends everything
    /// resident). Panics on `Some(0)` — a zero-row window would attend
    /// nothing and normalise by an empty softmax.
    pub fn with_window(mut self, window: Option<usize>) -> Self {
        assert!(window != Some(0), "a zero-row window cannot serve decode");
        self.window = window;
        self
    }
}

impl core::fmt::Debug for DecodeRequest<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DecodeRequest")
            .field("cache_len", &self.cache.len())
            .field("step", &self.step)
            .field("thresholds", &self.thresholds)
            .finish_non_exhaustive()
    }
}

/// Analytic kernel statistics of one decode step over `attended` cached
/// rows (shape-derived, like [`crate::efta::analytic_stats`]): reads the
/// attended blocks once, writes one row, two rank-1 GEMMs per attended
/// column. `attended` is the resident length for full-cache decode, the
/// window span for windowed decode.
pub(crate) fn decode_stats(cache: &KvCache, attended: usize, protected: bool) -> KernelStats {
    let slots = cache.num_slots() as u64;
    let len = attended as u64;
    let blocks = attended.div_ceil(cache.block()) as u64;
    let d = cache.dim() as u64;
    let mut stats = KernelStats {
        launches: 1,
        hbm_read: slots * 2 * len * d * 2,
        hbm_written: slots * d * 2,
        tc_flops: slots * 2 * gemm_flops(1, attended, cache.dim()),
        fp32_flops: slots * 4 * len,
        sfu_ops: slots * len,
        serial_flops: 0,
    };
    if protected {
        // Like the prefill cost model (`efta::analytic_stats`), a checksum
        // operand narrower than 8 still occupies one 8-wide MMA tile on
        // tensor cores, so the modeled width floors at 8 regardless of the
        // configured stride or a ragged block's narrower fold.
        let s = cache.stride().max(8) as u64;
        // Stored-checksum GEMMs (no encode: amortised at append) plus the
        // product check and final output verification.
        stats.tc_flops += slots * 2 * 2 * gemm_flops(1, s as usize, cache.dim());
        stats.serial_flops += slots * (len + 2 * d + 4 * blocks);
        stats.hbm_read += slots * 4 * (blocks * s * d) / 2;
    }
    stats
}

/// Number of cache blocks a `vis`-row causal prefix touches.
pub(crate) fn vis_blocks(cache: &KvCache, vis: usize) -> usize {
    vis.div_ceil(cache.block())
}

/// First block a `vis`-row causal prefix attends under an optional sliding
/// window: the most recent `window` rows, rounded *down* to a block
/// boundary, so the attended block set is exactly the blocks a fresh cache
/// holding only the window would contain — this is what makes windowed
/// decode bit-identical to decoding against such a cache. Clamped to the
/// eviction frontier (evicted blocks cannot be read; storage policies must
/// keep eviction at or behind the attention window — see
/// [`KvCache::enforce_window`]).
pub(crate) fn window_start_block(cache: &KvCache, vis: usize, window: Option<usize>) -> usize {
    cache.attended_start_block_at(vis, window)
}

/// Rows attended by a `vis`-row prefix under `window` (for SNVR bounds and
/// the analytic cost model).
pub(crate) fn attended_rows(cache: &KvCache, vis: usize, window: Option<usize>) -> usize {
    vis - window_start_block(cache, vis, window) * cache.block()
}

/// Rows of block `b` visible under a `vis`-row causal prefix.
pub(crate) fn vis_block_rows(cache: &KvCache, b: usize, vis: usize) -> usize {
    cache.block_rows(b).min(vis - b * cache.block())
}

/// Exact kernel-stat census of one fused sweep tile over a `c`-row chunk
/// (the last `c` rows of `cache`): compute terms are summed **per row**
/// over that row's own attended prefix (row `r` sees `len − c + r + 1`
/// rows under its window), and cache payload + checksum read traffic is
/// charged **once per attended block** — the union of the rows' attended
/// spans — matching the fused kernel's verify-once reads. Replaces the old
/// `per_row × c` roofline, which billed every chunk row the full cache.
pub(crate) fn sweep_tile_stats(
    cache: &KvCache,
    c: usize,
    window: Option<usize>,
    protected: bool,
) -> KernelStats {
    let base = cache.len() - c;
    let slots = cache.num_slots() as u64;
    let d = cache.dim() as u64;
    let mut stats = KernelStats {
        launches: 1,
        ..Default::default()
    };
    // Shared reads: every row's attended span is a prefix of the last
    // row's, so the union of attended blocks is the last row's range.
    let vis_last = base + c;
    let b0_min = window_start_block(cache, base + 1, window);
    let union_rows = (vis_last - b0_min * cache.block()) as u64;
    let union_blocks = (vis_blocks(cache, vis_last) - b0_min) as u64;
    stats.hbm_read = slots * 2 * union_rows * d * 2;
    stats.hbm_written = slots * c as u64 * d * 2;
    if protected {
        // Checksum operands read once per attended block (see
        // `decode_stats` for the width-8 MMA tile floor).
        let s = cache.stride().max(8) as u64;
        stats.hbm_read += slots * 4 * (union_blocks * s * d) / 2;
    }
    for r in 0..c {
        let vis = base + r + 1;
        let attended = attended_rows(cache, vis, window);
        stats.tc_flops += slots * 2 * gemm_flops(1, attended, cache.dim());
        stats.fp32_flops += slots * 4 * attended as u64;
        stats.sfu_ops += slots * attended as u64;
        if protected {
            let s = cache.stride().max(8);
            let blocks_r = (vis_blocks(cache, vis) - window_start_block(cache, vis, window)) as u64;
            stats.tc_flops += slots * 2 * 2 * gemm_flops(1, s, cache.dim());
            stats.serial_flops += slots * (attended as u64 + 2 * d + 4 * blocks_r);
        }
    }
    stats
}

/// Unprotected single-query decode of one `(batch, head)` slot against the
/// first `vis` cached rows (optionally restricted to a sliding `window` of
/// the most recent rows): raw cache reads, online softmax, no checks.
///
/// `q_raw` is the unscaled `1 × dim` query row; `step` namespaces fault
/// coordinates. [`reference_decode`] calls this with `vis = cache.len()`;
/// the per-row oracle sweep calls it per chunk row with that row's causal
/// prefix. A one-row tile of [`reference_decode_tile`], so the per-row and
/// fused paths share one kernel body.
pub(crate) fn reference_decode_slot(
    cache: &KvCache,
    slot: usize,
    vis: usize,
    step: usize,
    q_raw: &MatrixF32,
    inj: &dyn FaultInjector,
    window: Option<usize>,
) -> MatrixF32 {
    reference_decode_tile(cache, slot, vis, step, q_raw, inj, window)
}

/// Unprotected multi-row decode tile of one `(batch, head)` slot: chunk
/// row `r` of the `c × dim` unscaled query chunk `q_chunk` attends the
/// causal prefix `0 .. vis0 + r` at fault-coordinate step `step0 + r` —
/// the fused form of `c` [`reference_decode_slot`] calls.
///
/// The tile iterates **block-major**: each attended cache block is read
/// once and every tile row's online-softmax update against it runs before
/// the next block is touched. Per row, the update sequence (ascending
/// block order over exactly that row's attended blocks) is unchanged, so
/// the output is bit-identical to the per-row path.
pub(crate) fn reference_decode_tile(
    cache: &KvCache,
    slot: usize,
    vis0: usize,
    step0: usize,
    q_chunk: &MatrixF32,
    inj: &dyn FaultInjector,
    window: Option<usize>,
) -> MatrixF32 {
    let d = cache.dim();
    let c = q_chunk.rows();
    let scale = cache.scale();
    // Per-row scaled query rows, hoisted out of the block loop (the old
    // per-row fan-out allocated these once per work unit).
    let q_rows: Vec<MatrixF32> = (0..c)
        .map(|r| Matrix::from_fn(1, d, |_, j| q_chunk.get(r, j) * scale))
        .collect();
    let mut states: Vec<crate::flash::OnlineState> = (0..c)
        .map(|_| crate::flash::OnlineState::new(1, d))
        .collect();
    // Row r's attended block range [b0[r], nb[r]); both bounds are
    // non-decreasing in r (later rows see more), so the union is
    // [b0[0], nb[c-1]).
    let b0: Vec<usize> = (0..c)
        .map(|r| window_start_block(cache, vis0 + r, window))
        .collect();
    let nb: Vec<usize> = (0..c).map(|r| vis_blocks(cache, vis0 + r)).collect();
    for jb in b0[0]..nb[c - 1] {
        let c0 = jb * cache.block();
        let k_full = cache.read_k_raw(slot, jb);
        let v_full = cache.read_v_raw(slot, jb);
        for r in 0..c {
            if jb < b0[r] || jb >= nb[r] {
                continue;
            }
            let (vis, step) = (vis0 + r, step0 + r);
            let rows = vis_block_rows(cache, jb, vis);
            let (kt, vt);
            let (k_blk, v_blk) = if rows < k_full.rows() {
                kt = k_full.block(0, 0, rows, d);
                vt = v_full.block(0, 0, rows, d);
                (&kt, &vt)
            } else {
                (&k_full, &v_full)
            };
            let s_blk = gemm_nt_inj(
                &q_rows[r],
                k_blk,
                &inj,
                GemmCtx::new(FaultSite::GemmIAccum, slot)
                    .at(step, c0)
                    .iter(3 * jb),
            );
            crate::flash::online_update(&mut states[r], &s_blk, v_blk);
        }
    }
    let mut out = Matrix::zeros(c, d);
    for (r, state) in states.iter_mut().enumerate() {
        crate::flash::finalize(state);
        out.row_mut(r).copy_from_slice(state.o.row(0));
    }
    out
}

/// EFTA-protected single-query decode of one slot against the first `vis`
/// cached rows, optionally restricted to a sliding `window` (the per-slot
/// body of [`efta_decode`], shared with the multi-stream sweep in
/// [`crate::serve`]).
///
/// Fully visible blocks reuse the cache's stored append-time checksums; a
/// partially visible trailing block (a chunked-prefill row's causal
/// frontier) is read through the full block's verification, truncated, and
/// its checksum operands re-encoded over the visible rows — the same
/// values the cache itself would have stored at length `vis`, so chunked
/// prefill is bit-identical to feeding the chunk token by token. Windowed
/// and front-evicted caches start the block loop at the window's first
/// block instead of 0 — the same iteration a fresh cache holding only
/// those blocks would run, so the output is bit-identical to decoding
/// against that fresh cache.
#[allow(clippy::too_many_arguments)]
pub(crate) fn efta_decode_slot(
    cache: &KvCache,
    slot: usize,
    vis: usize,
    step: usize,
    q_raw: &MatrixF32,
    inj: &dyn FaultInjector,
    thr: &Thresholds,
    opts: &EftaOptions,
    counters: &FtCounters,
    window: Option<usize>,
) -> MatrixF32 {
    efta_decode_tile(
        cache, slot, vis, step, q_raw, inj, thr, opts, counters, window,
    )
}

/// EFTA-protected multi-row decode tile of one slot: chunk row `r` of the
/// `c × dim` unscaled query chunk attends the causal prefix
/// `0 .. vis0 + r` at fault-coordinate step `step0 + r` — the fused form
/// of `c` [`efta_decode_slot`] calls, and the kernel body both share
/// (`efta_decode_slot` is the one-row tile).
///
/// **Verify-once invariant:** the tile iterates block-major, reading each
/// attended cache block through [`KvCache::verified_block`] exactly once;
/// the corrected payload, stored checksum operands, and max-norm snapshot
/// are then exposed to every tile row attending the block, and the block's
/// verification outcome lands in `counters` once — not once per attending
/// row. Rows whose causal frontier cuts the block mid-way truncate the
/// shared verified payload and re-encode checksum operands over their
/// visible rows, exactly as the per-row path does, so fused output stays
/// bit-identical.
///
/// Per row, the accumulation order over its attended blocks is unchanged
/// (ascending block index, one multi-accumulator state per row carried
/// across the shared block loop), so every row reproduces its standalone
/// decode bit for bit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn efta_decode_tile(
    cache: &KvCache,
    slot: usize,
    vis0: usize,
    step0: usize,
    q_chunk: &MatrixF32,
    inj: &dyn FaultInjector,
    thr: &Thresholds,
    opts: &EftaOptions,
    counters: &FtCounters,
    window: Option<usize>,
) -> MatrixF32 {
    let d = cache.dim();
    let c = q_chunk.rows();
    let scale = cache.scale();
    // Output-checksum width: the V column fold is over `dim`.
    let so = cache.stride().min(d);
    // Per-row scaled queries and norms, hoisted out of the block loop (the
    // old per-row fan-out allocated these once per work unit).
    let q_rows: Vec<MatrixF32> = (0..c)
        .map(|r| Matrix::from_fn(1, d, |_, j| q_chunk.get(r, j) * scale))
        .collect();
    let q_norms: Vec<f32> = q_rows
        .iter()
        .map(|q| q.row(0).iter().map(|x| x * x).sum::<f32>().sqrt())
        .collect();

    // Per-row online-softmax accumulators, carried across the shared
    // block loop (the tile's multi-accumulator inner state).
    let mut m = vec![f32::NEG_INFINITY; c];
    let mut ell = vec![0.0f32; c];
    let mut o: Vec<MatrixF32> = (0..c).map(|_| Matrix::zeros(1, d)).collect();
    let mut o_c1: Vec<MatrixF32> = (0..c).map(|_| Matrix::zeros(1, so)).collect();
    let mut o_c2: Vec<MatrixF32> = (0..c).map(|_| Matrix::zeros(1, so)).collect();
    // Row r's attended block range [b0[r], nb[r]); both bounds are
    // non-decreasing in r, so the union is [b0[0], nb[c-1]).
    let b0: Vec<usize> = (0..c)
        .map(|r| window_start_block(cache, vis0 + r, window))
        .collect();
    let nb: Vec<usize> = (0..c).map(|r| vis_blocks(cache, vis0 + r)).collect();
    let mut max_hist: Vec<Vec<f32>> = (0..c).map(|r| Vec::with_capacity(nb[r] - b0[r])).collect();
    let mut damaged = vec![false; c];

    for jb in b0[0]..nb[c - 1] {
        let c0 = jb * cache.block();
        // ---- Verified cache read: once per (tile, block) --------
        let vb = cache.verified_block(slot, jb);
        for rep in [vb.k_report, vb.v_report] {
            FtCounters::add(&counters.cache_detected, rep.detected);
            FtCounters::add(&counters.cache_corrected, rep.corrected);
            FtCounters::add(&counters.cache_uncorrectable, rep.uncorrectable);
            FtCounters::add(&counters.cache_tolerated, rep.tolerated);
        }
        let block_damaged = vb.k_report.uncorrectable + vb.v_report.uncorrectable > 0;

        for r in 0..c {
            if jb < b0[r] || jb >= nb[r] {
                continue;
            }
            if block_damaged {
                damaged[r] = true;
            }
            let (vis, step) = (vis0 + r, step0 + r);
            let q_blk = &q_rows[r];
            let rows = vis_block_rows(cache, jb, vis);
            let full = rows == vb.k.rows();
            let (kt, vt);
            let (k_blk, v_blk): (&MatrixF32, &MatrixF32) = if full {
                (&vb.k, &vb.v)
            } else {
                kt = vb.k.block(0, 0, rows, d);
                vt = vb.v.block(0, 0, rows, d);
                (&kt, &vt)
            };
            // Stored operands for fully visible blocks; a partial causal
            // frontier re-encodes over the visible rows (same loop, same
            // data → the exact operands a `vis`-row cache would store).
            let (kcs_owned, vcs_owned);
            let (kcs, vcs): (&StridedChecksums, &StridedChecksums) = if full {
                (vb.k_cs, vb.v_cs)
            } else {
                kcs_owned = encode_rows_strided(k_blk, cache.stride().min(rows), false);
                vcs_owned = encode_cols_strided(v_blk, cache.stride().min(d), false);
                (&kcs_owned, &vcs_owned)
            };
            let k_max_norm = if full {
                vb.k_max_norm
            } else {
                (0..rows)
                    .map(|kr| k_blk.row(kr).iter().map(|x| x * x).sum::<f32>().sqrt())
                    .fold(0.0f32, f32::max)
            };
            let bc = k_blk.rows();
            let sb = kcs.stride;

            // ---- GEMM I + stored-checksum GEMMs ---------------------
            let ctx = |it: usize, col_off: usize| {
                GemmCtx::new(FaultSite::GemmIAccum, slot)
                    .at(step, col_off)
                    .iter(3 * jb + it)
            };
            let mut s_blk = gemm_nt_inj(q_blk, k_blk, &inj, ctx(0, c0));
            let s_c1 = gemm_nt_inj(q_blk, &kcs.w1, &inj, ctx(1, vis + c0));
            let s_c2 = gemm_nt_inj(q_blk, &kcs.w2, &inj, ctx(2, vis + c0));

            // ---- Reduce max + SNVR restriction ----------------------
            let mut bm = s_blk
                .row(0)
                .iter()
                .cloned()
                .fold(f32::NEG_INFINITY, f32::max);
            bm = inj.corrupt_f32(FaultSite::MaxReduce, OpCoord::new(slot, step, jb, 0), bm);
            if let Restriction::Repaired { repaired } = restrict_row_max(s_blk.row(0), bm) {
                bm = repaired;
                FtCounters::add(&counters.max_restricted, 1);
            }
            // Cauchy–Schwarz plausibility bound unmasks a positive-huge
            // hijack (same extension as the prefill kernel). The K row
            // norm is snapshotted at append time, not rescanned here.
            if bm > q_norms[r] * k_max_norm * 1.05 + 1e-3 || !bm.is_finite() {
                let (mut arg, mut best) = (0usize, f32::NEG_INFINITY);
                for (j, &v) in s_blk.row(0).iter().enumerate() {
                    if v > best || !v.is_finite() {
                        best = v;
                        arg = j;
                    }
                }
                let mut acc = 0.0f32;
                for (a, b) in q_blk.row(0).iter().zip(k_blk.row(arg)) {
                    acc += a * b;
                }
                if s_blk.get(0, arg) != acc {
                    s_blk.set(0, arg, acc);
                    FtCounters::add(&counters.gemm1_corrected, 1);
                }
                bm = s_blk
                    .row(0)
                    .iter()
                    .cloned()
                    .fold(f32::NEG_INFINITY, f32::max);
                FtCounters::add(&counters.max_restricted, 1);
            }
            let m_new = m[r].max(bm);

            // ---- Subtract + EXP -------------------------------------
            let mut p: MatrixF32 = Matrix::zeros(1, bc);
            for j in 0..bc {
                let diff = inj.corrupt_f32(
                    FaultSite::Subtract,
                    OpCoord::new(slot, step, c0 + j, jb),
                    s_blk.get(0, j) - m_new,
                );
                let e = inj.corrupt_f32(
                    FaultSite::ExpUnit,
                    OpCoord::new(slot, step, c0 + j, jb),
                    diff.exp(),
                );
                p.set(0, j, e);
            }

            // ---- Product check: GEMM I ∪ subtract ∪ EXP -------------
            if opts.softmax == SoftmaxProtection::Snvr {
                let counts = residue_counts(bc, sb);
                let mut tc1 = s_c1.clone();
                transport_subtract_max(&mut tc1, &[m_new], &counts);
                let p_c1 = ft_abft::propagate::transport_exp(&tc1);
                let mismatches = verify_products(&p, &p_c1, sb, thr.exp_product);
                if !mismatches.is_empty() {
                    FtCounters::add(&counters.exp_detected, mismatches.len() as u64);
                    let classify_floor = thr.gemm.abs_floor.max(1e-2);
                    let sums1 = strided_sums(&s_blk, sb);
                    let sums2 = strided_sums_weighted(&s_blk, sb);
                    let mut linear = Vec::new();
                    let mut exp_only = Vec::new();
                    for mm in &mismatches {
                        let d1 = sums1.get(0, mm.t) - s_c1.get(0, mm.t);
                        if d1.abs() > classify_floor || !d1.is_finite() {
                            linear.push(StridedMismatch {
                                i: 0,
                                t: mm.t,
                                delta1: d1,
                                delta2: sums2.get(0, mm.t) - s_c2.get(0, mm.t),
                            });
                        } else {
                            exp_only.push(mm.t);
                        }
                    }
                    if !linear.is_empty() {
                        let rep = correct_strided(&mut s_blk, &linear, sb);
                        for loc in &rep.corrected {
                            let mut acc = 0.0f32;
                            for (a, b) in q_blk.row(0).iter().zip(k_blk.row(loc.col)) {
                                acc += a * b;
                            }
                            s_blk.set(0, loc.col, acc);
                        }
                        FtCounters::add(&counters.gemm1_detected, rep.detections as u64);
                        FtCounters::add(&counters.gemm1_corrected, rep.corrected.len() as u64);
                        if rep.uncorrectable > 0 {
                            s_blk = gemm_nt(q_blk, k_blk);
                            FtCounters::add(&counters.gemm1_recomputed, rep.uncorrectable as u64);
                        }
                        for mm in &linear {
                            let mut col = mm.t;
                            while col < bc {
                                p.set(0, col, (s_blk.get(0, col) - m_new).exp());
                                col += sb;
                            }
                        }
                    }
                    for t in exp_only {
                        let mut col = t;
                        while col < bc {
                            p.set(0, col, (s_blk.get(0, col) - m_new).exp());
                            col += sb;
                        }
                        FtCounters::add(&counters.exp_recomputed, 1);
                    }
                }
            }

            // ---- Rowsum + rescale state -----------------------------
            let factor = if m[r].is_finite() {
                (m[r] - m_new).exp()
            } else {
                0.0
            };
            let factor =
                inj.corrupt_f32(FaultSite::Rescale, OpCoord::new(slot, step, jb, 2), factor);
            let mut rs = 0.0f32;
            for &e in p.row(0) {
                rs += e;
            }
            let rs = inj.corrupt_f32(FaultSite::SumReduce, OpCoord::new(slot, step, jb, 1), rs);
            ell[r] = factor * ell[r] + rs;
            m[r] = m_new;
            max_hist[r].push(bm);

            // ---- GEMM II: data + stored-checksum operands -----------
            let p16 = p.to_f16().to_f32();
            let ctx2 = |it: usize, col_off: usize| {
                GemmCtx::new(FaultSite::GemmIiAccum, slot)
                    .at(step, col_off)
                    .iter(3 * jb + it)
            };
            let pv = gemm_nn_inj(&p16, v_blk, &inj, ctx2(0, 0));
            let pc1 = gemm_nn_inj(&p16, &vcs.w1, &inj, ctx2(1, d));
            let pc2 = gemm_nn_inj(&p16, &vcs.w2, &inj, ctx2(2, d));
            for (col, (ov, &dv)) in o[r].row_mut(0).iter_mut().zip(pv.row(0)).enumerate() {
                let scaled = inj.corrupt_f32(
                    FaultSite::Rescale,
                    OpCoord::new(slot, step, col, 4000 + jb),
                    factor * *ov,
                );
                *ov = scaled + dv;
            }
            for (ov, &dv) in o_c1[r].row_mut(0).iter_mut().zip(pc1.row(0)) {
                *ov = factor * *ov + dv;
            }
            for (ov, &dv) in o_c2[r].row_mut(0).iter_mut().zip(pc2.row(0)) {
                *ov = factor * *ov + dv;
            }
        }
    }

    let mut out = Matrix::zeros(c, d);
    for r in 0..c {
        let (vis, step) = (vis0 + r, step0 + r);
        let o = &mut o[r];
        let mut ell = ell[r];

        // ---- Post-loop SNVR rowsum restriction ----------------------
        if opts.softmax == SoftmaxProtection::Snvr {
            // The rowsum upper bound is the number of rows actually
            // attended — the window span under sliding-window decode, not
            // the full prefix.
            let n_rows = vis - b0[r] * cache.block();
            if let Restriction::Repaired { repaired } =
                restrict_rowsum(ell, &max_hist[r], m[r], n_rows)
            {
                ell = repaired;
                FtCounters::add(&counters.sum_restricted, 1);
            }
        }

        // ---- Normalise (output + checksums) -------------------------
        let inv = inj.corrupt_f32(
            FaultSite::Normalize,
            OpCoord::new(slot, step, 0, 999),
            1.0 / ell,
        );
        for (col, v) in o.row_mut(0).iter_mut().enumerate() {
            *v = inj.corrupt_f32(
                FaultSite::Normalize,
                OpCoord::new(slot, step, col, 1000),
                *v * inv,
            );
        }
        for v in o_c1[r].row_mut(0).iter_mut().chain(o_c2[r].row_mut(0)) {
            *v *= inv;
        }

        // ---- Final unified output verification ----------------------
        let sums1 = strided_sums(o, so);
        let sums2 = strided_sums_weighted(o, so);
        let mut mismatches = Vec::new();
        for t in 0..so {
            if thr.output.detects(sums1.get(0, t), o_c1[r].get(0, t)) {
                mismatches.push(StridedMismatch {
                    i: 0,
                    t,
                    delta1: sums1.get(0, t) - o_c1[r].get(0, t),
                    delta2: sums2.get(0, t) - o_c2[r].get(0, t),
                });
            }
        }
        if !mismatches.is_empty() {
            let rep = correct_strided(o, &mismatches, so);
            FtCounters::add(&counters.gemm2_detected, rep.detections as u64);
            FtCounters::add(&counters.gemm2_corrected, rep.corrected.len() as u64);
            let catastrophic = rep.corrected.iter().any(|l| {
                !l.delta.is_finite()
                    || l.delta.abs() > 1e3 * (o_c1[r].get(0, l.col % so).abs() + 1.0)
            });
            if rep.uncorrectable > 0 || catastrophic {
                FtCounters::add(&counters.gemm2_recomputed, rep.uncorrectable.max(1) as u64);
                damaged[r] = true;
            }
        }

        if damaged[r] {
            // Recomputation fallback over verified reads: clean online
            // softmax of the visible prefix (cache-uncorrectable damage
            // stays in the data, but the report carries that signal). Rare
            // path — re-reads per row rather than keeping every attended
            // block resident for the whole tile.
            let mut state = crate::flash::OnlineState::new(1, d);
            for jb in b0[r]..nb[r] {
                let rows = vis_block_rows(cache, jb, vis);
                let (mut k_blk, _) = cache.read_k_verified(slot, jb);
                let (mut v_blk, _) = cache.read_v_verified(slot, jb);
                if rows < k_blk.rows() {
                    k_blk = k_blk.block(0, 0, rows, d);
                    v_blk = v_blk.block(0, 0, rows, d);
                }
                let s_blk = gemm_nt(&q_rows[r], &k_blk);
                crate::flash::online_update(&mut state, &s_blk, &v_blk);
            }
            crate::flash::finalize(&mut state);
            *o = state.o;
        }
        out.row_mut(r).copy_from_slice(o.row(0));
    }
    out
}

/// Unprotected single-query decode: raw cache reads, online softmax, no
/// checks. The default [`try_decode`] path for backends without a protected
/// decode variant — and the baseline that *visibly corrupts* when cached
/// state is hit.
///
/// [`try_decode`]: crate::backend::AttentionBackend::try_decode
pub fn reference_decode(req: &DecodeRequest<'_>) -> Result<AttentionOutput, BackendError> {
    let cache = req.cache;
    let rows: Vec<MatrixF32> = (0..cache.num_slots())
        .into_par_iter()
        .map(|slot| {
            let q_raw = req.q.slot_flat(slot).to_f32();
            reference_decode_slot(
                cache,
                slot,
                cache.len(),
                req.step,
                &q_raw,
                req.injector,
                req.window,
            )
        })
        .collect();
    let o = Tensor4F32::from_slots(cache.batch(), cache.heads(), 1, cache.dim(), rows);
    let mut timeline = Timeline::new();
    let attended = attended_rows(cache, cache.len(), req.window);
    timeline.push("decode", decode_stats(cache, attended, false));
    Ok(AttentionOutput {
        o,
        timeline,
        report: Default::default(),
        phases: PhaseBreakdown::default(),
    })
}

/// EFTA-protected single-query decode (see the module docs for the
/// protection layout). Degenerates to [`reference_decode`] when `opts`
/// disables both GEMM and softmax protection.
pub fn efta_decode(
    req: &DecodeRequest<'_>,
    opts: &EftaOptions,
) -> Result<AttentionOutput, BackendError> {
    if opts.gemm == GemmProtection::Unprotected && opts.softmax == SoftmaxProtection::Unprotected {
        return reference_decode(req);
    }
    if !req.cache.protection().encodes_metadata() {
        // A Raw cache stores no checksum operands, so the protected tile
        // has nothing to verify against (and no GEMM checksum operands to
        // reuse): the stream opted out — read it unprotected.
        return reference_decode(req);
    }
    if opts.gemm == GemmProtection::Traditional {
        return Err(BackendError::Unsupported(
            "decode reuses the cache's strided append-time checksums; the traditional \
             element scheme has no cached operands to reuse"
                .into(),
        ));
    }
    let cache = req.cache;
    let thr = req.thresholds.unwrap_or(opts.thresholds);
    let counters = FtCounters::new();
    // Corruption permanently absorbed by an append-time re-encode leaves
    // every per-read report clean; surface the cache's sticky damage count
    // on every step so the re-prefill signal cannot be missed. The count
    // is scoped to the attended window: a mark on a block the query can no
    // longer reach cannot influence this or any future output, so it must
    // not keep tainting the stream (recovery policies key off this field).
    FtCounters::add(
        &counters.cache_uncorrectable,
        cache.poisoned_attended(req.window),
    );

    let rows: Vec<MatrixF32> = (0..cache.num_slots())
        .into_par_iter()
        .map(|slot| {
            let q_raw = req.q.slot_flat(slot).to_f32();
            efta_decode_slot(
                cache,
                slot,
                cache.len(),
                req.step,
                &q_raw,
                req.injector,
                &thr,
                opts,
                &counters,
                req.window,
            )
        })
        .collect();

    let o = Tensor4F32::from_slots(cache.batch(), cache.heads(), 1, cache.dim(), rows);
    let mut timeline = Timeline::new();
    let attended = attended_rows(cache, cache.len(), req.window);
    timeline.push("decode", decode_stats(cache, attended, true));
    Ok(AttentionOutput {
        o,
        timeline,
        report: counters.snapshot(),
        phases: PhaseBreakdown::default(),
    })
}

/// Prefill-equivalent oracle for decode tests: row `t` of causal exact
/// attention equals the decode output at step `t`.
pub fn causal_reference_rows(
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
    scale: f32,
) -> Tensor4F32 {
    let slots: Vec<MatrixF32> = (0..q.num_slots())
        .map(|i| {
            crate::reference::reference_attention_slot(
                &q.slot_flat(i).to_f32(),
                &k.slot_flat(i).to_f32(),
                &v.slot_flat(i).to_f32(),
                scale,
                true,
            )
        })
        .collect();
    Tensor4F32::from_slots(q.batch(), q.heads(), q.seq(), q.dim(), slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{AttentionBackend, BackendKind};
    use ft_num::rng::normal_tensor_f16;
    use ft_sim::SeuInjector;

    fn workload(seq: usize, dim: usize, seed: u64) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
        let q = normal_tensor_f16(seed, 1, 2, seq, dim, 0.6);
        let k = normal_tensor_f16(seed + 1, 1, 2, seq, dim, 0.6);
        let v = normal_tensor_f16(seed + 2, 1, 2, seq, dim, 0.8);
        (q, k, v)
    }

    fn fill(cache: &mut KvCache, k: &Tensor4F16, v: &Tensor4F16, upto: usize) {
        for t in cache.len()..upto {
            let k1 = Tensor4F16::from_fn(1, 2, 1, k.dim(), |b, h, _, c| k.slot(b, h).get(t, c));
            let v1 = Tensor4F16::from_fn(1, 2, 1, v.dim(), |b, h, _, c| v.slot(b, h).get(t, c));
            cache.append(&k1, &v1);
        }
    }

    fn q_row(q: &Tensor4F16, t: usize) -> Tensor4F16 {
        Tensor4F16::from_fn(1, 2, 1, q.dim(), |b, h, _, c| q.slot(b, h).get(t, c))
    }

    #[test]
    fn decode_steps_match_causal_prefill_rows() {
        let (q, k, v) = workload(21, 16, 70);
        let oracle = causal_reference_rows(&q, &k, &v, 0.25);
        let mut cache = KvCache::new(1, 2, 16, 8, 8, 0.25);
        for t in 0..21 {
            fill(&mut cache, &k, &v, t + 1);
            let qt = q_row(&q, t);
            let req = DecodeRequest::new(&cache, &qt).at_step(t);
            let reference = reference_decode(&req).unwrap();
            let efta = efta_decode(&req, &EftaOptions::optimized()).unwrap();
            assert!(efta.report.clean(), "step {t}: {:?}", efta.report);
            for slot in 0..2 {
                for c in 0..16 {
                    let want = oracle.slot_flat(slot).get(t, c);
                    let got_ref = reference.o.slot_flat(slot).get(0, c);
                    let got_efta = efta.o.slot_flat(slot).get(0, c);
                    assert!(
                        (got_ref - want).abs() < 1e-4,
                        "ref step {t} slot {slot} col {c}: {got_ref} vs {want}"
                    );
                    assert!(
                        (got_efta - want).abs() < 5e-3,
                        "efta step {t} slot {slot} col {c}: {got_efta} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn limited_visibility_matches_shorter_cache() {
        // The serving sweep's causal-prefix path: decoding with `vis = L`
        // against a longer cache must be bit-identical to decoding against
        // a cache that simply stops at L rows — including mid-block
        // prefixes, whose checksum operands are re-encoded on the fly.
        let (q, k, v) = workload(21, 16, 75);
        let mut long = KvCache::new(1, 2, 16, 8, 8, 0.25);
        fill(&mut long, &k, &v, 21);
        for vis in [3usize, 8, 11, 16, 21] {
            let mut short = KvCache::new(1, 2, 16, 8, 8, 0.25);
            fill(&mut short, &k, &v, vis);
            let qt = q_row(&q, vis - 1);
            let req = DecodeRequest::new(&short, &qt).at_step(vis - 1);
            let want_ref = reference_decode(&req).unwrap();
            let want_efta = efta_decode(&req, &EftaOptions::optimized()).unwrap();
            let counters = FtCounters::new();
            for slot in 0..2 {
                let q_raw = qt.slot_flat(slot).to_f32();
                let got_ref =
                    reference_decode_slot(&long, slot, vis, vis - 1, &q_raw, &NoFaults, None);
                assert_eq!(
                    got_ref.max_abs_diff(want_ref.o.slot_flat(slot)),
                    0.0,
                    "vis {vis} slot {slot}: limited reference decode drifted"
                );
                let got_efta = efta_decode_slot(
                    &long,
                    slot,
                    vis,
                    vis - 1,
                    &q_raw,
                    &NoFaults,
                    &Thresholds::calibrated(),
                    &EftaOptions::optimized(),
                    &counters,
                    None,
                );
                assert_eq!(
                    got_efta.max_abs_diff(want_efta.o.slot_flat(slot)),
                    0.0,
                    "vis {vis} slot {slot}: limited EFTA decode drifted"
                );
            }
            assert!(counters.snapshot().clean());
        }
    }

    #[test]
    fn gemm_seu_in_decode_is_detected_and_repaired() {
        let (q, k, v) = workload(24, 16, 71);
        let mut cache = KvCache::new(1, 2, 16, 8, 8, 0.25);
        fill(&mut cache, &k, &v, 24);
        let qt = q_row(&q, 23);
        let req = DecodeRequest::new(&cache, &qt).at_step(23);
        let clean = efta_decode(&req, &EftaOptions::optimized()).unwrap();
        // Exponent flip in the GEMM I chain of cached column 10 (block 1).
        let inj = SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(1, 23, 10, 3), 30)
            .at_chain_step(8);
        let req = req.with_injector(&inj);
        let out = efta_decode(&req, &EftaOptions::optimized()).unwrap();
        assert_eq!(inj.fired(), 1);
        assert!(out.report.total_detected() > 0, "{:?}", out.report);
        assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
    }

    #[test]
    fn cache_resident_seu_corrected_by_efta_but_corrupts_reference() {
        let (q, k, v) = workload(20, 16, 72);
        let mut cache = KvCache::new(1, 2, 16, 8, 8, 0.25);
        fill(&mut cache, &k, &v, 20);
        let qt = q_row(&q, 19);
        let clean_req = DecodeRequest::new(&cache, &qt).at_step(19);
        let clean = efta_decode(&clean_req, &EftaOptions::optimized()).unwrap();

        let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 7, 3, 0), 14);
        cache.expose(&inj, 0);
        assert_eq!(inj.fired(), 1);
        let req = DecodeRequest::new(&cache, &qt).at_step(19);
        let protected = efta_decode(&req, &EftaOptions::optimized()).unwrap();
        assert!(
            protected.report.cache_detected > 0,
            "{:?}",
            protected.report
        );
        assert!(protected.report.cache_corrected > 0);
        assert!(protected.o.max_abs_diff(&clean.o) < 5e-2);

        let bare = reference_decode(&req).unwrap();
        assert!(bare.report.clean());
        assert!(
            bare.o.max_abs_diff(&clean.o) > 1e-2,
            "unprotected decode must let cached-state corruption through: {}",
            bare.o.max_abs_diff(&clean.o)
        );
    }

    #[test]
    fn unprotected_options_fall_back_to_reference() {
        let (q, k, v) = workload(12, 16, 73);
        let mut cache = KvCache::new(1, 2, 16, 8, 8, 0.25);
        fill(&mut cache, &k, &v, 12);
        let qt = q_row(&q, 11);
        let req = DecodeRequest::new(&cache, &qt).at_step(11);
        let a = efta_decode(&req, &EftaOptions::unprotected()).unwrap();
        let b = reference_decode(&req).unwrap();
        assert_eq!(a.o.max_abs_diff(&b.o), 0.0);
    }

    #[test]
    fn every_backend_kind_decodes_through_the_trait() {
        let (q, k, v) = workload(10, 16, 74);
        let mut cache = KvCache::new(1, 2, 16, 8, 8, 0.25);
        fill(&mut cache, &k, &v, 10);
        let qt = q_row(&q, 9);
        let req = DecodeRequest::new(&cache, &qt).at_step(9);
        let oracle = reference_decode(&req).unwrap();
        for kind in BackendKind::all() {
            let out = kind
                .try_decode(&req)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(
                out.o.max_abs_diff(&oracle.o) < 5e-3,
                "{kind}: {}",
                out.o.max_abs_diff(&oracle.o)
            );
        }
    }
}
