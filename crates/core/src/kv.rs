//! Checksum-protected KV cache for autoregressive decode.
//!
//! Serving traffic is dominated by incremental decode over cached K/V, a
//! path whose state is *long-lived*: a soft error landing in a cached key
//! between steps silently poisons every subsequent token. The paper's EFTA
//! kernels protect state only while it flows through the fused prefill
//! kernel; this module extends the same strided tensor-checksum algebra
//! (§3.3, Eqs. 12–15) to cache residency:
//!
//! * every K block carries **row-folded** strided checksums
//!   (`w1[t][c] = Σ_l K[t + s·l][c]`) — a corrupted `K[r][c]` perturbs
//!   exactly lane `(r mod s, c)`, and the weighted/plain delta ratio
//!   locates the group, hence the row;
//! * every V block carries **column-folded** checksums
//!   (`w1[r][t] = Σ_l V[r][t + s·l]`) — a corrupted `V[r][c]` is located
//!   the same way along the row;
//! * the *same* stored operand pairs double as the checksum GEMM operands
//!   of the EFTA decode kernel (`S_c1 = q·w1ᵀ`, `O_c1 = p·w1`), so the
//!   per-block encode cost the prefill kernel pays on every call is paid
//!   **once at append time** and amortised over every future decode step.
//!
//! Checksums are stored in FP32 and treated as protected metadata (they are
//! tiny compared to the payload — see [`KvCache::checksum_bytes`] — and a
//! real deployment would keep them in ECC-scrubbed memory); the fault
//! surface is the FP16 payload, targeted through [`KvCache::expose`] with
//! [`FaultSite::KvCache`].
//!
//! # Eviction
//!
//! The per-block layout exists so bounded-memory serving is cheap:
//! [`KvCache::evict_front`] drops whole blocks from the front of every
//! slot — checksums, max-norm snapshot, and sticky poison marks travel
//! with each block, so eviction is O(1) bookkeeping per block with **no
//! re-encode**. Row and block coordinates stay *global* (position-stable):
//! after evicting one 64-row block, block 1 is still block 1 and row 70 is
//! still row 70; only blocks `< start_block()` are gone, and every
//! accessor hard-asserts residency. [`KvCache::enforce_window`] is the
//! sliding-window policy on top: keep the most recent `window` rows
//! resident (rounded up to a block boundary).
//!
//! # Rollback
//!
//! [`KvCache::checkpoint`] / [`KvCache::truncate_to`] mirror the same
//! machinery at the *tail*: a [`CacheMark`] bookmarks a logical length,
//! and truncating back to it drops whole tail blocks O(1) (checksums,
//! max-norm, and poison marks retire with each dropped block, exactly as
//! in front eviction) and re-encodes the one ragged boundary block over
//! its surviving rows — the append path's still-filling re-encode run in
//! reverse, verify-and-heal first so damage is never baked into the fresh
//! checksums. The re-encoded block is bit-identical to what a cache that
//! never grew past the mark would store, which is what lets speculative
//! decode append provisional rows, verify them in one fused sweep, and
//! roll back the rejected suffix without perturbing later tokens. A mark
//! behind the eviction frontier is rejected (hard assert): those rows are
//! gone and no truncation can restore them.
//!
//! Append, corrupt, and read back — the residency round-trip:
//!
//! ```
//! use ft_core::kv::KvCache;
//! use ft_num::rng::normal_tensor_f16;
//! use ft_sim::{FaultSite, OpCoord, SeuInjector};
//!
//! let mut cache = KvCache::new(1, 2, 16, 8, 8, 0.25);
//! for t in 0..10 {
//!     let k = normal_tensor_f16(100 + t, 1, 2, 1, 16, 0.6);
//!     let v = normal_tensor_f16(200 + t, 1, 2, 1, 16, 0.8);
//!     assert!(cache.append(&k, &v).clean());
//! }
//! // An SEU lands in stored K[7][3] of slot 0 between decode steps…
//! let seu = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 7, 3, 0), 14);
//! cache.expose(&seu, 0);
//! // …and the verified read locates and corrects it.
//! let (_, report) = cache.read_k_verified(0, 0);
//! assert_eq!((report.detected, report.corrected, report.uncorrectable), (1, 1, 0));
//! ```

use crate::protect::ProtectionLevel;
use ft_abft::strided::{encode_cols_strided, encode_rows_strided, StridedChecksums};
use ft_num::{MatrixF16, MatrixF32, Tensor4F16};
use ft_sim::{FaultInjector, FaultSite, OpCoord};

/// Verification criterion for cache reads: the stored checksum and the
/// re-folded sum are computed by the *same* loop over the same f32 values,
/// so a clean block reproduces them bit-exactly — any discrepancy above
/// f32 noise is a corruption. (Contrast the GEMM checks, whose FP16
/// tensor-core noise needs calibrated thresholds.)
const READ_CHECK_FLOOR: f32 = 1e-6;

/// One cached block: up to `block` rows of K and V plus their checksums.
#[derive(Clone, Debug)]
struct KvBlock {
    /// Cached key rows (FP16 payload, the fault surface).
    k: MatrixF16,
    /// Cached value rows.
    v: MatrixF16,
    /// Row-folded checksums of `k` (shape `s × dim`): storage integrity
    /// reference *and* GEMM I checksum operands.
    k_cs: StridedChecksums,
    /// Column-folded checksums of `v` (shape `rows × s`): storage integrity
    /// reference *and* GEMM II checksum operands.
    v_cs: StridedChecksums,
    /// Largest Euclidean row norm of `k`, snapshotted at encode time —
    /// the Cauchy–Schwarz bound the EFTA decode kernel uses to unmask
    /// max hijacks, amortised here like the checksum operands instead of
    /// rescanned every step.
    k_max_norm: f32,
    /// Sticky unlocatable-damage count attributed to *this* block (see
    /// [`KvCache::poisoned`]). Travels with the block through eviction, so
    /// evicting a damaged block retires its damage signal along with its
    /// payload.
    poisoned: u64,
}

/// Zero-size checksum operands for [`ProtectionLevel::Raw`] blocks: no
/// metadata is stored, so `checksum_bytes()` naturally reports 0, and the
/// verify paths (which a `Raw` cache never takes) have nothing to compare.
fn empty_checksums() -> StridedChecksums {
    StridedChecksums {
        w1: MatrixF32::zeros(0, 0),
        w2: MatrixF32::zeros(0, 0),
        stride: 1,
        groups: 0,
    }
}

impl KvBlock {
    fn encode(k: &MatrixF16, v: &MatrixF16, stride: usize) -> Self {
        let kf = k.to_f32();
        let vf = v.to_f32();
        // Row-fold stride adapts to ragged (still-filling) blocks; the
        // column fold is over `dim`, which never changes.
        let sk = stride.min(kf.rows());
        let sv = stride.min(vf.cols());
        let k_max_norm = (0..kf.rows())
            .map(|r| kf.row(r).iter().map(|x| x * x).sum::<f32>().sqrt())
            .fold(0.0f32, f32::max);
        KvBlock {
            k_cs: encode_rows_strided(&kf, sk, false),
            v_cs: encode_cols_strided(&vf, sv, false),
            k: k.clone(),
            v: v.clone(),
            k_max_norm,
            poisoned: 0,
        }
    }

    /// An unprotected block: payload only, no checksums or max-norm
    /// snapshot ([`ProtectionLevel::Raw`]).
    fn encode_raw(k: &MatrixF16, v: &MatrixF16) -> Self {
        KvBlock {
            k_cs: empty_checksums(),
            v_cs: empty_checksums(),
            k: k.clone(),
            v: v.clone(),
            k_max_norm: 0.0,
            poisoned: 0,
        }
    }

    /// Extend a still-filling block by one row *without* re-encoding from
    /// the stored payload ([`ProtectionLevel::Lazy`]): the new row's
    /// contribution is folded into the existing checksum operands with the
    /// exact accumulation order a full re-encode over clean rows would
    /// use, so the operands stay bit-identical to `Full`'s — but stored
    /// rows are never read back, so corruption already resident in the
    /// block is neither healed nor laundered: it stays detectable and is
    /// caught at the next attended (verified) read.
    fn extend_lazy(&mut self, k1: &MatrixF16, v1: &MatrixF16, stride: usize) {
        let rows = self.k.rows();
        let kx = k1.to_f32();
        let vx = v1.to_f32();
        if rows < stride {
            // Sub-stride block: the adaptive row-fold width equals the row
            // count, so both old and new operands are identity copies of
            // the (clean-at-encode-time) rows — extend by stacking.
            self.k_cs = StridedChecksums {
                w1: MatrixF32::vstack(&[&self.k_cs.w1, &kx]),
                w2: MatrixF32::vstack(&[&self.k_cs.w2, &kx]),
                stride: rows + 1,
                groups: 1,
            };
        } else {
            // Full-width fold: the new (last) row lands in lane
            // `rows % stride`, group `rows / stride`, and the full encode
            // would add its contribution last — same order, same bits.
            let (t, l) = (rows % stride, rows / stride);
            for c in 0..kx.cols() {
                let x = kx.get(0, c);
                self.k_cs.w1.set(t, c, self.k_cs.w1.get(t, c) + x);
                self.k_cs
                    .w2
                    .set(t, c, self.k_cs.w2.get(t, c) + (l + 1) as f32 * x);
            }
            self.k_cs.groups = (rows + 1).div_ceil(stride);
        }
        // The column fold gives every payload row its own checksum row, so
        // appending is a per-row encode of just the new row.
        let row_cs = encode_cols_strided(&vx, self.v_cs.stride, false);
        self.v_cs.w1 = MatrixF32::vstack(&[&self.v_cs.w1, &row_cs.w1]);
        self.v_cs.w2 = MatrixF32::vstack(&[&self.v_cs.w2, &row_cs.w2]);
        let norm = kx.row(0).iter().map(|x| x * x).sum::<f32>().sqrt();
        self.k_max_norm = self.k_max_norm.max(norm);
        self.k = MatrixF16::vstack(&[&self.k, k1]);
        self.v = MatrixF16::vstack(&[&self.v, v1]);
    }
}

/// Outcome of verified cache reads (and scrubs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KvReadReport {
    /// Checksum lanes that flagged a mismatch.
    pub detected: u64,
    /// Elements located and corrected.
    pub corrected: u64,
    /// Mismatches that could not be located (multi-error aliasing in one
    /// lane). The cached data cannot be recomputed — callers must treat the
    /// sequence as damaged (re-prefill).
    pub uncorrectable: u64,
    /// Residuals above the read-check floor but within an
    /// [`Approximate`](crate::protect::ProtectionLevel::Approximate)
    /// stream's tolerance: absorbed uncorrected by policy. Counted for the
    /// ledger, but deliberate — does not dirty
    /// [`clean`](KvReadReport::clean) and never poisons.
    pub tolerated: u64,
}

impl KvReadReport {
    /// Field-wise sum.
    pub fn merged(&self, other: &KvReadReport) -> KvReadReport {
        KvReadReport {
            detected: self.detected + other.detected,
            corrected: self.corrected + other.corrected,
            uncorrectable: self.uncorrectable + other.uncorrectable,
            tolerated: self.tolerated + other.tolerated,
        }
    }

    /// True when nothing flagged.
    pub fn clean(&self) -> bool {
        self.detected == 0
    }
}

/// Byte-level cache footprint split into FP16 payload and FP32 protection
/// metadata (see [`KvCache::size_breakdown`]). Metadata rivals the payload
/// at small head dims — the overhead side of the graded-protection
/// frontier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SizeBreakdown {
    /// FP16 bytes of resident K/V payload.
    pub payload_bytes: u64,
    /// FP32 bytes of strided checksum operands (both families).
    pub checksum_bytes: u64,
    /// FP32 bytes of per-block max-norm snapshots.
    pub max_norm_bytes: u64,
}

impl SizeBreakdown {
    /// All protection metadata bytes (checksums + max-norms).
    pub fn metadata_bytes(&self) -> u64 {
        self.checksum_bytes + self.max_norm_bytes
    }

    /// Payload plus metadata.
    pub fn total_bytes(&self) -> u64 {
        self.payload_bytes + self.metadata_bytes()
    }

    /// Field-wise sum (multi-layer / multi-cache aggregation).
    pub fn merged(&self, other: &SizeBreakdown) -> SizeBreakdown {
        SizeBreakdown {
            payload_bytes: self.payload_bytes + other.payload_bytes,
            checksum_bytes: self.checksum_bytes + other.checksum_bytes,
            max_norm_bytes: self.max_norm_bytes + other.max_norm_bytes,
        }
    }
}

/// One cache block read through verification **once** and shared by every
/// chunk row of a sweep tile (see [`KvCache::verified_block`]): corrected
/// f32 payload plus borrowed checksum operands, so the tile's checksum
/// GEMMs reuse the stored append-time encodes without re-deriving them
/// per row.
#[derive(Debug)]
pub struct VerifiedBlock<'a> {
    /// Verified (located-and-corrected) f32 copy of the block's K rows.
    pub k: MatrixF32,
    /// Verified f32 copy of the block's V rows.
    pub v: MatrixF32,
    /// Stored append-time K checksum operands (the GEMM I checksum
    /// operands for fully visible blocks).
    pub k_cs: &'a StridedChecksums,
    /// Stored append-time V checksum operands (GEMM II).
    pub v_cs: &'a StridedChecksums,
    /// Largest Euclidean K row norm, snapshotted at append time (the
    /// Cauchy–Schwarz max-plausibility bound).
    pub k_max_norm: f32,
    /// K verification outcome — to be attributed once per sweep.
    pub k_report: KvReadReport,
    /// V verification outcome — to be attributed once per sweep.
    pub v_report: KvReadReport,
}

/// Position bookmark into a [`KvCache`]: the logical row count to restore
/// with [`KvCache::truncate_to`]. Marks use *logical* (position-stable)
/// coordinates, so they stay meaningful across front eviction — but a mark
/// whose rows have since been evicted is dead, and `truncate_to` rejects
/// it with a hard assert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheMark {
    len: usize,
}

impl CacheMark {
    /// Mark at an explicit logical row count. [`KvCache::checkpoint`] is
    /// the usual constructor; this one lets recovery policies aim at a
    /// computed boundary (e.g. the first row of the first poisoned
    /// attended block).
    pub fn at(len: usize) -> Self {
        CacheMark { len }
    }

    /// The logical row count this mark restores.
    pub fn position(&self) -> usize {
        self.len
    }

    /// A mark `n` rows past this one — how a speculative verifier commits
    /// an accepted prefix: checkpoint before drafting, then truncate to
    /// `mark.advanced(accepted)` to keep exactly the verified rows.
    pub fn advanced(&self, n: usize) -> Self {
        CacheMark { len: self.len + n }
    }
}

/// Checksum-protected per-(batch, head) K/V store for incremental decode.
///
/// Rows are appended one token at a time (or several for chunked prefill);
/// storage is organised in blocks of `block` rows so the decode kernels
/// iterate it exactly like the prefill kernels iterate their operands.
#[derive(Clone, Debug)]
pub struct KvCache {
    batch: usize,
    heads: usize,
    dim: usize,
    block: usize,
    stride: usize,
    scale: f32,
    /// Logical tokens appended per slot — *including* evicted rows, so
    /// token positions stay stable across eviction.
    len: usize,
    /// Rows evicted from the front of every slot (always a multiple of
    /// `block`): the global row index of the first resident row.
    start: usize,
    /// `batch × heads` slots, each the list of *resident* blocks (global
    /// blocks `start_block()..num_blocks()`).
    slots: Vec<Vec<KvBlock>>,
    /// Graded protection policy applied to every encode/verify on this
    /// cache (set at creation; see [`ProtectionLevel`]).
    level: ProtectionLevel,
}

impl KvCache {
    /// Empty cache for `batch × heads` slots of `dim`-wide rows, tiled in
    /// `block`-row blocks with checksum stride `stride` and score scale
    /// `scale` (conventionally `1/sqrt(dim)`).
    pub fn new(
        batch: usize,
        heads: usize,
        dim: usize,
        block: usize,
        stride: usize,
        scale: f32,
    ) -> Self {
        assert!(block > 0 && stride > 0 && dim > 0);
        KvCache {
            batch,
            heads,
            dim,
            block,
            stride,
            scale,
            len: 0,
            start: 0,
            slots: vec![Vec::new(); batch * heads],
            level: ProtectionLevel::Full,
        }
    }

    /// Cache for `batch × heads` slots at head dimension `dim` with the
    /// paper's defaults: 64-row blocks (the CTA tile), stride-8 checksums,
    /// `1/sqrt(dim)` score scale. The cache grows dynamically.
    pub fn for_geometry(batch: usize, heads: usize, dim: usize) -> Self {
        Self::new(
            batch,
            heads,
            dim,
            64,
            ft_abft::strided::DEFAULT_STRIDE,
            1.0 / (dim as f32).sqrt(),
        )
    }

    /// Logical tokens appended per slot, *including* evicted rows — the
    /// next token's position. The resident row count is
    /// [`resident_len`](KvCache::resident_len).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Rows evicted from the front of every slot (a multiple of the block
    /// size; the global row index of the first resident row).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Global index of the first resident block.
    pub fn start_block(&self) -> usize {
        self.start / self.block
    }

    /// Rows currently resident per slot (`len − start`).
    pub fn resident_len(&self) -> usize {
        self.len - self.start
    }

    /// Blocks currently resident per slot.
    pub fn resident_blocks(&self) -> usize {
        self.num_blocks() - self.start_block()
    }

    /// True before the first append.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Head dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Block size (rows per block).
    pub fn block(&self) -> usize {
        self.block
    }

    /// Checksum stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Score scale applied to queries by the decode kernels.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// This cache's graded protection level.
    pub fn protection(&self) -> ProtectionLevel {
        self.level
    }

    /// Set the protection level. Only meaningful on an *empty* cache
    /// (hard assert): the level governs what metadata each block encodes,
    /// so flipping it mid-life would leave blocks inconsistent with the
    /// policy. Streams apply their level at cache creation (admission,
    /// re-prefill recovery, migration re-adoption).
    pub fn set_protection(&mut self, level: ProtectionLevel) {
        assert!(
            self.is_empty(),
            "protection level must be set before the first append"
        );
        self.level = level;
    }

    /// Builder-style [`set_protection`](KvCache::set_protection).
    pub fn with_protection(mut self, level: ProtectionLevel) -> Self {
        self.set_protection(level);
        self
    }

    /// Number of `(batch, head)` slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total number of logical blocks per slot (evicted blocks included —
    /// block indices are global and position-stable; only
    /// `start_block()..num_blocks()` are resident).
    pub fn num_blocks(&self) -> usize {
        self.len.div_ceil(self.block)
    }

    /// Storage index of global block `b`, hard-asserting residency. Every
    /// read path funnels through here: with eviction shifting block
    /// indexing, a silently-wrong block would corrupt decode output, so
    /// the bound is a release-mode assert, not a `debug_assert`.
    fn resident_index(&self, b: usize) -> usize {
        assert!(
            b >= self.start_block() && b < self.num_blocks(),
            "block {b} is not resident (resident blocks: {}..{})",
            self.start_block(),
            self.num_blocks(),
        );
        b - self.start_block()
    }

    /// Rows held by global block `b` (the last block may be ragged).
    /// Hard-asserts that `b` is resident.
    pub fn block_rows(&self, b: usize) -> usize {
        self.resident_index(b); // residency assert
        if b + 1 == self.num_blocks() && !self.len.is_multiple_of(self.block) {
            self.len % self.block
        } else {
            self.block
        }
    }

    /// FP16 bytes of *resident* cached payload (evicted rows are freed).
    pub fn size_bytes(&self) -> u64 {
        2 * (self.num_slots() * self.resident_len() * self.dim * 2) as u64
    }

    /// FP32 bytes of checksum metadata (the protection overhead).
    /// Zero for a [`Raw`](ProtectionLevel::Raw) cache, which stores none.
    pub fn checksum_bytes(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|b| {
                4 * (b.k_cs.w1.len() + b.k_cs.w2.len() + b.v_cs.w1.len() + b.v_cs.w2.len()) as u64
            })
            .sum()
    }

    /// Byte-level footprint split into FP16 payload vs FP32 protection
    /// metadata (checksums + the per-block max-norm snapshot) — what the
    /// graded-protection frontier trades against resilience. Payload is
    /// [`size_bytes`](KvCache::size_bytes); metadata is zero for `Raw`.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        let max_norm_bytes = if self.level.encodes_metadata() {
            4 * self.slots.iter().map(|b| b.len() as u64).sum::<u64>()
        } else {
            0
        };
        SizeBreakdown {
            payload_bytes: self.size_bytes(),
            checksum_bytes: self.checksum_bytes(),
            max_norm_bytes,
        }
    }

    /// Append `n` new token rows per slot (`k`/`v` are
    /// `batch × heads × n × dim`; decode appends `n = 1`). The trailing
    /// (possibly ragged) block's checksums are re-encoded — *after* the
    /// stored rows are verified against the old checksums and healed, so a
    /// corruption that landed in the still-filling block is repaired rather
    /// than silently baked into the fresh encoding. Returns the integrity
    /// report of that pre-append verification.
    pub fn append(&mut self, k: &Tensor4F16, v: &Tensor4F16) -> KvReadReport {
        for (name, t) in [("k", k), ("v", v)] {
            assert_eq!(
                (t.batch(), t.heads(), t.dim()),
                (self.batch, self.heads, self.dim),
                "{name} rows do not match the cache geometry",
            );
        }
        let n = k.seq();
        assert_eq!(v.seq(), n, "k/v row counts differ");
        let mut report = KvReadReport::default();
        let (level, tol) = (self.level, self.level.tolerance());
        for slot in 0..self.num_slots() {
            let km = k.slot_flat(slot);
            let vm = v.slot_flat(slot);
            for r in 0..n {
                let row = self.len + r;
                let (blocks, block, stride) = (&mut self.slots[slot], self.block, self.stride);
                let k1 = km.block(r, 0, 1, self.dim);
                let v1 = vm.block(r, 0, 1, self.dim);
                if row.is_multiple_of(block) {
                    // Open a fresh block with this single row.
                    blocks.push(if level.encodes_metadata() {
                        KvBlock::encode(&k1, &v1, stride)
                    } else {
                        KvBlock::encode_raw(&k1, &v1)
                    });
                } else if !level.encodes_metadata() {
                    // Raw: extend the payload, no metadata to maintain.
                    let last = blocks.last_mut().expect("non-empty trailing block");
                    last.k = MatrixF16::vstack(&[&last.k, &k1]);
                    last.v = MatrixF16::vstack(&[&last.v, &v1]);
                } else if level.defers_append_heal() {
                    // Lazy: fold the new row into the stored operands
                    // without reading the payload back — the heal this
                    // skips is deferred to the next attended read.
                    let last = blocks.last_mut().expect("non-empty trailing block");
                    last.extend_lazy(&k1, &v1, stride);
                } else {
                    let last = blocks.last_mut().expect("non-empty trailing block");
                    let mut kf = last.k.to_f32();
                    let mut vf = last.v.to_f32();
                    let heal = verify_rows(&mut kf, &last.k_cs, tol)
                        .merged(&verify_cols(&mut vf, &last.v_cs, tol));
                    report = report.merged(&heal);
                    let k_new = MatrixF16::vstack(&[&kf.to_f16(), &k1]);
                    let v_new = MatrixF16::vstack(&[&vf.to_f16(), &v1]);
                    // Re-encoding stamps clean checksums over rows the
                    // verification could not restore — fold that into the
                    // block's sticky poison mark before the evidence is
                    // destroyed (count once, at launder time).
                    let poisoned = last.poisoned + heal.uncorrectable;
                    *last = KvBlock::encode(&k_new, &v_new, stride);
                    last.poisoned = poisoned;
                }
            }
        }
        self.len += n;
        report
    }

    /// Sticky count of unlocatable corruption events among *resident*
    /// blocks, absorbed by checksum re-encodes (append heals over a ragged
    /// block, scrubs over unrepairable damage): once a re-encode stamps
    /// clean checksums over unrepairable rows, per-read reports look clean
    /// while the payload is wrong, and this counter is the only surviving
    /// damage signal — the EFTA decode path folds it into every step's
    /// `cache_uncorrectable` so it cannot be missed. Each physical event
    /// is counted exactly once, at the moment its checksum evidence is
    /// destroyed. Poison marks travel with their block:
    /// [`evict_front`](KvCache::evict_front) retires a damaged block's
    /// count together with its payload (damage outside the attended window
    /// no longer taints the stream).
    pub fn poisoned(&self) -> u64 {
        self.slots.iter().flatten().map(|b| b.poisoned).sum()
    }

    /// First block a `vis`-row causal prefix attends under an optional
    /// sliding window: the most recent `window` rows, rounded *down* to a
    /// block boundary (the attended block set is exactly what a fresh
    /// cache holding only the window would contain), clamped to the
    /// eviction frontier. This is the iteration origin of every windowed
    /// decode kernel — exposed so storage policies and recovery policies
    /// reason about the *same* attended set the numerics use.
    pub fn attended_start_block_at(&self, vis: usize, window: Option<usize>) -> usize {
        let ws = match window {
            Some(w) if vis > w => (vis - w) / self.block,
            _ => 0,
        };
        ws.max(self.start_block())
    }

    /// Sticky unrepairable-damage count restricted to the blocks the
    /// *next* decode step would attend under `window` — the window-scoped
    /// variant of [`poisoned`](KvCache::poisoned) (`poisoned_attended(None)`
    /// is `poisoned()` exactly). This is the re-prefill trigger of the
    /// serving engine's recovery policy: damage in a resident block that
    /// has already slid behind the attention window can never influence a
    /// future token, so it must not trigger (and will be retired outright
    /// once [`enforce_window`](KvCache::enforce_window) evicts the block,
    /// marks travelling with it).
    pub fn poisoned_attended(&self, window: Option<usize>) -> u64 {
        let b0 = self.attended_start_block_at(self.len, window);
        let start = self.start_block();
        self.slots
            .iter()
            .flat_map(|blocks| {
                blocks
                    .iter()
                    .enumerate()
                    .filter(move |(bi, _)| start + bi >= b0)
                    .map(|(_, b)| b.poisoned)
            })
            .sum()
    }

    /// Sticky poison level of resident global block `b`, summed across
    /// slots — the block-granular query a rollback planner uses to prove
    /// that every block a truncated suffix will re-attend is clean (see
    /// [`truncate_to`](KvCache::truncate_to)). Hard-asserts residency,
    /// like every block-indexed read.
    pub fn block_poisoned(&self, b: usize) -> u64 {
        let i = self.resident_index(b);
        self.slots.iter().map(|blocks| blocks[i].poisoned).sum()
    }

    /// Drop the `n_blocks` oldest resident blocks from the front of every
    /// slot — O(1) bookkeeping per block: checksums, the max-norm
    /// snapshot, and sticky poison marks travel with each block, nothing
    /// is re-encoded. The trailing block is never evicted (decode always
    /// attends the newest row), so the request is clamped to
    /// `resident_blocks() − 1`; returns the number of blocks actually
    /// evicted. Global row/block coordinates are position-stable: block
    /// `b` keeps its index, only `start()`/`start_block()` advance.
    pub fn evict_front(&mut self, n_blocks: usize) -> usize {
        let n = n_blocks.min(self.resident_blocks().saturating_sub(1));
        if n == 0 {
            return 0;
        }
        for blocks in &mut self.slots {
            blocks.drain(..n);
        }
        self.start += n * self.block;
        n
    }

    /// Sliding-window storage policy: evict whole blocks from the front
    /// until at most `window` rows — rounded up to a block boundary —
    /// remain resident. Returns the number of blocks evicted. Callers that
    /// *attend* a window (the decode kernels take the window as a per-row
    /// knob) must enforce storage **before** appending new rows, so a
    /// chunk's interior rows still find every block their own causal
    /// window reaches back to.
    pub fn enforce_window(&mut self, window: usize) -> usize {
        assert!(window > 0, "a zero-row window cannot serve decode");
        let resident = self.resident_len();
        if resident <= window {
            return 0;
        }
        self.evict_front((resident - window) / self.block)
    }

    /// Bookmark the current logical length for a later
    /// [`truncate_to`](KvCache::truncate_to) — O(1), captures no payload:
    /// rollback re-derives everything from the blocks that survive.
    pub fn checkpoint(&self) -> CacheMark {
        CacheMark { len: self.len }
    }

    /// Roll the tail back to `mark`: drop every block past it O(1) and
    /// re-encode the one ragged boundary block over its surviving rows —
    /// the mirror image of [`evict_front`](KvCache::evict_front) at the
    /// tail, and of the append path's still-filling re-encode in reverse.
    ///
    /// Contract, block by block:
    /// * **whole tail blocks** are dropped with no re-encode; their
    ///   checksums, max-norm snapshots, and sticky poison marks retire
    ///   with them (damage confined to rolled-back rows leaves no trace —
    ///   the rows it could have tainted no longer exist);
    /// * the **ragged boundary block** (when `mark` lands mid-block) is
    ///   verified and healed against its stored checksums *first*, then
    ///   re-encoded over the surviving row prefix: checksums and the
    ///   max-norm snapshot are recomputed over exactly those rows, so the
    ///   block is bit-identical to one in a cache that never grew past the
    ///   mark. Unlocatable damage found by the heal folds into the block's
    ///   sticky poison mark before the evidence is destroyed, and an
    ///   existing mark on the block survives: the damaged row cannot be
    ///   located, so every surviving row stays suspect (conservative —
    ///   see [`poisoned`](KvCache::poisoned));
    /// * a mark behind the eviction frontier (`mark.position() <
    ///   start()`) is **rejected with a hard assert**: those rows were
    ///   evicted and no tail operation can restore them. Truncating
    ///   forward (`mark.position() > len()`) is equally a logic error.
    ///
    /// Returns the boundary-block verification report (empty when the mark
    /// lands on a block boundary or at the current length).
    pub fn truncate_to(&mut self, mark: CacheMark) -> KvReadReport {
        assert!(
            mark.len <= self.len,
            "cannot truncate forward: mark at row {} is past the cache length {}",
            mark.len,
            self.len,
        );
        assert!(
            mark.len >= self.start,
            "mark at row {} is behind the eviction frontier (start {}): its block was evicted",
            mark.len,
            self.start,
        );
        let mut report = KvReadReport::default();
        if mark.len == self.len {
            return report;
        }
        let keep_blocks = mark.len.div_ceil(self.block);
        let keep_resident = keep_blocks - self.start_block();
        let ragged = !mark.len.is_multiple_of(self.block);
        // Rows surviving in the boundary block when the mark is ragged.
        let boundary_rows = mark.len - keep_blocks.saturating_sub(1) * self.block;
        let (stride, dim) = (self.stride, self.dim);
        let (level, tol) = (self.level, self.level.tolerance());
        for blocks in &mut self.slots {
            blocks.truncate(keep_resident);
            if !ragged {
                continue;
            }
            let last = blocks.last_mut().expect("ragged boundary block resident");
            if last.k.rows() <= boundary_rows {
                continue;
            }
            if !level.encodes_metadata() {
                // Raw: drop the rolled-back row suffix, nothing to encode.
                last.k = last.k.block(0, 0, boundary_rows, dim);
                last.v = last.v.block(0, 0, boundary_rows, dim);
                continue;
            }
            // Mirror of the append path's ragged re-encode: verify and
            // heal the whole stored block against the old checksums, keep
            // the surviving row prefix, re-encode checksums and max-norm
            // over exactly those rows (the stride adapts via
            // `KvBlock::encode`, matching what a never-extended cache
            // would store), and fold unlocatable damage into the sticky
            // poison mark before the re-encode destroys its evidence.
            // (`Lazy` takes this verified path too: a rollback re-encode
            // from raw payload would launder resident damage for good,
            // which only `Raw` — which has no checksums at all — accepts.)
            let mut kf = last.k.to_f32();
            let mut vf = last.v.to_f32();
            let heal = verify_rows(&mut kf, &last.k_cs, tol)
                .merged(&verify_cols(&mut vf, &last.v_cs, tol));
            report = report.merged(&heal);
            let k_keep = kf.to_f16().block(0, 0, boundary_rows, dim);
            let v_keep = vf.to_f16().block(0, 0, boundary_rows, dim);
            let poisoned = last.poisoned + heal.uncorrectable;
            *last = KvBlock::encode(&k_keep, &v_keep, stride);
            last.poisoned = poisoned;
        }
        self.len = mark.len;
        report
    }

    /// Global index of the first *attended* block (under `window`, at the
    /// current length) carrying a sticky poison mark, if any — the rollback
    /// target locator for partial re-prefill recovery: truncating to
    /// `CacheMark::at(b * block())` drops the first poisoned attended
    /// block and everything after it (whole-block drops, marks retiring
    /// with their blocks) while keeping the clean prefix resident.
    pub fn first_poisoned_attended_block(&self, window: Option<usize>) -> Option<usize> {
        let b0 = self.attended_start_block_at(self.len, window);
        let start = self.start_block();
        self.slots
            .iter()
            .flat_map(|blocks| {
                blocks
                    .iter()
                    .enumerate()
                    .filter(move |&(bi, b)| b.poisoned > 0 && start + bi >= b0)
                    .map(move |(bi, _)| start + bi)
            })
            .min()
    }

    /// Unverified f32 copy of K block `b` in slot `slot` (the unprotected
    /// read path: whatever sits in storage, corrupted or not). Like every
    /// block accessor, `b` is a *global* block index and must be resident
    /// (hard assert — an out-of-range or evicted index is a logic error,
    /// not a recoverable condition).
    pub fn read_k_raw(&self, slot: usize, b: usize) -> MatrixF32 {
        self.slots[slot][self.resident_index(b)].k.to_f32()
    }

    /// Unverified f32 copy of V block `b` in slot `slot`.
    pub fn read_v_raw(&self, slot: usize, b: usize) -> MatrixF32 {
        self.slots[slot][self.resident_index(b)].v.to_f32()
    }

    /// Stored checksum operands of K block `b` (GEMM I operands).
    pub fn k_checksums(&self, slot: usize, b: usize) -> &StridedChecksums {
        &self.slots[slot][self.resident_index(b)].k_cs
    }

    /// Stored checksum operands of V block `b` (GEMM II operands).
    pub fn v_checksums(&self, slot: usize, b: usize) -> &StridedChecksums {
        &self.slots[slot][self.resident_index(b)].v_cs
    }

    /// Largest K row norm of block `b`, snapshotted at append time (the
    /// decode kernel's Cauchy–Schwarz max-plausibility bound).
    pub fn k_max_norm(&self, slot: usize, b: usize) -> f32 {
        self.slots[slot][self.resident_index(b)].k_max_norm
    }

    /// Verified read of K block `b`: re-fold the stored rows, compare
    /// against the append-time checksums, locate and correct corrupted
    /// elements in the returned copy (storage itself is left untouched —
    /// see [`scrub`](KvCache::scrub) for in-place repair).
    pub fn read_k_verified(&self, slot: usize, b: usize) -> (MatrixF32, KvReadReport) {
        let blk = &self.slots[slot][self.resident_index(b)];
        let mut kf = blk.k.to_f32();
        if !self.level.encodes_metadata() {
            return (kf, KvReadReport::default());
        }
        let report = verify_rows(&mut kf, &blk.k_cs, self.level.tolerance());
        (kf, report)
    }

    /// Verified read of V block `b` (column-folded checksums).
    pub fn read_v_verified(&self, slot: usize, b: usize) -> (MatrixF32, KvReadReport) {
        let blk = &self.slots[slot][self.resident_index(b)];
        let mut vf = blk.v.to_f32();
        if !self.level.encodes_metadata() {
            return (vf, KvReadReport::default());
        }
        let report = verify_cols(&mut vf, &blk.v_cs, self.level.tolerance());
        (vf, report)
    }

    /// Verify block `b` of slot `slot` **once** and expose everything a
    /// sweep tile needs from it: the corrected K/V payload, the stored
    /// checksum operands, and the append-time max-norm snapshot — the
    /// fused multi-row sweep's verify-once, expose-many read path. The
    /// verification outcome rides along exactly once, so a tile serving
    /// many chunk rows attributes each physical cache fault to its
    /// stream's report once per sweep, not once per attending row.
    ///
    /// The payload copies are bit-identical to
    /// [`read_k_verified`](KvCache::read_k_verified) /
    /// [`read_v_verified`](KvCache::read_v_verified) — same stored rows
    /// through the same deterministic locate-and-correct pass.
    pub fn verified_block(&self, slot: usize, b: usize) -> VerifiedBlock<'_> {
        assert!(
            self.level.encodes_metadata(),
            "verified_block on a Raw cache: route Raw streams to the \
             unprotected (reference) tile instead",
        );
        let tol = self.level.tolerance();
        let blk = &self.slots[slot][self.resident_index(b)];
        let mut kf = blk.k.to_f32();
        let k_report = verify_rows(&mut kf, &blk.k_cs, tol);
        let mut vf = blk.v.to_f32();
        let v_report = verify_cols(&mut vf, &blk.v_cs, tol);
        VerifiedBlock {
            k: kf,
            v: vf,
            k_cs: &blk.k_cs,
            v_cs: &blk.v_cs,
            k_max_norm: blk.k_max_norm,
            k_report,
            v_report,
        }
    }

    /// Model soft errors landing in cache-resident state: every stored FP16
    /// element is offered to `inj` at [`FaultSite::KvCache`] with coordinate
    /// `(slot, global_row, col, 2·step + which)` (`which` = 0 for K, 1 for
    /// V). `step` keeps repeated exposure of the same element across decode
    /// steps from re-deriving the same stateless-hash decision.
    pub fn expose(&mut self, inj: &dyn FaultInjector, step: u64) {
        if inj.is_noop() {
            return;
        }
        let block = self.block;
        let start_block = self.start / self.block;
        for (slot, blocks) in self.slots.iter_mut().enumerate() {
            for (bi, blk) in blocks.iter_mut().enumerate() {
                // Fault coordinates address *global* rows, so a campaign
                // targeting row 70 keeps hitting the same physical row
                // whether or not earlier blocks have been evicted.
                let b = start_block + bi;
                for which in 0..2u64 {
                    let m = if which == 0 { &mut blk.k } else { &mut blk.v };
                    for r in 0..m.rows() {
                        for c in 0..m.cols() {
                            let coord = OpCoord {
                                slot: slot as u64,
                                i: (b * block + r) as u64,
                                j: c as u64,
                                k: 2 * step + which,
                            };
                            let old = m.get(r, c);
                            let new = inj.corrupt_f16(FaultSite::KvCache, coord, old);
                            if new != old {
                                m.set(r, c, new);
                            }
                        }
                    }
                }
            }
        }
    }

    /// In-place integrity pass over the whole cache: verify every resident
    /// block and write located corrections back to the FP16 payload (the
    /// maintenance scrub a serving loop runs between requests).
    ///
    /// Contract for unlocatable damage (count once, don't launder): when a
    /// block verifies with `uncorrectable > 0`, the damage cannot be
    /// repaired from checksums, so the scrub (1) folds the count into the
    /// block's sticky [`poisoned`](KvCache::poisoned) mark and only *then*
    /// (2) re-encodes that block's checksums over the partially-healed
    /// payload. The re-encode silences further per-read alarms for an
    /// event nothing can act on twice — each physical event lands in
    /// `poisoned()` exactly once, at the moment its checksum evidence is
    /// destroyed, and the protected decode path re-surfaces the sticky
    /// count as `cache_uncorrectable` on every subsequent step, so the
    /// damage is never silently forgotten.
    pub fn scrub(&mut self) -> KvReadReport {
        let mut total = KvReadReport::default();
        if !self.level.encodes_metadata() {
            // Raw: nothing to verify against; the scrub is a no-op.
            return total;
        }
        let stride = self.stride;
        for slot in 0..self.num_slots() {
            for b in self.start_block()..self.num_blocks() {
                let (kf, krep) = self.read_k_verified(slot, b);
                let (vf, vrep) = self.read_v_verified(slot, b);
                let bi = self.resident_index(b);
                if !krep.clean() {
                    self.slots[slot][bi].k = kf.to_f16();
                }
                if !vrep.clean() {
                    self.slots[slot][bi].v = vf.to_f16();
                }
                let uncorrectable = krep.uncorrectable + vrep.uncorrectable;
                if uncorrectable > 0 {
                    let blk = &mut self.slots[slot][bi];
                    let poisoned = blk.poisoned + uncorrectable;
                    let (k16, v16) = (blk.k.clone(), blk.v.clone());
                    *blk = KvBlock::encode(&k16, &v16, stride);
                    blk.poisoned = poisoned;
                }
                total = total.merged(&krep).merged(&vrep);
            }
        }
        total
    }
}

/// Verify a K-style block against row-folded checksums; corrects `m` in
/// place. A corrupted `m[r][c]` shows up in lane `(r mod s, c)` of `w1`
/// with delta `Δ` and in `w2` with `(l+1)·Δ`, locating the group `l` and
/// hence the row. With `tol = Some(t)` (approximate protection),
/// residuals `|Δ| ≤ t` above the floor are tolerated: counted, left
/// uncorrected, never escalated to locate/correct or uncorrectable.
fn verify_rows(m: &mut MatrixF32, cs: &StridedChecksums, tol: Option<f32>) -> KvReadReport {
    let fresh = encode_rows_strided(m, cs.stride, false);
    let mut report = KvReadReport::default();
    let s = cs.stride;
    for t in 0..fresh.w1.rows() {
        for c in 0..fresh.w1.cols() {
            // Bit-equality first: a clean block re-folds to the exact same
            // f32s (same loop over the same values), non-finite payloads
            // included — an appended Inf/NaN row makes both sums NaN with
            // identical bits, which must *not* read as permanent damage
            // (the old `d1 = NaN` path flagged a false uncorrectable on
            // every read and poisoned the cache at the next append).
            if fresh.w1.get(t, c).to_bits() == cs.w1.get(t, c).to_bits() {
                continue;
            }
            let d1 = fresh.w1.get(t, c) - cs.w1.get(t, c);
            if d1.abs() <= READ_CHECK_FLOOR {
                continue;
            }
            if tol.is_some_and(|tol| d1.abs() <= tol) {
                report.tolerated += 1;
                continue;
            }
            report.detected += 1;
            let d2 = fresh.w2.get(t, c) - cs.w2.get(t, c);
            match locate_group(d1, d2, cs.groups) {
                Some(l) if t + s * l < m.rows() => {
                    let row = t + s * l;
                    m.set(row, c, m.get(row, c) - d1);
                    report.corrected += 1;
                }
                _ => report.uncorrectable += 1,
            }
        }
    }
    report
}

/// Verify a V-style block against column-folded checksums; corrects `m` in
/// place (same ratio location, along the row; same `tol` semantics as
/// [`verify_rows`]).
fn verify_cols(m: &mut MatrixF32, cs: &StridedChecksums, tol: Option<f32>) -> KvReadReport {
    let fresh = encode_cols_strided(m, cs.stride, false);
    let mut report = KvReadReport::default();
    let s = cs.stride;
    for r in 0..fresh.w1.rows() {
        for t in 0..fresh.w1.cols() {
            // Bit-equality covers non-finite payloads (see `verify_rows`).
            if fresh.w1.get(r, t).to_bits() == cs.w1.get(r, t).to_bits() {
                continue;
            }
            let d1 = fresh.w1.get(r, t) - cs.w1.get(r, t);
            if d1.abs() <= READ_CHECK_FLOOR {
                continue;
            }
            if tol.is_some_and(|tol| d1.abs() <= tol) {
                report.tolerated += 1;
                continue;
            }
            report.detected += 1;
            let d2 = fresh.w2.get(r, t) - cs.w2.get(r, t);
            match locate_group(d1, d2, cs.groups) {
                Some(l) if t + s * l < m.cols() => {
                    let col = t + s * l;
                    m.set(r, col, m.get(r, col) - d1);
                    report.corrected += 1;
                }
                _ => report.uncorrectable += 1,
            }
        }
    }
    report
}

/// Locate the folded group from the weighted/plain delta ratio
/// (`Δ2/Δ1 = l + 1` for a single error in group `l`); `None` when the
/// ratio is implausible (multi-error aliasing, non-finite).
fn locate_group(d1: f32, d2: f32, groups: usize) -> Option<usize> {
    let ratio = d2 / d1;
    if !ratio.is_finite() || (ratio - ratio.round()).abs() >= 0.25 {
        return None;
    }
    let l = ratio.round() as i64 - 1;
    if l >= 0 && (l as usize) < groups {
        Some(l as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_num::rng::normal_tensor_f16;
    use ft_sim::{BerInjector, NoFaults, SeuInjector};

    fn append_token(cache: &mut KvCache, t: usize) -> KvReadReport {
        let k = normal_tensor_f16(100 + t as u64, 1, 2, 1, 16, 0.6);
        let v = normal_tensor_f16(500 + t as u64, 1, 2, 1, 16, 0.8);
        cache.append(&k, &v)
    }

    fn filled_cache(tokens: usize, block: usize) -> KvCache {
        let mut cache = KvCache::new(1, 2, 16, block, 8, 0.25);
        for t in 0..tokens {
            append_token(&mut cache, t);
        }
        cache
    }

    /// Bit-identical comparison of everything a block stores: payload,
    /// both checksum families, and the max-norm snapshot.
    fn assert_caches_identical(a: &KvCache, b: &KvCache) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.start(), b.start());
        assert_eq!(a.num_blocks(), b.num_blocks());
        for slot in 0..a.num_slots() {
            for blk in a.start_block()..a.num_blocks() {
                assert_eq!(
                    a.read_k_raw(slot, blk),
                    b.read_k_raw(slot, blk),
                    "K s{slot} b{blk}"
                );
                assert_eq!(
                    a.read_v_raw(slot, blk),
                    b.read_v_raw(slot, blk),
                    "V s{slot} b{blk}"
                );
                assert_eq!(a.k_checksums(slot, blk).w1, b.k_checksums(slot, blk).w1);
                assert_eq!(a.k_checksums(slot, blk).w2, b.k_checksums(slot, blk).w2);
                assert_eq!(a.v_checksums(slot, blk).w1, b.v_checksums(slot, blk).w1);
                assert_eq!(a.v_checksums(slot, blk).w2, b.v_checksums(slot, blk).w2);
                assert_eq!(
                    a.k_max_norm(slot, blk).to_bits(),
                    b.k_max_norm(slot, blk).to_bits(),
                    "max-norm s{slot} b{blk}",
                );
            }
        }
    }

    #[test]
    fn append_grows_blocks_with_ragged_tail() {
        let cache = filled_cache(21, 8);
        assert_eq!(cache.len(), 21);
        assert_eq!(cache.num_blocks(), 3);
        assert_eq!(cache.block_rows(0), 8);
        assert_eq!(cache.block_rows(2), 5);
        assert_eq!(cache.read_k_raw(1, 2).rows(), 5);
    }

    #[test]
    fn clean_reads_verify_silently_and_match_raw() {
        let cache = filled_cache(13, 8);
        for slot in 0..2 {
            for b in 0..cache.num_blocks() {
                let (k, rep) = cache.read_k_verified(slot, b);
                assert!(rep.clean(), "{rep:?}");
                assert_eq!(k, cache.read_k_raw(slot, b));
                let (v, rep) = cache.read_v_verified(slot, b);
                assert!(rep.clean(), "{rep:?}");
                assert_eq!(v, cache.read_v_raw(slot, b));
            }
        }
    }

    #[test]
    fn exposed_k_flip_is_located_and_corrected_on_read() {
        let mut cache = filled_cache(16, 8);
        let truth = cache.read_k_raw(1, 1);
        // Exponent-range flip in stored K[12][5] of slot 1 (block 1, row 4).
        let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(1, 12, 5, 0), 13);
        cache.expose(&inj, 0);
        assert_eq!(inj.fired(), 1);
        assert!(cache.read_k_raw(1, 1).max_abs_diff(&truth) > 1e-3);
        let (k, rep) = cache.read_k_verified(1, 1);
        assert_eq!(rep.detected, 1);
        assert_eq!(rep.corrected, 1);
        assert_eq!(rep.uncorrectable, 0);
        assert!(k.max_abs_diff(&truth) < 1e-5, "{}", k.max_abs_diff(&truth));
    }

    #[test]
    fn exposed_v_flip_is_located_and_corrected_on_read() {
        let mut cache = filled_cache(10, 8);
        let truth = cache.read_v_raw(0, 0);
        let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 3, 9, 1), 14);
        cache.expose(&inj, 0);
        assert_eq!(inj.fired(), 1);
        let (v, rep) = cache.read_v_verified(0, 0);
        assert_eq!((rep.detected, rep.corrected), (1, 1));
        assert!(v.max_abs_diff(&truth) < 1e-5);
    }

    #[test]
    fn scrub_repairs_storage_in_place() {
        let mut cache = filled_cache(16, 8);
        let truth = cache.read_k_raw(0, 0);
        let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 2, 3, 0), 12);
        cache.expose(&inj, 5);
        assert_eq!(inj.fired(), 0, "step 5 exposure needs k = 2*5");
        let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 2, 3, 10), 12);
        cache.expose(&inj, 5);
        assert_eq!(inj.fired(), 1);
        let rep = cache.scrub();
        assert_eq!((rep.detected, rep.corrected), (1, 1));
        assert_eq!(cache.read_k_raw(0, 0), truth, "scrub restores payload");
        assert!(cache.scrub().clean(), "second scrub finds nothing");
    }

    #[test]
    fn aliased_double_corruption_is_flagged_uncorrectable() {
        let mut cache = filled_cache(16, 16);
        // Two equal-delta corruptions in the same lane (rows 0 and 8 share
        // residue 0 at stride 8, same column): ratio (1Δ+2Δ)/2Δ = 1.5.
        let blk = cache.read_k_raw(0, 0);
        let d = 2.0f32;
        let mut k16 = blk.clone();
        k16.set(0, 4, blk.get(0, 4) + d);
        k16.set(8, 4, blk.get(8, 4) + d);
        cache.slots[0][0].k = k16.to_f16();
        let (_, rep) = cache.read_k_verified(0, 0);
        assert!(rep.detected >= 1);
        assert!(rep.uncorrectable >= 1, "{rep:?}");
    }

    #[test]
    fn append_over_unrepairable_corruption_stays_poisoned() {
        // Trailing ragged block of 12 rows (block 16, stride 8): rows 0 and
        // 8 share a checksum lane. Equal-delta corruption in both aliases
        // (ratio 1.5) is unlocatable; the next append re-encodes clean
        // checksums over the damage — the sticky counter must survive.
        let mut cache = filled_cache(12, 16);
        let mut k16 = cache.read_k_raw(0, 0);
        let d = 2.0f32;
        k16.set(0, 4, k16.get(0, 4) + d);
        k16.set(8, 4, k16.get(8, 4) + d);
        cache.slots[0][0].k = k16.to_f16();
        assert_eq!(cache.poisoned(), 0);
        let k = normal_tensor_f16(800, 1, 2, 1, 16, 0.6);
        let v = normal_tensor_f16(801, 1, 2, 1, 16, 0.8);
        let rep = cache.append(&k, &v);
        assert!(rep.uncorrectable >= 1, "{rep:?}");
        assert!(cache.poisoned() >= 1);
        // The re-encoded block now verifies clean (laundered)…
        let (_, rep) = cache.read_k_verified(0, 0);
        assert!(rep.clean(), "{rep:?}");
        // …but the sticky signal persists, and the protected decode path
        // re-surfaces it on every subsequent step's report.
        assert!(cache.poisoned() >= 1);
        let q = normal_tensor_f16(802, 1, 2, 1, 16, 0.6);
        let req = crate::decode::DecodeRequest::new(&cache, &q);
        let out = crate::decode::efta_decode(&req, &crate::efta::EftaOptions::optimized()).unwrap();
        assert!(out.report.cache_uncorrectable >= 1, "{:?}", out.report);
        assert!(
            !out.report.clean(),
            "poisoned cache must never report clean"
        );
    }

    #[test]
    fn expose_under_ber_corrupts_and_scrub_recovers_most() {
        let mut cache = filled_cache(32, 8);
        let inj = BerInjector::new(9, 2e-3).with_sites(&[FaultSite::KvCache]);
        cache.expose(&inj, 1);
        assert!(
            inj.fired() > 0,
            "BER exposure must fire on a 2k-element cache"
        );
        let rep = cache.scrub();
        assert!(rep.detected >= inj.fired() / 2);
        assert!(rep.corrected > 0);
    }

    #[test]
    fn evict_front_drops_whole_blocks_and_keeps_global_coordinates() {
        let mut cache = filled_cache(21, 8); // blocks of 8/8/5
        let keep_k = cache.read_k_raw(1, 1);
        let keep_cs = cache.k_checksums(1, 1).w1.clone();
        let full_bytes = cache.size_bytes();
        assert_eq!(cache.evict_front(1), 1);
        assert_eq!((cache.start(), cache.start_block()), (8, 1));
        assert_eq!((cache.len(), cache.resident_len()), (21, 13));
        assert_eq!((cache.num_blocks(), cache.resident_blocks()), (3, 2));
        assert_eq!(cache.block_rows(1), 8);
        assert_eq!(cache.block_rows(2), 5);
        // Block 1 is still block 1: payload and checksums untouched.
        assert_eq!(cache.read_k_raw(1, 1), keep_k);
        assert_eq!(cache.k_checksums(1, 1).w1, keep_cs);
        assert!(cache.size_bytes() < full_bytes);
        // The trailing block is never evicted, however large the request.
        assert_eq!(cache.evict_front(10), 1);
        assert_eq!(cache.resident_blocks(), 1);
        assert_eq!(cache.evict_front(1), 0);
        // Appends keep extending the logical sequence past eviction.
        let k = normal_tensor_f16(700, 1, 2, 1, 16, 0.6);
        let v = normal_tensor_f16(701, 1, 2, 1, 16, 0.8);
        assert!(cache.append(&k, &v).clean());
        assert_eq!((cache.len(), cache.resident_len()), (22, 6));
    }

    #[test]
    fn enforce_window_is_block_granular_and_minimal() {
        let mut cache = filled_cache(40, 8);
        // 40 resident, window 18: evict floor((40-18)/8) = 2 blocks.
        assert_eq!(cache.enforce_window(18), 2);
        assert_eq!(cache.resident_len(), 24);
        // Already within one block of the window: nothing more to do.
        assert_eq!(cache.enforce_window(18), 0);
        assert_eq!(cache.enforce_window(40), 0);
        // Shrinking the window evicts further, still whole blocks.
        assert_eq!(cache.enforce_window(8), 2);
        assert_eq!(cache.resident_len(), 8);
    }

    #[test]
    fn exposure_coordinates_are_stable_across_eviction() {
        // The same global-row SEU coordinate hits the same physical row
        // before and after eviction; the surviving block's checksums still
        // locate and correct it.
        let mut cache = filled_cache(24, 8);
        cache.evict_front(1);
        let truth = cache.read_k_raw(0, 1);
        let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 12, 5, 0), 13);
        cache.expose(&inj, 0);
        assert_eq!(inj.fired(), 1, "global row 12 is resident in block 1");
        let (k, rep) = cache.read_k_verified(0, 1);
        assert_eq!((rep.detected, rep.corrected, rep.uncorrectable), (1, 1, 0));
        assert!(k.max_abs_diff(&truth) < 1e-5);
        // A coordinate inside the evicted range no longer fires.
        let gone = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 3, 5, 0), 13);
        cache.expose(&gone, 0);
        assert_eq!(gone.fired(), 0, "evicted rows expose no fault surface");
    }

    #[test]
    fn evicting_a_poisoned_block_retires_its_damage() {
        // Unrepairable damage laundered into block 0 by an append heal…
        let mut cache = filled_cache(12, 16);
        let mut k16 = cache.read_k_raw(0, 0);
        let d = 2.0f32;
        k16.set(0, 4, k16.get(0, 4) + d);
        k16.set(8, 4, k16.get(8, 4) + d);
        cache.slots[0][0].k = k16.to_f16();
        for t in 0..8 {
            cache.append(
                &normal_tensor_f16(820 + t, 1, 2, 1, 16, 0.6),
                &normal_tensor_f16(840 + t, 1, 2, 1, 16, 0.8),
            );
        }
        assert!(cache.poisoned() >= 1);
        // …is retired when the block leaves the resident window…
        assert_eq!(cache.evict_front(1), 1);
        assert_eq!(cache.poisoned(), 0, "poison travels with the block");
        // …and decode over the remaining window reports clean.
        let q = normal_tensor_f16(860, 1, 2, 1, 16, 0.6);
        let req = crate::decode::DecodeRequest::new(&cache, &q);
        let out = crate::decode::efta_decode(&req, &crate::efta::EftaOptions::optimized()).unwrap();
        assert!(out.report.clean(), "{:?}", out.report);
    }

    #[test]
    fn poisoned_attended_scopes_sticky_marks_to_the_window() {
        // Launder aliased damage into block 0 (16-row block, stride 8:
        // rows 0 and 8 share a lane), then grow the cache: the sticky mark
        // is visible to a full-history query, invisible once the sliding
        // window has moved past block 0, and retired by eviction.
        let mut cache = filled_cache(12, 16);
        let mut k16 = cache.read_k_raw(0, 0);
        let d = 2.0f32;
        k16.set(0, 4, k16.get(0, 4) + d);
        k16.set(8, 4, k16.get(8, 4) + d);
        cache.slots[0][0].k = k16.to_f16();
        for t in 0..24 {
            cache.append(
                &normal_tensor_f16(880 + t, 1, 2, 1, 16, 0.6),
                &normal_tensor_f16(910 + t, 1, 2, 1, 16, 0.8),
            );
        }
        assert!(cache.poisoned() >= 1, "append laundering must mark block 0");
        assert_eq!(cache.poisoned_attended(None), cache.poisoned());
        // len = 36; a 36-row window still reaches block 0…
        assert_eq!(cache.poisoned_attended(Some(36)), cache.poisoned());
        // …a 16-row window starts at block (36-16)/16 = 1: mark unseen.
        assert_eq!(cache.attended_start_block_at(36, Some(16)), 1);
        assert_eq!(cache.poisoned_attended(Some(16)), 0);
        // The EFTA decode report follows the same scoping.
        let q = normal_tensor_f16(950, 1, 2, 1, 16, 0.6);
        let opts = crate::efta::EftaOptions::optimized();
        let req = crate::decode::DecodeRequest::new(&cache, &q);
        let full = crate::decode::efta_decode(&req, &opts).unwrap();
        assert!(full.report.cache_uncorrectable >= 1, "{:?}", full.report);
        let windowed = crate::decode::efta_decode(&req.with_window(Some(16)), &opts).unwrap();
        assert!(windowed.report.clean(), "{:?}", windowed.report);
        // Eviction retires the mark entirely.
        assert_eq!(cache.evict_front(1), 1);
        assert_eq!(cache.poisoned(), 0);
        assert_eq!(cache.poisoned_attended(None), 0);
    }

    #[test]
    fn scrub_folds_unlocatable_damage_into_poisoned_exactly_once() {
        // Regression for the scrub/poisoned contract: aliased equal-delta
        // corruption (rows 0 and 8 share a stride-8 lane) is unlocatable;
        // the scrub must feed the sticky counter once — not zero times (the
        // old bug) and not once per scrub.
        let mut cache = filled_cache(16, 16);
        let blk = cache.read_k_raw(0, 0);
        let d = 2.0f32;
        let mut k16 = blk.clone();
        k16.set(0, 4, blk.get(0, 4) + d);
        k16.set(8, 4, blk.get(8, 4) + d);
        cache.slots[0][0].k = k16.to_f16();
        let rep = cache.scrub();
        assert!(rep.uncorrectable >= 1, "{rep:?}");
        let poisoned = cache.poisoned();
        assert!(poisoned >= 1, "scrub must feed the sticky counter");
        // Count once: the re-encode destroyed the checksum evidence, so a
        // second scrub finds nothing and the counter does not grow.
        assert!(cache.scrub().clean());
        assert_eq!(cache.poisoned(), poisoned);
        // Don't launder: scrub-then-decode still reports the damage.
        let q = normal_tensor_f16(870, 1, 2, 1, 16, 0.6);
        let req = crate::decode::DecodeRequest::new(&cache, &q);
        let out = crate::decode::efta_decode(&req, &crate::efta::EftaOptions::optimized()).unwrap();
        assert!(out.report.cache_uncorrectable >= 1, "{:?}", out.report);
        assert!(!out.report.clean());
    }

    #[test]
    fn non_finite_rows_verify_consistently_and_never_poison() {
        // Regression: an appended row containing Inf/NaN makes stored and
        // re-folded checksums both non-finite; the old finite-delta check
        // flagged a permanent false `detected + uncorrectable` on every
        // read, which the next append baked into `poisoned`.
        let mut cache = KvCache::new(1, 2, 16, 8, 8, 0.25);
        for t in 0..3 {
            let k = normal_tensor_f16(100 + t, 1, 2, 1, 16, 0.6);
            let v = normal_tensor_f16(200 + t, 1, 2, 1, 16, 0.8);
            assert!(cache.append(&k, &v).clean());
        }
        let bad_k = Tensor4F16::from_fn(1, 2, 1, 16, |_, h, _, c| {
            if h == 0 && c == 3 {
                ft_num::F16::from_f32(f32::INFINITY)
            } else if h == 1 && c == 7 {
                ft_num::F16::from_f32(f32::NAN)
            } else {
                ft_num::F16::from_f32(0.25)
            }
        });
        let v = normal_tensor_f16(300, 1, 2, 1, 16, 0.8);
        assert!(cache.append(&bad_k, &v).clean(), "non-finite row appends");
        let (_, rep) = cache.read_k_verified(0, 0);
        assert!(
            rep.clean(),
            "re-fold reproduces the stored NaN bits: {rep:?}"
        );
        let (_, rep) = cache.read_v_verified(1, 0);
        assert!(rep.clean(), "{rep:?}");
        // Further appends to the same ragged block re-verify it — still no
        // false alarms, and nothing lands in the sticky counter.
        for t in 0..3 {
            let k = normal_tensor_f16(400 + t, 1, 2, 1, 16, 0.6);
            let v = normal_tensor_f16(500 + t, 1, 2, 1, 16, 0.8);
            assert!(cache.append(&k, &v).clean());
        }
        assert_eq!(cache.poisoned(), 0);
        assert!(cache.scrub().clean());
        // A *real* corruption that flips the stored Inf to a finite value
        // is detected but honestly unlocatable (the delta ratio is
        // non-finite) — the consistent-verify fix must not hide true
        // damage involving non-finite state.
        let mut k16 = cache.slots[0][0].k.clone();
        k16.set(3, 3, ft_num::F16::from_f32(9.0)); // the appended Inf element
        cache.slots[0][0].k = k16;
        let (_, rep) = cache.read_k_verified(0, 0);
        assert!(rep.detected >= 1, "{rep:?}");
        assert!(rep.uncorrectable >= 1, "{rep:?}");
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn out_of_range_block_index_panics_in_release_too() {
        let cache = filled_cache(16, 8);
        let _ = cache.block_rows(2);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn evicted_block_read_panics() {
        let mut cache = filled_cache(24, 8);
        cache.evict_front(2);
        let _ = cache.read_k_raw(0, 0);
    }

    #[test]
    fn noop_exposure_is_free_and_checksum_overhead_is_small() {
        let mut cache = filled_cache(64, 64);
        cache.expose(&NoFaults, 0);
        assert!(cache.scrub().clean());
        // At the paper's head dim (64) the FP32 metadata of stride-8
        // checksums stays a modest fraction of the FP16 payload.
        let mut cache = KvCache::new(1, 2, 64, 64, 8, 0.125);
        for t in 0..64 {
            let k = normal_tensor_f16(900 + t, 1, 2, 1, 64, 0.6);
            let v = normal_tensor_f16(990 + t, 1, 2, 1, 64, 0.8);
            cache.append(&k, &v);
        }
        let ratio = cache.checksum_bytes() as f64 / cache.size_bytes() as f64;
        assert!(ratio < 0.6, "checksum overhead ratio {ratio}");
    }

    #[test]
    fn truncate_to_is_bit_identical_to_a_never_extended_cache() {
        // 21 rows @ block 8 → blocks of 8, 8, 5. Truncating to 13 drops the
        // ragged tail block whole and re-encodes block 1 over 5 surviving
        // rows; everything must match a cache that only ever saw 13 rows.
        let mut cache = filled_cache(21, 8);
        let rep = cache.truncate_to(CacheMark::at(13));
        assert!(rep.clean(), "{rep:?}");
        assert_eq!(cache.len(), 13);
        assert_eq!(cache.num_blocks(), 2);
        assert_eq!(cache.block_rows(1), 5);
        assert_caches_identical(&cache, &filled_cache(13, 8));
        // Block-boundary mark: whole-block drop only, no re-encode path.
        let mut cache = filled_cache(21, 8);
        cache.truncate_to(CacheMark::at(8));
        assert_caches_identical(&cache, &filled_cache(8, 8));
        // Truncate-to-here is a no-op; truncate-to-zero empties the cache.
        let mut cache = filled_cache(21, 8);
        let mark = cache.checkpoint();
        cache.truncate_to(mark);
        assert_caches_identical(&cache, &filled_cache(21, 8));
        cache.truncate_to(CacheMark::at(0));
        assert!(cache.is_empty());
        assert_eq!(cache.num_blocks(), 0);
    }

    #[test]
    fn truncate_then_continue_matches_never_speculated_cache() {
        // Speculation shape: checkpoint, append provisional rows, roll
        // back, then append the real continuation — storage must be
        // bit-identical to a cache that never speculated.
        let mut cache = filled_cache(13, 8);
        let mark = cache.checkpoint();
        for t in 0..4 {
            append_token(&mut cache, 900 + t); // provisional rows
        }
        assert!(cache.truncate_to(mark).clean());
        for t in 13..18 {
            append_token(&mut cache, t); // committed continuation
        }
        assert_caches_identical(&cache, &filled_cache(18, 8));
    }

    #[test]
    fn rolled_back_rows_are_no_longer_a_fault_surface() {
        // An injector aimed at a global row inside the rolled-back range
        // must never fire again after truncation: the rows are gone, so a
        // campaign there leaves no trace in any subsequent report.
        let mut cache = filled_cache(21, 8);
        cache.truncate_to(CacheMark::at(13));
        let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 15, 3, 0), 13);
        cache.expose(&inj, 0);
        assert_eq!(inj.fired(), 0);
        assert!(cache.scrub().clean());
    }

    #[test]
    fn truncate_heals_boundary_damage_instead_of_baking_it_in() {
        // A correctable SEU in a surviving row of the boundary block: the
        // truncate-time verify repairs it before re-encoding, so the fresh
        // checksums cover clean data.
        let mut cache = filled_cache(21, 8);
        let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 12, 5, 0), 13);
        cache.expose(&inj, 0);
        assert_eq!(inj.fired(), 1);
        let rep = cache.truncate_to(CacheMark::at(13));
        assert_eq!((rep.detected, rep.corrected, rep.uncorrectable), (1, 1, 0));
        assert_caches_identical(&cache, &filled_cache(13, 8));
        assert_eq!(cache.poisoned(), 0);
    }

    #[test]
    fn poison_mark_survives_partial_truncation_and_retires_with_whole_block_drop() {
        // Aliased damage in rows 0 and 8 of a 12-row ragged block (block
        // 16, stride 8) is unlocatable; the next append launders it into
        // the block's sticky mark. Rolling the tail back *within* the
        // block keeps damaged rows resident, so the mark must survive —
        // while truncating the whole block away retires the mark with it
        // (satellite regression for the attended-boundary audit).
        let mut cache = filled_cache(12, 16);
        let mut k16 = cache.read_k_raw(0, 0);
        let d = 2.0f32;
        k16.set(0, 4, k16.get(0, 4) + d);
        k16.set(8, 4, k16.get(8, 4) + d);
        cache.slots[0][0].k = k16.to_f16();
        append_token(&mut cache, 12); // launder: poison lands on block 0
        assert!(cache.poisoned() >= 1);
        let poisoned = cache.poisoned();

        // Partial truncation (13 → 10 rows): damaged rows 0 and 8 survive.
        let mut partial = cache.clone();
        partial.truncate_to(CacheMark::at(10));
        assert_eq!(
            partial.poisoned(),
            poisoned,
            "mark must survive surviving rows"
        );
        assert_eq!(partial.poisoned_attended(None), poisoned);
        // The attended scope still sees the mark at the new, shorter
        // length (truncation must not desynchronise the boundary math).
        assert_eq!(partial.attended_start_block_at(partial.len(), Some(8)), 0);
        assert_eq!(partial.poisoned_attended(Some(8)), poisoned);

        // Whole-block drop (→ 0 rows): the mark retires with its block.
        let mut dropped = cache.clone();
        dropped.truncate_to(CacheMark::at(0));
        assert_eq!(dropped.poisoned(), 0, "mark retires with its block");
    }

    #[test]
    fn first_poisoned_attended_block_locates_the_rollback_target() {
        // Poison block 0 (rows 0..16), then grow to 40 rows (blocks 0, 1,
        // 2 with a ragged 8-row tail).
        let mut cache = filled_cache(12, 16);
        let mut k16 = cache.read_k_raw(0, 0);
        let d = 2.0f32;
        k16.set(0, 4, k16.get(0, 4) + d);
        k16.set(8, 4, k16.get(8, 4) + d);
        cache.slots[0][0].k = k16.to_f16();
        for t in 12..40 {
            append_token(&mut cache, t);
        }
        assert!(cache.poisoned() >= 1);
        assert_eq!(cache.first_poisoned_attended_block(None), Some(0));
        // A window of 8 over 40 rows attends from block (40−8)/16 = 2:
        // the damage has slid behind the window, so there is no target.
        assert_eq!(cache.first_poisoned_attended_block(Some(8)), None);
        // A window of 32 attends from block (40−32)/16 = 0: visible again.
        assert_eq!(cache.first_poisoned_attended_block(Some(32)), Some(0));
    }

    #[test]
    #[should_panic(expected = "behind the eviction frontier")]
    fn truncating_to_an_evicted_mark_panics() {
        let mut cache = filled_cache(32, 8);
        let mark = CacheMark::at(8);
        cache.evict_front(2); // start = 16: rows 0..16 are gone
        cache.truncate_to(mark);
    }

    #[test]
    #[should_panic(expected = "cannot truncate forward")]
    fn truncating_forward_panics() {
        let mut cache = filled_cache(8, 8);
        cache.truncate_to(CacheMark::at(9));
    }

    #[test]
    fn cache_state_is_send() {
        // Fleet workers own their caches on shard threads, and migration
        // rebuilds (never ships) them — but the owning session must still
        // cross a thread boundary at spawn. Compile-time pin.
        fn assert_send<T: Send>() {}
        assert_send::<KvCache>();
        assert_send::<CacheMark>();
        assert_send::<KvReadReport>();
    }
}

#[cfg(test)]
mod protect_tests {
    use super::*;
    use crate::protect::ProtectionLevel;
    use ft_num::rng::normal_tensor_f16;
    use ft_sim::SeuInjector;

    fn filled_level(tokens: usize, block: usize, level: ProtectionLevel) -> KvCache {
        let mut cache = KvCache::new(1, 2, 16, block, 8, 0.25).with_protection(level);
        for t in 0..tokens {
            let k = normal_tensor_f16(100 + t as u64, 1, 2, 1, 16, 0.6);
            let v = normal_tensor_f16(500 + t as u64, 1, 2, 1, 16, 0.8);
            cache.append(&k, &v);
        }
        cache
    }

    #[test]
    fn lazy_append_matches_full_bit_for_bit() {
        // Lazy's incremental checksum extension must replay Full's
        // accumulation order exactly: identical payload, both checksum
        // families, and max-norm snapshots, across ragged and whole
        // blocks (21 rows = 8 + 8 + 5).
        let full = filled_level(21, 8, ProtectionLevel::Full);
        let lazy = filled_level(21, 8, ProtectionLevel::Lazy);
        for slot in 0..2 {
            for b in 0..full.num_blocks() {
                assert_eq!(full.read_k_raw(slot, b), lazy.read_k_raw(slot, b));
                assert_eq!(full.read_v_raw(slot, b), lazy.read_v_raw(slot, b));
                assert_eq!(full.k_checksums(slot, b).w1, lazy.k_checksums(slot, b).w1);
                assert_eq!(full.k_checksums(slot, b).w2, lazy.k_checksums(slot, b).w2);
                assert_eq!(full.v_checksums(slot, b).w1, lazy.v_checksums(slot, b).w1);
                assert_eq!(full.v_checksums(slot, b).w2, lazy.v_checksums(slot, b).w2);
                assert_eq!(
                    full.k_max_norm(slot, b).to_bits(),
                    lazy.k_max_norm(slot, b).to_bits(),
                    "max-norm s{slot} b{b}",
                );
            }
        }
        assert_eq!(full.checksum_bytes(), lazy.checksum_bytes());
    }

    #[test]
    fn lazy_defers_ragged_heal_to_read() {
        // Corrupt the still-filling block, then append one row: Full heals
        // at append time (dirty heal report, clean subsequent read); Lazy
        // appends without reading the payload back, so the damage stays
        // detectable and is caught at the next verified read instead —
        // deferred, not laundered.
        for level in [ProtectionLevel::Full, ProtectionLevel::Lazy] {
            let mut cache = filled_level(5, 8, level);
            let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 3, 2, 0), 13);
            cache.expose(&inj, 0);
            assert_eq!(inj.fired(), 1);
            let k = normal_tensor_f16(900, 1, 2, 1, 16, 0.6);
            let v = normal_tensor_f16(901, 1, 2, 1, 16, 0.8);
            let heal = cache.append(&k, &v);
            let (_, read) = cache.read_k_verified(0, 0);
            if level == ProtectionLevel::Full {
                assert_eq!((heal.detected, heal.corrected), (1, 1), "heal at append");
                assert!(read.clean(), "healed before the re-encode");
            } else {
                assert!(heal.clean(), "lazy skips the append-time heal");
                assert_eq!((read.detected, read.corrected), (1, 1), "caught on read");
            }
        }
    }

    #[test]
    fn approximate_tolerates_small_residuals_and_escalates_large() {
        let mut cache = filled_level(8, 8, ProtectionLevel::Approximate { tol: 0.05 });
        // Within tolerance: counted as tolerated, not detected, left as is.
        let mut k16 = cache.read_k_raw(0, 0);
        k16.set(2, 3, k16.get(2, 3) + 0.01);
        cache.slots[0][0].k = k16.to_f16();
        let (payload, rep) = cache.read_k_verified(0, 0);
        assert_eq!((rep.detected, rep.corrected, rep.uncorrectable), (0, 0, 0));
        assert_eq!(rep.tolerated, 1);
        assert!(rep.clean(), "tolerated residuals do not dirty the report");
        assert_eq!(
            payload,
            cache.read_k_raw(0, 0),
            "tolerated residual left uncorrected"
        );
        // Above tolerance: the normal locate/correct path fires.
        let mut k16 = cache.read_k_raw(0, 0);
        k16.set(5, 3, k16.get(5, 3) + 1.0);
        cache.slots[0][0].k = k16.to_f16();
        let (_, rep) = cache.read_k_verified(0, 0);
        assert_eq!((rep.detected, rep.corrected), (1, 1));
        assert_eq!(rep.tolerated, 1, "the small residual is still tolerated");
        assert_eq!(cache.poisoned(), 0);
    }

    #[test]
    fn raw_stores_no_metadata_and_never_flags() {
        let mut cache = filled_level(21, 8, ProtectionLevel::Raw);
        assert_eq!(cache.checksum_bytes(), 0);
        let bd = cache.size_breakdown();
        assert_eq!(bd.metadata_bytes(), 0);
        assert_eq!(bd.payload_bytes, cache.size_bytes());
        // Corruption flows through unflagged: raw-equal verified reads,
        // no-op scrub, no poison — and no recovery trigger ever.
        let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 3, 2, 0), 13);
        cache.expose(&inj, 0);
        assert_eq!(inj.fired(), 1, "the payload is still a fault surface");
        let (k, rep) = cache.read_k_verified(0, 0);
        assert!(rep.clean() && rep.tolerated == 0);
        assert_eq!(k, cache.read_k_raw(0, 0));
        assert!(cache.scrub().clean());
        assert_eq!(cache.poisoned(), 0);
        assert_eq!(cache.poisoned_attended(None), 0);
        // Ragged rollback and re-append keep working without metadata.
        assert!(cache.truncate_to(CacheMark::at(18)).clean());
        assert_eq!((cache.len(), cache.read_k_raw(0, 2).rows()), (18, 2));
        let k = normal_tensor_f16(950, 1, 2, 1, 16, 0.6);
        let v = normal_tensor_f16(951, 1, 2, 1, 16, 0.8);
        assert!(cache.append(&k, &v).clean());
        assert_eq!((cache.len(), cache.checksum_bytes()), (19, 0));
    }

    #[test]
    fn metadata_bytes_order_across_the_lattice() {
        // The campaign's structural overhead assert: Raw < Lazy/Approx ≤
        // Full (Lazy and Approximate carry Full's exact metadata).
        let full = filled_level(21, 8, ProtectionLevel::Full).size_breakdown();
        let lazy = filled_level(21, 8, ProtectionLevel::Lazy).size_breakdown();
        let approx =
            filled_level(21, 8, ProtectionLevel::Approximate { tol: 0.01 }).size_breakdown();
        let raw = filled_level(21, 8, ProtectionLevel::Raw).size_breakdown();
        assert_eq!(full.payload_bytes, raw.payload_bytes);
        assert_eq!(lazy.metadata_bytes(), full.metadata_bytes());
        assert_eq!(approx.metadata_bytes(), full.metadata_bytes());
        assert_eq!(raw.metadata_bytes(), 0);
        assert!(raw.metadata_bytes() < lazy.metadata_bytes());
        assert!(full.metadata_bytes() > 0);
        assert_eq!(
            full.total_bytes(),
            full.payload_bytes + full.metadata_bytes()
        );
        // Max-norm snapshots: one f32 per resident block per slot.
        assert_eq!(full.max_norm_bytes, 4 * 3 * 2);
    }

    #[test]
    fn protection_level_is_creation_time_only() {
        let mut cache = KvCache::new(1, 2, 16, 8, 8, 0.25);
        cache.set_protection(ProtectionLevel::Lazy);
        assert_eq!(cache.protection(), ProtectionLevel::Lazy);
        let k = normal_tensor_f16(1000, 1, 2, 1, 16, 0.6);
        let v = normal_tensor_f16(1001, 1, 2, 1, 16, 0.8);
        cache.append(&k, &v);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.set_protection(ProtectionLevel::Raw)
        }));
        assert!(result.is_err(), "level flips on a non-empty cache are bugs");
    }
}
