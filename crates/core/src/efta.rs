//! End-to-end fault tolerant attention (EFTA) — the paper's contribution
//! (§3.2–3.4, Algorithm 1).
//!
//! One fused kernel computes flash attention *and* its fault tolerance:
//!
//! * **GEMM I + subtraction + EXP** are protected by strided tensor
//!   checksums with checksum reuse: `S_c1` from the checksum GEMM is carried
//!   through the max subtraction and exponential, and a single product check
//!   verifies all three steps (Algorithm 1 lines 9–16).
//! * **reduce-max / reduce-sum** are protected by selective neuron value
//!   restriction: the max must bound its block, the rowsum must lie in
//!   `[Σ exp(m_k − m), n]` (lines 22–24).
//! * **GEMM II + rescale + normalise** carry output checksums `O_c1`/`O_c2`
//!   through the online-softmax rescales and the final normalisation, and a
//!   single post-loop check locates and corrects errors (lines 18–20 and
//!   25–29).
//!
//! [`VerifyMode::PerStep`] is the unoptimised "EFTA" of Tables 1–2 (verify
//! after every operation); [`VerifyMode::Unified`] is the optimised "EFTA-o"
//! with the reordered, batched verification described above. The
//! [`GemmProtection`] and [`SoftmaxProtection`] knobs select the comparators
//! of Figs. 11 and 13 (traditional element ABFT, DMR) inside the same fused
//! kernel.

// Index-based loops are kept deliberately: they mirror the thread/lane
// structure of the GPU kernels this module models.
#![allow(clippy::needless_range_loop)]

use crate::config::AttentionConfig;
use crate::snvr::{restrict_row_max, restrict_rowsum, Restriction};
use crate::types::{AttentionOutput, FtCounters, PhaseTimers};
use ft_abft::propagate::{residue_counts, transport_subtract_max, verify_products};
use ft_abft::strided::{
    correct_strided, encode_cols_strided, encode_rows_strided, strided_sums, strided_sums_weighted,
    StridedChecksums, StridedMismatch,
};
use ft_abft::thresholds::Thresholds;
use ft_num::{block_starts, Matrix, MatrixF32, Tensor4F16, Tensor4F32};
use ft_sim::cost::Timeline;
use ft_sim::device::KernelStats;
use ft_sim::{
    gemm_flops, gemm_nn_inj, gemm_nt, gemm_nt_inj, FaultInjector, FaultSite, GemmCtx, NoFaults,
    OpCoord,
};
use rayon::prelude::*;
use std::time::Instant;

/// Protection scheme for the two GEMMs (Fig. 11 comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmProtection {
    /// No checksums (baseline "E2E Attention").
    Unprotected,
    /// Traditional element checksum: width-1 fold, requires the
    /// inter-thread gather the tensor-core layout penalises. The gather is
    /// emulated by explicit transposes and the checksum GEMM is padded to
    /// the 8-wide MMA tile it would occupy on hardware.
    Traditional,
    /// The paper's strided tensor checksum (width = stride, intra-thread).
    Strided,
}

/// Protection scheme for the softmax nonlinearities (Fig. 13 comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoftmaxProtection {
    /// No protection.
    Unprotected,
    /// Dual modular redundancy: recompute max/exp/sum and compare.
    Dmr,
    /// Selective neuron value restriction + checksum reuse (the paper's).
    Snvr,
}

/// Verification scheduling (Tables 1–2 comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyMode {
    /// Verify after every protected operation ("EFTA").
    PerStep,
    /// Unified verification: one product check per inner iteration, one
    /// rowsum restriction and one output check after the loop ("EFTA-o").
    Unified,
}

/// Full option set for the fused kernel.
#[derive(Clone, Copy, Debug)]
pub struct EftaOptions {
    /// GEMM protection scheme.
    pub gemm: GemmProtection,
    /// Softmax protection scheme.
    pub softmax: SoftmaxProtection,
    /// Verification scheduling.
    pub verify: VerifyMode,
    /// Checksum stride (8 = tensor-core aligned).
    pub stride: usize,
    /// Detection thresholds.
    pub thresholds: Thresholds,
    /// Quantise checksum operands through binary16 (the FP16 tensor-core
    /// operand path). Disable only in exact-algebra tests.
    pub quantize_checksums: bool,
}

impl EftaOptions {
    /// The paper's optimised configuration: strided ABFT + SNVR + unified
    /// verification ("EFTA-o").
    pub fn optimized() -> Self {
        EftaOptions {
            gemm: GemmProtection::Strided,
            softmax: SoftmaxProtection::Snvr,
            verify: VerifyMode::Unified,
            stride: 8,
            thresholds: Thresholds::calibrated(),
            quantize_checksums: true,
        }
    }

    /// The unoptimised configuration: same hybrid scheme, per-step
    /// verification ("EFTA" in Tables 1–2).
    pub fn per_step() -> Self {
        EftaOptions {
            verify: VerifyMode::PerStep,
            ..Self::optimized()
        }
    }

    /// All protection disabled — the fused kernel degenerates to flash
    /// attention (the overhead baseline of Figs. 10–13).
    pub fn unprotected() -> Self {
        EftaOptions {
            gemm: GemmProtection::Unprotected,
            softmax: SoftmaxProtection::Unprotected,
            verify: VerifyMode::Unified,
            stride: 8,
            thresholds: Thresholds::calibrated(),
            quantize_checksums: true,
        }
    }

    /// Replace the GEMM protection.
    pub fn with_gemm(mut self, g: GemmProtection) -> Self {
        self.gemm = g;
        self
    }

    /// Replace the softmax protection.
    pub fn with_softmax(mut self, s: SoftmaxProtection) -> Self {
        self.softmax = s;
        self
    }

    /// Replace the verification mode.
    pub fn with_verify(mut self, v: VerifyMode) -> Self {
        self.verify = v;
        self
    }

    /// Replace the thresholds.
    pub fn with_thresholds(mut self, t: Thresholds) -> Self {
        self.thresholds = t;
        self
    }

    /// Replace the checksum stride.
    pub fn with_stride(mut self, s: usize) -> Self {
        self.stride = s;
        self
    }
}

/// Effective checksum stride for the configured GEMM protection.
fn effective_stride(opts: &EftaOptions) -> usize {
    match opts.gemm {
        GemmProtection::Traditional => 1,
        _ => opts.stride,
    }
}

/// Encode K-row checksums for GEMM I under the configured scheme.
/// Traditional encoding pays the inter-thread gather (emulated by an
/// explicit transpose round-trip).
fn encode_k(opts: &EftaOptions, k_blk: &MatrixF32, stride: usize) -> StridedChecksums {
    match opts.gemm {
        GemmProtection::Traditional => {
            // Gather: data leaves the owning lanes (transpose), is folded,
            // and the result is scattered back — the communication the
            // strided design eliminates.
            let gathered = k_blk.transpose().transpose();
            encode_rows_strided(&gathered, 1, opts.quantize_checksums)
        }
        _ => encode_rows_strided(k_blk, stride, opts.quantize_checksums),
    }
}

/// Encode V-column checksums for GEMM II under the configured scheme.
fn encode_v(opts: &EftaOptions, v_blk: &MatrixF32) -> StridedChecksums {
    match opts.gemm {
        GemmProtection::Traditional => {
            let gathered = v_blk.transpose().transpose();
            encode_cols_strided(&gathered, 1, opts.quantize_checksums)
        }
        _ => encode_cols_strided(v_blk, opts.stride, opts.quantize_checksums),
    }
}

/// Strided sums under the configured scheme; the traditional path pays the
/// gather on verification too.
fn scheme_sums(opts: &EftaOptions, c: &MatrixF32, s: usize) -> (MatrixF32, MatrixF32) {
    match opts.gemm {
        GemmProtection::Traditional => {
            let gathered = c.transpose().transpose();
            (
                strided_sums(&gathered, s),
                strided_sums_weighted(&gathered, s),
            )
        }
        _ => (strided_sums(c, s), strided_sums_weighted(c, s)),
    }
}

struct RowBlockResult {
    slot: usize,
    r0: usize,
    o: MatrixF32,
}

/// Per-(slot, row-block) worker state shared across the inner loop.
struct Worker<'a, I: FaultInjector> {
    cfg: &'a AttentionConfig,
    opts: &'a EftaOptions,
    inj: &'a I,
    counters: &'a FtCounters,
    timers: &'a PhaseTimers,
}

impl<I: FaultInjector> Worker<'_, I> {
    /// Recompute located S elements exactly (a d-MAC dot product each).
    /// Checksum *location* is exact, but delta-subtraction cannot restore a
    /// value swamped by a 2^100-scale corruption (the delta's f32 ulp
    /// exceeds the true value), so located elements are recomputed instead.
    fn repair_s_elements(
        q_blk: &MatrixF32,
        k_blk: &MatrixF32,
        s_blk: &mut MatrixF32,
        locs: &[ft_abft::element::ErrorLoc],
    ) {
        for loc in locs {
            let mut acc = 0.0f32;
            for (a, b) in q_blk.row(loc.row).iter().zip(k_blk.row(loc.col)) {
                acc += a * b;
            }
            s_blk.set(loc.row, loc.col, acc);
        }
    }

    /// Execute one row block; returns its unnormalised-then-normalised O.
    #[allow(clippy::too_many_lines)]
    fn run(
        &self,
        slot: usize,
        r0: usize,
        q_blk: &MatrixF32,
        km: &MatrixF32,
        vm: &MatrixF32,
    ) -> MatrixF32 {
        let cfg = self.cfg;
        let opts = self.opts;
        let inj = self.inj;
        let b = cfg.block;
        let d = cfg.head_dim;
        let rows = q_blk.rows();
        let s = effective_stride(opts);
        let protected = opts.gemm != GemmProtection::Unprotected;
        let snvr = opts.softmax == SoftmaxProtection::Snvr;
        let dmr = opts.softmax == SoftmaxProtection::Dmr;
        let per_step = opts.verify == VerifyMode::PerStep;

        let mut m = vec![f32::NEG_INFINITY; rows];
        let mut ell = vec![0.0f32; rows];
        let mut o: MatrixF32 = Matrix::zeros(rows, d);
        // Cauchy–Schwarz row norms of (scaled) Q: |S[i][j]| ≤ |q_i|·|k_j|.
        // Used by the SNVR max-plausibility restriction (see below).
        let q_norms: Vec<f32> = (0..rows)
            .map(|i| q_blk.row(i).iter().map(|x| x * x).sum::<f32>().sqrt())
            .collect();
        let mut o_c1: MatrixF32 = Matrix::zeros(rows, s);
        let mut o_c2: MatrixF32 = Matrix::zeros(rows, s);
        // Per-row history of block maxima (SNVR rowsum bounds).
        let mut max_hist: Vec<Vec<f32>> = vec![Vec::with_capacity(cfg.num_blocks()); rows];
        let mut needs_recompute = false;

        for (jb, c0) in block_starts(cfg.seq, b).enumerate() {
            let k_blk = km.block(c0, 0, b, d);
            let v_blk = vm.block(c0, 0, b, d);
            let bc = k_blk.rows();
            // A ragged final block may hold fewer rows than the checksum
            // stride; its S-side checksums fold at the narrower width.
            let sb = s.min(bc);

            // ---- GEMM I ------------------------------------------------
            let t0 = Instant::now();
            let mut s_blk = gemm_nt_inj(
                q_blk,
                &k_blk,
                inj,
                GemmCtx::new(FaultSite::GemmIAccum, slot)
                    .at(r0, c0)
                    .iter(3 * jb),
            );
            PhaseTimers::add(&self.timers.gemm1, t0.elapsed().as_nanos() as u64);

            // ---- GEMM I protection: encode + checksum GEMM --------------
            let mut s_c1 = None;
            let mut s_c2 = None;
            if protected {
                let t0 = Instant::now();
                let kcs = encode_k(opts, &k_blk, sb);
                // Traditional 1-wide checksums are padded to the 8-wide MMA
                // tile a tensor core must dedicate to them anyway — their
                // checksum GEMM costs the same as the strided design's, plus
                // the gather; this is the hardware economics of Fig. 11.
                let checksum_gemm = |w: &MatrixF32, it: usize| {
                    let ctx = GemmCtx::new(FaultSite::GemmIAccum, slot)
                        .at(r0, cfg.seq + c0)
                        .iter(3 * jb + it);
                    if opts.gemm == GemmProtection::Traditional {
                        let zero = Matrix::zeros(7, w.cols());
                        let padded = Matrix::vstack(&[w, &zero]);
                        let full = gemm_nt_inj(q_blk, &padded, inj, ctx);
                        full.block(0, 0, rows, 1)
                    } else {
                        gemm_nt_inj(q_blk, w, inj, ctx)
                    }
                };
                let c1 = checksum_gemm(&kcs.w1, 1);
                let c2 = checksum_gemm(&kcs.w2, 2);
                if per_step {
                    // "EFTA": verify the GEMM result immediately.
                    let sbe = if opts.gemm == GemmProtection::Traditional {
                        1
                    } else {
                        sb
                    };
                    let (sums1, sums2) = scheme_sums(opts, &s_blk, sbe);
                    let mut mismatches = Vec::new();
                    for i in 0..rows {
                        for t in 0..sbe {
                            if opts.thresholds.gemm.detects(sums1.get(i, t), c1.get(i, t)) {
                                mismatches.push(StridedMismatch {
                                    i,
                                    t,
                                    delta1: sums1.get(i, t) - c1.get(i, t),
                                    delta2: sums2.get(i, t) - c2.get(i, t),
                                });
                            }
                        }
                    }
                    if !mismatches.is_empty() {
                        let rep = correct_strided(&mut s_blk, &mismatches, sbe);
                        Self::repair_s_elements(q_blk, &k_blk, &mut s_blk, &rep.corrected);
                        FtCounters::add(&self.counters.gemm1_detected, rep.detections as u64);
                        FtCounters::add(&self.counters.gemm1_corrected, rep.corrected.len() as u64);
                        if rep.uncorrectable > 0 {
                            // Recompute the whole block cleanly.
                            s_blk = gemm_nt(q_blk, &k_blk);
                            FtCounters::add(
                                &self.counters.gemm1_recomputed,
                                rep.uncorrectable as u64,
                            );
                        }
                    }
                }
                s_c1 = Some(c1);
                s_c2 = Some(c2);
                PhaseTimers::add(&self.timers.gemm1_protect, t0.elapsed().as_nanos() as u64);
            }

            // ---- Softmax: reduce max ------------------------------------
            let t0 = Instant::now();
            let mut m_new = vec![0.0f32; rows];
            let mut blk_max = vec![0.0f32; rows];
            for i in 0..rows {
                let mut bm = f32::NEG_INFINITY;
                for &v in s_blk.row(i) {
                    bm = bm.max(v);
                }
                bm = inj.corrupt_f32(FaultSite::MaxReduce, OpCoord::new(slot, r0 + i, jb, 0), bm);
                blk_max[i] = bm;
                m_new[i] = m[i].max(bm);
            }
            PhaseTimers::add(&self.timers.softmax, t0.elapsed().as_nanos() as u64);

            // Max protection.
            let t0 = Instant::now();
            if snvr {
                // Case 1: restrict — a max below its block's true max risks
                // exp overflow; repair by recomputing.
                for i in 0..rows {
                    if let Restriction::Repaired { repaired } =
                        restrict_row_max(s_blk.row(i), blk_max[i])
                    {
                        blk_max[i] = repaired;
                        m_new[i] = m[i].max(repaired);
                        FtCounters::add(&self.counters.max_restricted, 1);
                    }
                }
                // Extension beyond the paper (DESIGN.md §4): a huge
                // *positive* GEMM error becomes the row max, after which
                // every exp underflows to zero on both the data and the
                // transported checksum — the product check is blind. The
                // Cauchy–Schwarz bound |S[i][j]| ≤ |q_i|·|k_j| is cheap to
                // maintain and unmasks the hijack; the offending element
                // (the argmax) is recomputed exactly.
                let k_max_norm = (0..bc)
                    .map(|j| k_blk.row(j).iter().map(|x| x * x).sum::<f32>().sqrt())
                    .fold(0.0f32, f32::max);
                for i in 0..rows {
                    let bound = q_norms[i] * k_max_norm * 1.05 + 1e-3;
                    if blk_max[i] > bound || !blk_max[i].is_finite() {
                        let (mut arg, mut best) = (0usize, f32::NEG_INFINITY);
                        for (j, &v) in s_blk.row(i).iter().enumerate() {
                            if v > best || !v.is_finite() {
                                best = v;
                                arg = j;
                            }
                        }
                        let before = s_blk.get(i, arg);
                        Self::repair_s_elements(
                            q_blk,
                            &k_blk,
                            &mut s_blk,
                            &[ft_abft::element::ErrorLoc {
                                row: i,
                                col: arg,
                                delta: best,
                            }],
                        );
                        if s_blk.get(i, arg) != before {
                            // The argmax itself was the corrupted element.
                            FtCounters::add(&self.counters.gemm1_corrected, 1);
                        }
                        let bm = s_blk
                            .row(i)
                            .iter()
                            .cloned()
                            .fold(f32::NEG_INFINITY, f32::max);
                        blk_max[i] = bm;
                        m_new[i] = m[i].max(bm);
                        FtCounters::add(&self.counters.max_restricted, 1);
                    }
                }
            } else if dmr {
                // Recompute the max a second time and compare.
                for i in 0..rows {
                    let mut bm2 = f32::NEG_INFINITY;
                    for &v in s_blk.row(i) {
                        bm2 = bm2.max(v);
                    }
                    bm2 = inj.corrupt_f32(
                        FaultSite::MaxReduce,
                        OpCoord::new(slot, r0 + i, jb, 1),
                        bm2,
                    );
                    if blk_max[i] != bm2 {
                        FtCounters::add(&self.counters.dmr_retries, 1);
                        // Third execution, fault-free arbitration.
                        let mut bm3 = f32::NEG_INFINITY;
                        for &v in s_blk.row(i) {
                            bm3 = bm3.max(v);
                        }
                        blk_max[i] = bm3;
                        m_new[i] = m[i].max(bm3);
                    }
                }
            }
            PhaseTimers::add(&self.timers.softmax_protect, t0.elapsed().as_nanos() as u64);

            // ---- Softmax: subtract + EXP --------------------------------
            let t0 = Instant::now();
            let mut p: MatrixF32 = Matrix::zeros(rows, bc);
            for i in 0..rows {
                let gi = r0 + i;
                let mi = m_new[i];
                let prow = p.row_mut(i);
                for (j, &sv) in s_blk.row(i).iter().enumerate() {
                    let diff = inj.corrupt_f32(
                        FaultSite::Subtract,
                        OpCoord::new(slot, gi, c0 + j, jb),
                        sv - mi,
                    );
                    let e = inj.corrupt_f32(
                        FaultSite::ExpUnit,
                        OpCoord::new(slot, gi, c0 + j, jb),
                        diff.exp(),
                    );
                    prow[j] = e;
                }
            }
            PhaseTimers::add(&self.timers.softmax, t0.elapsed().as_nanos() as u64);

            // ---- Softmax protection: product check / DMR ----------------
            let t0 = Instant::now();
            if snvr && protected {
                // Checksum reuse: transport S_c1 through subtraction + exp
                // and verify GEMM I + subtract + exp in one product check.
                let se = if opts.gemm == GemmProtection::Traditional {
                    1
                } else {
                    sb
                };
                let counts = residue_counts(bc, se);
                let mut tc1 = s_c1.clone().expect("protected");
                transport_subtract_max(&mut tc1, &m_new, &counts);
                let p_c1 = ft_abft::propagate::transport_exp(&tc1);
                let mismatches = verify_products(&p, &p_c1, se, opts.thresholds.exp_product);
                if !mismatches.is_empty() {
                    FtCounters::add(&self.counters.exp_detected, mismatches.len() as u64);
                    // Case 2: the product check already established an error
                    // in GEMM I ∪ subtract ∪ EXP; classify via the *linear*
                    // S invariant. The classifier floor sits above the
                    // FP16-checksum quantisation noise so a clean S (EXP
                    // fault) is not "corrected" into a corrupted one.
                    let classify_floor = opts.thresholds.gemm.abs_floor.max(1e-2);
                    let (sums1, sums2) = scheme_sums(opts, &s_blk, se);
                    let c1 = s_c1.as_ref().expect("protected");
                    let c2 = s_c2.as_ref().expect("protected");
                    let mut linear = Vec::new();
                    let mut exp_only = Vec::new();
                    for mm in &mismatches {
                        let d1 = sums1.get(mm.i, mm.t) - c1.get(mm.i, mm.t);
                        if d1.abs() > classify_floor || !d1.is_finite() {
                            linear.push(StridedMismatch {
                                i: mm.i,
                                t: mm.t,
                                delta1: d1,
                                delta2: sums2.get(mm.i, mm.t) - c2.get(mm.i, mm.t),
                            });
                        } else {
                            exp_only.push((mm.i, mm.t));
                        }
                    }
                    if !linear.is_empty() {
                        let rep = correct_strided(&mut s_blk, &linear, se);
                        Self::repair_s_elements(q_blk, &k_blk, &mut s_blk, &rep.corrected);
                        FtCounters::add(&self.counters.gemm1_detected, rep.detections as u64);
                        FtCounters::add(&self.counters.gemm1_corrected, rep.corrected.len() as u64);
                        if rep.uncorrectable > 0 {
                            s_blk = gemm_nt(q_blk, &k_blk);
                            FtCounters::add(
                                &self.counters.gemm1_recomputed,
                                rep.uncorrectable as u64,
                            );
                        }
                        // Recompute the affected residue classes of P from
                        // the corrected S.
                        for mm in &linear {
                            let mut col = mm.t;
                            while col < bc {
                                let e = (s_blk.get(mm.i, col) - m_new[mm.i]).exp();
                                p.set(mm.i, col, e);
                                col += se;
                            }
                        }
                    }
                    for (i, t) in exp_only {
                        // EXP fault: recompute the residue class cleanly.
                        let mut col = t;
                        while col < bc {
                            let e = (s_blk.get(i, col) - m_new[i]).exp();
                            p.set(i, col, e);
                            col += se;
                        }
                        FtCounters::add(&self.counters.exp_recomputed, 1);
                    }
                }
            } else if dmr {
                // Second replica of subtract+exp, compare, arbitrate.
                let mut disagreements = 0u64;
                for i in 0..rows {
                    let gi = r0 + i;
                    let mi = m_new[i];
                    for (j, &sv) in s_blk.row(i).iter().enumerate() {
                        let diff2 = inj.corrupt_f32(
                            FaultSite::Subtract,
                            OpCoord::new(slot, gi, c0 + j, 1000 + jb),
                            sv - mi,
                        );
                        let e2 = inj.corrupt_f32(
                            FaultSite::ExpUnit,
                            OpCoord::new(slot, gi, c0 + j, 1000 + jb),
                            diff2.exp(),
                        );
                        let e1 = p.get(i, j);
                        if (e1 - e2).abs() > 1e-6 * e1.abs().max(e2.abs()).max(1e-12) {
                            // Third, fault-free execution arbitrates.
                            p.set(i, j, (sv - mi).exp());
                            disagreements += 1;
                        }
                    }
                }
                FtCounters::add(&self.counters.dmr_retries, disagreements);
            }
            PhaseTimers::add(&self.timers.softmax_protect, t0.elapsed().as_nanos() as u64);

            // ---- Softmax: rowsum + rescale factors ----------------------
            let t0 = Instant::now();
            let mut factors = vec![0.0f32; rows];
            let mut rowsums = vec![0.0f32; rows];
            for i in 0..rows {
                let gi = r0 + i;
                let factor = if m[i].is_finite() {
                    (m[i] - m_new[i]).exp()
                } else {
                    0.0
                };
                let factor =
                    inj.corrupt_f32(FaultSite::Rescale, OpCoord::new(slot, gi, jb, 2), factor);
                let mut rs = 0.0f32;
                for &e in p.row(i) {
                    rs += e;
                }
                let rs = inj.corrupt_f32(FaultSite::SumReduce, OpCoord::new(slot, gi, jb, 1), rs);
                ell[i] = factor * ell[i] + rs;
                factors[i] = factor;
                rowsums[i] = rs;
                m[i] = m_new[i];
                max_hist[i].push(blk_max[i]);
            }
            PhaseTimers::add(&self.timers.softmax, t0.elapsed().as_nanos() as u64);

            // DMR protects the rowsum with a second summation.
            if dmr {
                let t0 = Instant::now();
                let mut disagreements = 0u64;
                for i in 0..rows {
                    let gi = r0 + i;
                    let mut rs2 = 0.0f32;
                    for &e in p.row(i) {
                        rs2 += e;
                    }
                    let rs2 = inj.corrupt_f32(
                        FaultSite::SumReduce,
                        OpCoord::new(slot, gi, jb, 2001),
                        rs2,
                    );
                    if (rowsums[i] - rs2).abs() > 1e-5 * rowsums[i].abs().max(rs2.abs()) {
                        // Third, fault-free execution arbitrates; redo the
                        // ℓ update with the arbitrated sum.
                        let mut rs3 = 0.0f32;
                        for &e in p.row(i) {
                            rs3 += e;
                        }
                        ell[i] = ell[i] - rowsums[i] + rs3;
                        rowsums[i] = rs3;
                        disagreements += 1;
                    }
                }
                FtCounters::add(&self.counters.dmr_retries, disagreements);
                PhaseTimers::add(&self.timers.softmax_protect, t0.elapsed().as_nanos() as u64);
            }

            // Per-step rowsum restriction ("EFTA" checks every iteration).
            if per_step && snvr {
                let t0 = Instant::now();
                for i in 0..rows {
                    if let Restriction::Repaired { .. } =
                        restrict_rowsum(ell[i], &max_hist[i], m[i], cfg.seq)
                    {
                        // Recompute the rowsum cleanly and redo the update.
                        let mut rs = 0.0f32;
                        for &e in p.row(i) {
                            rs += e;
                        }
                        // ℓ may already be poisoned from the corrupted
                        // accumulate; rebuild from the restriction bound.
                        let lower: f32 = max_hist[i].iter().map(|&mk| (mk - m[i]).exp()).sum();
                        ell[i] = (lower - (blk_max[i] - m[i]).exp()).max(0.0) + rs;
                        FtCounters::add(&self.counters.sum_restricted, 1);
                    }
                }
                PhaseTimers::add(&self.timers.softmax_protect, t0.elapsed().as_nanos() as u64);
            }

            // ---- GEMM II + rescale --------------------------------------
            let t0 = Instant::now();
            // P is quantised to FP16 to feed the second tensor-core GEMM.
            let p16 = p.to_f16().to_f32();
            let pv = gemm_nn_inj(
                &p16,
                &v_blk,
                inj,
                GemmCtx::new(FaultSite::GemmIiAccum, slot)
                    .at(r0, 0)
                    .iter(3 * jb),
            );
            for i in 0..rows {
                let f = factors[i];
                let gi = r0 + i;
                for (col, (ov, &dv)) in o.row_mut(i).iter_mut().zip(pv.row(i)).enumerate() {
                    let scaled = inj.corrupt_f32(
                        FaultSite::Rescale,
                        OpCoord::new(slot, gi, col, 4000 + jb),
                        f * *ov,
                    );
                    *ov = scaled + dv;
                }
            }
            PhaseTimers::add(&self.timers.gemm2, t0.elapsed().as_nanos() as u64);

            // ---- GEMM II protection -------------------------------------
            if protected {
                let t0 = Instant::now();
                let vcs = encode_v(opts, &v_blk);
                // Traditional checksums pay the full 8-wide MMA tile too.
                let checksum_gemm2 = |w: &MatrixF32, it: usize| {
                    let ctx = GemmCtx::new(FaultSite::GemmIiAccum, slot)
                        .at(r0, d)
                        .iter(3 * jb + it);
                    if opts.gemm == GemmProtection::Traditional {
                        let zero = Matrix::zeros(w.rows(), 7);
                        let padded = Matrix::hstack(&[w, &zero]);
                        let full = gemm_nn_inj(&p16, &padded, inj, ctx);
                        full.block(0, 0, rows, 1)
                    } else {
                        gemm_nn_inj(&p16, w, inj, ctx)
                    }
                };
                let pc1 = checksum_gemm2(&vcs.w1, 1);
                let pc2 = checksum_gemm2(&vcs.w2, 2);
                for i in 0..rows {
                    let f = factors[i];
                    for (ov, &dv) in o_c1.row_mut(i).iter_mut().zip(pc1.row(i)) {
                        *ov = f * *ov + dv;
                    }
                    for (ov, &dv) in o_c2.row_mut(i).iter_mut().zip(pc2.row(i)) {
                        *ov = f * *ov + dv;
                    }
                }
                if per_step {
                    // Verify the accumulated O invariant now. O is still
                    // unnormalised, so its magnitude (and the checksum
                    // rounding noise) grows with the running rowsum — the
                    // detection floor scales accordingly.
                    let (sums1, sums2) = scheme_sums(opts, &o, s);
                    let mut mismatches = Vec::new();
                    for i in 0..rows {
                        let chk_i = ft_abft::thresholds::Check::new(
                            opts.thresholds.output.rel,
                            opts.thresholds.output.abs_floor * (1.0 + ell[i].abs()),
                        );
                        for t in 0..s {
                            if chk_i.detects(sums1.get(i, t), o_c1.get(i, t)) {
                                mismatches.push(StridedMismatch {
                                    i,
                                    t,
                                    delta1: sums1.get(i, t) - o_c1.get(i, t),
                                    delta2: sums2.get(i, t) - o_c2.get(i, t),
                                });
                            }
                        }
                    }
                    if !mismatches.is_empty() {
                        let rep = correct_strided(&mut o, &mismatches, s);
                        FtCounters::add(&self.counters.gemm2_detected, rep.detections as u64);
                        FtCounters::add(&self.counters.gemm2_corrected, rep.corrected.len() as u64);
                        // A delta so large it swamps f32 cannot restore the
                        // true value by subtraction — recompute the block.
                        let catastrophic = rep.corrected.iter().any(|l| {
                            !l.delta.is_finite()
                                || l.delta.abs() > 1e3 * (o_c1.get(l.row, l.col % s).abs() + 1.0)
                        });
                        if rep.uncorrectable > 0 || catastrophic {
                            FtCounters::add(
                                &self.counters.gemm2_recomputed,
                                rep.uncorrectable.max(1) as u64,
                            );
                            needs_recompute = true;
                        }
                    }
                }
                PhaseTimers::add(&self.timers.gemm2_protect, t0.elapsed().as_nanos() as u64);
            }
        }

        // ---- Post-loop: SNVR rowsum restriction (unified) ---------------
        if snvr && !per_step {
            let t0 = Instant::now();
            for i in 0..rows {
                if let Restriction::Repaired { repaired } =
                    restrict_rowsum(ell[i], &max_hist[i], m[i], cfg.seq)
                {
                    // Optimised EFTA replaces ℓ with the approximation
                    // Σ_k exp(m_k − m) instead of recomputing.
                    ell[i] = repaired;
                    FtCounters::add(&self.counters.sum_restricted, 1);
                }
            }
            PhaseTimers::add(&self.timers.softmax_protect, t0.elapsed().as_nanos() as u64);
        }

        // ---- Normalise O (and checksums) ---------------------------------
        let t0 = Instant::now();
        for i in 0..rows {
            let gi = r0 + i;
            let inv = inj.corrupt_f32(
                FaultSite::Normalize,
                OpCoord::new(slot, gi, 0, 999),
                1.0 / ell[i],
            );
            for (col, v) in o.row_mut(i).iter_mut().enumerate() {
                *v = inj.corrupt_f32(
                    FaultSite::Normalize,
                    OpCoord::new(slot, gi, col, 1000),
                    *v * inv,
                );
            }
            if protected {
                for v in o_c1.row_mut(i) {
                    *v *= inv;
                }
                for v in o_c2.row_mut(i) {
                    *v *= inv;
                }
            }
        }
        PhaseTimers::add(&self.timers.gemm2, t0.elapsed().as_nanos() as u64);

        // ---- Final unified output verification ---------------------------
        if protected {
            let t0 = Instant::now();
            let (sums1, sums2) = scheme_sums(opts, &o, s);
            let mut mismatches = Vec::new();
            for i in 0..rows {
                for t in 0..s {
                    if opts
                        .thresholds
                        .output
                        .detects(sums1.get(i, t), o_c1.get(i, t))
                    {
                        mismatches.push(StridedMismatch {
                            i,
                            t,
                            delta1: sums1.get(i, t) - o_c1.get(i, t),
                            delta2: sums2.get(i, t) - o_c2.get(i, t),
                        });
                    }
                }
            }
            if !mismatches.is_empty() {
                let rep = correct_strided(&mut o, &mismatches, s);
                FtCounters::add(&self.counters.gemm2_detected, rep.detections as u64);
                FtCounters::add(&self.counters.gemm2_corrected, rep.corrected.len() as u64);
                let catastrophic = rep.corrected.iter().any(|l| {
                    !l.delta.is_finite()
                        || l.delta.abs() > 1e3 * (o_c1.get(l.row, l.col % s).abs() + 1.0)
                });
                if rep.uncorrectable > 0 || catastrophic {
                    FtCounters::add(
                        &self.counters.gemm2_recomputed,
                        rep.uncorrectable.max(1) as u64,
                    );
                    needs_recompute = true;
                }
            }
            PhaseTimers::add(&self.timers.gemm2_protect, t0.elapsed().as_nanos() as u64);
        }

        if needs_recompute {
            // Uncorrectable damage: recompute the whole row block cleanly
            // (the paper's recomputation fallback).
            let mut state = crate::flash::OnlineState::new(rows, d);
            for c0 in block_starts(cfg.seq, b) {
                let k_blk = km.block(c0, 0, b, d);
                let v_blk = vm.block(c0, 0, b, d);
                let s_blk = gemm_nt(q_blk, &k_blk);
                crate::flash::online_update(&mut state, &s_blk, &v_blk);
            }
            crate::flash::finalize(&mut state);
            o = state.o;
        }

        o
    }
}

/// Analytic kernel statistics of one EFTA forward pass under `opts`.
///
/// Purely shape-derived: benches use this to evaluate the simulated-A100
/// roofline at the paper's full sizes even when wall-clock runs are scaled
/// down.
pub fn analytic_stats(cfg: &AttentionConfig, opts: &EftaOptions) -> KernelStats {
    let s = effective_stride(opts);
    let protected = opts.gemm != GemmProtection::Unprotected;
    let b = cfg.block;
    let d = cfg.head_dim;
    let slots = cfg.num_slots() as u64;
    let nb = cfg.num_blocks() as u64;
    let blk_bytes = (b * d * 2) as u64;
    let seq2 = (cfg.seq * cfg.seq) as u64;
    let mut stats = KernelStats {
        launches: 1,
        hbm_read: slots * (nb * blk_bytes + nb * nb * 2 * blk_bytes),
        hbm_written: slots * (cfg.seq * d * 2) as u64,
        tc_flops: slots * 2 * gemm_flops(cfg.seq, cfg.seq, d),
        fp32_flops: slots * 4 * seq2,
        sfu_ops: slots * seq2,
        serial_flops: 0,
    };
    if protected {
        // Checksum GEMMs: on tensor cores a width-s (or padded-to-8
        // traditional) operand occupies at least one 8-wide MMA tile; two
        // checksums on each of the two GEMMs.
        let cw = s.max(8);
        stats.tc_flops += slots * 2 * gemm_flops(cfg.seq, cw, d) * nb * 2;
        // Encode reductions and verification strided sums are FP32 work
        // that cannot hide under the tensor-core pipeline: encode touches
        // every K/V element per block pair, verification reduces every S/O
        // element once.
        let encode = 4 * (cfg.seq * d) as u64 * nb;
        let verify = seq2 + 2 * (cfg.seq * d) as u64;
        let mut serial = encode + verify;
        if opts.gemm == GemmProtection::Traditional {
            // Inter-thread gather: 5 shuffle rounds per folded value plus
            // warp divergence on the 1-wide fold (≈7/8 idle lanes).
            serial = serial * 3 + 5 * seq2;
        }
        stats.serial_flops += slots * serial;
        stats.hbm_read += slots * nb * nb * 2 * (cw * d * 2) as u64 / 8;
    }
    match opts.softmax {
        SoftmaxProtection::Dmr => {
            // Full second execution of subtract+exp+sum, plus comparisons —
            // redundant work competes for the same units and serialises.
            stats.sfu_ops += slots * seq2;
            stats.serial_flops += slots * 4 * seq2;
        }
        SoftmaxProtection::Snvr => {
            // Product check: one multiply per element + transported
            // checksum exp + restriction comparisons per row.
            stats.serial_flops += slots * (seq2 / 2 + 4 * cfg.seq as u64 * nb);
            stats.sfu_ops += slots * (cfg.seq * s) as u64 * nb;
        }
        SoftmaxProtection::Unprotected => {}
    }
    if opts.verify == VerifyMode::PerStep && protected {
        // Per-iteration verification re-reduces S and O every block step
        // instead of once: nb-fold more verification sums.
        stats.serial_flops += slots * (2 * seq2 + (cfg.seq * d) as u64 * nb);
    }
    stats
}

/// Fused EFTA kernel body; [`crate::backend::EftaBackend`] is the public
/// entry point.
pub(crate) fn efta_forward<I: FaultInjector>(
    cfg: &AttentionConfig,
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
    inj: &I,
    opts: &EftaOptions,
) -> AttentionOutput {
    assert!(
        !cfg.causal,
        "EFTA protects unmasked attention (paper setting)"
    );
    assert!(
        cfg.seq >= opts.stride,
        "sequence shorter than checksum stride"
    );
    let counters = FtCounters::new();
    let timers = PhaseTimers::new();
    let b = cfg.block;
    let d = cfg.head_dim;

    let tasks: Vec<(usize, usize)> = (0..cfg.num_slots())
        .flat_map(|s| block_starts(cfg.seq, b).map(move |r0| (s, r0)))
        .collect();

    let worker = Worker {
        cfg,
        opts,
        inj,
        counters: &counters,
        timers: &timers,
    };

    let results: Vec<RowBlockResult> = tasks
        .into_par_iter()
        .map(|(slot, r0)| {
            let qm = q.slot_flat(slot);
            let km = k.slot_flat(slot).to_f32();
            let vm = v.slot_flat(slot).to_f32();
            let q_raw = qm.block(r0, 0, b, d).to_f32();
            let q_blk = Matrix::from_fn(q_raw.rows(), d, |i, j| q_raw.get(i, j) * cfg.scale);
            let o = worker.run(slot, r0, &q_blk, &km, &vm);
            RowBlockResult { slot, r0, o }
        })
        .collect();

    let mut o = Tensor4F32::zeros(cfg.batch, cfg.heads, cfg.seq, cfg.head_dim);
    for r in results {
        let (bi, h) = o.unflatten(r.slot);
        o.slot_mut(bi, h).set_block(r.r0, 0, &r.o);
    }

    let mut timeline = Timeline::new();
    timeline.push("efta", analytic_stats(cfg, opts));

    AttentionOutput {
        o,
        timeline,
        report: counters.snapshot(),
        phases: timers.snapshot_secs(),
    }
}

/// Run the fused EFTA kernel.
///
/// Compatibility shim: new code should go through the unified API —
/// `BackendKind::Efta(opts)` and [`crate::backend::AttentionBackend::run`].
#[doc(hidden)]
pub fn efta_attention<I: FaultInjector>(
    cfg: &AttentionConfig,
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
    inj: &I,
    opts: &EftaOptions,
) -> AttentionOutput {
    use crate::backend::{AttentionBackend, AttentionRequest, EftaBackend};
    EftaBackend { options: *opts }.run(&AttentionRequest::new(*cfg, q, k, v).with_injector(inj))
}

/// Convenience: fault-free EFTA with the optimised options.
pub fn efta_attention_clean(
    cfg: &AttentionConfig,
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
) -> AttentionOutput {
    efta_attention(cfg, q, k, v, &NoFaults, &EftaOptions::optimized())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_attention;
    use ft_num::rng::normal_tensor_f16;
    use ft_sim::SeuInjector;

    fn qkv(cfg: &AttentionConfig, seed: u64) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
        let q = normal_tensor_f16(seed, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
        let k = normal_tensor_f16(seed + 1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
        let v = normal_tensor_f16(seed + 2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
        (q, k, v)
    }

    fn small_cfg() -> AttentionConfig {
        AttentionConfig::new(1, 2, 64, 32).with_block(32)
    }

    #[test]
    fn clean_efta_matches_reference() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 50);
        let out = efta_attention_clean(&cfg, &q, &k, &v);
        let reference = reference_attention(&cfg, &q, &k, &v);
        let diff = out.o.max_abs_diff(&reference);
        assert!(diff < 2e-3, "diff {diff}");
        assert!(out.report.clean(), "{:?}", out.report);
    }

    #[test]
    fn clean_efta_per_step_matches_reference() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 51);
        let out = efta_attention(&cfg, &q, &k, &v, &NoFaults, &EftaOptions::per_step());
        let reference = reference_attention(&cfg, &q, &k, &v);
        assert!(out.o.max_abs_diff(&reference) < 2e-3);
        assert!(out.report.clean(), "{:?}", out.report);
    }

    #[test]
    fn clean_efta_traditional_and_dmr_match_reference() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 52);
        for opts in [
            EftaOptions::per_step().with_gemm(GemmProtection::Traditional),
            EftaOptions::per_step().with_softmax(SoftmaxProtection::Dmr),
            EftaOptions::unprotected(),
        ] {
            let out = efta_attention(&cfg, &q, &k, &v, &NoFaults, &opts);
            let reference = reference_attention(&cfg, &q, &k, &v);
            assert!(
                out.o.max_abs_diff(&reference) < 2e-3,
                "opts {opts:?}: diff {}",
                out.o.max_abs_diff(&reference)
            );
            assert!(out.report.clean(), "opts {opts:?}: {:?}", out.report);
        }
    }

    #[test]
    fn gemm1_seu_is_detected_and_corrected() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 53);
        let clean = efta_attention_clean(&cfg, &q, &k, &v);
        // Exponent-bit flip in the GEMM I accumulator of element (5, 40)
        // of slot 1 (data pass of block 1: iter 3).
        // Setting exponent bit 30 of a sub-2.0 accumulator produces a
        // ~2^128× error: unmissable at any sane threshold.
        let inj = SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(1, 5, 40, 3), 30)
            .at_chain_step(20);
        let out = efta_attention(&cfg, &q, &k, &v, &inj, &EftaOptions::optimized());
        assert_eq!(inj.fired(), 1, "fault must fire");
        // Depending on the corrupted accumulator's sign the error is caught
        // by the product check (negative-huge) or by the max-plausibility
        // restriction (positive-huge hijack); both must repair it.
        assert!(out.report.total_detected() > 0, "{:?}", out.report);
        assert!(out.report.total_repaired() > 0, "{:?}", out.report);
        let diff = out.o.max_abs_diff(&clean.o);
        assert!(diff < 5e-2, "corrected output differs by {diff}");
    }

    #[test]
    fn exp_seu_is_detected_and_recomputed() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 54);
        let clean = efta_attention_clean(&cfg, &q, &k, &v);
        let inj = SeuInjector::new(FaultSite::ExpUnit, OpCoord::new(0, 3, 17, 0), 27);
        let out = efta_attention(&cfg, &q, &k, &v, &inj, &EftaOptions::optimized());
        assert_eq!(inj.fired(), 1);
        assert!(out.report.exp_detected > 0, "{:?}", out.report);
        assert!(out.report.exp_recomputed > 0, "{:?}", out.report);
        assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
    }

    #[test]
    fn gemm2_seu_is_detected_and_corrected() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 55);
        let clean = efta_attention_clean(&cfg, &q, &k, &v);
        let inj = SeuInjector::new(FaultSite::GemmIiAccum, OpCoord::new(1, 9, 5, 3), 30)
            .at_chain_step(10);
        let out = efta_attention(&cfg, &q, &k, &v, &inj, &EftaOptions::optimized());
        assert_eq!(inj.fired(), 1);
        assert!(out.report.gemm2_detected > 0, "{:?}", out.report);
        let diff = out.o.max_abs_diff(&clean.o);
        assert!(diff < 5e-2, "diff {diff}");
    }

    /// Computing-unit fault that scales one value at (site, coord) — used
    /// to place a deterministic out-of-range corruption (a single bit flip
    /// can land in-range, where the restriction tolerates it *by design*).
    struct ScaleFault {
        site: FaultSite,
        coord: OpCoord,
        scale: f32,
        fired: std::sync::atomic::AtomicU64,
    }

    impl FaultInjector for ScaleFault {
        fn corrupt_f32(&self, site: FaultSite, coord: OpCoord, value: f32) -> f32 {
            if site == self.site && coord == self.coord {
                self.fired
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                value * self.scale
            } else {
                value
            }
        }
        fn corrupt_f16(&self, _: FaultSite, _: OpCoord, value: ft_num::F16) -> ft_num::F16 {
            value
        }
        fn fired(&self) -> u64 {
            self.fired.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    #[test]
    fn sum_reduce_seu_is_range_restricted() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 56);
        let clean = efta_attention_clean(&cfg, &q, &k, &v);
        // Blow the rowsum far past the ℓ ≤ seq_len bound.
        let inj = ScaleFault {
            site: FaultSite::SumReduce,
            coord: OpCoord::new(0, 7, 1, 1),
            scale: 1e6,
            fired: std::sync::atomic::AtomicU64::new(0),
        };
        let out = efta_attention(&cfg, &q, &k, &v, &inj, &EftaOptions::optimized());
        assert_eq!(inj.fired(), 1);
        assert!(out.report.sum_restricted > 0, "{:?}", out.report);
        // ℓ is replaced by the lower-bound approximation, which rescales
        // the whole row by one positive factor: relative magnitudes (what
        // attention cares about, per the paper) are preserved exactly.
        let clean_row = clean.o.slot(0, 0).row(7);
        let out_row = out.o.slot(0, 0).row(7);
        let mut ratio = None;
        for (c, o) in clean_row.iter().zip(out_row) {
            if c.abs() > 1e-3 {
                let r = o / c;
                assert!(r.is_finite() && r > 0.0, "ratio {r}");
                match ratio {
                    None => ratio = Some(r),
                    Some(prev) => assert!(
                        (r - prev).abs() < 1e-2 * prev.abs(),
                        "row not uniformly rescaled: {r} vs {prev}"
                    ),
                }
            }
        }
        assert!(ratio.is_some(), "row must have non-trivial entries");
        // Other rows are untouched.
        for i in 0..16 {
            if i != 7 {
                let d: f32 = clean
                    .o
                    .slot(0, 0)
                    .row(i)
                    .iter()
                    .zip(out.o.slot(0, 0).row(i))
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f32::max);
                assert!(d < 1e-5, "row {i} changed by {d}");
            }
        }
        assert!(!out.o.has_non_finite());
    }

    #[test]
    fn in_range_rowsum_corruption_is_tolerated_by_design() {
        // A corruption that stays within [Σ exp(m_k − m), n] passes the
        // restriction — the paper accepts these because the attention
        // *ordering* (the relative magnitudes) is unaffected.
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 61);
        let inj = ScaleFault {
            site: FaultSite::SumReduce,
            coord: OpCoord::new(0, 7, 1, 1),
            scale: 1.3,
            fired: std::sync::atomic::AtomicU64::new(0),
        };
        let out = efta_attention(&cfg, &q, &k, &v, &inj, &EftaOptions::optimized());
        assert_eq!(inj.fired(), 1);
        assert!(!out.o.has_non_finite());
        // Row 7's weights are uniformly rescaled: ordering preserved.
        let row = out.o.slot(0, 0).row(7).to_vec();
        assert!(row.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn positive_max_hijack_is_unmasked_by_plausibility_bound() {
        // A +2^128-scale GEMM error becomes the row max and silences the
        // product check (every exp underflows on both sides). The
        // Cauchy–Schwarz restriction catches it (extension; DESIGN.md §4).
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 62);
        let clean = efta_attention_clean(&cfg, &q, &k, &v);
        let inj = ScaleFault {
            site: FaultSite::MaxReduce,
            coord: OpCoord::new(0, 3, 0, 0),
            scale: 1e20,
            fired: std::sync::atomic::AtomicU64::new(0),
        };
        let out = efta_attention(&cfg, &q, &k, &v, &inj, &EftaOptions::optimized());
        assert_eq!(inj.fired(), 1);
        assert!(out.report.max_restricted > 0, "{:?}", out.report);
        assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
        assert!(!out.o.has_non_finite());
    }

    #[test]
    fn max_reduce_seu_cancels_or_is_restricted() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 57);
        let clean = efta_attention_clean(&cfg, &q, &k, &v);
        // Flip the max downward (sign bit): dangerous direction → restricted.
        let inj = SeuInjector::new(FaultSite::MaxReduce, OpCoord::new(0, 2, 0, 0), 31);
        let out = efta_attention(&cfg, &q, &k, &v, &inj, &EftaOptions::optimized());
        assert_eq!(inj.fired(), 1);
        assert!(!out.o.has_non_finite());
        let diff = out.o.max_abs_diff(&clean.o);
        assert!(diff < 5e-2, "diff {diff}");
    }

    #[test]
    fn normalize_seu_is_caught_by_final_check() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 58);
        let clean = efta_attention_clean(&cfg, &q, &k, &v);
        // Corrupt one normalised output element (post-divide).
        let inj = SeuInjector::new(FaultSite::Normalize, OpCoord::new(0, 4, 9, 1000), 29);
        let out = efta_attention(&cfg, &q, &k, &v, &inj, &EftaOptions::optimized());
        assert_eq!(inj.fired(), 1);
        assert!(out.report.gemm2_detected > 0, "{:?}", out.report);
        assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
    }

    #[test]
    fn unprotected_efta_lets_faults_through() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 59);
        let clean = efta_attention_clean(&cfg, &q, &k, &v);
        // Column 40 lives in block j=1, whose data GEMM runs as iter 3.
        let inj = SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(0, 5, 40, 3), 30)
            .at_chain_step(20);
        let out = efta_attention(&cfg, &q, &k, &v, &inj, &EftaOptions::unprotected());
        assert_eq!(inj.fired(), 1);
        assert!(out.report.clean());
        // The corruption reaches the output.
        assert!(out.o.max_abs_diff(&clean.o) > 1e-2);
    }

    #[test]
    fn stats_reflect_single_launch_and_protection_overhead() {
        let cfg = small_cfg();
        let (q, k, v) = qkv(&cfg, 60);
        let protected = efta_attention_clean(&cfg, &q, &k, &v);
        let bare = efta_attention(&cfg, &q, &k, &v, &NoFaults, &EftaOptions::unprotected());
        assert_eq!(protected.timeline.total().launches, 1);
        assert!(protected.timeline.total().tc_flops > bare.timeline.total().tc_flops);
        assert!(protected.timeline.total().serial_flops > bare.timeline.total().serial_flops);
    }
}
