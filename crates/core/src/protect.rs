//! Graded protection policy for cache-resident K/V state.
//!
//! Every stream today pays the [`Full`](ProtectionLevel::Full) price:
//! FP32 strided checksums encoded on append and verified on every
//! attended read. That metadata rivals the FP16 payload at small head
//! dims, and ApproxABFT/ALBERTA-style results show selective or
//! approximate protection recovers most of the resilience at a fraction
//! of the overhead. [`ProtectionLevel`] is the per-stream knob: it rides
//! on [`GenerationRequest`](crate::serve::GenerationRequest), travels
//! with the stream through scheduling, parking, migration and recovery,
//! and is applied to the stream's [`KvCache`](crate::kv::KvCache)s at
//! creation.
//!
//! The lattice, strongest to weakest:
//!
//! ```text
//!        Full            encode on append, verify every attended read,
//!         │              locate/correct or poison     (legacy, default)
//!        Lazy            same metadata; append-time ragged-block heal
//!         │              deferred to attended reads
//!   Approximate{tol}     verify, but residuals |d1| ≤ tol are tolerated
//!         │              (counted, not corrected, never poison)
//!        Raw             no checksums, no max-norms, raw reads,
//!                        no poison, no recovery            (baseline)
//! ```
//!
//! Invariants the equivalence suites pin:
//!
//! * `Full` is bit-identical to the pre-lattice behaviour on every
//!   backend — it *is* the legacy path, untouched.
//! * `Raw` caches report zero checksum bytes
//!   ([`size_breakdown`](crate::kv::KvCache::size_breakdown)) and never
//!   set sticky poison, so no recovery policy ever fires for them.
//! * `Lazy`/`Approximate` carry the same metadata bytes as `Full`; only
//!   the verify policy differs.

use core::fmt;
use core::str::FromStr;

/// Default residual tolerance for [`ProtectionLevel::Approximate`] when
/// parsed from a bare `"approx"` (no explicit tolerance).
pub const DEFAULT_APPROX_TOL: f32 = 1e-2;

/// Per-stream KV-cache protection level.
///
/// Ordered strongest → weakest: `Full`, `Lazy`, `Approximate`, `Raw`.
/// See the [module docs](self) for the exact semantics of each rung.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ProtectionLevel {
    /// Encode on append, verify on every attended read, locate/correct
    /// or poison. Bit-identical to the pre-lattice legacy behaviour.
    #[default]
    Full,
    /// Same metadata as `Full`, but the append-time heal of a ragged
    /// trailing block is deferred: damage in an unfinished block is
    /// caught at the next attended read instead of at append.
    Lazy,
    /// Verify as `Full`, but checksum residuals with `|d1| <= tol` are
    /// *tolerated*: counted in the `cache_tolerated` ledger and left in
    /// place, never located/corrected and never poisoning the block
    /// (per ApproxABFT).
    Approximate {
        /// Largest absolute column/row checksum residual that is
        /// absorbed without correction.
        tol: f32,
    },
    /// No cache protection at all: no checksums or max-norms encoded,
    /// reads are raw, nothing poisons, no recovery ever triggers. The
    /// unprotected baseline of the campaign sweeps.
    Raw,
}

impl ProtectionLevel {
    /// Whether caches at this level encode checksum/max-norm metadata.
    /// `false` only for `Raw`.
    pub fn encodes_metadata(&self) -> bool {
        !matches!(self, ProtectionLevel::Raw)
    }

    /// The residual tolerance, when this level tolerates residuals.
    pub fn tolerance(&self) -> Option<f32> {
        match self {
            ProtectionLevel::Approximate { tol } => Some(*tol),
            _ => None,
        }
    }

    /// Whether the append-time ragged-block heal is deferred to reads.
    pub fn defers_append_heal(&self) -> bool {
        matches!(self, ProtectionLevel::Lazy)
    }

    /// Position in the lattice, strongest (0 = `Full`) to weakest
    /// (3 = `Raw`). Useful for ordering sweep output.
    pub fn rank(&self) -> u8 {
        match self {
            ProtectionLevel::Full => 0,
            ProtectionLevel::Lazy => 1,
            ProtectionLevel::Approximate { .. } => 2,
            ProtectionLevel::Raw => 3,
        }
    }
}

impl fmt::Display for ProtectionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectionLevel::Full => write!(f, "full"),
            ProtectionLevel::Lazy => write!(f, "lazy"),
            ProtectionLevel::Approximate { tol } => write!(f, "approx({tol})"),
            ProtectionLevel::Raw => write!(f, "raw"),
        }
    }
}

impl FromStr for ProtectionLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s {
            "full" => return Ok(ProtectionLevel::Full),
            "lazy" => return Ok(ProtectionLevel::Lazy),
            "raw" => return Ok(ProtectionLevel::Raw),
            "approx" => {
                return Ok(ProtectionLevel::Approximate {
                    tol: DEFAULT_APPROX_TOL,
                })
            }
            _ => {}
        }
        if let Some(inner) = s.strip_prefix("approx(").and_then(|r| r.strip_suffix(')')) {
            let tol: f32 = inner
                .trim()
                .parse()
                .map_err(|_| format!("bad approx tolerance: {inner:?}"))?;
            if !(tol.is_finite() && tol >= 0.0) {
                return Err(format!(
                    "approx tolerance must be finite and >= 0, got {tol}"
                ));
            }
            return Ok(ProtectionLevel::Approximate { tol });
        }
        Err(format!(
            "unknown protection level {s:?} (expected full | lazy | approx | approx(TOL) | raw)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full() {
        assert_eq!(ProtectionLevel::default(), ProtectionLevel::Full);
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let levels = [
            ProtectionLevel::Full,
            ProtectionLevel::Lazy,
            ProtectionLevel::Approximate { tol: 0.25 },
            ProtectionLevel::Raw,
        ];
        for l in levels {
            let parsed: ProtectionLevel = l.to_string().parse().unwrap();
            assert_eq!(parsed, l, "round trip of {l}");
        }
    }

    #[test]
    fn parse_accepts_bare_approx_and_rejects_garbage() {
        assert_eq!(
            "approx".parse::<ProtectionLevel>().unwrap(),
            ProtectionLevel::Approximate {
                tol: DEFAULT_APPROX_TOL
            }
        );
        assert!("approx(nope)".parse::<ProtectionLevel>().is_err());
        assert!("approx(-1.0)".parse::<ProtectionLevel>().is_err());
        assert!("paranoid".parse::<ProtectionLevel>().is_err());
    }

    #[test]
    fn lattice_helpers() {
        assert!(ProtectionLevel::Full.encodes_metadata());
        assert!(ProtectionLevel::Lazy.encodes_metadata());
        assert!(!ProtectionLevel::Raw.encodes_metadata());
        assert_eq!(
            ProtectionLevel::Approximate { tol: 0.5 }.tolerance(),
            Some(0.5)
        );
        assert_eq!(ProtectionLevel::Full.tolerance(), None);
        assert!(ProtectionLevel::Lazy.defers_append_heal());
        assert!(!ProtectionLevel::Approximate { tol: 0.5 }.defers_append_heal());
        let mut ranks: Vec<u8> = [
            ProtectionLevel::Raw,
            ProtectionLevel::Full,
            ProtectionLevel::Approximate { tol: 0.1 },
            ProtectionLevel::Lazy,
        ]
        .iter()
        .map(|l| l.rank())
        .collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }
}
