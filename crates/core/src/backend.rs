//! The unified attention backend API.
//!
//! The paper's core comparison (§3, Tables 1–2, Figs. 9–13) is *the same
//! attention computed by different protection pipelines*. This module makes
//! that comparison a first-class API seam:
//!
//! * [`AttentionRequest`] — one request type carrying the configuration,
//!   the Q/K/V operands, a fault-injector handle, and optional per-request
//!   overrides (detection thresholds, simulated device);
//! * [`AttentionBackend`] — one trait every kernel family implements:
//!   [`ReferenceBackend`], [`FlashBackend`], [`DecoupledBackend`],
//!   [`EftaBackend`];
//! * [`BackendKind`] — a registry enum selecting a backend *by name*
//!   (`FromStr`/`Display`), so benches, fault campaigns and CLIs can sweep
//!   protection pipelines from a string;
//! * [`AttentionBackend::run_batched`] — a default method that fans a
//!   request out over its `(batch, head)` slots with rayon, remapping
//!   fault-injection coordinates so a campaign targeting slot *s* of the
//!   batched problem hits the same computation in the split one.
//!
//! ```
//! use ft_core::backend::{AttentionBackend, AttentionRequest, BackendKind};
//! use ft_core::config::AttentionConfig;
//! use ft_num::rng::normal_tensor_f16;
//!
//! let cfg = AttentionConfig::new(1, 2, 64, 32).with_auto_block();
//! let q = normal_tensor_f16(1, 1, 2, 64, 32, 0.5);
//! let k = normal_tensor_f16(2, 1, 2, 64, 32, 0.5);
//! let v = normal_tensor_f16(3, 1, 2, 64, 32, 0.5);
//!
//! let backend: BackendKind = "efta-o".parse().unwrap();
//! let out = backend.run(&AttentionRequest::new(cfg, &q, &k, &v));
//! assert!(out.report.clean());
//! ```

use crate::config::AttentionConfig;
use crate::decode::DecodeRequest;
use crate::decoupled::DecoupledOptions;
use crate::efta::EftaOptions;
use crate::types::{AttentionOutput, FtReport, PhaseBreakdown};
use ft_abft::thresholds::Thresholds;
use ft_num::{Tensor4F16, Tensor4F32};
use ft_sim::cost::Timeline;
use ft_sim::device::{Device, KernelStats, OomError};
use ft_sim::{gemm_flops, ChainFault, FaultInjector, FaultSite, NoFaults, OpCoord};
use rayon::prelude::*;
use std::fmt;
use std::str::FromStr;

static NO_FAULTS: NoFaults = NoFaults;

/// One attention computation: configuration, operands, injector, overrides.
///
/// Built with [`AttentionRequest::new`] and the `with_*` builder methods;
/// consumed by any [`AttentionBackend`].
#[derive(Clone, Copy)]
pub struct AttentionRequest<'a> {
    /// Shape and tiling of the computation.
    pub cfg: AttentionConfig,
    /// Query tensor (`batch × heads × seq × head_dim`, FP16).
    pub q: &'a Tensor4F16,
    /// Key tensor (same shape as `q`).
    pub k: &'a Tensor4F16,
    /// Value tensor (same shape as `q`).
    pub v: &'a Tensor4F16,
    /// Fault injector consulted by every protected operation. Defaults to
    /// [`NoFaults`].
    pub injector: &'a dyn FaultInjector,
    /// Simulated device whose HBM the backend must fit in (only the
    /// decoupled pipeline materialises O(n²) state and can OOM). `None`
    /// means an unconstrained private [`Device::a100_40gb`].
    pub device: Option<&'a Device>,
    /// Per-request detection-threshold override; `None` keeps each
    /// backend's calibrated defaults.
    pub thresholds: Option<Thresholds>,
}

impl<'a> AttentionRequest<'a> {
    /// Request over `q`/`k`/`v` with no faults, no device constraint, and
    /// the backend's default thresholds.
    ///
    /// Panics if a tensor's shape disagrees with `cfg` — a shape mismatch
    /// is a programming error every backend would otherwise surface as an
    /// out-of-bounds index deep inside a kernel.
    pub fn new(
        cfg: AttentionConfig,
        q: &'a Tensor4F16,
        k: &'a Tensor4F16,
        v: &'a Tensor4F16,
    ) -> Self {
        for (name, t) in [("q", q), ("k", k), ("v", v)] {
            assert_eq!(
                (t.batch(), t.heads(), t.seq(), t.dim()),
                (cfg.batch, cfg.heads, cfg.seq, cfg.head_dim),
                "{name} tensor shape does not match the attention config",
            );
        }
        AttentionRequest {
            cfg,
            q,
            k,
            v,
            injector: &NO_FAULTS,
            device: None,
            thresholds: None,
        }
    }

    /// Attach a fault injector.
    pub fn with_injector(mut self, injector: &'a dyn FaultInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Constrain the run to a simulated device's HBM.
    pub fn with_device(mut self, device: &'a Device) -> Self {
        self.device = Some(device);
        self
    }

    /// Override the detection thresholds for this request.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = Some(thresholds);
        self
    }
}

impl fmt::Debug for AttentionRequest<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttentionRequest")
            .field("cfg", &self.cfg)
            .field("device", &self.device.is_some())
            .field("thresholds", &self.thresholds)
            .finish_non_exhaustive()
    }
}

/// Why a backend could not complete a request.
#[derive(Debug)]
pub enum BackendError {
    /// The simulated device ran out of HBM (the decoupled pipeline's
    /// O(n²) materialisation; paper Fig. 9).
    Oom(OomError),
    /// The backend does not support the requested configuration.
    Unsupported(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Oom(e) => write!(
                f,
                "simulated HBM exhausted: requested {} bytes with {} in use of {}",
                e.requested, e.in_use, e.capacity
            ),
            BackendError::Unsupported(msg) => write!(f, "unsupported request: {msg}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<OomError> for BackendError {
    fn from(e: OomError) -> Self {
        BackendError::Oom(e)
    }
}

/// An attention kernel family behind the unified request type.
///
/// Implementations must be cheap to construct and [`Sync`]: a backend is a
/// *strategy*, not a resource — all per-run state lives in the request and
/// the returned [`AttentionOutput`].
pub trait AttentionBackend: Sync {
    /// Stable human-readable name (matches [`BackendKind`]'s `Display`).
    fn name(&self) -> &'static str;

    /// Run the kernel, reporting OOM/unsupported configurations as errors.
    fn try_run(&self, req: &AttentionRequest<'_>) -> Result<AttentionOutput, BackendError>;

    /// Run the kernel; panics on [`BackendError`] (use [`try_run`] when the
    /// request may legitimately fail, e.g. decoupled at paper scale).
    ///
    /// [`try_run`]: AttentionBackend::try_run
    fn run(&self, req: &AttentionRequest<'_>) -> AttentionOutput {
        match self.try_run(req) {
            Ok(out) => out,
            Err(e) => panic!("{} backend failed: {e}", self.name()),
        }
    }

    /// Run the request as independent per-`(batch, head)` sub-requests in
    /// parallel and reassemble the output.
    ///
    /// Backends whose kernels already parallelise internally (flash, EFTA)
    /// gain nothing from this, but it gives every backend — including
    /// future ones that are sequential per head — a uniform scale-out path,
    /// and it is the seam a batching server schedules across. Fault
    /// coordinates are remapped so an injector aimed at slot `s` of the
    /// batched request fires in the matching sub-request. The first slot
    /// failure (e.g. decoupled OOM) aborts the batch and is returned.
    fn try_run_batched(&self, req: &AttentionRequest<'_>) -> Result<AttentionOutput, BackendError> {
        let cfg = req.cfg;
        let slots = cfg.num_slots();
        if slots <= 1 {
            return self.try_run(req);
        }
        let results: Vec<Result<AttentionOutput, BackendError>> = (0..slots)
            .into_par_iter()
            .map(|slot| {
                let sub_cfg = AttentionConfig {
                    batch: 1,
                    heads: 1,
                    ..cfg
                };
                let q = single_slot(req.q, slot);
                let k = single_slot(req.k, slot);
                let v = single_slot(req.v, slot);
                let injector = SlotOffsetInjector {
                    inner: req.injector,
                    offset: slot as u64,
                };
                let sub = AttentionRequest {
                    cfg: sub_cfg,
                    q: &q,
                    k: &k,
                    v: &v,
                    injector: &injector,
                    device: req.device,
                    thresholds: req.thresholds,
                };
                self.try_run(&sub)
            })
            .collect();
        let mut outputs = Vec::with_capacity(slots);
        for result in results {
            outputs.push(result?);
        }
        Ok(merge_slot_outputs(&cfg, outputs))
    }

    /// [`try_run_batched`](AttentionBackend::try_run_batched), panicking on
    /// [`BackendError`].
    fn run_batched(&self, req: &AttentionRequest<'_>) -> AttentionOutput {
        match self.try_run_batched(req) {
            Ok(out) => out,
            Err(e) => panic!("{} backend failed: {e}", self.name()),
        }
    }

    /// One incremental-decode step: attend the request's single query row
    /// over its [`KvCache`](crate::kv::KvCache) and return a
    /// `batch × heads × 1 × dim` output.
    ///
    /// The default is the unprotected [`reference_decode`] — every backend
    /// can serve decode traffic, but only backends with a protected decode
    /// variant (EFTA) override this to verify cache-resident state and the
    /// decode arithmetic itself.
    ///
    /// Every implementation must honour the request's sliding-window knob
    /// ([`DecodeRequest::window`]) and front-evicted caches
    /// ([`KvCache::evict_front`](crate::kv::KvCache::evict_front)):
    /// windowed or evicted decode is bit-identical to decoding against a
    /// fresh cache holding only the attended blocks (pinned for every
    /// [`BackendKind`] by `tests/eviction_equivalence.rs`). Both shared
    /// decode bodies implement this; a backend with its own decode path
    /// must preserve the invariant.
    ///
    /// [`reference_decode`]: crate::decode::reference_decode
    fn try_decode(&self, req: &DecodeRequest<'_>) -> Result<AttentionOutput, BackendError> {
        crate::decode::reference_decode(req)
    }

    /// [`try_decode`](AttentionBackend::try_decode), panicking on
    /// [`BackendError`].
    fn decode(&self, req: &DecodeRequest<'_>) -> AttentionOutput {
        match self.try_decode(req) {
            Ok(out) => out,
            Err(e) => panic!("{} backend failed to decode: {e}", self.name()),
        }
    }

    /// One continuous-batching sweep: every stream slice's `(stream, slot)`
    /// tiles — each spanning all of that stream's chunk rows, single decode
    /// rows and chunked-prefill chunks alike — run through one parallel
    /// fan-out. A tile verifies each attended cache block once and shares
    /// it across its rows, and fault events are attributed to per-stream
    /// [`FtReport`]s (see [`crate::serve`]).
    ///
    /// The default is the unprotected sweep; backends with a protected
    /// decode variant (EFTA) override it, exactly mirroring
    /// [`try_decode`](AttentionBackend::try_decode) — including the
    /// per-slice sliding-window knob
    /// ([`StreamSlice::window`](crate::serve::StreamSlice::window)) and
    /// front-evicted caches.
    ///
    /// Implementations never learn whether a chunk row is a real token or
    /// a speculative draft: the serving layer feeds provisional rows
    /// through the same visible-length tiles and rolls rejected ones back
    /// with [`KvCache::truncate_to`](crate::kv::KvCache::truncate_to)
    /// afterwards. That neutrality is what pins speculative decode
    /// bit-identical to plain decode on every backend in the registry
    /// (`tests/speculative_equivalence.rs`).
    fn try_decode_sweep(
        &self,
        slices: &[crate::serve::StreamSlice<'_>],
        injector: &dyn FaultInjector,
        thresholds: Option<Thresholds>,
    ) -> Result<Vec<crate::serve::StreamSweepOutput>, BackendError> {
        let _ = thresholds;
        crate::serve::sweep_unprotected(slices, injector)
    }

    /// [`try_decode_sweep`](AttentionBackend::try_decode_sweep), panicking
    /// on [`BackendError`].
    fn decode_sweep(
        &self,
        slices: &[crate::serve::StreamSlice<'_>],
        injector: &dyn FaultInjector,
        thresholds: Option<Thresholds>,
    ) -> Vec<crate::serve::StreamSweepOutput> {
        match self.try_decode_sweep(slices, injector, thresholds) {
            Ok(out) => out,
            Err(e) => panic!("{} backend failed to sweep: {e}", self.name()),
        }
    }
}

/// Extract one `(batch, head)` slot as a standalone 1×1 tensor.
fn single_slot(t: &Tensor4F16, slot: usize) -> Tensor4F16 {
    Tensor4F16::from_slots(1, 1, t.seq(), t.dim(), vec![t.slot_flat(slot).clone()])
}

/// Reassemble per-slot outputs into one batched [`AttentionOutput`].
///
/// Timelines merge *per kernel label*: slots execute as CTAs of the same
/// grid, so within one kernel their traffic and FLOPs add while launches do
/// not — but distinct kernels (the decoupled pipeline's three) stay
/// distinct records, preserving the sequential-kernel roofline model and
/// label-based timeline queries.
fn merge_slot_outputs(cfg: &AttentionConfig, outputs: Vec<AttentionOutput>) -> AttentionOutput {
    let mut report = FtReport::default();
    let mut phases = PhaseBreakdown::default();
    let mut labels: Vec<String> = Vec::new();
    let mut merged: Vec<KernelStats> = Vec::new();
    let mut slot_mats = Vec::with_capacity(outputs.len());
    for out in outputs {
        report = report.merged(&out.report);
        phases = phases.merged(&out.phases);
        for (label, stats) in out.timeline.records() {
            match labels.iter().position(|l| l == label) {
                Some(i) => {
                    merged[i] = KernelStats {
                        launches: merged[i].launches.max(stats.launches),
                        ..merged[i].merge(stats)
                    };
                }
                None => {
                    labels.push(label.clone());
                    merged.push(*stats);
                }
            }
        }
        slot_mats.push(out.o.slot_flat(0).clone());
    }
    let o = Tensor4F32::from_slots(cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, slot_mats);
    let mut timeline = Timeline::new();
    for (label, stats) in labels.into_iter().zip(merged) {
        timeline.push(label, stats);
    }
    AttentionOutput {
        o,
        timeline,
        report,
        phases,
    }
}

/// Wrapper shifting `OpCoord::slot` so sub-request kernels (which see slot
/// 0) consult the caller's injector at the original batched coordinates.
struct SlotOffsetInjector<'a> {
    inner: &'a dyn FaultInjector,
    offset: u64,
}

impl SlotOffsetInjector<'_> {
    #[inline]
    fn shift(&self, mut coord: OpCoord) -> OpCoord {
        coord.slot += self.offset;
        coord
    }
}

impl FaultInjector for SlotOffsetInjector<'_> {
    fn corrupt_f32(&self, site: FaultSite, coord: OpCoord, value: f32) -> f32 {
        self.inner.corrupt_f32(site, self.shift(coord), value)
    }
    fn corrupt_f16(&self, site: FaultSite, coord: OpCoord, value: ft_num::F16) -> ft_num::F16 {
        self.inner.corrupt_f16(site, self.shift(coord), value)
    }
    fn decide_chain(&self, site: FaultSite, coord: OpCoord, k_len: usize) -> Option<ChainFault> {
        self.inner.decide_chain(site, self.shift(coord), k_len)
    }
    fn fired(&self) -> u64 {
        self.inner.fired()
    }
    fn is_noop(&self) -> bool {
        self.inner.is_noop()
    }
}

// ---------------------------------------------------------------------------
// The four kernel families.
// ---------------------------------------------------------------------------

/// Naive exact attention — the correctness oracle.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceBackend;

impl AttentionBackend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn try_run(&self, req: &AttentionRequest<'_>) -> Result<AttentionOutput, BackendError> {
        let o = crate::reference::reference_forward(&req.cfg, req.q, req.k, req.v);
        // The oracle is not a performance subject, but give it an honest
        // analytic footprint: one launch materialising S and P row-wise.
        let cfg = &req.cfg;
        let slots = cfg.num_slots() as u64;
        let seq2 = (cfg.seq * cfg.seq) as u64;
        let stats = KernelStats {
            launches: 1,
            hbm_read: slots * 3 * (cfg.seq * cfg.head_dim * 2) as u64,
            hbm_written: slots * (cfg.seq * cfg.head_dim * 2) as u64,
            tc_flops: slots * 2 * gemm_flops(cfg.seq, cfg.seq, cfg.head_dim),
            fp32_flops: slots * 4 * seq2,
            sfu_ops: slots * seq2,
            serial_flops: 0,
        };
        let mut timeline = Timeline::new();
        timeline.push("reference", stats);
        Ok(AttentionOutput {
            o,
            timeline,
            report: FtReport::default(),
            phases: PhaseBreakdown::default(),
        })
    }
}

/// Tiled online-softmax flash attention — the unprotected baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlashBackend;

impl AttentionBackend for FlashBackend {
    fn name(&self) -> &'static str {
        "flash"
    }

    fn try_run(&self, req: &AttentionRequest<'_>) -> Result<AttentionOutput, BackendError> {
        Ok(crate::flash::flash_forward(&req.cfg, req.q, req.k, req.v))
    }
}

/// The traditional three-kernel ABFT + DMR pipeline (paper §3.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct DecoupledBackend {
    /// Protection options (thresholds, DMR settings, baseline switch).
    pub options: DecoupledOptions,
}

impl AttentionBackend for DecoupledBackend {
    fn name(&self) -> &'static str {
        if self.options.protect {
            "decoupled"
        } else {
            "decoupled-baseline"
        }
    }

    fn try_run(&self, req: &AttentionRequest<'_>) -> Result<AttentionOutput, BackendError> {
        if req.cfg.causal {
            return Err(BackendError::Unsupported(
                "the decoupled pipeline protects unmasked attention only".into(),
            ));
        }
        let mut opts = self.options;
        if let Some(t) = req.thresholds {
            opts.thresholds = t;
        }
        let fallback;
        let device = match req.device {
            Some(d) => d,
            None => {
                fallback = Device::a100_40gb();
                &fallback
            }
        };
        crate::decoupled::decoupled_forward(
            &req.cfg,
            req.q,
            req.k,
            req.v,
            &req.injector,
            &opts,
            device,
        )
        .map_err(BackendError::from)
    }
}

/// The fused end-to-end fault tolerant attention kernel (paper §3.2–3.4).
#[derive(Clone, Copy, Debug)]
pub struct EftaBackend {
    /// Protection options (GEMM/softmax scheme, verification mode, stride).
    pub options: EftaOptions,
}

impl Default for EftaBackend {
    fn default() -> Self {
        EftaBackend {
            options: EftaOptions::optimized(),
        }
    }
}

impl AttentionBackend for EftaBackend {
    fn name(&self) -> &'static str {
        use crate::efta::{GemmProtection, SoftmaxProtection, VerifyMode};
        if self.options.gemm == GemmProtection::Unprotected
            && self.options.softmax == SoftmaxProtection::Unprotected
        {
            "efta-unprotected"
        } else if self.options.verify == VerifyMode::Unified {
            "efta-o"
        } else {
            "efta"
        }
    }

    fn try_run(&self, req: &AttentionRequest<'_>) -> Result<AttentionOutput, BackendError> {
        if req.cfg.causal {
            return Err(BackendError::Unsupported(
                "EFTA protects unmasked attention (the paper's setting)".into(),
            ));
        }
        if req.cfg.seq < self.options.stride {
            return Err(BackendError::Unsupported(format!(
                "sequence length {} shorter than checksum stride {}",
                req.cfg.seq, self.options.stride
            )));
        }
        let mut opts = self.options;
        if let Some(t) = req.thresholds {
            opts.thresholds = t;
        }
        Ok(crate::efta::efta_forward(
            &req.cfg,
            req.q,
            req.k,
            req.v,
            &req.injector,
            &opts,
        ))
    }

    fn try_decode(&self, req: &DecodeRequest<'_>) -> Result<AttentionOutput, BackendError> {
        // efta_decode resolves req.thresholds itself.
        crate::decode::efta_decode(req, &self.options)
    }

    fn try_decode_sweep(
        &self,
        slices: &[crate::serve::StreamSlice<'_>],
        injector: &dyn FaultInjector,
        thresholds: Option<Thresholds>,
    ) -> Result<Vec<crate::serve::StreamSweepOutput>, BackendError> {
        crate::serve::sweep_efta(slices, injector, thresholds, &self.options)
    }
}

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// Every attention kernel family, selectable by name.
///
/// `FromStr` accepts the canonical names listed in [`BackendKind::NAMES`]
/// (case-insensitive) plus a few aliases; `Display` emits the canonical
/// name, so parse → display round-trips.
#[derive(Clone, Copy, Debug)]
pub enum BackendKind {
    /// Naive exact attention (correctness oracle).
    Reference,
    /// Unprotected tiled flash attention.
    Flash,
    /// Three-kernel decoupled ABFT + DMR pipeline.
    Decoupled(DecoupledOptions),
    /// Fused EFTA kernel with the given options.
    Efta(EftaOptions),
}

impl BackendKind {
    /// Canonical names accepted by `FromStr` (one per selectable variant).
    pub const NAMES: &'static [&'static str] = &[
        "reference",
        "flash",
        "decoupled",
        "decoupled-baseline",
        "efta",
        "efta-o",
        "efta-unprotected",
    ];

    /// One instance of every canonical backend, for sweeps.
    pub fn all() -> Vec<BackendKind> {
        Self::NAMES
            .iter()
            .map(|n| n.parse().expect("canonical name parses"))
            .collect()
    }

    /// Per-row oracle variant of
    /// [`try_decode_sweep`](AttentionBackend::try_decode_sweep): the
    /// original `(stream, row, slot)` fan-out, with every chunk row
    /// re-reading (and, under EFTA, re-verifying) its attended cache
    /// blocks itself. Output rows are bit-identical to the fused tile
    /// sweep on every backend — this is the baseline the fused kernel's
    /// equivalence suite and the serve bench's `--fused-only` report
    /// measure against.
    pub fn try_decode_sweep_per_row(
        &self,
        slices: &[crate::serve::StreamSlice<'_>],
        injector: &dyn FaultInjector,
        thresholds: Option<Thresholds>,
    ) -> Result<Vec<crate::serve::StreamSweepOutput>, BackendError> {
        match self {
            BackendKind::Reference | BackendKind::Flash | BackendKind::Decoupled(_) => {
                crate::serve::sweep_unprotected_per_row(slices, injector)
            }
            BackendKind::Efta(options) => {
                crate::serve::sweep_efta_per_row(slices, injector, thresholds, options)
            }
        }
    }
}

/// A backend name [`BackendKind::from_str`] did not recognise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown attention backend {:?}; expected one of: {}",
            self.input,
            BackendKind::NAMES.join(", ")
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for BackendKind {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "reference" | "ref" | "naive" => BackendKind::Reference,
            "flash" | "e2e" => BackendKind::Flash,
            "decoupled" | "decoupled-ft" => BackendKind::Decoupled(DecoupledOptions::default()),
            "decoupled-baseline" | "decoupled-unprotected" => {
                BackendKind::Decoupled(DecoupledOptions::unprotected())
            }
            // Paper naming: "EFTA" is per-step verification (Tables 1–2),
            // "EFTA-o" the optimised unified verification.
            "efta" | "efta-per-step" => BackendKind::Efta(EftaOptions::per_step()),
            "efta-o" | "efta-optimized" | "efta-unified" => {
                BackendKind::Efta(EftaOptions::optimized())
            }
            "efta-unprotected" => BackendKind::Efta(EftaOptions::unprotected()),
            _ => {
                return Err(ParseBackendError {
                    input: s.to_string(),
                })
            }
        })
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl AttentionBackend for BackendKind {
    fn name(&self) -> &'static str {
        match self {
            BackendKind::Reference => ReferenceBackend.name(),
            BackendKind::Flash => FlashBackend.name(),
            BackendKind::Decoupled(options) => DecoupledBackend { options: *options }.name(),
            BackendKind::Efta(options) => EftaBackend { options: *options }.name(),
        }
    }

    fn try_run(&self, req: &AttentionRequest<'_>) -> Result<AttentionOutput, BackendError> {
        match self {
            BackendKind::Reference => ReferenceBackend.try_run(req),
            BackendKind::Flash => FlashBackend.try_run(req),
            BackendKind::Decoupled(options) => DecoupledBackend { options: *options }.try_run(req),
            BackendKind::Efta(options) => EftaBackend { options: *options }.try_run(req),
        }
    }

    fn try_decode(&self, req: &DecodeRequest<'_>) -> Result<AttentionOutput, BackendError> {
        match self {
            // The decoupled pipeline's three-kernel O(n²) structure has no
            // incremental form; like reference and flash it serves decode
            // through the shared unprotected path.
            BackendKind::Reference | BackendKind::Flash | BackendKind::Decoupled(_) => {
                crate::decode::reference_decode(req)
            }
            BackendKind::Efta(options) => EftaBackend { options: *options }.try_decode(req),
        }
    }

    fn try_decode_sweep(
        &self,
        slices: &[crate::serve::StreamSlice<'_>],
        injector: &dyn FaultInjector,
        thresholds: Option<Thresholds>,
    ) -> Result<Vec<crate::serve::StreamSweepOutput>, BackendError> {
        match self {
            BackendKind::Reference | BackendKind::Flash | BackendKind::Decoupled(_) => {
                crate::serve::sweep_unprotected(slices, injector)
            }
            BackendKind::Efta(options) => {
                EftaBackend { options: *options }.try_decode_sweep(slices, injector, thresholds)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_num::rng::normal_tensor_f16;
    use ft_sim::SeuInjector;

    fn workload(cfg: &AttentionConfig, seed: u64) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
        let q = normal_tensor_f16(seed, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
        let k = normal_tensor_f16(seed + 1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
        let v = normal_tensor_f16(seed + 2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
        (q, k, v)
    }

    #[test]
    fn every_canonical_name_round_trips() {
        for name in BackendKind::NAMES {
            let kind: BackendKind = name.parse().unwrap();
            assert_eq!(&kind.to_string(), name, "Display must match FromStr");
        }
    }

    #[test]
    fn aliases_and_case_insensitivity() {
        assert_eq!(
            "EFTA-O".parse::<BackendKind>().unwrap().to_string(),
            "efta-o"
        );
        assert_eq!(
            "ref".parse::<BackendKind>().unwrap().to_string(),
            "reference"
        );
        assert_eq!("e2e".parse::<BackendKind>().unwrap().to_string(), "flash");
    }

    #[test]
    fn unknown_name_is_a_helpful_error() {
        let err = "warp-speed".parse::<BackendKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("warp-speed"));
        assert!(msg.contains("efta-o"), "error must list valid names: {msg}");
    }

    #[test]
    fn all_backends_run_through_the_trait() {
        let cfg = AttentionConfig::new(1, 2, 64, 32).with_block(32);
        let (q, k, v) = workload(&cfg, 90);
        let reference = BackendKind::Reference
            .run(&AttentionRequest::new(cfg, &q, &k, &v))
            .o;
        for kind in BackendKind::all() {
            let out = kind.run(&AttentionRequest::new(cfg, &q, &k, &v));
            let tol = match kind {
                BackendKind::Reference | BackendKind::Flash => 1e-4,
                _ => 5e-3,
            };
            let diff = out.o.max_abs_diff(&reference);
            assert!(diff < tol, "{kind}: diff {diff} exceeds {tol}");
        }
    }

    #[test]
    fn run_batched_matches_run() {
        let cfg = AttentionConfig::new(2, 3, 48, 16).with_block(16);
        let (q, k, v) = workload(&cfg, 91);
        for kind in ["flash", "efta-o", "decoupled"] {
            let kind: BackendKind = kind.parse().unwrap();
            let req = AttentionRequest::new(cfg, &q, &k, &v);
            let whole = kind.run(&req);
            let split = kind.run_batched(&req);
            let diff = split.o.max_abs_diff(&whole.o);
            assert!(diff < 1e-6, "{kind}: batched diff {diff}");
            assert_eq!(split.report, whole.report);
            // Per-label timeline merging: same kernel records, same
            // aggregate stats, so the sequential-kernel roofline model sees
            // the identical computation either way.
            assert_eq!(
                split.timeline.records().len(),
                whole.timeline.records().len(),
                "{kind}: batched run must keep per-kernel records"
            );
            assert_eq!(split.timeline.total(), whole.timeline.total(), "{kind}");
        }
    }

    #[test]
    fn try_run_batched_surfaces_per_slot_errors() {
        // A device too small for even one slot: the batched path must
        // return the OOM as a value, exactly like the unbatched one.
        let cfg = AttentionConfig::new(2, 2, 128, 32).with_block(32);
        let (q, k, v) = workload(&cfg, 96);
        let tiny = Device::with_capacity(1 << 14);
        let err = BackendKind::Decoupled(DecoupledOptions::default())
            .try_run_batched(&AttentionRequest::new(cfg, &q, &k, &v).with_device(&tiny))
            .unwrap_err();
        assert!(matches!(err, BackendError::Oom(_)), "{err}");
    }

    #[test]
    fn run_batched_remaps_injector_slots() {
        // An SEU aimed at slot 3 of the batched request must fire exactly
        // once in the split execution too, and be repaired the same way.
        let cfg = AttentionConfig::new(2, 2, 64, 32).with_block(32);
        let (q, k, v) = workload(&cfg, 92);
        let kind = BackendKind::Efta(EftaOptions::optimized());
        let clean = kind.run(&AttentionRequest::new(cfg, &q, &k, &v));
        let inj = SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(3, 5, 40, 3), 30)
            .at_chain_step(20);
        let out = kind.run_batched(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&inj));
        assert_eq!(inj.fired(), 1, "slot-remapped fault must fire once");
        assert!(out.report.total_detected() > 0, "{:?}", out.report);
        assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
    }

    #[test]
    fn thresholds_override_is_honoured() {
        // An absurdly tight threshold on clean data must raise false alarms
        // through the request override (proving the override reaches the
        // kernel).
        let cfg = AttentionConfig::new(1, 1, 64, 32).with_block(32);
        let (q, k, v) = workload(&cfg, 93);
        let paranoid = Thresholds {
            gemm: ft_abft::thresholds::Check::new(0.0, 1e-12),
            ..Thresholds::calibrated()
        };
        let out = BackendKind::Efta(EftaOptions::per_step())
            .run(&AttentionRequest::new(cfg, &q, &k, &v).with_thresholds(paranoid));
        assert!(
            out.report.total_detected() > 0,
            "tight thresholds must fire on FP16 checksum noise: {:?}",
            out.report
        );
    }

    #[test]
    fn decoupled_oom_surfaces_as_backend_error() {
        let cfg = AttentionConfig::new(1, 2, 256, 32).with_block(64);
        let (q, k, v) = workload(&cfg, 94);
        let tiny = Device::with_capacity(1 << 16);
        let err = BackendKind::Decoupled(DecoupledOptions::default())
            .try_run(&AttentionRequest::new(cfg, &q, &k, &v).with_device(&tiny))
            .unwrap_err();
        assert!(matches!(err, BackendError::Oom(_)), "{err}");
    }

    #[test]
    fn causal_is_unsupported_on_ft_backends() {
        let cfg = AttentionConfig::new(1, 1, 32, 16)
            .with_block(16)
            .with_causal(true);
        let (q, k, v) = workload(&cfg, 95);
        for kind in ["efta-o", "decoupled"] {
            let kind: BackendKind = kind.parse().unwrap();
            let err = kind
                .try_run(&AttentionRequest::new(cfg, &q, &k, &v))
                .unwrap_err();
            assert!(matches!(err, BackendError::Unsupported(_)), "{kind}: {err}");
        }
        // The unprotected kernels do support causal masking.
        let flash = BackendKind::Flash.run(&AttentionRequest::new(cfg, &q, &k, &v));
        let reference = BackendKind::Reference.run(&AttentionRequest::new(cfg, &q, &k, &v));
        assert!(flash.o.max_abs_diff(&reference.o) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "shape does not match")]
    fn shape_mismatch_is_rejected_at_request_construction() {
        let cfg = AttentionConfig::new(1, 2, 64, 32);
        let q = normal_tensor_f16(1, 1, 2, 64, 32, 0.5);
        let k = normal_tensor_f16(2, 1, 2, 32, 32, 0.5); // wrong seq
        let v = normal_tensor_f16(3, 1, 2, 64, 32, 0.5);
        let _ = AttentionRequest::new(cfg, &q, &k, &v);
    }
}
