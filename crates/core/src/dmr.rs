//! Dual modular redundancy (DMR) for softmax — the traditional nonlinear-op
//! protection (paper Eqs. 10–11) used by the decoupled baseline and by the
//! DMR arm of the Fig. 13 comparison.
//!
//! The exponential and the normalised weights are computed twice; a result
//! is accepted when consecutive replicas agree within ε and the row sums of
//! P are consistent. Replicas see *independent* fault draws (the replica
//! index enters the injection coordinate), so a transient fault makes the
//! replicas disagree and triggers re-execution, up to `max_rounds`.

use ft_num::{Matrix, MatrixF32};
use ft_sim::{FaultInjector, FaultSite, OpCoord};

/// DMR tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct DmrConfig {
    /// Element-wise agreement tolerance (ε in Eq. 10).
    pub epsilon: f32,
    /// Maximum re-execution rounds before accepting the last replica.
    pub max_rounds: usize,
}

impl Default for DmrConfig {
    fn default() -> Self {
        DmrConfig {
            epsilon: 1e-4,
            max_rounds: 3,
        }
    }
}

/// Outcome of a DMR-protected computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmrOutcome {
    /// Total replicas executed (≥ 2).
    pub executions: usize,
    /// Disagreement events observed.
    pub retries: usize,
    /// False when `max_rounds` was exhausted without agreement.
    pub stable: bool,
}

/// One replica of the stabilised row softmax of `s`, with faults injected at
/// the softmax sites under replica id `replica`.
fn softmax_replica<I: FaultInjector>(
    s: &MatrixF32,
    inj: &I,
    slot: usize,
    row_off: usize,
    replica: usize,
) -> MatrixF32 {
    let (m, n) = s.shape();
    let mut p = Matrix::zeros(m, n);
    for i in 0..m {
        let gi = row_off + i;
        let mut max = f32::NEG_INFINITY;
        for &v in s.row(i) {
            max = max.max(v);
        }
        max = inj.corrupt_f32(
            FaultSite::MaxReduce,
            OpCoord::new(slot, gi, replica, 100),
            max,
        );
        let mut sum = 0.0f32;
        let prow = p.row_mut(i);
        for (j, &v) in s.row(i).iter().enumerate() {
            let e = (v - max).exp();
            let e = inj.corrupt_f32(FaultSite::ExpUnit, OpCoord::new(slot, gi, j, replica), e);
            prow[j] = e;
            sum += e;
        }
        let sum = inj.corrupt_f32(
            FaultSite::SumReduce,
            OpCoord::new(slot, gi, replica, 101),
            sum,
        );
        let inv = 1.0 / sum;
        for v in prow.iter_mut() {
            *v *= inv;
        }
    }
    p
}

/// Replicas agree when every element differs by less than ε and every row of
/// the second replica sums to ≈ 1 (Eq. 11's rowsum check).
fn replicas_agree(a: &MatrixF32, b: &MatrixF32, eps: f32) -> bool {
    if a.max_abs_diff(b) >= eps {
        return false;
    }
    for i in 0..b.rows() {
        let sum: f32 = b.row(i).iter().sum();
        if (sum - 1.0).abs() >= eps.max(1e-3) {
            return false;
        }
    }
    true
}

/// DMR-protected row softmax: repeat until two consecutive replicas agree.
/// Returns the accepted P and the outcome record.
pub fn dmr_row_softmax<I: FaultInjector>(
    s: &MatrixF32,
    inj: &I,
    slot: usize,
    row_off: usize,
    cfg: &DmrConfig,
) -> (MatrixF32, DmrOutcome) {
    let mut prev = softmax_replica(s, inj, slot, row_off, 0);
    let mut executions = 1;
    let mut retries = 0;
    for round in 1..=cfg.max_rounds {
        let next = softmax_replica(s, inj, slot, row_off, round);
        executions += 1;
        if replicas_agree(&prev, &next, cfg.epsilon) {
            return (
                next,
                DmrOutcome {
                    executions,
                    retries,
                    stable: true,
                },
            );
        }
        retries += 1;
        prev = next;
    }
    (
        prev,
        DmrOutcome {
            executions,
            retries,
            stable: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_num::rng::{normal_matrix_f16, rng_from_seed};
    use ft_sim::{NoFaults, SeuInjector};

    #[test]
    fn fault_free_dmr_runs_exactly_two_replicas() {
        let mut rng = rng_from_seed(40);
        let s = normal_matrix_f16(&mut rng, 8, 16, 1.0).to_f32();
        let (p, out) = dmr_row_softmax(&s, &NoFaults, 0, 0, &DmrConfig::default());
        assert_eq!(out.executions, 2);
        assert_eq!(out.retries, 0);
        assert!(out.stable);
        for i in 0..8 {
            let sum: f32 = p.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn single_replica_fault_is_masked_by_retry() {
        let mut rng = rng_from_seed(41);
        let s = normal_matrix_f16(&mut rng, 8, 16, 1.0).to_f32();
        // Fault in replica 0's exp at (2, 5): exponent-bit flip.
        let inj = SeuInjector::new(FaultSite::ExpUnit, OpCoord::new(0, 2, 5, 0), 28);
        let (p, out) = dmr_row_softmax(&s, &inj, 0, 0, &DmrConfig::default());
        assert!(out.stable);
        assert!(out.retries >= 1, "disagreement must be observed");
        // Final P matches the clean softmax.
        let (clean, _) = dmr_row_softmax(&s, &NoFaults, 0, 0, &DmrConfig::default());
        assert!(p.max_abs_diff(&clean) < 1e-5);
    }

    #[test]
    fn max_reduce_fault_triggers_retry_and_converges() {
        let mut rng = rng_from_seed(42);
        let s = normal_matrix_f16(&mut rng, 4, 8, 1.0).to_f32();
        let inj = SeuInjector::new(FaultSite::MaxReduce, OpCoord::new(0, 1, 0, 100), 27);
        let (p, out) = dmr_row_softmax(&s, &inj, 0, 0, &DmrConfig::default());
        assert!(out.stable);
        let (clean, _) = dmr_row_softmax(&s, &NoFaults, 0, 0, &DmrConfig::default());
        assert!(p.max_abs_diff(&clean) < 1e-4);
    }

    #[test]
    fn coordinates_isolate_slots() {
        // A fault targeted at slot 3 must not affect slot 0's DMR.
        let mut rng = rng_from_seed(43);
        let s = normal_matrix_f16(&mut rng, 4, 8, 1.0).to_f32();
        let inj = SeuInjector::new(FaultSite::ExpUnit, OpCoord::new(3, 1, 1, 0), 28);
        let (_, out) = dmr_row_softmax(&s, &inj, 0, 0, &DmrConfig::default());
        assert_eq!(out.retries, 0);
        assert_eq!(inj.fired(), 0);
    }
}
