//! Continuous-batching decode: many generation streams, one kernel sweep.
//!
//! A serving system rarely decodes one sequence at a time. This module is
//! the kernel-level half of continuous batching (the model-level half —
//! embedding, layer wiring, sampling — lives in the `ft-transformer`
//! crate's `ServeSession`):
//!
//! * [`StreamSlice`] / [`StreamSweepOutput`] — one stream's slice of a
//!   batched decode sweep and its per-stream result. A slice carries a
//!   *chunk* of query rows (one row for a decoding stream, up to a prefill
//!   chunk for a stream still consuming its prompt); row `r` attends the
//!   causal prefix `0 .. cache.len() − c + r + 1` of that stream's own
//!   [`KvCache`].
//! * [`sweep_unprotected`] / [`sweep_efta`] — the batched multi-stream
//!   extensions of [`reference_decode`] / [`efta_decode`]: every
//!   `(stream, slot)` **tile** of every slice is flattened into **one**
//!   parallel sweep. A tile spans all of its stream's chunk rows, reads
//!   and verifies each attended cache block once, and runs every row's
//!   online-softmax accumulation against the shared buffer — chunked
//!   prefill pays block verification once per sweep instead of once per
//!   row. Fault events are accumulated into per-stream [`FtReport`]s — a
//!   cache hit on stream 3 lands in stream 3's report, not in a global
//!   blur — with per-block cache events attributed once per sweep. The
//!   numerics are the single-stream kernels' own per-slot bodies run
//!   row-major inside the tile, so a scheduled stream is bit-identical to
//!   the same stream decoded alone (the per-row fan-out survives as
//!   [`sweep_unprotected_per_row`] / [`sweep_efta_per_row`], the oracle
//!   the fused path is tested against).
//! * [`DecodeScheduler`] — the continuous-batching slot table: streams are
//!   admitted into free slots between sweeps (prompts consumed in
//!   prefill-chunk bites so a long prompt never stalls the batch), each
//!   sweep feeds every active stream its next chunk or its freshly sampled
//!   token, and finished streams retire between sweeps with their token
//!   history, accumulated fault report, and [`FinishReason`].
//! * The typed request/response lifecycle: streams are submitted as
//!   [`GenerationRequest`]s (per-stream `window`, [`SamplingMode`],
//!   [`RecoveryPolicy`]), the serving engine emits [`EngineEvent`]s per
//!   sweep, and [`DecodeScheduler::requeue`] is the recovery primitive —
//!   it turns a poisoned stream's emitted history into a fresh prefill
//!   source so the engine can rebuild the cache and resume.
//!
//! The scheduler is deliberately model-agnostic — it plans *which tokens
//! each stream feeds next* and records *what came back*; the driver owns
//! the forward pass:
//!
//! ```
//! use ft_core::serve::{DecodeScheduler, GenerationRequest, SchedulerConfig};
//!
//! let mut sched = DecodeScheduler::new(SchedulerConfig {
//!     max_active: 8,
//!     prefill_chunk: 4,
//!     ..Default::default()
//! });
//! // Two streams join: a 6-token prompt wanting 2 new tokens, and a
//! // 2-token prompt wanting 1.
//! let a = sched.submit_request(GenerationRequest::new(vec![1, 2, 3, 4, 5, 6], 2));
//! let b = sched.submit_request(GenerationRequest::new(vec![7, 8], 1));
//!
//! // Sweep 1: A feeds its first prefill chunk, B its whole prompt.
//! let plan = sched.plan();
//! assert_eq!(plan.len(), 2);
//! assert_eq!(plan[0].feed, vec![1, 2, 3, 4]);
//! assert!(!plan[0].sample, "A's prompt is not exhausted yet");
//! assert_eq!(plan[1].feed, vec![7, 8]);
//! assert!(plan[1].sample, "B samples from its last prompt logits");
//!
//! // The driver runs the batched sweep, then reports per-stream results.
//! sched.record(a, None, &Default::default());
//! sched.record(b, Some(9), &Default::default());
//!
//! // Sweep 2: A finishes prefill; B (done: 1 of 1 tokens) has retired.
//! let plan = sched.plan();
//! assert_eq!(plan.len(), 1);
//! assert_eq!(plan[0].feed, vec![5, 6]);
//! assert!(plan[0].sample);
//! sched.record(a, Some(40), &Default::default());
//! assert_eq!(sched.take_finished().len(), 1);
//! assert!(!sched.idle(), "A is still generating");
//! ```
//!
//! [`reference_decode`]: crate::decode::reference_decode
//! [`efta_decode`]: crate::decode::efta_decode

use crate::backend::BackendError;
use crate::decode::{
    efta_decode_slot, efta_decode_tile, reference_decode_slot, reference_decode_tile,
    sweep_tile_stats,
};
use crate::efta::{EftaOptions, GemmProtection, SoftmaxProtection};
use crate::kv::KvCache;
use crate::protect::ProtectionLevel;
use crate::types::{FtCounters, FtReport};
use ft_abft::thresholds::Thresholds;
use ft_num::{Matrix, MatrixF32, Tensor4F16, Tensor4F32};
use ft_sim::cost::Timeline;
use ft_sim::FaultInjector;
use rayon::prelude::*;
use std::collections::VecDeque;

/// Stable identity of one generation stream within a scheduler or serving
/// session. Also the namespace for per-stream fault-injection coordinates:
/// stream 0 of a session reproduces exactly the coordinates a standalone
/// single-stream decode would present.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl core::fmt::Display for StreamId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// One stream's slice of a batched decode sweep.
#[derive(Clone, Copy)]
pub struct StreamSlice<'a> {
    /// Which stream this slice belongs to (report attribution).
    pub stream: StreamId,
    /// The stream's own checksum-protected K/V store. Must already contain
    /// the chunk's K/V rows (appended by the caller before the sweep).
    pub cache: &'a KvCache,
    /// `batch × heads × c × dim` query rows: one for a decoding stream,
    /// `c > 1` for a prefill chunk. Row `r` attends the causal prefix
    /// `0 .. cache.len() − c + r + 1`.
    pub q: &'a Tensor4F16,
    /// Sliding-window attention for this stream: each row attends only the
    /// blocks holding the most recent `window` rows of its causal prefix
    /// (see [`DecodeRequest::window`](crate::decode::DecodeRequest::window)).
    /// Storage eviction must have been enforced *before* this chunk's rows
    /// were appended, so interior rows still find every block their own
    /// window reaches back to.
    pub window: Option<usize>,
}

impl StreamSlice<'_> {
    /// Cache length before this chunk's rows were appended.
    fn base(&self) -> usize {
        self.cache.len() - self.q.seq()
    }
}

/// Per-stream result of one batched sweep.
#[derive(Debug)]
pub struct StreamSweepOutput {
    /// The stream the result belongs to.
    pub stream: StreamId,
    /// `batch × heads × c × dim` attention rows (same row order as the
    /// slice's query chunk).
    pub o: Tensor4F32,
    /// Fault events attributed to this stream alone.
    pub report: FtReport,
    /// Analytic kernel stats of this stream's share of the sweep.
    pub timeline: Timeline,
}

fn validate(slices: &[StreamSlice<'_>]) {
    for s in slices {
        assert!(
            !s.cache.is_empty(),
            "{}: sweep over an empty cache",
            s.stream
        );
        assert_eq!(
            (s.q.batch(), s.q.heads(), s.q.dim()),
            (s.cache.batch(), s.cache.heads(), s.cache.dim()),
            "{}: query tensor does not match the cache geometry",
            s.stream
        );
        assert!(
            s.q.seq() >= 1 && s.q.seq() <= s.cache.len(),
            "{}: chunk of {} rows against a {}-row cache",
            s.stream,
            s.q.seq(),
            s.cache.len()
        );
        assert!(
            s.window != Some(0),
            "{}: a zero-row window cannot serve decode",
            s.stream
        );
    }
}

/// Flattened tile work units of a fused sweep: `(slice index, slot)` —
/// one tile spans every chunk row of that `(stream, slot)` pair, so each
/// attended cache block is verified once per tile rather than once per
/// row.
fn tile_units(slices: &[StreamSlice<'_>]) -> Vec<(usize, usize)> {
    let mut units = Vec::new();
    for (si, s) in slices.iter().enumerate() {
        for slot in 0..s.cache.num_slots() {
            units.push((si, slot));
        }
    }
    units
}

/// Flattened per-row work units of the oracle sweeps:
/// `(slice index, chunk row, slot)`.
fn row_work_units(slices: &[StreamSlice<'_>]) -> Vec<(usize, usize, usize)> {
    let mut units = Vec::new();
    for (si, s) in slices.iter().enumerate() {
        for row in 0..s.q.seq() {
            for slot in 0..s.cache.num_slots() {
                units.push((si, row, slot));
            }
        }
    }
    units
}

/// Regroup flat per-row outputs (in `row_work_units` order) into per-tile
/// `c × dim` matrices (in `tile_units` order), the shape [`assemble`]
/// consumes.
fn rows_to_tiles(slices: &[StreamSlice<'_>], rows: Vec<MatrixF32>) -> Vec<MatrixF32> {
    let mut tiles = Vec::new();
    let mut off = 0;
    for s in slices {
        let (c, ns, d) = (s.q.seq(), s.cache.num_slots(), s.cache.dim());
        for slot in 0..ns {
            tiles.push(Matrix::from_fn(c, d, |r, j| {
                rows[off + r * ns + slot].get(0, j)
            }));
        }
        off += c * ns;
    }
    tiles
}

/// Reassemble per-tile `c × dim` outputs (in `tile_units` order) into
/// per-stream output tensors, with an exact per-row attended census for
/// each stream's kernel stats (see
/// [`sweep_tile_stats`](crate::decode::sweep_tile_stats) — chunk rows are
/// charged their own causal prefix, and shared block reads are charged
/// once per tile, not once per row).
fn assemble(
    slices: &[StreamSlice<'_>],
    tiles: Vec<MatrixF32>,
    reports: Vec<FtReport>,
    protected: bool,
) -> Vec<StreamSweepOutput> {
    let mut out = Vec::with_capacity(slices.len());
    let mut tiles = tiles.into_iter();
    for (s, report) in slices.iter().zip(reports) {
        let (c, ns, d) = (s.q.seq(), s.cache.num_slots(), s.cache.dim());
        let mats: Vec<MatrixF32> = tiles.by_ref().take(ns).collect();
        let mut timeline = Timeline::new();
        timeline.push("decode", sweep_tile_stats(s.cache, c, s.window, protected));
        out.push(StreamSweepOutput {
            stream: s.stream,
            o: Tensor4F32::from_slots(s.cache.batch(), s.cache.heads(), c, d, mats),
            report,
            timeline,
        });
    }
    out
}

/// Unprotected batched sweep: one fused multi-row tile per
/// `(stream, slot)` work unit, each tile reading every attended cache
/// block once and running all chunk rows' online-softmax accumulation
/// against it (see `ft_core::decode::reference_decode_tile` — row
/// outputs are bit-identical to the per-row oracle
/// [`sweep_unprotected_per_row`]). The default
/// [`try_decode_sweep`](crate::backend::AttentionBackend::try_decode_sweep)
/// path for backends without a protected decode variant.
pub fn sweep_unprotected(
    slices: &[StreamSlice<'_>],
    inj: &dyn FaultInjector,
) -> Result<Vec<StreamSweepOutput>, BackendError> {
    validate(slices);
    let tiles: Vec<MatrixF32> = tile_units(slices)
        .into_par_iter()
        .map(|(si, slot)| {
            let s = &slices[si];
            let base = s.base();
            let q_chunk = s.q.slot_flat(slot).to_f32();
            reference_decode_tile(s.cache, slot, base + 1, base, &q_chunk, inj, s.window)
        })
        .collect();
    let reports = vec![FtReport::default(); slices.len()];
    Ok(assemble(slices, tiles, reports, false))
}

/// Per-row oracle for [`sweep_unprotected`]: the original
/// `(stream, row, slot)` fan-out, each unit decoding one chunk row alone.
/// Kept (and exported) as the equivalence baseline the fused tile sweep is
/// tested and benchmarked against — it re-reads every attended cache block
/// once **per row**, which is exactly the cost the fused sweep amortises.
pub fn sweep_unprotected_per_row(
    slices: &[StreamSlice<'_>],
    inj: &dyn FaultInjector,
) -> Result<Vec<StreamSweepOutput>, BackendError> {
    validate(slices);
    let rows: Vec<MatrixF32> = row_work_units(slices)
        .into_par_iter()
        .map(|(si, row, slot)| {
            let s = &slices[si];
            let base = s.base();
            let q_raw = chunk_row(s.q, slot, row);
            reference_decode_slot(
                s.cache,
                slot,
                base + row + 1,
                base + row,
                &q_raw,
                inj,
                s.window,
            )
        })
        .collect();
    let reports = vec![FtReport::default(); slices.len()];
    let tiles = rows_to_tiles(slices, rows);
    Ok(assemble(slices, tiles, reports, false))
}

/// EFTA-protected batched sweep: the multi-stream extension of
/// [`efta_decode`](crate::decode::efta_decode), fused into one multi-row
/// tile per `(stream, slot)` work unit. Each tile verifies every attended
/// cache block of its stream **once** per sweep
/// ([`KvCache::verified_block`]), exposes the corrected payload and stored
/// checksum operands to all chunk rows, and runs the protected per-row
/// pipeline against the shared buffer; fault events land in that stream's
/// [`FtReport`] only, with per-block cache events attributed once per
/// sweep (see [`sweep_efta_per_row`] for the row-granular oracle, which
/// attributes per attending row). Row outputs are bit-identical to the
/// oracle on every backend.
pub fn sweep_efta(
    slices: &[StreamSlice<'_>],
    inj: &dyn FaultInjector,
    thresholds: Option<Thresholds>,
    opts: &EftaOptions,
) -> Result<Vec<StreamSweepOutput>, BackendError> {
    let (thr, counters) = match efta_sweep_prologue(slices, thresholds, opts)? {
        Some(state) => state,
        None => return sweep_unprotected(slices, inj),
    };
    let tiles: Vec<MatrixF32> = tile_units(slices)
        .into_par_iter()
        .map(|(si, slot)| {
            let s = &slices[si];
            let base = s.base();
            let q_chunk = s.q.slot_flat(slot).to_f32();
            if !s.cache.protection().encodes_metadata() {
                // A Raw stream's cache stores no checksum operands, so the
                // protected tile has nothing to verify or reuse: that
                // slice (alone) reads unprotected inside the same sweep.
                return reference_decode_tile(
                    s.cache,
                    slot,
                    base + 1,
                    base,
                    &q_chunk,
                    inj,
                    s.window,
                );
            }
            efta_decode_tile(
                s.cache,
                slot,
                base + 1,
                base,
                &q_chunk,
                inj,
                &thr,
                opts,
                &counters[si],
                s.window,
            )
        })
        .collect();
    let reports = counters.iter().map(FtCounters::snapshot).collect();
    Ok(assemble(slices, tiles, reports, true))
}

/// Per-row oracle for [`sweep_efta`]: the original `(stream, row, slot)`
/// fan-out through the single-row protected body. Every row re-verifies
/// each attended cache block itself, so a resident cache fault is counted
/// once per *attending row* in the stream's report — the row-granular
/// attribution the fused sweep collapses to once per sweep. Output rows
/// are bit-identical to [`sweep_efta`]; only the counting granularity
/// (and the redundant re-verification cost) differ.
pub fn sweep_efta_per_row(
    slices: &[StreamSlice<'_>],
    inj: &dyn FaultInjector,
    thresholds: Option<Thresholds>,
    opts: &EftaOptions,
) -> Result<Vec<StreamSweepOutput>, BackendError> {
    let (thr, counters) = match efta_sweep_prologue(slices, thresholds, opts)? {
        Some(state) => state,
        None => return sweep_unprotected_per_row(slices, inj),
    };
    let rows: Vec<MatrixF32> = row_work_units(slices)
        .into_par_iter()
        .map(|(si, row, slot)| {
            let s = &slices[si];
            let base = s.base();
            let q_raw = chunk_row(s.q, slot, row);
            if !s.cache.protection().encodes_metadata() {
                // Raw slices read unprotected (see `sweep_efta`).
                return reference_decode_slot(
                    s.cache,
                    slot,
                    base + row + 1,
                    base + row,
                    &q_raw,
                    inj,
                    s.window,
                );
            }
            efta_decode_slot(
                s.cache,
                slot,
                base + row + 1,
                base + row,
                &q_raw,
                inj,
                &thr,
                opts,
                &counters[si],
                s.window,
            )
        })
        .collect();
    let reports = counters.iter().map(FtCounters::snapshot).collect();
    let tiles = rows_to_tiles(slices, rows);
    Ok(assemble(slices, tiles, reports, true))
}

/// Shared entry checks of the protected sweeps: option fallbacks,
/// validation, threshold resolution, and per-stream counters pre-seeded
/// with each cache's window-scoped sticky poison count. Returns `None`
/// when the options disable protection (callers degrade to their
/// unprotected variant).
#[allow(clippy::type_complexity)]
fn efta_sweep_prologue(
    slices: &[StreamSlice<'_>],
    thresholds: Option<Thresholds>,
    opts: &EftaOptions,
) -> Result<Option<(Thresholds, Vec<FtCounters>)>, BackendError> {
    if opts.gemm == GemmProtection::Unprotected && opts.softmax == SoftmaxProtection::Unprotected {
        return Ok(None);
    }
    if opts.gemm == GemmProtection::Traditional {
        return Err(BackendError::Unsupported(
            "decode reuses the cache's strided append-time checksums; the traditional \
             element scheme has no cached operands to reuse"
                .into(),
        ));
    }
    validate(slices);
    let thr = thresholds.unwrap_or(opts.thresholds);
    let counters: Vec<FtCounters> = slices.iter().map(|_| FtCounters::new()).collect();
    for (s, c) in slices.iter().zip(&counters) {
        // Sticky unrepairable damage is per stream: surface it in that
        // stream's report every sweep, scoped to the blocks the stream's
        // window can still attend (see `KvCache::poisoned_attended` — a
        // mark behind the window cannot reach any future token, so it must
        // not trip the engine's re-prefill trigger).
        FtCounters::add(&c.cache_uncorrectable, s.cache.poisoned_attended(s.window));
    }
    Ok(Some((thr, counters)))
}

/// Extract chunk row `row` of slot `slot` as an unscaled `1 × dim` f32 row
/// (per-row-oracle path only; the fused tiles convert each slot's whole
/// chunk once instead of allocating per row).
fn chunk_row(q: &Tensor4F16, slot: usize, row: usize) -> MatrixF32 {
    let m = q.slot_flat(slot);
    Matrix::from_fn(1, q.dim(), |_, j| m.get(row, j).to_f32())
}

// ---------------------------------------------------------------------------
// The typed request/response lifecycle.
// ---------------------------------------------------------------------------

/// How a finished stream picks each new token from its logits row.
///
/// Sampling is *deterministic* in every mode (serving equivalence and
/// recovery both depend on it): re-running a request — including the
/// engine's auto re-prefill after cache poisoning — reproduces the same
/// token sequence bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplingMode {
    /// Argmax over the logits row (ties to the lower index).
    #[default]
    Greedy,
    /// Pick uniformly (by a stateless hash of `seed`, the stream id, and
    /// the absolute token position) among the `k` largest logits. Position
    /// keying makes the choice reproducible across re-prefill recovery:
    /// the resumed stream re-draws exactly the tokens it already emitted.
    TopK {
        /// How many of the largest logits are eligible (clamped to ≥ 1).
        k: usize,
        /// Stateless draw seed.
        seed: u64,
    },
}

/// What the serving engine does when a stream's attended cache window
/// carries unrepairable damage (`cache_uncorrectable` /
/// [`KvCache::poisoned_attended`]).
///
/// Recovery is a *per-request* policy, not an engine-wide switch (the
/// ApproxABFT observation: workloads price a wrong token very differently),
/// and the bounded re-execution variant is the ALBERTA recipe applied to
/// serving: re-run the damaged unit — here the stream's whole cache, by
/// chunked re-prefill of everything already emitted — at most `max_attempts`
/// times before giving up.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Report the damage in the stream's fault history and keep decoding
    /// (the pre-lifecycle behavior; tokens may be wrong).
    #[default]
    None,
    /// Drop the stream's cache and re-prefill its prompt *plus every token
    /// already emitted*, then resume decoding — at most `max_attempts`
    /// times, after which the stream finishes with
    /// [`FinishReason::AbortedPoisoned`]. Deterministic sampling makes a
    /// successful recovery bit-identical to an undamaged run.
    ReprefillBounded {
        /// Re-prefill attempts before the stream is aborted.
        max_attempts: u32,
    },
    /// Like [`ReprefillBounded`](RecoveryPolicy::ReprefillBounded), but
    /// exploit the per-block sticky poison marks to *locate* the damage
    /// first: truncate the cache to the last clean block boundary before
    /// the first poisoned attended block (`KvCache::truncate_to` — whole
    /// tail blocks drop O(1), poison marks retiring with them) and
    /// re-prefill only the history suffix, so recovery cost is
    /// proportional to the attended window rather than the whole emitted
    /// history. Falls back to the full re-prefill when the damage cannot
    /// be exploited partially — the poisoned block is the first attended
    /// block, the suffix's own attention windows would reach behind the
    /// eviction frontier, or the sweep saw unrepairable damage that no
    /// sticky block mark localises. Either way a successful recovery is
    /// bit-identical to an undamaged run.
    ReprefillPartial {
        /// Recovery attempts (partial or fallback-full) before the stream
        /// is aborted.
        max_attempts: u32,
    },
}

/// Where a speculating stream's provisional tokens come from.
///
/// The contract of speculative decode here is the commit/rollback
/// machinery, not draft quality: any deterministic guess source is sound,
/// because the verify sweep commits exactly the prefix the plain decode
/// path would have emitted and rolls the rest back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DraftSource {
    /// Self-drafting greedy reuse: find the most recent earlier occurrence
    /// of the history's trailing `n`-gram and replay the tokens that
    /// followed it, repeating the last token when there is none — free and
    /// model-less, effective on repetitive traffic.
    NGram {
        /// Suffix gram length matched against the history (clamped ≥ 1).
        n: usize,
    },
    /// Scripted continuation: `script[i]` is the draft for the stream's
    /// `i`-th sampled token. Benches and tests force exact accept rates by
    /// scripting the plain-decode oracle tokens (or deliberate
    /// mismatches); positions past the script repeat the last token.
    Scripted(Vec<u32>),
}

/// Speculative-decoding knob of a [`GenerationRequest`]: draft-then-verify
/// multi-token decode over the checksum-protected cache.
///
/// Each decode sweep feeds the last sampled token *plus* up to `draft_len`
/// provisional tokens from the draft source as one fused multi-row chunk
/// (PR 7's visible-length tiles — each row attends exactly its own causal
/// prefix). Row `i`'s logits are sampled with the plain position-keyed
/// rule and compared against draft `i + 1`: the accepted prefix plus one
/// corrected/bonus token is committed, and `KvCache::truncate_to` rolls
/// the rejected rows back before the next sweep. The emitted stream is
/// **bit-identical to plain decode by construction** — speculation moves
/// throughput, never tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpeculationPolicy {
    /// Provisional tokens drafted per decode sweep (≥ 1; each sweep clamps
    /// it so the committed run cannot overshoot the token budget).
    pub draft_len: usize,
    /// Stop speculating for the stream after this many *consecutive*
    /// verify sweeps that accepted zero drafts (`None` = never back off).
    /// With the backoff engaged, a hostile accept rate degrades to plain
    /// decode instead of paying draft-width sweeps forever — this is what
    /// pins the serve bench's ≥ 1.0× floor at forced accept-rate 0.
    pub backoff_after: Option<u32>,
    /// Draft source.
    pub source: DraftSource,
}

impl SpeculationPolicy {
    /// Draft `draft_len` tokens per sweep by bigram self-drafting
    /// ([`DraftSource::NGram`] with `n = 2`), backing off after 2
    /// consecutive zero-accept sweeps.
    pub fn new(draft_len: usize) -> Self {
        assert!(draft_len > 0, "a zero-token draft cannot speculate");
        SpeculationPolicy {
            draft_len,
            backoff_after: Some(2),
            source: DraftSource::NGram { n: 2 },
        }
    }

    /// Replace the draft source.
    pub fn with_source(mut self, source: DraftSource) -> Self {
        self.source = source;
        self
    }

    /// Replace the zero-accept backoff threshold (`None` disables).
    pub fn with_backoff(mut self, backoff_after: Option<u32>) -> Self {
        self.backoff_after = backoff_after;
        self
    }
}

/// Scheduling class of a generation stream. Ordered: `Batch < Normal <
/// Latency`, so `as u64` is the base scheduling score the run queue sorts
/// by (higher goes first). Priority is the workload-awareness hook the
/// serving loop attaches to — ALBERTA's observation that protection and
/// scheduling decisions should know what the workload can afford lands
/// here first as admission ordering and preemption.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Throughput work: fills whatever capacity latency traffic leaves.
    Batch,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive: admitted first, never preempted by aging alone.
    Latency,
}

impl core::fmt::Display for Priority {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Priority::Batch => "batch",
            Priority::Normal => "normal",
            Priority::Latency => "latency",
        })
    }
}

/// Effective run-queue score of a stream that has waited `waited` plan
/// ticks: the base class, promoted one class per `aging` ticks of queue
/// delay (deadline-aware aging — a starved `Batch` stream eventually
/// competes as `Latency`), and never beyond `Latency`. `aging = None`
/// disables promotion.
fn aged_score(priority: Priority, waited: u64, aging: Option<u64>) -> u64 {
    let base = priority as u64;
    match aging {
        None => base,
        Some(n) => (base + waited / n.max(1)).min(Priority::Latency as u64),
    }
}

/// `k` provisional continuation tokens for `history` from a draft source.
/// `generated` is how many sampled tokens the history already contains —
/// the script cursor of [`DraftSource::Scripted`]. Deterministic, and
/// always exactly `k` tokens (short sources pad by repeating the last
/// history token).
fn draft_tokens(source: &DraftSource, history: &[u32], generated: usize, k: usize) -> Vec<u32> {
    let pad = *history.last().expect("a decoding stream has history");
    let mut out = Vec::with_capacity(k);
    match source {
        DraftSource::NGram { n } => {
            let len = history.len();
            let n = (*n).clamp(1, len);
            let gram = &history[len - n..];
            // Most recent *earlier* occurrence of the trailing gram; the
            // tokens that followed it are the draft.
            if let Some(j) = (0..len - n).rev().find(|&j| &history[j..j + n] == gram) {
                out.extend_from_slice(&history[j + n..len.min(j + n + k)]);
            }
        }
        DraftSource::Scripted(script) => {
            out.extend(script.iter().skip(generated).take(k).copied());
        }
    }
    while out.len() < k {
        out.push(pad);
    }
    out
}

/// Why a stream retired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinishReason {
    /// The token budget (`max_new_tokens`, possibly clamped by the model's
    /// `max_seq`) was met without any recovery.
    MaxTokens,
    /// The token budget was met after one or more re-prefill recoveries
    /// ([`RecoveryPolicy::ReprefillBounded`] or
    /// [`RecoveryPolicy::ReprefillPartial`]).
    Recovered,
    /// Unrepairable cache damage persisted through `attempts` re-prefills
    /// and the bounded policy gave up; the token history may be wrong from
    /// the last poisoned position onward.
    AbortedPoisoned {
        /// Re-prefill attempts consumed before aborting.
        attempts: u32,
    },
}

impl core::fmt::Display for FinishReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FinishReason::MaxTokens => f.write_str("max-tokens"),
            FinishReason::Recovered => f.write_str("recovered"),
            FinishReason::AbortedPoisoned { attempts } => {
                write!(f, "aborted-poisoned(attempts={attempts})")
            }
        }
    }
}

/// One generation stream, fully specified: the typed replacement for the
/// positional `submit(prompt, max_new_tokens)` call. Everything that used
/// to be a model- or scheduler-wide knob that really belongs to a request —
/// the sliding window, the sampling rule, the recovery policy — rides here,
/// per stream.
///
/// ```
/// use ft_core::serve::{GenerationRequest, RecoveryPolicy, SamplingMode};
///
/// let req = GenerationRequest::new(vec![1, 2, 3], 16)
///     .with_window(64)
///     .with_sampling(SamplingMode::Greedy)
///     .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 2 });
/// assert_eq!(req.max_new_tokens, 16);
/// assert_eq!(req.window, Some(64));
/// ```
#[derive(Clone, Debug)]
pub struct GenerationRequest {
    /// Prompt token ids (must be non-empty).
    pub prompt: Vec<u32>,
    /// Sampled continuation budget.
    pub max_new_tokens: usize,
    /// Per-stream sliding attention window (`None` = attend everything, or
    /// inherit the model default when submitted through a serving engine).
    pub window: Option<usize>,
    /// Token selection rule.
    pub sampling: SamplingMode,
    /// What to do when this stream's attended cache is poisoned.
    pub recovery: RecoveryPolicy,
    /// Scheduling class (run-queue ordering, preemption, aging).
    pub priority: Priority,
    /// Speculative draft-then-verify decode (`None` = plain decode).
    pub speculation: Option<SpeculationPolicy>,
    /// Graded KV-cache protection level for this stream's caches (see
    /// [`ProtectionLevel`]; defaults to `Full`, the legacy behavior).
    pub protection: ProtectionLevel,
}

impl GenerationRequest {
    /// Request `prompt` followed by up to `max_new_tokens` continuations
    /// with default knobs: full attention, greedy sampling, no recovery.
    pub fn new(prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        GenerationRequest {
            prompt,
            max_new_tokens,
            window: None,
            sampling: SamplingMode::default(),
            recovery: RecoveryPolicy::default(),
            priority: Priority::default(),
            speculation: None,
            protection: ProtectionLevel::default(),
        }
    }

    /// Sliding-window attention for this stream only. Panics on 0 — a
    /// zero-row window cannot serve decode.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "a zero-row window cannot serve decode");
        self.window = Some(window);
        self
    }

    /// Token selection rule for this stream.
    pub fn with_sampling(mut self, sampling: SamplingMode) -> Self {
        self.sampling = sampling;
        self
    }

    /// Poisoned-cache recovery policy for this stream.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Scheduling class for this stream.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Speculative draft-then-verify decode for this stream: each decode
    /// sweep drafts provisional tokens, verifies them in one fused
    /// multi-row sweep, commits the accepted prefix, and rolls the rest
    /// back — emitted tokens bit-identical to plain decode.
    pub fn with_speculation(mut self, speculation: SpeculationPolicy) -> Self {
        self.speculation = Some(speculation);
        self
    }

    /// Graded KV-cache protection for this stream: every cache the engine
    /// creates for it — at admission, re-prefill recovery, or migration
    /// re-adoption — is built at this level. `Full` (the default) is
    /// bit-identical to the pre-lattice behavior; see [`ProtectionLevel`]
    /// for the weaker rungs and what each trades away.
    pub fn with_protection(mut self, protection: ProtectionLevel) -> Self {
        self.protection = protection;
        self
    }
}

/// One typed lifecycle event of a serving sweep. The engine emits these
/// per sweep (see `ServeSession::sweep_events` in the `ft-transformer`
/// crate); everything a driver used to infer from raw counters — tokens,
/// corrections, poisoning, recovery progress, eviction, retirement — is a
/// variant here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineEvent {
    /// A stream sampled a new token this sweep.
    TokenEmitted {
        /// The emitting stream.
        stream: StreamId,
        /// The sampled token id.
        token: u32,
    },
    /// Fault-tolerance machinery fired for this stream this sweep and the
    /// sweep's output is repaired (detections with matching repairs).
    FaultCorrected {
        /// The affected stream.
        stream: StreamId,
        /// Detections across every check family this sweep.
        detected: u64,
        /// Repair actions (corrections + recomputations + restrictions).
        repaired: u64,
    },
    /// Unrepairable damage sits in the blocks this stream's window still
    /// attends — the stream's future tokens are suspect until it recovers
    /// (or forever, under [`RecoveryPolicy::None`]).
    CachePoisoned {
        /// The poisoned stream.
        stream: StreamId,
        /// Sticky damage events visible to the attended window.
        events: u64,
    },
    /// The engine dropped the stream's cache and is re-prefilling its
    /// prompt plus already-emitted tokens (attempt `attempt` of the
    /// bounded budget).
    Recovering {
        /// The recovering stream.
        stream: StreamId,
        /// 1-based re-prefill attempt number.
        attempt: u32,
    },
    /// The sliding-window storage policy evicted blocks from this stream's
    /// cache this sweep (bounded-memory bookkeeping, not a fault).
    EvictedBlocks {
        /// The trimmed stream.
        stream: StreamId,
        /// Blocks dropped this sweep (summed over layers).
        blocks: u64,
    },
    /// The scheduler parked this stream (preemption or backpressure): its
    /// cache is dropped, its emitted tokens are kept, and it re-enters the
    /// run queue to be resumed later through chunked re-prefill —
    /// bit-identical to an uninterrupted run under deterministic sampling.
    Preempted {
        /// The parked stream.
        stream: StreamId,
    },
    /// A previously parked stream re-entered the slot table and is
    /// re-prefilling its history.
    Resumed {
        /// The re-admitted stream.
        stream: StreamId,
    },
    /// The stream retired.
    Finished {
        /// The retired stream.
        stream: StreamId,
        /// Why it retired.
        reason: FinishReason,
    },
}

impl EngineEvent {
    /// The stream the event belongs to.
    pub fn stream(&self) -> StreamId {
        match *self {
            EngineEvent::TokenEmitted { stream, .. }
            | EngineEvent::FaultCorrected { stream, .. }
            | EngineEvent::CachePoisoned { stream, .. }
            | EngineEvent::Recovering { stream, .. }
            | EngineEvent::EvictedBlocks { stream, .. }
            | EngineEvent::Preempted { stream }
            | EngineEvent::Resumed { stream }
            | EngineEvent::Finished { stream, .. } => stream,
        }
    }
}

impl core::fmt::Display for EngineEvent {
    /// One-line event-log form: `stream3 token=42`, `stream3 finished:
    /// recovered`, … (benches and examples print these verbatim).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            EngineEvent::TokenEmitted { stream, token } => write!(f, "{stream} token={token}"),
            EngineEvent::FaultCorrected {
                stream,
                detected,
                repaired,
            } => write!(f, "{stream} corrected {repaired}/{detected}"),
            EngineEvent::CachePoisoned { stream, events } => {
                write!(f, "{stream} poisoned(events={events})")
            }
            EngineEvent::Recovering { stream, attempt } => {
                write!(f, "{stream} recovering(attempt={attempt})")
            }
            EngineEvent::EvictedBlocks { stream, blocks } => {
                write!(f, "{stream} evicted {blocks} blocks")
            }
            EngineEvent::Preempted { stream } => write!(f, "{stream} preempted"),
            EngineEvent::Resumed { stream } => write!(f, "{stream} resumed"),
            EngineEvent::Finished { stream, reason } => write!(f, "{stream} finished: {reason}"),
        }
    }
}

// ---------------------------------------------------------------------------
// The continuous-batching scheduler.
// ---------------------------------------------------------------------------

/// Sizing knobs of a [`DecodeScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Slot-table width: streams decoded concurrently per sweep. Further
    /// submissions queue and are admitted as slots free up.
    pub max_active: usize,
    /// Maximum prompt tokens a prefilling stream feeds per sweep. Bounds
    /// how much one long prompt can delay every other stream's next token
    /// (the continuous-batching latency/throughput dial).
    pub prefill_chunk: usize,
    /// Admission by cache **bytes** instead of stream count: a pending
    /// stream is only admitted while the session's *committed* footprint
    /// projection fits the budget — the live bytes reported via
    /// [`DecodeScheduler::note_bytes`] plus every active and candidate
    /// stream's still-unmaterialized token budget (prompt +
    /// `max_new_tokens`, capped by the sliding window's resident bound
    /// when [`DecodeScheduler::set_projection_cap`] is set). This is an
    /// admission *throttle* over driver-supplied estimates, not a hard
    /// cap: the per-token estimate typically counts payload only (live
    /// totals also carry checksum metadata) and chunked prefill
    /// transiently overshoots the window bound, so the realised peak can
    /// exceed the configured figure — size it accordingly. One stream is
    /// always admitted when the slot table is empty, so the session can
    /// make progress under any budget. Requires
    /// [`set_bytes_per_token`](DecodeScheduler::set_bytes_per_token)
    /// (planning asserts it); `None` admits by slot count alone.
    pub memory_budget: Option<u64>,
    /// Allow [`plan`](DecodeScheduler::plan) to *park* the lowest-priority
    /// active stream (at most one per plan) when a strictly higher-class
    /// stream is blocked at the head of the run queue by a full slot table
    /// or the byte budget. Parking drops the stream's cache and requeues
    /// it; resumption replays its history through the bit-identical chunked
    /// re-prefill path. Off by default: pre-existing drivers see FIFO.
    pub preempt: bool,
    /// Deadline-aware aging: a queued stream is promoted one priority class
    /// per this many plan ticks of waiting (capped at
    /// [`Priority::Latency`]), so `Batch` work cannot starve behind a
    /// steady `Latency` arrival stream. `None` disables aging.
    pub priority_aging: Option<u64>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_active: 16,
            prefill_chunk: 16,
            memory_budget: None,
            preempt: false,
            priority_aging: None,
        }
    }
}

/// One generation stream's scheduling state: its request configuration,
/// token history, prefill progress, recovery accounting, and accumulated
/// per-stream fault report.
#[derive(Clone, Debug)]
pub struct StreamState {
    /// Stream identity.
    pub id: StreamId,
    /// The prompt as submitted.
    pub prompt: Vec<u32>,
    /// Tokens of the current prefill source (the leading prefill-length
    /// tokens of [`tokens`](StreamState::tokens) — the prompt on a fresh
    /// stream, the whole emitted history after a recovery) fed into the
    /// *current* cache so far. Reset to 0 by [`DecodeScheduler::requeue`].
    pub fed: usize,
    /// Tokens sampled so far.
    pub generated: Vec<u32>,
    /// Total token budget (prompt + generated); the stream retires when it
    /// is reached.
    pub max_total: usize,
    /// Per-stream sliding attention window, as resolved at submission.
    pub window: Option<usize>,
    /// Token selection rule.
    pub sampling: SamplingMode,
    /// Poisoned-cache recovery policy.
    pub recovery: RecoveryPolicy,
    /// Graded protection level of this stream's caches (from its
    /// [`GenerationRequest`]). Travels with the stream through parking,
    /// preemption, migration, and recovery: every cache rebuilt for the
    /// stream is created at this level.
    pub protection: ProtectionLevel,
    /// Re-prefill recovery *attempts* so far (every requeue counts — a
    /// stream that later aborts still carries the attempts it consumed;
    /// whether they ultimately succeeded is what
    /// [`finish`](StreamState::finish) reports).
    pub recoveries: u32,
    /// Why the stream retired (set at retirement; `None` while live).
    pub finish: Option<FinishReason>,
    /// Fault events attributed to this stream across every sweep it took
    /// part in (attention-kernel events, including cache residency).
    pub report: FtReport,
    /// Scheduling class, as resolved at submission.
    pub priority: Priority,
    /// Times this stream was parked (preemption or backpressure) and had
    /// to re-enter the run queue.
    pub preemptions: u32,
    /// Speculative-decode policy, as resolved at submission (`None` =
    /// plain decode).
    pub speculation: Option<SpeculationPolicy>,
    /// Provisional tokens drafted for this stream across every verify
    /// sweep (speculation efficiency numerator is
    /// [`spec_accepted`](StreamState::spec_accepted)).
    pub spec_drafted: u64,
    /// Drafted tokens that verified and were committed.
    pub spec_accepted: u64,
    /// History tokens scheduled for re-feeding by recovery requeues (full
    /// re-prefills count the whole history; partial re-prefills only the
    /// suffix past the truncation point — the measurable saving of
    /// [`RecoveryPolicy::ReprefillPartial`]).
    pub recovery_fed: usize,
    /// Leading tokens of [`tokens`](StreamState::tokens) treated as prefill
    /// for the current cache: the prompt length on a fresh submission, the
    /// whole emitted history after a recovery requeue.
    prefill_len: usize,
    /// A sweep for this stream has been planned but not yet recorded.
    inflight: bool,
    /// Plan tick at which the stream (re-)entered the run queue — the
    /// aging clock.
    queued_at: u64,
    /// The stream sits in the run queue because it was parked mid-decode
    /// (its cache is gone); re-admission surfaces a resume transition.
    parked: bool,
    /// Backpressure hold: the stream keeps its slot and cache but is not
    /// fed (its consumer cannot absorb more events right now).
    held: bool,
    /// Consecutive verify sweeps that accepted zero drafts (the backoff
    /// clock of [`SpeculationPolicy::backoff_after`]).
    spec_zero_streak: u32,
    /// The zero-accept backoff tripped: this stream decodes plain from
    /// here on.
    spec_off: bool,
}

impl StreamState {
    /// Tokens held so far: prompt followed by sampled continuations.
    pub fn tokens(&self) -> Vec<u32> {
        let mut t = self.prompt.clone();
        t.extend_from_slice(&self.generated);
        t
    }

    /// True while prefill-source tokens remain to be fed into the current
    /// cache (covers both the initial prompt and a recovery re-prefill).
    pub fn prefilling(&self) -> bool {
        self.fed < self.prefill_len
    }

    /// Prompt + generated token count.
    pub fn total(&self) -> usize {
        self.prompt.len() + self.generated.len()
    }

    /// Tokens materialized in the stream's *current* cache (or committed
    /// to appear there imminently): what admission projections subtract
    /// from the stream's total budget. A recovery requeue resets this —
    /// the re-prefill really does re-materialize the history.
    fn materialized(&self) -> usize {
        self.fed + (self.total() - self.prefill_len)
    }

    fn done(&self) -> bool {
        self.total() >= self.max_total
    }

    fn finish_reason(&self) -> FinishReason {
        if self.recoveries > 0 {
            FinishReason::Recovered
        } else {
            FinishReason::MaxTokens
        }
    }
}

/// One stream's share of the next sweep.
#[derive(Clone, Debug)]
pub struct PlanItem {
    /// The stream to feed.
    pub stream: StreamId,
    /// Tokens to feed this sweep: a prefill chunk, or the single freshly
    /// sampled token of a decoding stream.
    pub feed: Vec<u32>,
    /// Whether the driver should sample a new token from the last fed
    /// row's logits and report it via [`DecodeScheduler::record`].
    pub sample: bool,
    /// The stream's sliding attention window (from its
    /// [`GenerationRequest`]): the driver applies it to storage eviction
    /// and to the sweep's [`StreamSlice::window`].
    pub window: Option<usize>,
    /// Trailing tokens of [`feed`](PlanItem::feed) that are *provisional*
    /// drafts (0 = plain decode / prefill). When set, the driver verifies
    /// them against the sweep's per-row logits, commits the accepted
    /// prefix plus the corrected/bonus token via
    /// [`DecodeScheduler::record_speculative`], and truncates the cache
    /// back to the committed length.
    pub speculate: usize,
    /// The stream's graded protection level: the driver applies it to any
    /// cache it creates for the stream this sweep (fresh admission or a
    /// recovery re-prefill).
    pub protection: ProtectionLevel,
}

/// Continuous-batching slot table: admits streams, plans one chunk per
/// active stream per sweep, and retires finished streams between sweeps.
///
/// See the [module docs](self) for the driver loop contract and a worked
/// example.
#[derive(Debug, Default)]
pub struct DecodeScheduler {
    cfg: SchedulerConfig,
    next_id: u64,
    active: Vec<StreamState>,
    pending: VecDeque<StreamState>,
    finished: Vec<StreamState>,
    /// Latest total cache footprint the driver reported (bytes).
    noted_bytes: u64,
    /// Driver-supplied estimate of cache bytes one token occupies (for
    /// projecting a pending stream's prompt cost at admission time).
    bytes_per_token: u64,
    /// Driver-supplied cap on the tokens a stream can keep resident (a
    /// sliding window bounds the footprint regardless of prompt length).
    /// Global fallback for streams without their own window; windowed
    /// streams derive a per-stream cap of `window + window_slack`.
    projection_cap: Option<usize>,
    /// Driver-supplied slack (in rows) added to a stream's window when
    /// deriving its per-stream projection cap — block-granular eviction
    /// keeps up to one extra block resident, so the driver passes the
    /// cache block size here.
    window_slack: usize,
    /// Plan counter — the aging clock ticks once per [`plan`] call.
    ///
    /// [`plan`]: DecodeScheduler::plan
    tick: u64,
    /// Streams parked since the last [`drain_parked`]
    /// (driver must drop their caches).
    ///
    /// [`drain_parked`]: DecodeScheduler::drain_parked
    parked_log: Vec<StreamId>,
    /// Previously parked streams re-admitted since the last
    /// [`drain_resumed`].
    ///
    /// [`drain_resumed`]: DecodeScheduler::drain_resumed
    resumed_log: Vec<StreamId>,
}

impl DecodeScheduler {
    /// Empty scheduler with the given sizing.
    pub fn new(cfg: SchedulerConfig) -> Self {
        assert!(cfg.max_active > 0 && cfg.prefill_chunk > 0);
        DecodeScheduler {
            cfg,
            ..Default::default()
        }
    }

    /// Queue a typed [`GenerationRequest`]. The stream joins the slot
    /// table at the next [`plan`] with a free slot — mid-flight, without
    /// stalling streams already decoding.
    ///
    /// [`plan`]: DecodeScheduler::plan
    pub fn submit_request(&mut self, req: GenerationRequest) -> StreamId {
        let id = StreamId(self.next_id);
        self.submit_request_with_id(req, id)
    }

    /// [`submit_request`](DecodeScheduler::submit_request) with a
    /// caller-chosen [`StreamId`] — the serving loop allocates ids on the
    /// submitting thread (so a handle knows its id before the worker sees
    /// the request) and must be able to replay them here in whatever order
    /// the submission channel delivers. Panics if `id` is already known to
    /// the scheduler.
    pub fn submit_request_with_id(&mut self, req: GenerationRequest, id: StreamId) -> StreamId {
        assert!(!req.prompt.is_empty(), "a stream needs at least one token");
        assert!(
            req.window != Some(0),
            "a zero-row window cannot serve decode"
        );
        let known = self
            .active
            .iter()
            .chain(self.pending.iter())
            .chain(self.finished.iter())
            .any(|s| s.id == id);
        assert!(!known, "{id} is already submitted");
        self.next_id = self.next_id.max(id.0 + 1);
        let prefill_len = req.prompt.len();
        let max_total = prefill_len + req.max_new_tokens;
        self.pending.push_back(StreamState {
            id,
            prompt: req.prompt,
            fed: 0,
            generated: Vec::new(),
            max_total,
            window: req.window,
            sampling: req.sampling,
            recovery: req.recovery,
            protection: req.protection,
            recoveries: 0,
            finish: None,
            report: FtReport::default(),
            priority: req.priority,
            preemptions: 0,
            speculation: req.speculation,
            spec_drafted: 0,
            spec_accepted: 0,
            recovery_fed: 0,
            prefill_len,
            inflight: false,
            queued_at: self.tick,
            parked: false,
            held: false,
            spec_zero_streak: 0,
            spec_off: false,
        });
        id
    }

    /// The live (slot-holding) state of `stream`, if it is active.
    pub fn active_stream(&self, stream: StreamId) -> Option<&StreamState> {
        self.active.iter().find(|s| s.id == stream)
    }

    /// Report the session's current total cache footprint in bytes (the
    /// driver calls this before each [`plan`](DecodeScheduler::plan)); the
    /// memory-budget admission policy compares it — plus per-prompt
    /// estimates — against [`SchedulerConfig::memory_budget`].
    pub fn note_bytes(&mut self, bytes: u64) {
        self.noted_bytes = bytes;
    }

    /// Supply the per-token cache-byte estimate used to project a pending
    /// stream's prompt cost at admission time (the driver knows the model
    /// geometry; the scheduler deliberately does not).
    pub fn set_bytes_per_token(&mut self, bytes: u64) {
        self.bytes_per_token = bytes;
    }

    /// Cap the token count used in admission projections: under
    /// sliding-window serving a stream's resident footprint is bounded by
    /// roughly `window + cache_block` rows however long its prompt, so
    /// projecting the full prompt length would over-throttle admission.
    /// Global fallback — streams whose [`GenerationRequest::window`] is set
    /// derive their own cap (`window +`
    /// [`set_window_slack`](DecodeScheduler::set_window_slack)).
    pub fn set_projection_cap(&mut self, tokens: usize) {
        self.projection_cap = Some(tokens);
    }

    /// Rows added to a windowed stream's per-stream projection cap
    /// (block-granular eviction keeps up to one extra block resident; the
    /// driver passes the cache block size).
    pub fn set_window_slack(&mut self, rows: usize) {
        self.window_slack = rows;
    }

    /// Plan the next sweep: sort the run queue by effective priority
    /// (class plus deadline-aware aging, FIFO within a class), optionally
    /// park one active stream to make room for a blocked higher-class
    /// arrival ([`SchedulerConfig::preempt`]), admit pending streams into
    /// free slots (gated by [`SchedulerConfig::memory_budget`] when set),
    /// retire streams whose budget is already met, and hand every active
    /// non-[`hold`] stream its next chunk (marking it in-flight until
    /// [`record`]ed).
    ///
    /// An empty plan means the scheduler is [`idle`](DecodeScheduler::idle),
    /// every active stream is awaiting its record, or every active stream
    /// is held.
    ///
    /// [`record`]: DecodeScheduler::record
    /// [`hold`]: DecodeScheduler::hold
    pub fn plan(&mut self) -> Vec<PlanItem> {
        self.tick += 1;
        // Project the footprint each stream is *committed* to, not just
        // what is materialized: noted bytes cover rows already in cache,
        // and every stream — active or candidate — will keep appending up
        // to its total token budget (prompt + max_new_tokens, capped by
        // the sliding window's resident bound when one is set). Without
        // the active-remainder term, a stream mid-prefill would hide its
        // outstanding prompt bytes from later plans and the session could
        // overshoot the budget once prefill completes.
        assert!(
            self.cfg.memory_budget.is_none() || self.bytes_per_token > 0,
            "memory_budget admission needs set_bytes_per_token (and note_bytes \
             each sweep) — with a zero per-token estimate the budget is inert"
        );
        let global_cap = self.projection_cap.unwrap_or(usize::MAX);
        let slack = self.window_slack;
        let bpt = self.bytes_per_token;
        let remainder = |s: &StreamState| {
            // Per-stream cap from the request's own window; global
            // fallback for full-attention streams.
            let cap = s.window.map_or(global_cap, |w| w + slack);
            let target = s.max_total.min(cap);
            let materialized = s.materialized().min(cap);
            target.saturating_sub(materialized) as u64 * bpt
        };
        // Run-queue order: effective (aged) priority first, submission
        // order within a class. Stable sort keeps FIFO ties honest.
        let aging = self.cfg.priority_aging;
        let tick = self.tick;
        let score =
            |s: &StreamState| aged_score(s.priority, tick.saturating_sub(s.queued_at), aging);
        self.pending
            .make_contiguous()
            .sort_by(|a, b| score(b).cmp(&score(a)).then(a.id.cmp(&b.id)));
        let mut projected = self.noted_bytes + self.active.iter().map(remainder).sum::<u64>();
        // Preemption: when the head of the run queue outranks an active
        // stream and cannot be admitted (slot table full, or the byte
        // budget is exhausted), park the weakest active stream — lowest
        // class, least progress to throw away, newest submission — so the
        // higher class gets its slot *this* plan. At most one park per
        // plan keeps the table from thrashing under a burst, and a stream
        // still mid-(re-)prefill is never a victim: parking it would
        // discard every fed row before it sampled anything, so a
        // perpetually-outranked stream could be re-admitted and re-parked
        // forever without emitting a token. Requiring the prefill to
        // complete first pins a minimum of one sampled token per
        // admission cycle, which makes priority livelock impossible.
        if self.cfg.preempt {
            if let Some(front) = self.pending.front() {
                let front_score = score(front);
                let slots_full = self.active.len() >= self.cfg.max_active;
                let budget_blocked = match self.cfg.memory_budget {
                    None => false,
                    Some(b) => !self.active.is_empty() && projected + remainder(front) > b,
                };
                if slots_full || budget_blocked {
                    let victim = self
                        .active
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| !s.inflight && !s.done() && !s.prefilling())
                        .min_by_key(|(_, s)| {
                            (s.priority, s.materialized(), core::cmp::Reverse(s.id))
                        })
                        .map(|(i, _)| i);
                    if let Some(i) = victim {
                        if (self.active[i].priority as u64) < front_score {
                            projected = projected.saturating_sub(remainder(&self.active[i]));
                            self.park_index(i);
                        }
                    }
                }
            }
        }
        while self.active.len() < self.cfg.max_active {
            let Some(next) = self.pending.front() else {
                break;
            };
            let cost = remainder(next);
            let fits = match self.cfg.memory_budget {
                None => true,
                // Always admit into an empty slot table: a budget smaller
                // than one stream must throttle, not deadlock.
                Some(b) => self.active.is_empty() || projected + cost <= b,
            };
            if !fits {
                break;
            }
            projected += cost;
            let mut s = self.pending.pop_front().expect("front checked above");
            if s.parked {
                s.parked = false;
                self.resumed_log.push(s.id);
            }
            self.active.push(s);
        }
        // Retire zero-budget streams (max_new_tokens == 0) without feeding.
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].done() && !self.active[i].inflight {
                let mut s = self.active.remove(i);
                s.finish = Some(s.finish_reason());
                self.finished.push(s);
            } else {
                i += 1;
            }
        }
        let chunk = self.cfg.prefill_chunk;
        let mut items = Vec::new();
        for s in &mut self.active {
            if s.inflight || s.held {
                continue;
            }
            let (feed, sample, speculate) = if s.prefilling() {
                // Prefill source: the leading `prefill_len` tokens of the
                // history — the prompt on a fresh stream, prompt + emitted
                // tokens after a recovery requeue.
                let src = s.tokens();
                let n = (s.prefill_len - s.fed).min(chunk);
                let feed = src[s.fed..s.fed + n].to_vec();
                s.fed += n;
                (feed, s.fed == s.prefill_len, 0)
            } else {
                let t = *s
                    .generated
                    .last()
                    .expect("a decoding stream has sampled at least once");
                let mut feed = vec![t];
                let mut speculate = 0;
                if let Some(sp) = &s.speculation {
                    if !s.spec_off {
                        // A verify sweep commits at most `speculate + 1`
                        // tokens (accepted prefix + bonus), so clamp the
                        // draft to the remaining budget.
                        let remaining = s.max_total - s.total();
                        speculate = sp.draft_len.min(remaining.saturating_sub(1));
                        if speculate > 0 {
                            feed.extend(draft_tokens(
                                &sp.source,
                                &s.tokens(),
                                s.generated.len(),
                                speculate,
                            ));
                        }
                    }
                }
                (feed, true, speculate)
            };
            s.inflight = true;
            items.push(PlanItem {
                stream: s.id,
                feed,
                sample,
                window: s.window,
                speculate,
                protection: s.protection,
            });
        }
        items
    }

    /// Record the result of a planned sweep for one stream: the sampled
    /// token (if its plan item asked for one) and the sweep's per-stream
    /// fault report. Retires the stream once its budget is met
    /// ([`FinishReason::MaxTokens`], or [`FinishReason::Recovered`] when it
    /// came back from a re-prefill).
    pub fn record(&mut self, stream: StreamId, sampled: Option<u32>, report: &FtReport) {
        match sampled {
            Some(t) => self.record_speculative(stream, &[t], 0, 0, report),
            None => self.record_speculative(stream, &[], 0, 0, report),
        }
    }

    /// Multi-token variant of [`record`](DecodeScheduler::record) for a
    /// speculative verify sweep: `emitted` is the committed token run (the
    /// accepted draft prefix plus the corrected/bonus token), `drafted`
    /// how many provisional tokens the plan speculated, `accepted` how
    /// many of them verified. Tracks the per-stream draft-efficiency
    /// counters ([`StreamState::spec_drafted`] /
    /// [`StreamState::spec_accepted`]) and the zero-accept backoff streak
    /// of [`SpeculationPolicy::backoff_after`].
    pub fn record_speculative(
        &mut self,
        stream: StreamId,
        emitted: &[u32],
        drafted: usize,
        accepted: usize,
        report: &FtReport,
    ) {
        let idx = self.active_index(stream);
        let s = &mut self.active[idx];
        assert!(s.inflight, "{stream}: record without a planned sweep");
        debug_assert!(accepted <= drafted, "cannot accept more than was drafted");
        s.inflight = false;
        s.report = s.report.merged(report);
        s.generated.extend_from_slice(emitted);
        if drafted > 0 {
            s.spec_drafted += drafted as u64;
            s.spec_accepted += accepted as u64;
            if accepted == 0 {
                s.spec_zero_streak += 1;
                if let Some(limit) = s.speculation.as_ref().and_then(|sp| sp.backoff_after) {
                    if s.spec_zero_streak >= limit {
                        s.spec_off = true;
                    }
                }
            } else {
                s.spec_zero_streak = 0;
            }
        }
        if s.done() {
            s.finish = Some(s.finish_reason());
            self.finished.push(self.active.remove(idx));
        }
    }

    /// Recovery requeue (instead of [`record`](DecodeScheduler::record)):
    /// the engine found the stream's attended cache poisoned this sweep,
    /// discarded whatever the sweep produced (a token sampled over damaged
    /// state must not enter the history), and dropped the stream's cache.
    /// The stream keeps its slot; its whole emitted history — prompt plus
    /// every *previously* recorded token — becomes the new prefill source,
    /// so the next plans feed it back through chunked prefill and decode
    /// resumes where it left off. Returns the 1-based attempt number.
    ///
    /// The sweep's fault report is still merged: the detection that
    /// triggered the recovery is part of the stream's history.
    pub fn requeue(&mut self, stream: StreamId, report: &FtReport) -> u32 {
        self.requeue_suffix(stream, report, 0)
    }

    /// Partial-recovery variant of [`requeue`](DecodeScheduler::requeue):
    /// the engine rolled the stream's cache back to `keep` rows (a clean
    /// block boundary before the first poisoned attended block — see
    /// [`RecoveryPolicy::ReprefillPartial`]), so only the history suffix
    /// `keep..` needs re-feeding; the kept prefix stays materialized.
    /// `keep = 0` is exactly the full requeue. Returns the 1-based attempt
    /// number.
    pub fn requeue_suffix(&mut self, stream: StreamId, report: &FtReport, keep: usize) -> u32 {
        let idx = self.active_index(stream);
        let s = &mut self.active[idx];
        assert!(s.inflight, "{stream}: requeue without a planned sweep");
        assert!(
            keep <= s.total(),
            "cannot keep more rows than the history holds"
        );
        s.inflight = false;
        s.report = s.report.merged(report);
        s.fed = keep;
        s.prefill_len = s.total();
        s.recovery_fed += s.prefill_len - keep;
        s.recoveries += 1;
        s.recoveries
    }

    /// Park an active stream: give up its slot, drop the materialized-cache
    /// claim (the driver must drop the cache itself — see
    /// [`drain_parked`](DecodeScheduler::drain_parked)), and requeue it
    /// with its emitted history as the new prefill source, exactly like a
    /// recovery [`requeue`](DecodeScheduler::requeue) but without touching
    /// the recovery accounting. Resumption replays the history through
    /// chunked re-prefill, which is bit-identical to the uninterrupted run
    /// under deterministic sampling.
    ///
    /// Returns `false` (a no-op) when the stream is not active, is awaiting
    /// its [`record`](DecodeScheduler::record), or is already done — the
    /// serving loop's park decisions race benignly with retirement.
    pub fn park(&mut self, stream: StreamId) -> bool {
        let Some(i) = self.active.iter().position(|s| s.id == stream) else {
            return false;
        };
        if self.active[i].inflight || self.active[i].done() {
            return false;
        }
        self.park_index(i);
        true
    }

    fn park_index(&mut self, i: usize) {
        let mut s = self.active.remove(i);
        s.fed = 0;
        s.prefill_len = s.total();
        s.preemptions += 1;
        s.parked = true;
        s.held = false;
        s.queued_at = self.tick;
        self.parked_log.push(s.id);
        self.pending.push_back(s);
    }

    /// Backpressure hold: keep the stream's slot and cache but stop
    /// feeding it (its consumer cannot absorb more events). Returns `false`
    /// when the stream is not active or already held.
    pub fn hold(&mut self, stream: StreamId) -> bool {
        match self.active.iter_mut().find(|s| s.id == stream) {
            Some(s) if !s.held => {
                s.held = true;
                true
            }
            _ => false,
        }
    }

    /// Lift a backpressure [`hold`](DecodeScheduler::hold). Returns `false`
    /// when the stream is not active or was not held.
    pub fn release(&mut self, stream: StreamId) -> bool {
        match self.active.iter_mut().find(|s| s.id == stream) {
            Some(s) if s.held => {
                s.held = false;
                true
            }
            _ => false,
        }
    }

    /// Streams parked (preempted) since the last drain. The driver must
    /// drop each stream's cache — the scheduler has already reset its
    /// prefill bookkeeping to replay the full history.
    pub fn drain_parked(&mut self) -> Vec<StreamId> {
        std::mem::take(&mut self.parked_log)
    }

    /// Previously parked streams re-admitted since the last drain (their
    /// re-prefill starts with the next planned chunk).
    pub fn drain_resumed(&mut self) -> Vec<StreamId> {
        std::mem::take(&mut self.resumed_log)
    }

    /// Abort an active stream (recovery budget exhausted): merge the final
    /// sweep's report and retire it immediately with `reason`.
    pub fn abort(&mut self, stream: StreamId, report: &FtReport, reason: FinishReason) {
        let idx = self.active_index(stream);
        let s = &mut self.active[idx];
        s.inflight = false;
        s.report = s.report.merged(report);
        s.finish = Some(reason);
        self.finished.push(self.active.remove(idx));
    }

    fn active_index(&self, stream: StreamId) -> usize {
        self.active
            .iter()
            .position(|s| s.id == stream)
            .unwrap_or_else(|| panic!("{stream} is not active"))
    }

    /// True when no stream is active or queued (finished streams may still
    /// await [`take_finished`](DecodeScheduler::take_finished)).
    pub fn idle(&self) -> bool {
        self.active.is_empty() && self.pending.is_empty()
    }

    /// Streams currently holding slots.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Streams queued for a free slot.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Drain the retired streams (token history + per-stream fault report).
    pub fn take_finished(&mut self) -> Vec<StreamState> {
        std::mem::take(&mut self.finished)
    }

    /// Ids of the streams waiting in the run queue, in queue order. Parked
    /// streams appear here too — they wait for re-admission exactly like
    /// fresh submissions.
    pub fn pending_ids(&self) -> Vec<StreamId> {
        self.pending.iter().map(|s| s.id).collect()
    }

    /// Ids of the streams currently holding decode slots, in admission
    /// order.
    pub fn active_ids(&self) -> Vec<StreamId> {
        self.active.iter().map(|s| s.id).collect()
    }

    /// Remove a *pending* stream so another scheduler can adopt it (work
    /// migration between shards). Only queued streams can be extracted —
    /// an active stream must be [`park`](DecodeScheduler::park)ed first,
    /// which resets its prefill bookkeeping so the whole emitted history
    /// replays through chunked re-prefill on the adopting shard. The
    /// extracted state carries every ledger (tokens, recoveries,
    /// preemptions, speculation counters, fault report), so attribution
    /// follows the stream. Returns `None` when the stream is not pending.
    pub fn extract_pending(&mut self, stream: StreamId) -> Option<StreamState> {
        let i = self.pending.iter().position(|s| s.id == stream)?;
        self.pending.remove(i)
    }

    /// Adopt a stream extracted from another scheduler (the receiving half
    /// of [`extract_pending`](DecodeScheduler::extract_pending)). The id
    /// must be unknown here — fleet-wide unique ids are the router's job —
    /// and the local id allocator is bumped past it so local submissions
    /// can never collide. Queue aging restarts on the local tick; if the
    /// stream was parked on the donor, its re-admission here still logs a
    /// resume.
    pub fn adopt_pending(&mut self, mut s: StreamState) {
        let id = s.id;
        assert!(
            !self.active.iter().any(|a| a.id == id)
                && !self.pending.iter().any(|p| p.id == id)
                && !self.finished.iter().any(|f| f.id == id),
            "{id} already known to this scheduler"
        );
        self.next_id = self.next_id.max(id.0 + 1);
        s.queued_at = self.tick;
        self.pending.push_back(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_num::rng::normal_tensor_f16;

    fn filled_cache(tokens: usize, seed: u64) -> KvCache {
        let mut cache = KvCache::new(1, 2, 16, 8, 8, 0.25);
        for t in 0..tokens {
            let k = normal_tensor_f16(seed + t as u64, 1, 2, 1, 16, 0.6);
            let v = normal_tensor_f16(seed + 500 + t as u64, 1, 2, 1, 16, 0.8);
            cache.append(&k, &v);
        }
        cache
    }

    #[test]
    fn sweep_matches_independent_decode_per_stream() {
        use crate::decode::{efta_decode, DecodeRequest};
        // Three streams at ragged, different lengths, single-row chunks.
        let caches = [
            filled_cache(5, 100),
            filled_cache(12, 200),
            filled_cache(21, 300),
        ];
        let qs: Vec<_> = (0..3)
            .map(|i| normal_tensor_f16(900 + i, 1, 2, 1, 16, 0.6))
            .collect();
        let slices: Vec<StreamSlice> = caches
            .iter()
            .zip(&qs)
            .enumerate()
            .map(|(i, (cache, q))| StreamSlice {
                stream: StreamId(i as u64),
                cache,
                q,
                window: None,
            })
            .collect();
        let opts = EftaOptions::optimized();
        let outs = sweep_efta(&slices, &ft_sim::NoFaults, None, &opts).unwrap();
        for (i, out) in outs.iter().enumerate() {
            let want = efta_decode(&DecodeRequest::new(&caches[i], &qs[i]), &opts).unwrap();
            assert_eq!(
                out.o.max_abs_diff(&want.o),
                0.0,
                "stream {i}: sweep output diverged from independent decode"
            );
            assert!(out.report.clean());
        }
    }

    #[test]
    fn chunked_prefill_rows_match_incremental_steps() {
        use crate::decode::{efta_decode, DecodeRequest};
        // A 4-row chunk appended to a 9-row cache must reproduce the four
        // single-row decode steps of an incrementally grown cache.
        let mut incremental = filled_cache(9, 400);
        let mut chunked = incremental.clone();
        let mut k_rows = Vec::new();
        let mut v_rows = Vec::new();
        let mut q_rows = Vec::new();
        for t in 0..4u64 {
            k_rows.push(normal_tensor_f16(700 + t, 1, 2, 1, 16, 0.6));
            v_rows.push(normal_tensor_f16(750 + t, 1, 2, 1, 16, 0.8));
            q_rows.push(normal_tensor_f16(800 + t, 1, 2, 1, 16, 0.6));
        }
        let chunk_of = |ts: &[Tensor4F16]| {
            Tensor4F16::from_fn(1, 2, ts.len(), 16, |b, h, r, c| ts[r].slot(b, h).get(0, c))
        };
        chunked.append(&chunk_of(&k_rows), &chunk_of(&v_rows));
        let q_chunk = chunk_of(&q_rows);
        let slices = [StreamSlice {
            stream: StreamId(0),
            cache: &chunked,
            q: &q_chunk,
            window: None,
        }];
        let opts = EftaOptions::optimized();
        let out = &sweep_efta(&slices, &ft_sim::NoFaults, None, &opts).unwrap()[0];
        assert!(out.report.clean());
        for (r, (kr, (vr, qr))) in k_rows.iter().zip(v_rows.iter().zip(&q_rows)).enumerate() {
            incremental.append(kr, vr);
            let want = efta_decode(&DecodeRequest::new(&incremental, qr), &opts).unwrap();
            for slot in 0..2 {
                for c in 0..16 {
                    assert_eq!(
                        out.o.slot_flat(slot).get(r, c),
                        want.o.slot_flat(slot).get(0, c),
                        "row {r} slot {slot} col {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn scheduler_admits_feeds_and_retires() {
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 2,
            prefill_chunk: 3,
            ..Default::default()
        });
        let a = sched.submit_request(GenerationRequest::new(vec![1, 2, 3, 4], 2));
        let b = sched.submit_request(GenerationRequest::new(vec![5], 1));
        // Queued: only 2 slots.
        let c = sched.submit_request(GenerationRequest::new(vec![6, 7], 1));

        let plan = sched.plan();
        assert_eq!(plan.len(), 2);
        assert_eq!(sched.pending_len(), 1, "C must wait for a free slot");
        assert_eq!((plan[0].stream, plan[0].feed.clone()), (a, vec![1, 2, 3]));
        assert!(!plan[0].sample);
        assert_eq!((plan[1].stream, plan[1].feed.clone()), (b, vec![5]));
        assert!(plan[1].sample);
        // Planning again while in-flight hands out nothing.
        assert!(sched.plan().is_empty());

        sched.record(a, None, &FtReport::default());
        sched.record(b, Some(50), &FtReport::default());
        // B is done (1 of 1); C is admitted into its slot.
        assert_eq!(sched.take_finished().len(), 1);
        let plan = sched.plan();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].feed, vec![4]);
        assert!(plan[0].sample, "A's prompt is now exhausted");
        assert_eq!((plan[1].stream, plan[1].feed.clone()), (c, vec![6, 7]));

        sched.record(a, Some(90), &FtReport::default());
        sched.record(c, Some(60), &FtReport::default());
        // A needs one more token; C is done.
        let plan = sched.plan();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].feed, vec![90], "A feeds its sampled token");
        sched.record(a, Some(91), &FtReport::default());
        assert!(sched.idle());
        let done = sched.take_finished();
        assert_eq!(done.len(), 2);
        let a_state = done.iter().find(|s| s.id == a).unwrap();
        assert_eq!(a_state.tokens(), vec![1, 2, 3, 4, 90, 91]);
    }

    #[test]
    fn stream_id_display_names_streams() {
        assert_eq!(StreamId(0).to_string(), "stream0");
        assert_eq!(format!("{}", StreamId(42)), "stream42");
    }

    #[test]
    fn requeue_replays_prompt_plus_emitted_tokens_then_resumes() {
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 2,
            prefill_chunk: 3,
            ..Default::default()
        });
        let a = sched.submit_request(
            GenerationRequest::new(vec![1, 2, 3], 3)
                .with_window(8)
                .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 2 }),
        );
        let plan = sched.plan();
        assert_eq!(plan[0].feed, vec![1, 2, 3]);
        assert_eq!(plan[0].window, Some(8), "plan items carry the window");
        assert!(plan[0].sample);
        sched.record(a, Some(10), &FtReport::default());
        let plan = sched.plan();
        assert_eq!(plan[0].feed, vec![10]);
        sched.record(a, Some(11), &FtReport::default());
        // Poison discovered in the next sweep: the engine requeues instead
        // of recording — the token sampled over damaged state is discarded.
        let plan = sched.plan();
        assert_eq!(plan[0].feed, vec![11]);
        assert_eq!(sched.requeue(a, &FtReport::default()), 1);
        assert_eq!(sched.active_stream(a).unwrap().recoveries, 1);
        // Re-prefill: prompt plus both *recorded* tokens, in chunks.
        let plan = sched.plan();
        assert_eq!(plan[0].feed, vec![1, 2, 3]);
        assert!(!plan[0].sample);
        sched.record(a, None, &FtReport::default());
        let plan = sched.plan();
        assert_eq!(plan[0].feed, vec![10, 11]);
        assert!(
            plan[0].sample,
            "the re-prefill tail re-samples the discarded position"
        );
        sched.record(a, Some(12), &FtReport::default());
        assert!(sched.idle());
        let done = sched.take_finished();
        assert_eq!(done[0].tokens(), vec![1, 2, 3, 10, 11, 12]);
        assert_eq!(done[0].finish, Some(FinishReason::Recovered));
        assert_eq!(done[0].recoveries, 1);
    }

    #[test]
    fn abort_retires_immediately_with_the_given_reason() {
        let mut sched = DecodeScheduler::new(SchedulerConfig::default());
        let a = sched.submit_request(
            GenerationRequest::new(vec![1, 2], 5)
                .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 1 }),
        );
        let plan = sched.plan();
        assert_eq!(plan.len(), 1);
        sched.abort(
            a,
            &FtReport::default(),
            FinishReason::AbortedPoisoned { attempts: 1 },
        );
        assert!(sched.idle());
        let done = sched.take_finished();
        assert_eq!(
            done[0].finish,
            Some(FinishReason::AbortedPoisoned { attempts: 1 })
        );
        assert_eq!(done[0].tokens(), vec![1, 2], "no token was recorded");
    }

    #[test]
    fn budget_met_without_recovery_finishes_max_tokens() {
        let mut sched = DecodeScheduler::new(SchedulerConfig::default());
        let a = sched.submit_request(GenerationRequest::new(vec![5, 6], 1));
        let plan = sched.plan();
        assert_eq!(plan[0].window, None);
        sched.record(a, Some(7), &FtReport::default());
        let done = sched.take_finished();
        assert_eq!(done[0].finish, Some(FinishReason::MaxTokens));
        assert_eq!(done[0].recoveries, 0);
    }

    #[test]
    fn per_stream_windows_cap_admission_projections() {
        // Three 40-token prompts, each with its *own* 2-row window: the
        // per-stream cap (window + slack) bounds the projection, so all
        // three fit a budget the raw prompt lengths would blow through.
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 4,
            prefill_chunk: 4,
            memory_budget: Some(100),
            ..Default::default()
        });
        sched.set_bytes_per_token(10);
        sched.set_window_slack(1);
        for _ in 0..3 {
            sched.submit_request(GenerationRequest::new(vec![0; 40], 1).with_window(2));
        }
        let plan = sched.plan();
        assert_eq!(
            plan.len(),
            3,
            "window-capped projections (3 × 30 bytes) all fit"
        );
    }

    #[test]
    fn memory_budget_gates_admission_by_bytes_not_stream_count() {
        // Each stream commits to 6 tokens total (4 prompt + 2 new) at 10
        // bytes/token: a 130-byte budget holds two streams, not three —
        // even though the slot table has room for all of them.
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 8,
            prefill_chunk: 4,
            memory_budget: Some(130),
            ..Default::default()
        });
        sched.set_bytes_per_token(10);
        let a = sched.submit_request(GenerationRequest::new(vec![1, 2, 3, 4], 2));
        let b = sched.submit_request(GenerationRequest::new(vec![5, 6, 7, 8], 2));
        let c = sched.submit_request(GenerationRequest::new(vec![9, 10, 11, 12], 2));
        let plan = sched.plan();
        assert_eq!(plan.len(), 2, "slots are free but the budget is not");
        assert_eq!(plan[0].stream, a);
        assert_eq!(plan[1].stream, b);
        assert_eq!(sched.pending_len(), 1);
        sched.record(a, Some(40), &FtReport::default());
        sched.record(b, Some(50), &FtReport::default());
        // Ten tokens now sit in cache, and A/B are each still committed
        // to one more: 100 noted + 20 remainder + 60 for C > 130.
        sched.note_bytes(100);
        let plan = sched.plan();
        assert_eq!(plan.len(), 2);
        assert_eq!(sched.pending_len(), 1, "C still waits");
        // A and B retire this sweep; the driver reports the reclaimed
        // bytes and C is finally admitted.
        sched.record(a, Some(41), &FtReport::default());
        sched.record(b, Some(51), &FtReport::default());
        assert_eq!(sched.take_finished().len(), 2);
        sched.note_bytes(0);
        let plan = sched.plan();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].stream, c);
    }

    #[test]
    fn projection_cap_bounds_windowed_admission_estimates() {
        // A sliding window bounds each stream's resident footprint, so
        // long prompts must not be projected at full length.
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 4,
            prefill_chunk: 4,
            memory_budget: Some(100),
            ..Default::default()
        });
        sched.set_bytes_per_token(10);
        sched.set_projection_cap(3); // window: ≤ 3 resident tokens/stream
        for _ in 0..3 {
            // A 40-token prompt, capped cost 30.
            sched.submit_request(GenerationRequest::new(vec![0; 40], 1));
        }
        let plan = sched.plan();
        assert_eq!(
            plan.len(),
            3,
            "capped projections (3 × 30 bytes) all fit the 100-byte budget"
        );
    }

    #[test]
    fn tiny_budget_still_admits_one_stream() {
        // A budget below any single stream's footprint throttles to one
        // stream at a time instead of deadlocking.
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 4,
            prefill_chunk: 8,
            memory_budget: Some(1),
            ..Default::default()
        });
        sched.set_bytes_per_token(1000);
        sched.submit_request(GenerationRequest::new(vec![1, 2], 0));
        sched.submit_request(GenerationRequest::new(vec![3, 4], 0));
        // Zero-budget streams retire at plan time; both must drain even
        // though neither "fits".
        while !sched.idle() {
            let plan = sched.plan();
            for item in plan {
                sched.record(item.stream, None, &FtReport::default());
            }
        }
        assert_eq!(sched.take_finished().len(), 2);
    }

    #[test]
    fn zero_budget_stream_retires_without_feeding() {
        let mut sched = DecodeScheduler::new(SchedulerConfig::default());
        let id = sched.submit_request(GenerationRequest::new(vec![1, 2], 0));
        assert!(sched.plan().is_empty());
        assert!(sched.idle());
        let done = sched.take_finished();
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].tokens(), vec![1, 2]);
    }

    #[test]
    fn per_stream_fault_reports_are_isolated() {
        use ft_sim::{FaultSite, OpCoord, SeuInjector};
        // Corrupt stream 1's cache only; the batched sweep must report the
        // cache event on stream 1 and leave stream 0's report clean.
        let cache_a = filled_cache(12, 100);
        let mut cache_b = filled_cache(12, 200);
        let inj = SeuInjector::new(FaultSite::KvCache, OpCoord::new(1, 7, 3, 0), 14);
        cache_b.expose(&inj, 0);
        assert_eq!(inj.fired(), 1);
        let qa = normal_tensor_f16(901, 1, 2, 1, 16, 0.6);
        let qb = normal_tensor_f16(902, 1, 2, 1, 16, 0.6);
        let slices = [
            StreamSlice {
                stream: StreamId(0),
                cache: &cache_a,
                q: &qa,
                window: None,
            },
            StreamSlice {
                stream: StreamId(7),
                cache: &cache_b,
                q: &qb,
                window: None,
            },
        ];
        let outs = sweep_efta(&slices, &ft_sim::NoFaults, None, &EftaOptions::optimized()).unwrap();
        assert!(outs[0].report.clean(), "{:?}", outs[0].report);
        assert_eq!(outs[1].stream, StreamId(7));
        assert!(outs[1].report.cache_detected > 0, "{:?}", outs[1].report);
        assert!(outs[1].report.cache_corrected > 0);
    }

    #[test]
    fn display_impls_render_one_line_event_logs() {
        assert_eq!(Priority::Latency.to_string(), "latency");
        assert_eq!(Priority::Normal.to_string(), "normal");
        assert_eq!(Priority::Batch.to_string(), "batch");
        assert_eq!(FinishReason::MaxTokens.to_string(), "max-tokens");
        assert_eq!(FinishReason::Recovered.to_string(), "recovered");
        assert_eq!(
            FinishReason::AbortedPoisoned { attempts: 2 }.to_string(),
            "aborted-poisoned(attempts=2)"
        );
        let s = StreamId(3);
        assert_eq!(
            EngineEvent::TokenEmitted {
                stream: s,
                token: 42
            }
            .to_string(),
            "stream3 token=42"
        );
        assert_eq!(
            EngineEvent::FaultCorrected {
                stream: s,
                detected: 4,
                repaired: 3
            }
            .to_string(),
            "stream3 corrected 3/4"
        );
        assert_eq!(
            EngineEvent::CachePoisoned {
                stream: s,
                events: 1
            }
            .to_string(),
            "stream3 poisoned(events=1)"
        );
        assert_eq!(
            EngineEvent::Recovering {
                stream: s,
                attempt: 1
            }
            .to_string(),
            "stream3 recovering(attempt=1)"
        );
        assert_eq!(
            EngineEvent::EvictedBlocks {
                stream: s,
                blocks: 2
            }
            .to_string(),
            "stream3 evicted 2 blocks"
        );
        assert_eq!(
            EngineEvent::Preempted { stream: s }.to_string(),
            "stream3 preempted"
        );
        assert_eq!(
            EngineEvent::Resumed { stream: s }.to_string(),
            "stream3 resumed"
        );
        assert_eq!(
            EngineEvent::Finished {
                stream: s,
                reason: FinishReason::Recovered
            }
            .to_string(),
            "stream3 finished: recovered"
        );
    }

    #[test]
    fn priority_orders_batch_below_normal_below_latency() {
        assert!(Priority::Batch < Priority::Normal);
        assert!(Priority::Normal < Priority::Latency);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn run_queue_admits_by_priority_class_not_arrival_order() {
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 1,
            prefill_chunk: 8,
            ..Default::default()
        });
        let batch =
            sched.submit_request(GenerationRequest::new(vec![1], 1).with_priority(Priority::Batch));
        let lat = sched
            .submit_request(GenerationRequest::new(vec![2], 1).with_priority(Priority::Latency));
        let norm = sched.submit_request(GenerationRequest::new(vec![3], 1));
        // Latency jumps the earlier Batch and Normal submissions.
        let plan = sched.plan();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].stream, lat);
        sched.record(lat, Some(9), &FtReport::default());
        let plan = sched.plan();
        assert_eq!(plan[0].stream, norm);
        sched.record(norm, Some(9), &FtReport::default());
        let plan = sched.plan();
        assert_eq!(plan[0].stream, batch);
    }

    #[test]
    fn aging_promotes_a_starved_batch_stream() {
        // One slot, aging after 2 ticks: the Batch stream out-waits a
        // steady supply of fresh Normal arrivals instead of starving.
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 1,
            prefill_chunk: 8,
            priority_aging: Some(2),
            ..Default::default()
        });
        let batch =
            sched.submit_request(GenerationRequest::new(vec![1], 4).with_priority(Priority::Batch));
        for fresh_normals in 0..6 {
            let n = sched.submit_request(GenerationRequest::new(vec![2], 1));
            let plan = sched.plan();
            assert_eq!(plan.len(), 1);
            if plan[0].stream == batch {
                // Aged past Normal: promotion beat the fresh arrival.
                assert!(fresh_normals >= 1, "promoted after waiting, not instantly");
                return;
            }
            sched.record(n, Some(9), &FtReport::default());
        }
        panic!("the Batch stream starved behind fresh Normal arrivals");
    }

    #[test]
    fn preemption_parks_the_weakest_active_stream_for_a_latency_arrival() {
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 1,
            prefill_chunk: 8,
            preempt: true,
            ..Default::default()
        });
        let batch = sched
            .submit_request(GenerationRequest::new(vec![1, 2], 4).with_priority(Priority::Batch));
        // Prefill + two decoded tokens.
        let plan = sched.plan();
        assert_eq!(plan[0].feed, vec![1, 2]);
        sched.record(batch, Some(10), &FtReport::default());
        sched.plan();
        sched.record(batch, Some(11), &FtReport::default());
        // A Latency arrival finds the slot table full: the Batch stream is
        // parked (cache claim dropped, history kept) in the same plan.
        let lat = sched
            .submit_request(GenerationRequest::new(vec![7], 1).with_priority(Priority::Latency));
        let plan = sched.plan();
        assert_eq!(sched.drain_parked(), vec![batch]);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].stream, lat);
        sched.record(lat, Some(20), &FtReport::default());
        assert_eq!(sched.take_finished().len(), 1);
        // The parked stream resumes: its whole emitted history replays as
        // prefill, then decode continues where it left off.
        let plan = sched.plan();
        assert_eq!(sched.drain_resumed(), vec![batch]);
        assert_eq!(plan[0].stream, batch);
        assert_eq!(plan[0].feed, vec![1, 2, 10, 11]);
        assert!(
            plan[0].sample,
            "re-prefill tail re-samples the next position"
        );
        sched.record(batch, Some(12), &FtReport::default());
        sched.plan();
        sched.record(batch, Some(13), &FtReport::default());
        assert!(sched.idle());
        let done = sched.take_finished();
        assert_eq!(done[0].tokens(), vec![1, 2, 10, 11, 12, 13]);
        assert_eq!(done[0].preemptions, 1);
        assert_eq!(
            done[0].finish,
            Some(FinishReason::MaxTokens),
            "preemption is not a fault: no Recovered reason"
        );
    }

    #[test]
    fn preemption_never_fires_without_a_strictly_higher_class() {
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 1,
            prefill_chunk: 8,
            preempt: true,
            ..Default::default()
        });
        let first = sched.submit_request(GenerationRequest::new(vec![1], 4));
        sched.plan();
        sched.record(first, Some(10), &FtReport::default());
        sched.submit_request(GenerationRequest::new(vec![2], 1));
        let plan = sched.plan();
        assert!(
            sched.drain_parked().is_empty(),
            "equal class never preempts"
        );
        assert_eq!(plan[0].stream, first);
    }

    #[test]
    fn hold_keeps_the_slot_but_stops_feeding_until_release() {
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            max_active: 2,
            prefill_chunk: 8,
            ..Default::default()
        });
        let a = sched.submit_request(GenerationRequest::new(vec![1], 3));
        let b = sched.submit_request(GenerationRequest::new(vec![2], 3));
        let plan = sched.plan();
        assert_eq!(plan.len(), 2);
        sched.record(a, Some(10), &FtReport::default());
        sched.record(b, Some(20), &FtReport::default());
        assert!(sched.hold(a));
        assert!(!sched.hold(a), "double hold is a no-op");
        let plan = sched.plan();
        assert_eq!(plan.len(), 1, "held stream keeps its slot but is not fed");
        assert_eq!(plan[0].stream, b);
        sched.record(b, Some(21), &FtReport::default());
        assert!(sched.release(a));
        assert!(!sched.release(a), "double release is a no-op");
        let plan = sched.plan();
        assert_eq!(plan.len(), 2, "released stream is fed again");
        assert!(plan.iter().any(|p| p.stream == a));
    }

    #[test]
    fn park_refuses_inflight_and_unknown_streams() {
        let mut sched = DecodeScheduler::new(SchedulerConfig::default());
        let a = sched.submit_request(GenerationRequest::new(vec![1], 2));
        assert!(!sched.park(a), "pending, not active");
        sched.plan();
        assert!(!sched.park(a), "in-flight streams cannot be parked");
        sched.record(a, Some(10), &FtReport::default());
        assert!(sched.park(a));
        assert_eq!(sched.drain_parked(), vec![a]);
        assert!(!sched.park(StreamId(99)), "unknown stream");
    }

    #[test]
    fn caller_chosen_ids_replay_out_of_order() {
        // The serving loop allocates ids on the submitting thread; the
        // worker may see them in any order. Later auto-allocated ids must
        // not collide.
        let mut sched = DecodeScheduler::new(SchedulerConfig::default());
        sched.submit_request_with_id(GenerationRequest::new(vec![1], 1), StreamId(5));
        sched.submit_request_with_id(GenerationRequest::new(vec![2], 1), StreamId(3));
        let auto = sched.submit_request(GenerationRequest::new(vec![3], 1));
        assert_eq!(
            auto,
            StreamId(6),
            "auto ids skip past the highest replayed id"
        );
    }

    #[test]
    #[should_panic(expected = "already submitted")]
    fn duplicate_stream_ids_are_rejected() {
        let mut sched = DecodeScheduler::new(SchedulerConfig::default());
        sched.submit_request_with_id(GenerationRequest::new(vec![1], 1), StreamId(4));
        sched.submit_request_with_id(GenerationRequest::new(vec![2], 1), StreamId(4));
    }

    #[test]
    fn speculative_plan_drafts_scripted_tokens_and_clamps_to_budget() {
        let mut sched = DecodeScheduler::new(SchedulerConfig::default());
        let a = sched.submit_request(GenerationRequest::new(vec![1, 2, 3], 4).with_speculation(
            SpeculationPolicy::new(4).with_source(DraftSource::Scripted(vec![10, 11, 12, 13])),
        ));
        // Prefill never speculates.
        let plan = sched.plan();
        assert_eq!(
            (plan[0].feed.clone(), plan[0].speculate),
            (vec![1, 2, 3], 0)
        );
        sched.record(a, Some(10), &FtReport::default());
        // Decode: 3 tokens of budget remain, so at most 2 drafts ride along
        // (a verify sweep commits up to speculate + 1 tokens). The script
        // cursor sits at generated = 1: drafts are script[1..3].
        let plan = sched.plan();
        assert_eq!(plan[0].feed, vec![10, 11, 12]);
        assert_eq!(plan[0].speculate, 2);
        // Both drafts verified; the bonus token finishes the stream.
        sched.record_speculative(a, &[11, 12, 77], 2, 2, &FtReport::default());
        let done = sched.take_finished();
        assert_eq!(done[0].tokens(), vec![1, 2, 3, 10, 11, 12, 77]);
        assert_eq!((done[0].spec_drafted, done[0].spec_accepted), (2, 2));
        assert_eq!(done[0].finish, Some(FinishReason::MaxTokens));
    }

    #[test]
    fn zero_accept_streak_backs_off_to_plain_decode() {
        let mut sched = DecodeScheduler::new(SchedulerConfig::default());
        let a = sched.submit_request(
            GenerationRequest::new(vec![1, 2], 16)
                .with_speculation(SpeculationPolicy::new(2).with_backoff(Some(2))),
        );
        sched.plan();
        sched.record(a, Some(9), &FtReport::default());
        for _ in 0..2 {
            let plan = sched.plan();
            assert_eq!(plan[0].speculate, 2, "still speculating");
            sched.record_speculative(a, &[8], 2, 0, &FtReport::default());
        }
        // Two consecutive zero-accept sweeps: speculation is off for good.
        let plan = sched.plan();
        assert_eq!(plan[0].speculate, 0, "backoff tripped");
        assert_eq!(plan[0].feed.len(), 1);
        sched.record(a, Some(7), &FtReport::default());
        assert_eq!(sched.plan()[0].speculate, 0, "backoff is permanent");
    }

    #[test]
    fn ngram_drafts_replay_the_last_match_continuation() {
        // History …5 6 7 5 6: the trailing bigram [5, 6] last occurred at
        // the start, followed by 7 5 6 — the draft replays that, padding
        // with the last token once the history runs out.
        let h = [5, 6, 7, 5, 6];
        assert_eq!(
            draft_tokens(&DraftSource::NGram { n: 2 }, &h, 0, 4),
            vec![7, 5, 6, 6],
        );
        // No earlier occurrence: pad by repeating the last token.
        assert_eq!(
            draft_tokens(&DraftSource::NGram { n: 2 }, &[1, 2, 3], 0, 2),
            vec![3, 3],
        );
    }

    #[test]
    fn requeue_suffix_feeds_only_the_kept_tail() {
        let mut sched = DecodeScheduler::new(SchedulerConfig {
            prefill_chunk: 8,
            ..Default::default()
        });
        let a = sched.submit_request(GenerationRequest::new(vec![1, 2, 3, 4, 5, 6], 4));
        sched.plan();
        sched.record(a, Some(50), &FtReport::default());
        // Poison located late: keep 4 rows, re-feed rows 4..7 only.
        sched.plan();
        let attempt = sched.requeue_suffix(a, &FtReport::default(), 4);
        assert_eq!(attempt, 1);
        let plan = sched.plan();
        assert_eq!(plan[0].feed, vec![5, 6, 50]);
        assert!(plan[0].sample, "suffix re-prefill completes in one chunk");
        let s = sched.active_stream(a).unwrap();
        assert_eq!(s.recovery_fed, 3, "only the suffix counts as re-fed");
        sched.record(a, Some(51), &FtReport::default());
        // Full requeue for comparison: the whole history re-feeds.
        sched.plan();
        sched.requeue(a, &FtReport::default());
        let s = sched.active_stream(a).unwrap();
        assert_eq!(s.recovery_fed, 3 + 8, "full requeue re-feeds everything");
    }

    #[test]
    fn scheduler_state_is_send() {
        // The fleet ships StreamState between shard threads and each worker
        // owns its DecodeScheduler; both must stay Send. Compile-time pin.
        fn assert_send<T: Send>() {}
        assert_send::<StreamState>();
        assert_send::<DecodeScheduler>();
    }

    #[test]
    fn extract_and_adopt_move_a_pending_stream_between_schedulers() {
        let one_slot = SchedulerConfig {
            max_active: 1,
            preempt: true,
            ..Default::default()
        };
        let mut donor = DecodeScheduler::new(one_slot);
        let a = donor.submit_request(GenerationRequest::new(vec![1, 2], 2));
        let b = donor.submit_request(GenerationRequest::new(vec![3, 4, 5], 2));
        donor.plan();
        donor.record(a, Some(9), &FtReport::default());
        assert!(donor.extract_pending(a).is_none(), "active ≠ extractable");
        assert_eq!(donor.pending_ids(), vec![b]);
        assert_eq!(donor.active_ids(), vec![a]);

        let moved = donor.extract_pending(b).expect("b is queued");
        assert_eq!(donor.pending_len(), 0);
        let mut thief = DecodeScheduler::new(one_slot);
        thief.adopt_pending(moved);
        assert_eq!(thief.pending_ids(), vec![b]);
        // The local allocator skipped past the adopted id.
        let c = thief.submit_request(GenerationRequest::new(vec![6], 1));
        assert!(c.0 > b.0, "adoption bumps the id allocator");
        // The adopted stream runs to completion on the thief.
        while !thief.idle() {
            for feed in thief.plan() {
                let last = *feed.feed.last().unwrap();
                let tok = if feed.sample { Some(last + 1) } else { None };
                thief.record(feed.stream, tok, &FtReport::default());
            }
        }
        let done = thief.take_finished();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, b);
        assert_eq!(done[0].tokens(), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "already known")]
    fn adopting_a_known_id_panics() {
        let mut sched = DecodeScheduler::new(SchedulerConfig::default());
        let a = sched.submit_request(GenerationRequest::new(vec![1], 1));
        let mut other = DecodeScheduler::new(SchedulerConfig::default());
        let id = other.submit_request(GenerationRequest::new(vec![2], 1));
        // Force the same id as `a` to provoke the collision guard.
        let mut moved = other.extract_pending(id).unwrap();
        moved.id = a;
        sched.adopt_pending(moved);
    }
}
