//! Attention configuration and the paper's benchmark presets.

/// Shape and tiling parameters of one attention computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttentionConfig {
    /// Batch size.
    pub batch: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Sequence length.
    pub seq: usize,
    /// Per-head feature dimension.
    pub head_dim: usize,
    /// Block size B used for tiling along `seq` (paper: Br = Bc = B).
    pub block: usize,
    /// Causal masking (GPT-style decoders). FT kernels require `false`
    /// (the paper evaluates unmasked attention); the reference and flash
    /// kernels support both.
    pub causal: bool,
    /// Score scale, conventionally `1/sqrt(head_dim)`.
    pub scale: f32,
}

impl AttentionConfig {
    /// Config with the conventional `1/sqrt(d)` scale and block size 64.
    pub fn new(batch: usize, heads: usize, seq: usize, head_dim: usize) -> Self {
        AttentionConfig {
            batch,
            heads,
            seq,
            head_dim,
            block: 64,
            causal: false,
            scale: 1.0 / (head_dim as f32).sqrt(),
        }
    }

    /// The paper's medium-model setting: hidden 1024 = 16 heads × dim 64.
    pub fn medium(batch: usize, seq: usize) -> Self {
        Self::new(batch, 16, seq, 64)
    }

    /// The paper's large-model setting: hidden 4096 = 32 heads × dim 128.
    pub fn large(batch: usize, seq: usize) -> Self {
        Self::new(batch, 32, seq, 128)
    }

    /// The paper's sweep keeps `batch × seq` fixed (16k total tokens) while
    /// sweeping `seq`; this derives the batch for a given total.
    pub fn with_total_tokens(mut self, total_tokens: usize) -> Self {
        self.batch = (total_tokens / self.seq).max(1);
        self
    }

    /// Set the tiling block size.
    pub fn with_block(mut self, block: usize) -> Self {
        assert!(block > 0);
        self.block = block;
        self
    }

    /// Choose the tiling block size from the sequence length: the paper's
    /// 64-wide CTA tile for long sequences, clamped down to `seq` (but
    /// never below 8, one MMA tile) for short ones.
    ///
    /// This is the policy every shape-agnostic caller (multi-head
    /// attention, serving paths) should use instead of hand-picking tiles;
    /// `seq` values that are not multiples of the chosen block simply
    /// produce a ragged final block, which all kernels handle.
    pub fn with_auto_block(self) -> Self {
        let block = 64.min(self.seq.max(8));
        self.with_block(block)
    }

    /// Enable or disable causal masking.
    pub fn with_causal(mut self, causal: bool) -> Self {
        self.causal = causal;
        self
    }

    /// Number of seq blocks (`⌈seq/B⌉`).
    pub fn num_blocks(&self) -> usize {
        self.seq.div_ceil(self.block)
    }

    /// Flattened (batch, head) slot count.
    pub fn num_slots(&self) -> usize {
        self.batch * self.heads
    }

    /// FP16 bytes of one `batch × heads × seq × dim` tensor.
    pub fn tensor_bytes(&self) -> u64 {
        (self.batch * self.heads * self.seq * self.head_dim * 2) as u64
    }

    /// FP16 bytes of one `batch × heads × seq × seq` score tensor (what the
    /// decoupled pipeline must materialise).
    pub fn score_bytes(&self) -> u64 {
        (self.batch * self.heads * self.seq * self.seq * 2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_settings() {
        let m = AttentionConfig::medium(2, 512);
        assert_eq!((m.heads, m.head_dim), (16, 64));
        assert!((m.scale - 0.125).abs() < 1e-7);
        let l = AttentionConfig::large(1, 1024);
        assert_eq!((l.heads, l.head_dim), (32, 128));
    }

    #[test]
    fn total_token_sweep_matches_paper_batching() {
        // 16k total tokens at seq 512 → batch 32; at 16k → batch 1.
        let c = AttentionConfig::medium(1, 512).with_total_tokens(16 * 1024);
        assert_eq!(c.batch, 32);
        let c = AttentionConfig::medium(1, 16 * 1024).with_total_tokens(16 * 1024);
        assert_eq!(c.batch, 1);
    }

    #[test]
    fn auto_block_policy() {
        // Long sequences take the paper's 64-wide tile.
        assert_eq!(AttentionConfig::medium(1, 512).with_auto_block().block, 64);
        // Short sequences shrink the tile to the sequence length…
        assert_eq!(
            AttentionConfig::new(1, 1, 32, 16).with_auto_block().block,
            32
        );
        // …but never below one 8-wide MMA tile.
        assert_eq!(AttentionConfig::new(1, 1, 4, 16).with_auto_block().block, 8);
        // Non-divisible sequences keep the 64 tile and go ragged.
        let c = AttentionConfig::new(1, 1, 100, 16).with_auto_block();
        assert_eq!(c.block, 64);
        assert_eq!(c.num_blocks(), 2);
    }

    #[test]
    fn block_and_byte_helpers() {
        let c = AttentionConfig::medium(2, 500).with_block(64);
        assert_eq!(c.num_blocks(), 8);
        assert_eq!(c.num_slots(), 32);
        assert_eq!(c.tensor_bytes(), 2 * 16 * 500 * 64 * 2);
        assert_eq!(c.score_bytes(), 2 * 16 * 500 * 500 * 2);
    }
}
