//! Flash attention: tiled, online-softmax, O(n)-memory exact attention
//! (paper §2.1, Eqs. 1–7) — *without* fault tolerance.
//!
//! This is the "E2E Attention" baseline every overhead percentage in
//! Figs. 10–13 and Tables 1–2 is measured against. The EFTA kernel in
//! [`crate::efta`] is this computation plus the hybrid protection scheme.

// Index-based loops are kept deliberately: they mirror the thread/lane
// structure of the GPU kernels this module models.
#![allow(clippy::needless_range_loop)]

use crate::config::AttentionConfig;
use crate::types::{AttentionOutput, FtReport, PhaseBreakdown};
use ft_num::{block_starts, Matrix, MatrixF32, Tensor4F16, Tensor4F32};
use ft_sim::cost::Timeline;
use ft_sim::device::KernelStats;
use ft_sim::{gemm_flops, gemm_nn, gemm_nt};
use rayon::prelude::*;

/// State of one row-block's online softmax accumulation.
pub(crate) struct OnlineState {
    /// Running row maxima m_i.
    pub m: Vec<f32>,
    /// Running row sums ℓ_i.
    pub ell: Vec<f32>,
    /// Unnormalised output accumulator (B × d).
    pub o: MatrixF32,
}

impl OnlineState {
    pub(crate) fn new(rows: usize, dim: usize) -> Self {
        OnlineState {
            m: vec![f32::NEG_INFINITY; rows],
            ell: vec![0.0; rows],
            o: Matrix::zeros(rows, dim),
        }
    }
}

/// One inner iteration of the online-softmax update for a score block
/// `s_blk` (rows × bc) and value block `v_blk` (bc × d):
/// new maxima, rescale factors, exp block P, rowsum update and O update.
/// Returns P for reuse by callers that need it.
pub(crate) fn online_update(
    state: &mut OnlineState,
    s_blk: &MatrixF32,
    v_blk: &MatrixF32,
) -> MatrixF32 {
    let rows = s_blk.rows();
    let mut p = Matrix::zeros(rows, s_blk.cols());
    let mut factors = vec![0.0f32; rows];
    for i in 0..rows {
        let blk_max = s_blk
            .row(i)
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        let m_new = state.m[i].max(blk_max);
        let factor = if state.m[i].is_finite() {
            (state.m[i] - m_new).exp()
        } else {
            0.0
        };
        let mut rowsum = 0.0f32;
        let prow = p.row_mut(i);
        for (j, &s) in s_blk.row(i).iter().enumerate() {
            let e = (s - m_new).exp();
            prow[j] = e;
            rowsum += e;
        }
        state.ell[i] = factor * state.ell[i] + rowsum;
        state.m[i] = m_new;
        factors[i] = factor;
    }
    // O = diag(factor)·O + P·V.
    let pv = gemm_nn(&p, v_blk);
    for i in 0..rows {
        let f = factors[i];
        for (o, &d) in state.o.row_mut(i).iter_mut().zip(pv.row(i)) {
            *o = f * *o + d;
        }
    }
    p
}

/// Finalise: O = diag(1/ℓ)·O.
pub(crate) fn finalize(state: &mut OnlineState) {
    for i in 0..state.o.rows() {
        let inv = 1.0 / state.ell[i];
        for v in state.o.row_mut(i) {
            *v *= inv;
        }
    }
}

/// Flash attention forward pass (no protection).
///
/// Compatibility shim: new code should go through the unified API —
/// `BackendKind::Flash` and [`crate::backend::AttentionBackend::run`].
#[doc(hidden)]
pub fn flash_attention(
    cfg: &AttentionConfig,
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
) -> AttentionOutput {
    use crate::backend::{AttentionBackend, AttentionRequest, FlashBackend};
    FlashBackend.run(&AttentionRequest::new(*cfg, q, k, v))
}

/// Flash kernel body; [`crate::backend::FlashBackend`] is the public entry
/// point.
pub(crate) fn flash_forward(
    cfg: &AttentionConfig,
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
) -> AttentionOutput {
    let b = cfg.block;
    let nb = cfg.num_blocks();
    let d = cfg.head_dim;

    // All (slot, row-block) pairs are independent CTAs.
    let tasks: Vec<(usize, usize)> = (0..cfg.num_slots())
        .flat_map(|s| block_starts(cfg.seq, b).map(move |r0| (s, r0)))
        .collect();

    let results: Vec<(usize, usize, MatrixF32)> = tasks
        .into_par_iter()
        .map(|(slot, r0)| {
            let qm = q.slot_flat(slot);
            let km = k.slot_flat(slot);
            let vm = v.slot_flat(slot);
            let q_blk_raw = qm.block(r0, 0, b, d).to_f32();
            let rows = q_blk_raw.rows();
            let q_blk = Matrix::from_fn(rows, d, |i, j| q_blk_raw.get(i, j) * cfg.scale);
            let mut state = OnlineState::new(rows, d);
            for c0 in block_starts(cfg.seq, b) {
                if cfg.causal && c0 > r0 + rows - 1 {
                    break; // block entirely above the diagonal
                }
                let k_blk = km.block(c0, 0, b, d).to_f32();
                let v_blk = vm.block(c0, 0, b, d).to_f32();
                let mut s_blk = gemm_nt(&q_blk, &k_blk);
                if cfg.causal {
                    for i in 0..s_blk.rows() {
                        for j in 0..s_blk.cols() {
                            if c0 + j > r0 + i {
                                s_blk.set(i, j, f32::NEG_INFINITY);
                            }
                        }
                    }
                }
                online_update(&mut state, &s_blk, &v_blk);
            }
            finalize(&mut state);
            (slot, r0, state.o)
        })
        .collect();

    let mut o = Tensor4F32::zeros(cfg.batch, cfg.heads, cfg.seq, cfg.head_dim);
    for (slot, r0, blk) in results {
        let (bi, h) = o.unflatten(slot);
        o.slot_mut(bi, h).set_block(r0, 0, &blk);
    }

    // One fused kernel launch; HBM traffic per the flash-attention IO model.
    let slots = cfg.num_slots() as u64;
    let blk_bytes = (b * d * 2) as u64;
    let stats = KernelStats {
        launches: 1,
        hbm_read: slots * (nb as u64 * blk_bytes + (nb * nb) as u64 * 2 * blk_bytes),
        hbm_written: slots * (cfg.seq * d * 2) as u64,
        tc_flops: slots * 2 * gemm_flops(cfg.seq, cfg.seq, d),
        fp32_flops: slots * 4 * (cfg.seq * cfg.seq) as u64,
        sfu_ops: slots * (cfg.seq * cfg.seq) as u64,
        serial_flops: 0,
    };
    let mut timeline = Timeline::new();
    timeline.push("flash", stats);

    AttentionOutput {
        o,
        timeline,
        report: FtReport::default(),
        phases: PhaseBreakdown::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_attention;
    use ft_num::rng::normal_tensor_f16;
    use proptest::prelude::*;

    fn qkv(cfg: &AttentionConfig, seed: u64) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
        let q = normal_tensor_f16(seed, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
        let k = normal_tensor_f16(seed + 1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
        let v = normal_tensor_f16(seed + 2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
        (q, k, v)
    }

    #[test]
    fn matches_reference_attention() {
        let cfg = AttentionConfig::new(2, 2, 96, 32).with_block(32);
        let (q, k, v) = qkv(&cfg, 42);
        let flash = flash_attention(&cfg, &q, &k, &v);
        let reference = reference_attention(&cfg, &q, &k, &v);
        let diff = flash.o.max_abs_diff(&reference);
        assert!(diff < 5e-5, "flash vs reference diff {diff}");
    }

    #[test]
    fn matches_reference_with_ragged_last_block() {
        let cfg = AttentionConfig::new(1, 2, 50, 16).with_block(16);
        let (q, k, v) = qkv(&cfg, 7);
        let flash = flash_attention(&cfg, &q, &k, &v);
        let reference = reference_attention(&cfg, &q, &k, &v);
        assert!(flash.o.max_abs_diff(&reference) < 5e-5);
    }

    #[test]
    fn matches_reference_causal() {
        let cfg = AttentionConfig::new(1, 2, 64, 16)
            .with_block(16)
            .with_causal(true);
        let (q, k, v) = qkv(&cfg, 8);
        let flash = flash_attention(&cfg, &q, &k, &v);
        let reference = reference_attention(&cfg, &q, &k, &v);
        assert!(flash.o.max_abs_diff(&reference) < 5e-5);
    }

    #[test]
    fn single_kernel_launch_and_linear_writes() {
        let cfg = AttentionConfig::new(1, 4, 128, 32).with_block(64);
        let (q, k, v) = qkv(&cfg, 9);
        let out = flash_attention(&cfg, &q, &k, &v);
        let total = out.timeline.total();
        assert_eq!(total.launches, 1);
        // Writes are O(seq·d), NOT O(seq²).
        assert_eq!(total.hbm_written, 4 * 128 * 32 * 2);
        assert!(out.report.clean());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn prop_flash_equals_reference(
            seq in 16usize..80,
            dim_pow in 3u32..6,
            block in prop::sample::select(vec![16usize, 24, 32]),
            seed in 0u64..500,
        ) {
            let dim = 1usize << dim_pow;
            let cfg = AttentionConfig::new(1, 1, seq, dim).with_block(block);
            let (q, k, v) = qkv(&cfg, seed);
            let flash = flash_attention(&cfg, &q, &k, &v);
            let reference = reference_attention(&cfg, &q, &k, &v);
            prop_assert!(flash.o.max_abs_diff(&reference) < 1e-4);
        }
    }
}
