//! Selective neuron value restriction (SNVR) — paper §3.4.
//!
//! SNVR applies *different* fault-tolerance constraints to the softmax
//! sub-operations according to their computational significance:
//!
//! * **Case 1 — reduce max.** An erroneous row max cancels algebraically in
//!   exact softmax (numerator and denominator share the `e^{m'}` factor),
//!   *except* that a too-small max can overflow `exp`. The restriction
//!   `rowmax(S) ≤ m` (equivalently `s − m ≤ 0`) catches the dangerous
//!   direction; violations are repaired by recomputing the max.
//! * **Case 2 — subtract + exp.** Protected precisely through checksum
//!   reuse (see [`ft_abft::propagate`]); linear faults are corrected from
//!   checksums, exponential faults by recomputation. Implemented inside the
//!   EFTA kernel; this module provides the restriction helpers.
//! * **Case 3 — reduce sum.** The rowsum ℓ only scales a whole row, so it
//!   is range-restricted: `Σ_k exp(m_k − m) ≤ ℓ ≤ n`. Out-of-range values
//!   are replaced by the lower-bound approximation (optimised EFTA) —
//!   attention focuses on the largest scores, which the approximation
//!   preserves.
//!
//! The module also implements the *traditional* restriction comparator used
//! in Fig. 14-right: clamping only the final normalised weights to their
//! theoretical [0, 1] range.

/// Outcome of one range-restriction check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Restriction {
    /// Value was within its theoretical range.
    InRange,
    /// Value was out of range and replaced by `repaired`.
    Repaired {
        /// The substituted value.
        repaired: f32,
    },
}

impl Restriction {
    /// True when a repair happened.
    pub fn repaired(&self) -> bool {
        matches!(self, Restriction::Repaired { .. })
    }
}

/// Case 1: validate a computed row max `m` against the scores it reduces.
/// `m` must be ≥ every score (and finite); otherwise return the recomputed
/// true max.
pub fn restrict_row_max(scores: &[f32], m: f32) -> Restriction {
    let true_max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    // A max above the true max is harmless (cancels); below it risks
    // overflow in exp, and NaN/Inf is always wrong.
    if m.is_finite() && m >= true_max {
        Restriction::InRange
    } else {
        Restriction::Repaired { repaired: true_max }
    }
}

/// Case 3 bounds for the accumulated rowsum ℓ of one row:
/// `Σ_k exp(m_k − m_final) ≤ ℓ ≤ n`, where `m_k` are the per-iteration
/// block maxima and `m_final` the global row max (paper §3.4 and
/// Algorithm 1 lines 22–24).
pub fn rowsum_bounds(block_maxes: &[f32], m_final: f32, n: usize) -> (f32, f32) {
    let lower: f32 = block_maxes.iter().map(|&mk| (mk - m_final).exp()).sum();
    (lower, n as f32)
}

/// Case 3: restrict ℓ to its theoretical range; out-of-range (or non-finite)
/// values are replaced by the lower-bound approximation.
pub fn restrict_rowsum(ell: f32, block_maxes: &[f32], m_final: f32, n: usize) -> Restriction {
    let (lower, upper) = rowsum_bounds(block_maxes, m_final, n);
    // Tolerate fp slack at the boundary: exp sums carry rounding noise.
    let slack = 1e-3 * lower.abs().max(1.0);
    if ell.is_finite() && ell >= lower - slack && ell <= upper + slack {
        Restriction::InRange
    } else {
        Restriction::Repaired { repaired: lower }
    }
}

/// The traditional restriction comparator (Fig. 14-right): clamp a final
/// normalised attention weight to the theoretical [0, 1] range. Errors that
/// stay inside the range pass through unrepaired — the reason its residual
/// error distribution is wide.
pub fn traditional_restrict_weight(p: f32) -> f32 {
    if !p.is_finite() {
        return 0.0;
    }
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_accepts_true_or_larger_max() {
        let scores = [0.5, -1.0, 2.0, 1.5];
        assert_eq!(restrict_row_max(&scores, 2.0), Restriction::InRange);
        // Larger-than-true max cancels in softmax: accepted.
        assert_eq!(restrict_row_max(&scores, 5.0), Restriction::InRange);
    }

    #[test]
    fn case1_repairs_underestimated_or_nonfinite_max() {
        let scores = [0.5, -1.0, 2.0, 1.5];
        match restrict_row_max(&scores, 1.0) {
            Restriction::Repaired { repaired } => assert_eq!(repaired, 2.0),
            _ => panic!("must repair"),
        }
        assert!(restrict_row_max(&scores, f32::NAN).repaired());
        assert!(restrict_row_max(&scores, f32::NEG_INFINITY).repaired());
    }

    #[test]
    fn case3_bounds_bracket_true_rowsum() {
        // Two blocks with maxima 1.0 and 3.0 (global 3.0), 8 columns each.
        // True ℓ = Σ exp(s − 3) over 16 scores; each block contributes at
        // least exp(m_k − 3), and every term is ≤ 1.
        let block_maxes = [1.0f32, 3.0];
        let scores: Vec<f32> = vec![
            0.1, 0.4, 1.0, -0.5, 0.0, 0.9, 0.3, -1.0, 2.9, 3.0, 1.0, 2.0, 0.0, 1.5, 2.5, 0.5,
        ];
        let ell: f32 = scores.iter().map(|&s| (s - 3.0).exp()).sum();
        let (lo, hi) = rowsum_bounds(&block_maxes, 3.0, 16);
        assert!(lo <= ell && ell <= hi, "{lo} <= {ell} <= {hi}");
        assert_eq!(
            restrict_rowsum(ell, &block_maxes, 3.0, 16),
            Restriction::InRange
        );
    }

    #[test]
    fn case3_repairs_corrupted_rowsum_with_lower_bound() {
        let block_maxes = [2.0f32, 3.0];
        let (lo, _) = rowsum_bounds(&block_maxes, 3.0, 16);
        // Corrupted far above n.
        match restrict_rowsum(1e9, &block_maxes, 3.0, 16) {
            Restriction::Repaired { repaired } => assert!((repaired - lo).abs() < 1e-6),
            _ => panic!("must repair"),
        }
        // Corrupted below the lower bound.
        assert!(restrict_rowsum(lo * 0.5, &block_maxes, 3.0, 16).repaired());
        // NaN.
        assert!(restrict_rowsum(f32::NAN, &block_maxes, 3.0, 16).repaired());
    }

    #[test]
    fn case3_upper_bound_is_sequence_length() {
        // All scores equal the max → ℓ = n exactly; still in range.
        let block_maxes = [1.0f32];
        assert_eq!(
            restrict_rowsum(8.0, &block_maxes, 1.0, 8),
            Restriction::InRange
        );
        assert!(restrict_rowsum(8.5, &block_maxes, 1.0, 8).repaired());
    }

    #[test]
    fn traditional_restriction_only_clamps_range() {
        assert_eq!(traditional_restrict_weight(0.3), 0.3);
        assert_eq!(traditional_restrict_weight(-0.2), 0.0);
        assert_eq!(traditional_restrict_weight(1.7), 1.0);
        assert_eq!(traditional_restrict_weight(f32::INFINITY), 0.0);
        // In-range errors pass straight through — the weakness Fig. 14
        // demonstrates.
        assert_eq!(traditional_restrict_weight(0.999), 0.999);
    }
}
