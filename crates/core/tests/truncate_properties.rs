//! Property suite for the tail-rollback primitive: under random
//! append/truncate/evict interleavings, a [`KvCache`] must stay exactly
//! the cache that a straight-line replay of its surviving history builds —
//! payload, checksums, and max-norm snapshots bit-identical — with every
//! surviving row verifying clean and the `len`/`size_bytes`/`num_blocks`
//! accounting consistent at every step. The degenerate marks (behind the
//! eviction frontier, past the tail) are pinned as hard-assert rejections.

use ft_core::kv::{CacheMark, KvCache, KvReadReport};
use ft_num::rng::normal_tensor_f16;
use ft_num::tensor::Tensor4F16;
use proptest::prelude::*;

const DIM: usize = 16;
const STRIDE: usize = 8;

/// Deterministic K/V rows for logical token `id` — replaying the same ids
/// must rebuild bit-identical storage.
fn token_rows(id: u64) -> (Tensor4F16, Tensor4F16) {
    (
        normal_tensor_f16(1000 + id, 1, 2, 1, DIM, 0.6),
        normal_tensor_f16(5000 + id, 1, 2, 1, DIM, 0.8),
    )
}

fn fresh(block: usize) -> KvCache {
    KvCache::new(1, 2, DIM, block, STRIDE, 0.25)
}

fn append_id(cache: &mut KvCache, id: u64) -> KvReadReport {
    let (k, v) = token_rows(id);
    cache.append(&k, &v)
}

/// SplitMix64 — the op-sequence driver (the proptest shim draws the seed).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bit-identical comparison of everything the resident blocks store.
fn assert_matches_replay(cache: &KvCache, rows: &[u64], start: usize, block: usize) {
    let mut replay = fresh(block);
    for &id in rows {
        append_id(&mut replay, id);
    }
    replay.evict_front(start / block);
    assert_eq!(cache.len(), replay.len());
    assert_eq!(cache.start(), replay.start());
    assert_eq!(cache.num_blocks(), replay.num_blocks());
    for slot in 0..cache.num_slots() {
        for b in cache.start_block()..cache.num_blocks() {
            assert_eq!(
                cache.read_k_raw(slot, b),
                replay.read_k_raw(slot, b),
                "K s{slot} b{b}"
            );
            assert_eq!(
                cache.read_v_raw(slot, b),
                replay.read_v_raw(slot, b),
                "V s{slot} b{b}"
            );
            assert_eq!(
                cache.k_checksums(slot, b).w1,
                replay.k_checksums(slot, b).w1
            );
            assert_eq!(
                cache.k_checksums(slot, b).w2,
                replay.k_checksums(slot, b).w2
            );
            assert_eq!(
                cache.v_checksums(slot, b).w1,
                replay.v_checksums(slot, b).w1
            );
            assert_eq!(
                cache.v_checksums(slot, b).w2,
                replay.v_checksums(slot, b).w2
            );
            assert_eq!(
                cache.k_max_norm(slot, b).to_bits(),
                replay.k_max_norm(slot, b).to_bits(),
                "max-norm s{slot} b{b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of append (1–3 tokens), truncate (to a random
    /// resident mark), and evict (0–2 front blocks): after every operation
    /// the bookkeeping invariants hold and nothing is poisoned; at the end
    /// the cache is bit-identical to a straight-line replay of the
    /// surviving rows, and every surviving row verifies clean.
    #[test]
    fn interleaved_append_truncate_evict_matches_straight_line_replay(
        seed in 0u64..1_000_000,
        block in prop::sample::select(vec![4usize, 8]),
        ops in 6usize..22,
    ) {
        let mut cache = fresh(block);
        let mut rows: Vec<u64> = Vec::new(); // ids of logically-live rows
        let mut start = 0usize;
        let mut next_id = 0u64;
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ block as u64;
        for _ in 0..ops {
            match mix(&mut s) % 4 {
                0 | 1 => {
                    let n = 1 + (mix(&mut s) % 3) as usize;
                    for _ in 0..n {
                        prop_assert!(append_id(&mut cache, next_id).clean());
                        rows.push(next_id);
                        next_id += 1;
                    }
                }
                2 if rows.len() > start => {
                    // Keep at least one resident row (a mark exactly at the
                    // frontier is legal but leaves nothing to replay-evict;
                    // the directed test below covers it).
                    let target = start + 1 + (mix(&mut s) as usize % (rows.len() - start));
                    let rep = cache.truncate_to(CacheMark::at(target));
                    prop_assert_eq!(rep.uncorrectable, 0);
                    rows.truncate(target);
                }
                3 => {
                    let evicted = cache.evict_front((mix(&mut s) % 3) as usize);
                    start += evicted * block;
                }
                _ => {}
            }
            // Bookkeeping invariants after every operation.
            prop_assert_eq!(cache.len(), rows.len());
            prop_assert_eq!(cache.start(), start);
            prop_assert_eq!(cache.num_blocks(), rows.len().div_ceil(block));
            prop_assert_eq!(cache.resident_len(), rows.len() - start);
            prop_assert_eq!(
                cache.size_bytes(),
                2 * (cache.num_slots() * (rows.len() - start) * DIM * 2) as u64
            );
            prop_assert_eq!(cache.poisoned(), 0);
        }
        assert_matches_replay(&cache, &rows, start, block);
        // Every surviving row verifies clean against its checksums.
        for slot in 0..cache.num_slots() {
            for b in cache.start_block()..cache.num_blocks() {
                prop_assert!(cache.read_k_verified(slot, b).1.clean(), "K s{slot} b{b}");
                prop_assert!(cache.read_v_verified(slot, b).1.clean(), "V s{slot} b{b}");
            }
        }
    }

    /// `checkpoint` → grow → `truncate_to` is an exact round-trip: the
    /// rolled-back cache is bit-identical (payload, checksums, max-norms)
    /// to its pre-growth clone, for every base/extra split and block size —
    /// and `CacheMark::advanced` lands the partial commit exactly.
    #[test]
    fn checkpoint_truncate_roundtrip_is_exact(
        base in 1usize..40,
        extra in 1usize..24,
        keep in 0usize..24,
        block in prop::sample::select(vec![4usize, 8, 16]),
    ) {
        let mut cache = fresh(block);
        for id in 0..base as u64 {
            append_id(&mut cache, id);
        }
        let mark = cache.checkpoint();
        prop_assert_eq!(mark.position(), base);
        let before = cache.clone();

        for id in 0..extra as u64 {
            append_id(&mut cache, 10_000 + id);
        }
        // Partial commit first: keep an accepted prefix of the growth.
        let keep = keep.min(extra);
        let mut committed = cache.clone();
        prop_assert_eq!(committed.truncate_to(mark.advanced(keep)).uncorrectable, 0);
        prop_assert_eq!(committed.len(), base + keep);

        // Full rollback: bit-identical to the pre-growth cache.
        prop_assert_eq!(cache.truncate_to(mark).uncorrectable, 0);
        let ids: Vec<u64> = (0..base as u64).collect();
        assert_matches_replay(&cache, &ids, 0, block);
        let mut kept_ids = ids;
        kept_ids.extend((0..keep as u64).map(|i| 10_000 + i));
        assert_matches_replay(&committed, &kept_ids, 0, block);
        prop_assert_eq!(cache.checkpoint(), before.checkpoint());
    }
}

/// Truncating exactly to the eviction frontier is legal and leaves zero
/// resident rows; appends then resume from the frontier as if the dropped
/// tail never existed.
#[test]
fn truncate_to_frontier_empties_residency_and_appends_resume() {
    let mut cache = fresh(4);
    for id in 0..11 {
        append_id(&mut cache, id);
    }
    assert_eq!(cache.evict_front(1), 1); // start = 4
    cache.truncate_to(CacheMark::at(4));
    assert_eq!(
        (cache.len(), cache.start(), cache.resident_len()),
        (4, 4, 0)
    );
    assert_eq!(cache.size_bytes(), 0);
    for id in 0..5 {
        assert!(append_id(&mut cache, 200 + id).clean());
    }
    assert_eq!(cache.resident_len(), 5);
    assert_eq!(cache.poisoned(), 0);
    for slot in 0..cache.num_slots() {
        for b in cache.start_block()..cache.num_blocks() {
            assert!(cache.read_k_verified(slot, b).1.clean());
        }
    }
}

/// A mark whose rows were evicted is dead: `truncate_to` must reject it
/// with the documented hard assert rather than resurrect freed state.
#[test]
#[should_panic(expected = "behind the eviction frontier")]
fn truncating_to_an_evicted_mark_panics() {
    let mut cache = fresh(4);
    let mark = cache.checkpoint(); // row 0
    for id in 0..13 {
        append_id(&mut cache, id);
    }
    cache.evict_front(2); // start = 8: the mark's block is gone
    cache.truncate_to(mark.advanced(3)); // row 3 < start
}

/// Truncating forward of the tail is equally a logic error.
#[test]
#[should_panic(expected = "cannot truncate forward")]
fn truncating_forward_panics() {
    let mut cache = fresh(4);
    for id in 0..6 {
        append_id(&mut cache, id);
    }
    cache.truncate_to(CacheMark::at(7));
}
