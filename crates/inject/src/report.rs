//! Plain-text table and series emitters shared by the bench binaries.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{c:<w$}");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds as milliseconds with three decimals.
pub fn ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Render an ASCII sparkline-style bar for a 0..=1 rate.
pub fn bar(rate: f64, width: usize) -> String {
    let filled = (rate.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["seq", "time (ms)", "overhead"]);
        t.row(&["512".into(), "0.425".into(), "52.3%".into()]);
        t.row(&["16k".into(), "13.804".into(), "48.2%".into()]);
        let s = t.render();
        assert!(s.contains("seq"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("512"));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.001234), "1.234");
        assert_eq!(pct(0.523), "52.3%");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(1.5, 4), "####");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["x".into()]);
    }
}
