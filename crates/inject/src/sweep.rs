//! Parameter sweeps and the post-restriction error-distribution experiment
//! (Fig. 14-right).

use crate::campaign::{
    coverage_campaign, detection_campaign, snvr_campaign, CoverageStats, DetectionStats, GemmShape,
    Scheme,
};
use ft_abft::thresholds::Check;
use ft_core::snvr::{restrict_rowsum, traditional_restrict_weight, Restriction};
use ft_num::rng::rng_from_seed;
use rand::Rng;
use rayon::prelude::*;

/// Coverage-vs-BER series (Fig. 12-left).
#[derive(Clone, Debug)]
pub struct CoverageSweep {
    /// Swept bit-error rates.
    pub bers: Vec<f64>,
    /// Coverage per BER for the tensor checksum.
    pub tensor: Vec<CoverageStats>,
    /// Coverage per BER for the element checksum.
    pub element: Vec<CoverageStats>,
}

/// Run the Fig. 12-left sweep.
pub fn coverage_vs_ber(trials: u64, seed: u64, bers: &[f64], chk: Check) -> CoverageSweep {
    let shape = GemmShape::default();
    CoverageSweep {
        bers: bers.to_vec(),
        tensor: bers
            .iter()
            .map(|&b| coverage_campaign(trials, seed, b, Scheme::Tensor, shape, chk))
            .collect(),
        element: bers
            .iter()
            .map(|&b| coverage_campaign(trials, seed, b, Scheme::Element, shape, chk))
            .collect(),
    }
}

/// Detection/false-alarm-vs-threshold series (Figs. 12-right and 14-left).
#[derive(Clone, Debug)]
pub struct ThresholdSweep {
    /// Swept relative thresholds.
    pub taus: Vec<f32>,
    /// Stats per threshold.
    pub stats: Vec<DetectionStats>,
}

impl ThresholdSweep {
    /// The threshold with the best detection−false-alarm margin.
    pub fn best_tau(&self) -> f32 {
        let mut best = (f32::NEG_INFINITY, 0.0f32);
        for (tau, st) in self.taus.iter().zip(&self.stats) {
            let margin = (st.detection_rate() - st.false_alarm_rate()) as f32;
            if margin > best.0 {
                best = (margin, *tau);
            }
        }
        best.1
    }
}

/// Fig. 12-right: strided-ABFT detection/false alarms across thresholds.
pub fn abft_threshold_sweep(trials: u64, seed: u64, taus: &[f32]) -> ThresholdSweep {
    let shape = GemmShape::default();
    ThresholdSweep {
        taus: taus.to_vec(),
        stats: taus
            .iter()
            .map(|&t| detection_campaign(trials, seed, t, Scheme::Tensor, shape))
            .collect(),
    }
}

/// Fig. 14-left: SNVR product-check detection/false alarms across
/// thresholds.
pub fn snvr_threshold_sweep(trials: u64, seed: u64, taus: &[f32]) -> ThresholdSweep {
    let shape = GemmShape::default();
    ThresholdSweep {
        taus: taus.to_vec(),
        stats: taus
            .iter()
            .map(|&t| snvr_campaign(trials, seed, t, shape))
            .collect(),
    }
}

/// Histogram of post-restriction relative errors (Fig. 14-right).
#[derive(Clone, Debug)]
pub struct ErrorHistogram {
    /// Bin width.
    pub bin_width: f32,
    /// Counts per bin (bin i covers `[i·w, (i+1)·w)`).
    pub bins: Vec<u64>,
    /// Samples beyond the last bin.
    pub overflow: u64,
}

impl ErrorHistogram {
    fn new(bin_width: f32, nbins: usize) -> Self {
        ErrorHistogram {
            bin_width,
            bins: vec![0; nbins],
            overflow: 0,
        }
    }

    fn add(&mut self, v: f32) {
        let idx = (v / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    fn merge(mut self, other: ErrorHistogram) -> ErrorHistogram {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self
    }

    /// Fraction of samples at or below `limit`.
    pub fn fraction_within(&self, limit: f32) -> f64 {
        let total: u64 = self.bins.iter().sum::<u64>() + self.overflow;
        if total == 0 {
            return 1.0;
        }
        let cut = (limit / self.bin_width).round() as usize;
        let within: u64 = self.bins.iter().take(cut).sum();
        within as f64 / total as f64
    }

    /// Normalised bin rates.
    pub fn rates(&self) -> Vec<f64> {
        let total: u64 = self.bins.iter().sum::<u64>() + self.overflow;
        self.bins
            .iter()
            .map(|&c| {
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                }
            })
            .collect()
    }
}

/// Post-restriction error distributions for the two restriction schemes.
#[derive(Clone, Debug)]
pub struct RestrictionComparison {
    /// Selective neuron value restriction (the paper's).
    pub selective: ErrorHistogram,
    /// Traditional restriction (clamp final weights to [0, 1]).
    pub traditional: ErrorHistogram,
}

/// One trial of the Fig. 14-right experiment.
///
/// A 64-wide softmax row is computed in 8 blocks and a single bit flip
/// lands on a uniformly chosen softmax operation — overwhelmingly an
/// exponential (64 exp ops vs 1 rowsum per row). The two restriction
/// schemes then repair what they can:
///
/// * **SNVR** protects the numerator with the checksum-reuse product check
///   (faulty exponentials are recomputed) and the denominator with the
///   range restriction — matching the paper's "protects numerator and
///   denominator separately";
/// * **traditional restriction** only clamps the final weights to [0, 1].
///
/// The recorded statistic is the RMS error of the restricted row against
/// the true softmax — a full-scale single-element clamp error on a 64-wide
/// row lands at ≈ 1/√64 = 0.125, reproducing the paper's 0–0.15 spread.
fn restriction_trial(seed: u64, hist_bins: usize, bin_w: f32) -> RestrictionComparison {
    let mut rng = rng_from_seed(seed);
    let n = 64usize;
    let blocks = 8usize;
    let stride = 8usize;
    let scores: Vec<f32> = (0..n).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
    let m_global = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scores.iter().map(|s| (s - m_global).exp()).collect();
    let ell_true: f32 = exps.iter().sum();
    let p_true: Vec<f32> = exps.iter().map(|e| e / ell_true).collect();

    // Block maxima (for the SNVR lower bound).
    let block_maxes: Vec<f32> = (0..blocks)
        .map(|b| {
            scores[b * (n / blocks)..(b + 1) * (n / blocks)]
                .iter()
                .cloned()
                .fold(f32::NEG_INFINITY, f32::max)
        })
        .collect();

    // One bit flip on one of the row's n+1 softmax operations, drawn from
    // the FP16-visible bit range (flips below half-precision resolution do
    // not exist in the paper's data domain).
    let op = rng.gen_range(0..=n);
    let bit = rng.gen_range(13..32u32);
    let mut exps_faulty = exps.clone();
    let mut ell_faulty = ell_true;
    if op < n {
        exps_faulty[op] = f32::from_bits(exps_faulty[op].to_bits() ^ (1u32 << bit));
    } else {
        ell_faulty = f32::from_bits(ell_faulty.to_bits() ^ (1u32 << bit));
    }

    let mut selective = ErrorHistogram::new(bin_w, hist_bins);
    let mut traditional = ErrorHistogram::new(bin_w, hist_bins);
    let rms = |p: &[f32]| -> f32 {
        (p.iter()
            .zip(&p_true)
            .map(|(a, b)| {
                let d = if a.is_finite() { a - b } else { 1.0 };
                d * d
            })
            .sum::<f32>()
            / n as f32)
            .sqrt()
    };

    // ---- SNVR: product check on the numerator, range check on ℓ --------
    let chk = Check::new(0.02, 0.0);
    let mut exps_snvr = exps_faulty.clone();
    for t in 0..stride {
        let mut prod_obs = 1.0f32;
        let mut prod_ref = 1.0f32;
        let mut j = t;
        while j < n {
            prod_obs *= exps_snvr[j];
            prod_ref *= exps[j]; // transported checksum (exact transport)
            j += stride;
        }
        if chk.detects(prod_obs, prod_ref) {
            // Recompute the residue class from the (clean) scores.
            let mut j = t;
            while j < n {
                exps_snvr[j] = (scores[j] - m_global).exp();
                j += stride;
            }
        }
    }
    let ell_snvr_input: f32 = if op == n {
        ell_faulty
    } else {
        exps_snvr.iter().sum()
    };
    let ell_snvr = match restrict_rowsum(ell_snvr_input, &block_maxes, m_global, n) {
        Restriction::InRange => ell_snvr_input,
        Restriction::Repaired { repaired } => repaired,
    };
    let p_snvr: Vec<f32> = exps_snvr.iter().map(|e| e / ell_snvr).collect();
    selective.add(rms(&p_snvr));

    // ---- Traditional: clamp final weights to [0, 1] ----------------------
    let ell_trad: f32 = if op == n {
        ell_faulty
    } else {
        exps_faulty.iter().sum()
    };
    let p_trad: Vec<f32> = exps_faulty
        .iter()
        .map(|e| traditional_restrict_weight(e / ell_trad))
        .collect();
    traditional.add(rms(&p_trad));

    RestrictionComparison {
        selective,
        traditional,
    }
}

/// Run the Fig. 14-right experiment: distribution of post-restriction
/// errors under rowsum faults.
pub fn restriction_error_distribution(trials: u64, seed: u64) -> RestrictionComparison {
    let bins = 25usize;
    let bin_w = 0.01f32;
    (0..trials)
        .into_par_iter()
        .map(|t| restriction_trial(ft_num::rng::derive_seed(seed, t), bins, bin_w))
        .reduce(
            || RestrictionComparison {
                selective: ErrorHistogram::new(bin_w, bins),
                traditional: ErrorHistogram::new(bin_w, bins),
            },
            |a, b| RestrictionComparison {
                selective: a.selective.merge(b.selective),
                traditional: a.traditional.merge(b.traditional),
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_abft::thresholds::Thresholds;

    #[test]
    fn coverage_sweep_shapes() {
        let sw = coverage_vs_ber(4, 1, &[1e-5, 1e-4], Thresholds::calibrated().gemm);
        assert_eq!(sw.tensor.len(), 2);
        assert_eq!(sw.element.len(), 2);
    }

    #[test]
    fn threshold_sweep_finds_interior_optimum() {
        let taus: Vec<f32> = vec![1e-4, 1e-2, 0.1, 0.3, 0.6, 0.9];
        let sw = abft_threshold_sweep(48, 5, &taus);
        let best = sw.best_tau();
        // The optimum balances FA (high at tiny τ) against missed
        // detections (high at τ→1): it must not sit at the extremes.
        assert!(best > 1e-4 && best < 0.9, "best tau {best}");
    }

    #[test]
    fn histogram_bookkeeping() {
        let mut h = ErrorHistogram::new(0.01, 10);
        h.add(0.005);
        h.add(0.015);
        h.add(0.5); // overflow
        assert_eq!(h.bins[0], 1);
        assert_eq!(h.bins[1], 1);
        assert_eq!(h.overflow, 1);
        assert!((h.fraction_within(0.02) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn snvr_restriction_concentrates_errors_below_traditional() {
        // The headline of Fig. 14-right: SNVR errors concentrate near zero
        // while traditional restriction leaves a wide distribution.
        let cmp = restriction_error_distribution(400, 11);
        let sel_within = cmp.selective.fraction_within(0.05);
        let trad_within = cmp.traditional.fraction_within(0.05);
        assert!(
            sel_within > trad_within,
            "selective {sel_within} vs traditional {trad_within}"
        );
        assert!(sel_within > 0.5, "selective too dispersed: {sel_within}");
    }
}
