//! # ft-inject — fault-injection campaign framework
//!
//! The statistical experiments of the FT-Transformer paper:
//!
//! * [`campaign`] — coverage-vs-BER (Fig. 12-left), detection/false-alarm
//!   threshold trials (Fig. 12-right), SNVR product-check trials
//!   (Fig. 14-left);
//! * [`sweep`] — parameter sweeps over those campaigns plus the
//!   post-restriction error-distribution experiment (Fig. 14-right);
//! * [`report`] — text table/series emitters used by the `ft-bench`
//!   binaries.

#![warn(missing_docs)]

pub mod campaign;
pub mod report;
pub mod sweep;

pub use campaign::{
    coverage_campaign, coverage_campaign_stride, detection_campaign, snvr_campaign, CoverageStats,
    DetectionStats, GemmShape, Scheme,
};
pub use sweep::{
    abft_threshold_sweep, coverage_vs_ber, restriction_error_distribution, snvr_threshold_sweep,
    CoverageSweep, ErrorHistogram, RestrictionComparison, ThresholdSweep,
};
