//! Fault-injection campaigns over the ABFT checksum schemes.
//!
//! These campaigns regenerate the statistical experiments of the paper:
//! error coverage vs bit-error-rate (Fig. 12-left), detection / false-alarm
//! rate vs threshold (Fig. 12-right), and the SNVR product-check sweep
//! (Fig. 14-left). They work directly on protected GEMMs — the same
//! algebra the kernels use — so millions of checksum lanes can be evaluated
//! quickly.

use ft_abft::strided::{
    correct_strided, encode_rows_strided, strided_sums, strided_sums_weighted, StridedMismatch,
};
use ft_abft::thresholds::Check;
use ft_num::rng::{normal_matrix_f16, rng_from_seed};
use ft_num::MatrixF32;
use ft_sim::{gemm_nt, gemm_nt_inj, BerInjector, FaultInjector, FaultSite, GemmCtx};
use rayon::prelude::*;

/// Checksum scheme under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Width-1 element checksum (traditional ABFT).
    Element,
    /// Width-8 strided tensor checksum (the paper's).
    Tensor,
}

impl Scheme {
    /// Checksum stride.
    pub fn stride(self) -> usize {
        match self {
            Scheme::Element => 1,
            Scheme::Tensor => 8,
        }
    }
}

/// Geometry of the protected GEMM used by the campaigns: one EFTA-style
/// block pair, S = Q(br×d) · K(bc×d)ᵀ.
#[derive(Clone, Copy, Debug)]
pub struct GemmShape {
    /// Rows of Q (and S).
    pub br: usize,
    /// Rows of K (columns of S).
    pub bc: usize,
    /// Head dimension (reduction depth).
    pub d: usize,
}

impl Default for GemmShape {
    fn default() -> Self {
        GemmShape {
            br: 64,
            bc: 64,
            d: 64,
        }
    }
}

/// Aggregate result of a coverage campaign.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoverageStats {
    /// Independent trials executed.
    pub trials: u64,
    /// Faults injected (accumulation chains corrupted).
    pub injected: u64,
    /// Checksum-lane detections raised.
    pub detections: u64,
    /// Elements still corrupted after correction.
    pub residual_errors: u64,
    /// Faults whose effect was fully repaired.
    pub covered: u64,
}

impl CoverageStats {
    /// Error coverage: repaired faults / injected faults.
    pub fn coverage(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.covered as f64 / self.injected as f64
    }
}

/// One coverage trial: inject at `ber` across the data GEMM, verify +
/// correct with the scheme's checksums (element recompute on locate, no
/// block-recompute fallback — the experiment measures the *checksum's* own
/// repair ability), and compare against the clean product.
fn coverage_trial(seed: u64, ber: f64, s: usize, shape: GemmShape, chk: Check) -> CoverageStats {
    let mut rng = rng_from_seed(seed);
    let q = normal_matrix_f16(&mut rng, shape.br, shape.d, 0.5).to_f32();
    let k = normal_matrix_f16(&mut rng, shape.bc, shape.d, 0.5).to_f32();
    let clean = gemm_nt(&q, &k);

    // Faults are drawn from the FP16-visible bit range (relative error
    // ≥ 2^-10): the paper's tensors are FP16, so corruptions below half
    // precision are invisible in its data domain.
    let inj = BerInjector::new(seed ^ 0xABCD, ber)
        .with_sites(&[FaultSite::GemmIAccum])
        .with_bit_range(13, 32);
    let mut dirty = gemm_nt_inj(&q, &k, &inj, GemmCtx::new(FaultSite::GemmIAccum, 0));
    let injected = inj.fired();

    // Checksums encoded from clean operands (faults target the data GEMM).
    // Encoded in FP32: the weighted checksum's locate ratio needs
    // accumulator precision — quantising w2 (whose entries scale with the
    // group count) through FP16 adds noise proportional to the fold width,
    // which destroys location for all but exponent-scale errors.
    let cs = encode_rows_strided(&k, s, false);
    let c1 = gemm_nt(&q, &cs.w1);
    let c2 = gemm_nt(&q, &cs.w2);

    // Detection at the scheme's resolving power: FP16-quantised checksum
    // operands make a lane's checksum-vs-fold discrepancy noisy, and the
    // noise grows with the number of elements folded per lane — a 1-wide
    // element checksum folding the whole row is ~√8 noisier than a stride-8
    // lane. This per-scheme floor is exactly the "checksum width ↑ → better
    // error coverage" economics of the paper's Fig. 1.
    let groups = (shape.bc as f32 / s as f32).max(1.0);
    // Located elements are repaired by exact recomputation, so a
    // detection floor close to the true rounding noise is safe (a false
    // positive merely recomputes a clean element).
    let noise_floor = 0.05 * (groups / 512.0).sqrt();
    // Pure-absolute detection: fold sums grow as √(lane width), so a
    // relative criterion on the fold is blind to element-scale errors —
    // the absolute noise floor is the scheme's true resolving power.
    let chk = Check::new(0.0, chk.abs_floor.max(noise_floor));
    let sums1 = strided_sums(&dirty, s);
    let sums2 = strided_sums_weighted(&dirty, s);
    let mut mismatches = Vec::new();
    for i in 0..shape.br {
        for t in 0..s {
            if chk.detects(sums1.get(i, t), c1.get(i, t)) {
                mismatches.push(StridedMismatch {
                    i,
                    t,
                    delta1: sums1.get(i, t) - c1.get(i, t),
                    delta2: sums2.get(i, t) - c2.get(i, t),
                });
            }
        }
    }
    let rep = correct_strided(&mut dirty, &mismatches, s);
    // Located elements are recomputed exactly (as the kernels do).
    for loc in &rep.corrected {
        let mut acc = 0.0f32;
        for (a, b) in q.row(loc.row).iter().zip(k.row(loc.col)) {
            acc += a * b;
        }
        dirty.set(loc.row, loc.col, acc);
    }

    // Residual corrupted elements: deviations that remain meaningful in
    // the FP16 data domain downstream (below the checksum noise floor an
    // error is indistinguishable from rounding and harmless to inference).
    let mut residual = 0u64;
    for i in 0..shape.br {
        for j in 0..shape.bc {
            let diff = (dirty.get(i, j) - clean.get(i, j)).abs();
            if diff > 0.1 * clean.get(i, j).abs().max(1.0) {
                residual += 1;
            }
        }
    }

    CoverageStats {
        trials: 1,
        injected,
        detections: rep.detections as u64,
        residual_errors: residual,
        covered: injected.saturating_sub(residual),
    }
}

/// Run `trials` coverage trials in parallel and aggregate.
pub fn coverage_campaign(
    trials: u64,
    seed: u64,
    ber: f64,
    scheme: Scheme,
    shape: GemmShape,
    chk: Check,
) -> CoverageStats {
    coverage_campaign_stride(trials, seed, ber, scheme.stride(), shape, chk)
}

/// Coverage campaign at an arbitrary checksum stride (ablation support).
pub fn coverage_campaign_stride(
    trials: u64,
    seed: u64,
    ber: f64,
    stride: usize,
    shape: GemmShape,
    chk: Check,
) -> CoverageStats {
    (0..trials)
        .into_par_iter()
        .map(|t| coverage_trial(ft_num::rng::derive_seed(seed, t), ber, stride, shape, chk))
        .reduce(CoverageStats::default, |a, b| CoverageStats {
            trials: a.trials + b.trials,
            injected: a.injected + b.injected,
            detections: a.detections + b.detections,
            residual_errors: a.residual_errors + b.residual_errors,
            covered: a.covered + b.covered,
        })
}

/// Detection / false-alarm statistics at one threshold.
#[derive(Clone, Copy, Debug, Default)]
pub struct DetectionStats {
    /// Trials with an injected fault.
    pub fault_trials: u64,
    /// Fault trials in which at least one lane flagged.
    pub detected: u64,
    /// Clean checksum lanes evaluated.
    pub clean_lanes: u64,
    /// Clean lanes that flagged (false alarms).
    pub false_alarms: u64,
}

impl DetectionStats {
    /// Fraction of injected faults detected.
    pub fn detection_rate(&self) -> f64 {
        if self.fault_trials == 0 {
            return 0.0;
        }
        self.detected as f64 / self.fault_trials as f64
    }

    /// Fraction of clean lanes flagged.
    pub fn false_alarm_rate(&self) -> f64 {
        if self.clean_lanes == 0 {
            return 0.0;
        }
        self.false_alarms as f64 / self.clean_lanes as f64
    }
}

/// One trial of the threshold-sweep experiment (Fig. 12-right): inject one
/// uniformly random bit flip into one random S element, then test detection
/// at relative threshold `tau`; also count clean-lane false alarms.
fn detection_trial(seed: u64, tau: f32, scheme: Scheme, shape: GemmShape) -> DetectionStats {
    let s = scheme.stride();
    let chk = Check::new(tau, 0.0);
    let mut rng = rng_from_seed(seed);
    let q = normal_matrix_f16(&mut rng, shape.br, shape.d, 0.5).to_f32();
    let k = normal_matrix_f16(&mut rng, shape.bc, shape.d, 0.5).to_f32();
    let s_mat = gemm_nt(&q, &k);
    let cs = encode_rows_strided(&k, s, true);
    let c1 = gemm_nt(&q, &cs.w1);

    // False alarms on the clean result.
    let sums_clean = strided_sums(&s_mat, s);
    let mut fa = 0u64;
    for i in 0..shape.br {
        for t in 0..s {
            if chk.detects(sums_clean.get(i, t), c1.get(i, t)) {
                fa += 1;
            }
        }
    }

    // One random bit flip in one random element.
    use rand::Rng;
    let (fi, fj) = (rng.gen_range(0..shape.br), rng.gen_range(0..shape.bc));
    let bit = rng.gen_range(0..32u32);
    let mut dirty = s_mat.clone();
    let corrupted = f32::from_bits(dirty.get(fi, fj).to_bits() ^ (1u32 << bit));
    dirty.set(fi, fj, corrupted);
    let sums_dirty = strided_sums(&dirty, s);
    let mut detected = false;
    for i in 0..shape.br {
        for t in 0..s {
            if chk.detects(sums_dirty.get(i, t), c1.get(i, t)) {
                detected = true;
            }
        }
    }

    DetectionStats {
        fault_trials: 1,
        detected: detected as u64,
        clean_lanes: (shape.br * s) as u64,
        false_alarms: fa,
    }
}

/// Run the threshold-sweep campaign at `tau`.
pub fn detection_campaign(
    trials: u64,
    seed: u64,
    tau: f32,
    scheme: Scheme,
    shape: GemmShape,
) -> DetectionStats {
    (0..trials)
        .into_par_iter()
        .map(|t| detection_trial(ft_num::rng::derive_seed(seed, t), tau, scheme, shape))
        .reduce(DetectionStats::default, |a, b| DetectionStats {
            fault_trials: a.fault_trials + b.fault_trials,
            detected: a.detected + b.detected,
            clean_lanes: a.clean_lanes + b.clean_lanes,
            false_alarms: a.false_alarms + b.false_alarms,
        })
}

/// One SNVR product-check trial (Fig. 14-left): transport checksums through
/// subtract + exp, inject one bit flip into one exponential output, measure
/// detection at `tau`; false alarms from the clean product lanes.
fn snvr_trial(seed: u64, tau: f32, shape: GemmShape) -> DetectionStats {
    use ft_abft::propagate::{
        residue_counts, strided_products, transport_exp, transport_subtract_max,
    };
    let s = 8usize;
    let chk = Check::new(tau, 0.0);
    let mut rng = rng_from_seed(seed);
    let q = normal_matrix_f16(&mut rng, shape.br, shape.d, 0.5).to_f32();
    let k = normal_matrix_f16(&mut rng, shape.bc, shape.d, 0.5).to_f32();
    let s_mat = gemm_nt(&q, &k);
    // Checksums in FP32 here: the transported product check is the paper's
    // ε₁ ≈ 7e-6 regime, which presumes accumulator-precision checksums.
    let cs = encode_rows_strided(&k, s, false);
    let mut c1 = gemm_nt(&q, &cs.w1);

    let row_max: Vec<f32> = (0..shape.br)
        .map(|i| {
            s_mat
                .row(i)
                .iter()
                .cloned()
                .fold(f32::NEG_INFINITY, f32::max)
        })
        .collect();
    let p = MatrixF32::from_fn(shape.br, shape.bc, |i, j| {
        (s_mat.get(i, j) - row_max[i]).exp()
    });
    let counts = residue_counts(shape.bc, s);
    transport_subtract_max(&mut c1, &row_max, &counts);
    let p_c1 = transport_exp(&c1);

    // Clean false alarms.
    let prods = strided_products(&p, s);
    let mut fa = 0u64;
    for i in 0..shape.br {
        for t in 0..s {
            if chk.detects(prods.get(i, t), p_c1.get(i, t)) {
                fa += 1;
            }
        }
    }

    // One bit flip in one exponential output.
    use rand::Rng;
    let (fi, fj) = (rng.gen_range(0..shape.br), rng.gen_range(0..shape.bc));
    let bit = rng.gen_range(0..32u32);
    let mut dirty = p.clone();
    dirty.set(
        fi,
        fj,
        f32::from_bits(dirty.get(fi, fj).to_bits() ^ (1u32 << bit)),
    );
    let prods_dirty = strided_products(&dirty, s);
    let mut detected = false;
    for i in 0..shape.br {
        for t in 0..s {
            if chk.detects(prods_dirty.get(i, t), p_c1.get(i, t)) {
                detected = true;
            }
        }
    }

    DetectionStats {
        fault_trials: 1,
        detected: detected as u64,
        clean_lanes: (shape.br * s) as u64,
        false_alarms: fa,
    }
}

/// Run the SNVR threshold campaign at `tau`.
pub fn snvr_campaign(trials: u64, seed: u64, tau: f32, shape: GemmShape) -> DetectionStats {
    (0..trials)
        .into_par_iter()
        .map(|t| snvr_trial(ft_num::rng::derive_seed(seed, t), tau, shape))
        .reduce(DetectionStats::default, |a, b| DetectionStats {
            fault_trials: a.fault_trials + b.fault_trials,
            detected: a.detected + b.detected,
            clean_lanes: a.clean_lanes + b.clean_lanes,
            false_alarms: a.false_alarms + b.false_alarms,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_abft::thresholds::Thresholds;

    #[test]
    fn zero_ber_has_full_coverage_and_no_residue() {
        let st = coverage_campaign(
            8,
            1,
            0.0,
            Scheme::Tensor,
            GemmShape::default(),
            Thresholds::calibrated().gemm,
        );
        assert_eq!(st.injected, 0);
        assert_eq!(st.residual_errors, 0);
        assert!((st.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tensor_scheme_beats_element_scheme_at_high_ber() {
        // At a BER high enough for multi-error rows, the 8-wide checksum
        // must repair more faults than the 1-wide (paper Fig. 12-left).
        let shape = GemmShape::default();
        let chk = Thresholds::calibrated().gemm;
        let ber = 2e-4; // ≈ 0.8 faults/row on a 64×64×64 block pair
        let tensor = coverage_campaign(24, 7, ber, Scheme::Tensor, shape, chk);
        let element = coverage_campaign(24, 7, ber, Scheme::Element, shape, chk);
        assert!(
            tensor.injected > 50,
            "need enough faults: {}",
            tensor.injected
        );
        assert!(
            tensor.coverage() > element.coverage(),
            "tensor {} vs element {}",
            tensor.coverage(),
            element.coverage()
        );
    }

    #[test]
    fn detection_rate_decreases_with_threshold() {
        let shape = GemmShape::default();
        let lo = detection_campaign(64, 3, 0.01, Scheme::Tensor, shape);
        let hi = detection_campaign(64, 3, 0.99, Scheme::Tensor, shape);
        assert!(lo.detection_rate() >= hi.detection_rate());
        // Near-zero threshold flags everything incl. clean lanes.
        let fa_lo = detection_campaign(64, 3, 1e-6, Scheme::Tensor, shape);
        assert!(
            fa_lo.false_alarm_rate() > 0.5,
            "fa {}",
            fa_lo.false_alarm_rate()
        );
    }

    #[test]
    fn snvr_sweep_shows_fa_detection_tradeoff() {
        let shape = GemmShape::default();
        let tight = snvr_campaign(48, 9, 1e-7, shape);
        let loose = snvr_campaign(48, 9, 1e-2, shape);
        // Tight threshold: high detection AND high false alarms.
        assert!(tight.detection_rate() >= loose.detection_rate());
        assert!(tight.false_alarm_rate() >= loose.false_alarm_rate());
        // At some threshold detection is meaningful (> half: bit flips in
        // high mantissa/exponent dominate the product).
        assert!(tight.detection_rate() > 0.5, "{}", tight.detection_rate());
    }
}
