//! The SM80 `mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32` atom.
//!
//! The paper's strided ABFT (§3.3) is derived from the *thread-data layout*
//! of this instruction: which warp lane owns which fragment element. This
//! module re-implements that layout bit-for-bit from the PTX ISA so the
//! checksum design can be validated against the very structure it exploits
//! (Fig. 6 of the paper), and so faults can be attributed to lanes.
//!
//! Layout summary (all indices 0-based, `lane ∈ 0..32`):
//!
//! * **A fragment** (M=16 × K=16, f16, row-major "T"): each lane holds 8
//!   values in 4 register pairs. Element `(r, c)` lives on
//!   `lane = (r % 8) * 4 + (c % 8) / 2`, register
//!   `reg = 4*(c / 8) + 2*(r / 8) + (c % 2)`.
//! * **B fragment** (K=16 × N=8, f16, col-major "N"): each lane holds 4
//!   values. Element `(k, n)` lives on `lane = n * 4 + (k % 8) / 2`,
//!   register `reg = 2*(k / 8) + (k % 2)`.
//! * **C/D fragments** (M=16 × N=8, f32): each lane holds 4 values. Element
//!   `(r, c)` lives on `lane = (r % 8) * 4 + c / 2`,
//!   register `reg = 2*(r / 8) + (c % 2)`.
//!
//! The paper's Fig. 6 observation follows: within an 8×8 tile of A, element
//! `A[0][0]` is on lane 0, `A[4][0]` on lane 16 and `A[8][0]` back on lane 0
//! (next register pair) — a column of A is spread over 8 different lanes, so
//! a conventional column checksum needs inter-thread communication, which is
//! exactly what the strided tensor checksum avoids.

use ft_num::{Matrix, MatrixF16, MatrixF32, F16};

/// Number of threads in a warp.
pub const WARP_SIZE: usize = 32;
/// Atom M dimension.
pub const ATOM_M: usize = 16;
/// Atom N dimension.
pub const ATOM_N: usize = 8;
/// Atom K dimension.
pub const ATOM_K: usize = 16;

/// Ownership slot of a fragment element: warp lane + register index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FragSlot {
    /// Lane within the warp (0..32).
    pub lane: usize,
    /// Register index within the lane's fragment.
    pub reg: usize,
}

/// Lane/register owning element `(r, c)` of the A fragment (16×16).
#[inline]
pub fn a_owner(r: usize, c: usize) -> FragSlot {
    debug_assert!(r < ATOM_M && c < ATOM_K);
    FragSlot {
        lane: (r % 8) * 4 + (c % 8) / 2,
        reg: 4 * (c / 8) + 2 * (r / 8) + (c % 2),
    }
}

/// Lane/register owning element `(k, n)` of the B fragment (16×8).
#[inline]
pub fn b_owner(k: usize, n: usize) -> FragSlot {
    debug_assert!(k < ATOM_K && n < ATOM_N);
    FragSlot {
        lane: n * 4 + (k % 8) / 2,
        reg: 2 * (k / 8) + (k % 2),
    }
}

/// Lane/register owning element `(r, c)` of the C/D accumulator (16×8).
#[inline]
pub fn c_owner(r: usize, c: usize) -> FragSlot {
    debug_assert!(r < ATOM_M && c < ATOM_N);
    FragSlot {
        lane: (r % 8) * 4 + c / 2,
        reg: 2 * (r / 8) + (c % 2),
    }
}

/// Set of distinct lanes holding column `c` of the A fragment.
///
/// Used to demonstrate the paper's Fig. 6 point: a *column* checksum of A
/// would have to gather values from 8 lanes (inter-thread traffic), whereas
/// elements at a fixed lane are reachable with stride patterns only.
pub fn a_column_lanes(c: usize) -> Vec<usize> {
    let mut lanes: Vec<usize> = (0..ATOM_M).map(|r| a_owner(r, c).lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    lanes
}

/// Set of distinct lanes holding row `r` of the A fragment.
pub fn a_row_lanes(r: usize) -> Vec<usize> {
    let mut lanes: Vec<usize> = (0..ATOM_K).map(|c| a_owner(r, c).lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    lanes
}

/// Per-lane register files for one atom execution: a warp's view of the
/// operands. Only used by the layout-faithful executor and tests; bulk GEMM
/// uses [`crate::gemm`].
#[derive(Clone, Debug)]
pub struct WarpFragments {
    /// A fragment: 32 lanes × 8 f16 registers.
    pub a: [[F16; 8]; WARP_SIZE],
    /// B fragment: 32 lanes × 4 f16 registers.
    pub b: [[F16; 4]; WARP_SIZE],
    /// C/D accumulator: 32 lanes × 4 f32 registers.
    pub c: [[f32; 4]; WARP_SIZE],
}

impl WarpFragments {
    /// Distribute row-major tiles into per-lane fragments, mirroring
    /// `ldmatrix` + register allocation.
    pub fn load(a: &MatrixF16, b: &MatrixF16, c: &MatrixF32) -> Self {
        assert_eq!(a.shape(), (ATOM_M, ATOM_K), "A tile must be 16x16");
        assert_eq!(b.shape(), (ATOM_K, ATOM_N), "B tile must be 16x8 (k-major)");
        assert_eq!(c.shape(), (ATOM_M, ATOM_N), "C tile must be 16x8");
        let mut frags = WarpFragments {
            a: [[F16::ZERO; 8]; WARP_SIZE],
            b: [[F16::ZERO; 4]; WARP_SIZE],
            c: [[0.0; 4]; WARP_SIZE],
        };
        for r in 0..ATOM_M {
            for col in 0..ATOM_K {
                let s = a_owner(r, col);
                frags.a[s.lane][s.reg] = a.get(r, col);
            }
        }
        for k in 0..ATOM_K {
            for n in 0..ATOM_N {
                let s = b_owner(k, n);
                frags.b[s.lane][s.reg] = b.get(k, n);
            }
        }
        for r in 0..ATOM_M {
            for col in 0..ATOM_N {
                let s = c_owner(r, col);
                frags.c[s.lane][s.reg] = c.get(r, col);
            }
        }
        frags
    }

    /// Execute the atom *through the fragments*: every output register is
    /// computed by its owning lane from operand registers gathered according
    /// to the layout. Numerically this is the FP16-multiply / FP32-accumulate
    /// dot product in ascending k order — identical to [`atom_reference`].
    pub fn execute(&mut self) {
        // Snapshot operands (the hardware reads all operands before writing D).
        let a = self.a;
        let b = self.b;
        for r in 0..ATOM_M {
            for n in 0..ATOM_N {
                let d_slot = c_owner(r, n);
                let mut acc = self.c[d_slot.lane][d_slot.reg];
                for k in 0..ATOM_K {
                    let sa = a_owner(r, k);
                    let sb = b_owner(k, n);
                    acc += a[sa.lane][sa.reg].to_f32() * b[sb.lane][sb.reg].to_f32();
                }
                self.c[d_slot.lane][d_slot.reg] = acc;
            }
        }
    }

    /// Gather the accumulator fragment back into a row-major 16×8 matrix.
    pub fn store_c(&self) -> MatrixF32 {
        Matrix::from_fn(ATOM_M, ATOM_N, |r, c| {
            let s = c_owner(r, c);
            self.c[s.lane][s.reg]
        })
    }
}

/// Reference semantics of the atom on row-major tiles: D = A·B + C with
/// f16 operands and an f32 accumulator, ascending-k accumulation.
pub fn atom_reference(a: &MatrixF16, b: &MatrixF16, c: &MatrixF32) -> MatrixF32 {
    assert_eq!(a.shape(), (ATOM_M, ATOM_K));
    assert_eq!(b.shape(), (ATOM_K, ATOM_N));
    assert_eq!(c.shape(), (ATOM_M, ATOM_N));
    Matrix::from_fn(ATOM_M, ATOM_N, |r, n| {
        let mut acc = c.get(r, n);
        for k in 0..ATOM_K {
            acc += a.get(r, k).to_f32() * b.get(k, n).to_f32();
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_num::rng::{normal_matrix_f16, rng_from_seed};

    #[test]
    fn paper_fig6_ownership_claims() {
        // "A[0][0] is stored in register V0 of thread T0"
        assert_eq!(a_owner(0, 0), FragSlot { lane: 0, reg: 0 });
        // "A[4][0] is stored in register V0 of thread T16"
        assert_eq!(a_owner(4, 0), FragSlot { lane: 16, reg: 0 });
        // "A[8][0] is stored in register V0 of thread T0" — same lane, the
        // second register pair (our flat index 2 = pair 1, reg V0).
        assert_eq!(a_owner(8, 0).lane, 0);
        assert_eq!(a_owner(8, 0).reg % 2, 0, "V0 of its pair");
    }

    #[test]
    fn a_column_needs_eight_lanes_but_row_pairs_share() {
        // Column gathers span 8 distinct lanes -> inter-thread traffic.
        for c in 0..ATOM_K {
            assert_eq!(a_column_lanes(c).len(), 8, "col {c}");
        }
        // A row also spans lanes, but adjacent (even, odd) columns pair up on
        // one lane: 16 elements on 4 lanes.
        for r in 0..ATOM_M {
            assert_eq!(a_row_lanes(r).len(), 4, "row {r}");
        }
    }

    #[test]
    fn every_fragment_register_is_used_exactly_once() {
        // A: 16*16 = 256 elements = 32 lanes * 8 regs.
        let mut seen = [[false; 8]; WARP_SIZE];
        for r in 0..ATOM_M {
            for c in 0..ATOM_K {
                let s = a_owner(r, c);
                assert!(!seen[s.lane][s.reg], "duplicate A slot {s:?}");
                seen[s.lane][s.reg] = true;
            }
        }
        assert!(seen.iter().flatten().all(|&x| x));
        // B: 16*8 = 128 = 32 * 4.
        let mut seen = [[false; 4]; WARP_SIZE];
        for k in 0..ATOM_K {
            for n in 0..ATOM_N {
                let s = b_owner(k, n);
                assert!(!seen[s.lane][s.reg], "duplicate B slot {s:?}");
                seen[s.lane][s.reg] = true;
            }
        }
        assert!(seen.iter().flatten().all(|&x| x));
        // C: same shape as B but f32.
        let mut seen = [[false; 4]; WARP_SIZE];
        for r in 0..ATOM_M {
            for c in 0..ATOM_N {
                let s = c_owner(r, c);
                assert!(!seen[s.lane][s.reg], "duplicate C slot {s:?}");
                seen[s.lane][s.reg] = true;
            }
        }
        assert!(seen.iter().flatten().all(|&x| x));
    }

    #[test]
    fn b_elements_with_row_stride_8_share_a_lane() {
        // Along the K dimension of B, elements 8 apart live on the same lane
        // (different register pair) — the co-residency the tensor checksum
        // exploits for intra-thread accumulation.
        for n in 0..ATOM_N {
            for k in 0..8 {
                assert_eq!(b_owner(k, n).lane, b_owner(k + 8, n).lane);
            }
        }
    }

    #[test]
    fn fragment_execution_matches_reference() {
        let mut rng = rng_from_seed(99);
        for _ in 0..10 {
            let a = normal_matrix_f16(&mut rng, ATOM_M, ATOM_K, 1.0);
            let b = normal_matrix_f16(&mut rng, ATOM_K, ATOM_N, 1.0);
            let c = Matrix::from_fn(ATOM_M, ATOM_N, |r, n| (r + n) as f32 * 0.25);
            let expect = atom_reference(&a, &b, &c);
            let mut frags = WarpFragments::load(&a, &b, &c);
            frags.execute();
            let got = frags.store_c();
            assert_eq!(got, expect, "fragment path must be bit-identical");
        }
    }

    #[test]
    fn load_store_round_trip() {
        let mut rng = rng_from_seed(5);
        let a = normal_matrix_f16(&mut rng, ATOM_M, ATOM_K, 1.0);
        let b = normal_matrix_f16(&mut rng, ATOM_K, ATOM_N, 1.0);
        let c = MatrixF32::from_fn(ATOM_M, ATOM_N, |r, n| (r * 8 + n) as f32);
        let frags = WarpFragments::load(&a, &b, &c);
        assert_eq!(frags.store_c(), c);
    }
}
