//! # ft-sim — simulated tensor-core GPU substrate
//!
//! The FT-Transformer paper's kernels run on A100 tensor cores; this crate
//! is the substitution mandated by the reproduction brief: a software model
//! of everything the paper's design depends on —
//!
//! * [`mma`] — the SM80 `m16n8k16 F32F16F16F32 TN` atom with its exact
//!   PTX thread-data layout (the structure the strided ABFT exploits);
//! * [`tiled`] — the 64×16×16 TiledMMA of four warps (paper Fig. 7) and a
//!   layout-faithful block-GEMM executor;
//! * [`gemm`] — fast block GEMM numerically identical to the fragment
//!   executor, with transient-fault hooks in every accumulation chain;
//! * [`device`] — HBM with traffic accounting and a 40 GB capacity (the
//!   OOM of Fig. 9), kernel-launch bookkeeping;
//! * [`cost`] — an A100-calibrated roofline model converting kernel stats
//!   into simulated milliseconds;
//! * [`fault`] — deterministic SEU and bit-error-rate injectors for
//!   computing-unit soft errors (paper §2.2 fault model).

#![warn(missing_docs)]

pub mod cost;
pub mod device;
pub mod fault;
pub mod gemm;
pub mod mma;
pub mod tiled;

pub use cost::{CostModel, Timeline};
pub use device::{Device, Hbm, KernelStats, OomError, StatsCollector};
pub use fault::{
    BerInjector, ChainFault, FaultInjector, FaultSite, NoFaults, OpCoord, SeuInjector,
};
pub use gemm::{gemm_flops, gemm_nn, gemm_nn_inj, gemm_nt, gemm_nt_inj, GemmCtx};
