//! Soft-error injection for simulated computing units.
//!
//! Fault model (paper §2.2): transient *computing-unit* faults — bit flips in
//! values produced by arithmetic/logic units. Memory faults are assumed
//! handled by ECC and interconnect faults by FT-MPI, so the injector only
//! corrupts freshly computed results, never stored tensors.
//!
//! Two regimes are provided:
//!
//! * [`SeuInjector`] — the single-event-upset assumption used by the paper's
//!   correction experiments: exactly one targeted flip at a chosen site and
//!   coordinate per detection/correction interval.
//! * [`BerInjector`] — a per-operation bit-error-rate used by the coverage
//!   sweeps of Fig. 12: every arithmetic operation independently flips one
//!   uniformly chosen result bit with probability `ber`.
//!
//! Injection must be deterministic under rayon parallelism, so randomness is
//! *stateless*: a hash of `(seed, site, coordinate)` decides whether and
//! where a flip occurs. Re-running a kernel with the same injector reproduces
//! the same faults regardless of thread scheduling; only fired-fault
//! counters use atomics.

use core::sync::atomic::{AtomicU64, Ordering};
use ft_num::F16;

/// Which functional unit produced the value being (possibly) corrupted.
///
/// The taxonomy mirrors the operations of Algorithm 1 in the paper; the
/// hybrid fault-tolerance scheme assigns a different protection mechanism to
/// each of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Tensor-core FMA chain producing an element of S = QKᵀ (GEMM I).
    GemmIAccum,
    /// Tensor-core FMA chain producing an element of O += P·V (GEMM II).
    GemmIiAccum,
    /// Scalar subtraction s − m (stabilised-softmax numerator input).
    Subtract,
    /// SFU exponential unit computing exp(s − m).
    ExpUnit,
    /// Reduce-max unit (row max of a score block).
    MaxReduce,
    /// Reduce-sum unit (row sum ℓ of exponentials).
    SumReduce,
    /// Rescale multiply by exp(m_prev − m_new).
    Rescale,
    /// Final normalisation divide by ℓ.
    Normalize,
    /// Generic feed-forward / projection GEMM accumulation.
    LinearAccum,
    /// Activation function unit in the feed-forward module.
    Activation,
    /// Cache-resident state: an FP16 K/V element sitting in a decode cache
    /// between steps. The paper's prefill kernels assume ECC makes stored
    /// tensors safe, but serving-scale KV caches are long-lived and large
    /// enough that undetected upsets in cached state matter (the ALBERTA
    /// argument); this site lets campaigns target exactly that residency
    /// window via `KvCache::expose`.
    KvCache,
}

impl FaultSite {
    /// Stable small integer id used for hashing.
    fn id(self) -> u64 {
        match self {
            FaultSite::GemmIAccum => 1,
            FaultSite::GemmIiAccum => 2,
            FaultSite::Subtract => 3,
            FaultSite::ExpUnit => 4,
            FaultSite::MaxReduce => 5,
            FaultSite::SumReduce => 6,
            FaultSite::Rescale => 7,
            FaultSite::Normalize => 8,
            FaultSite::LinearAccum => 9,
            FaultSite::Activation => 10,
            FaultSite::KvCache => 11,
        }
    }

    /// All sites, for exhaustive injection tests.
    pub const ALL: [FaultSite; 11] = [
        FaultSite::GemmIAccum,
        FaultSite::GemmIiAccum,
        FaultSite::Subtract,
        FaultSite::ExpUnit,
        FaultSite::MaxReduce,
        FaultSite::SumReduce,
        FaultSite::Rescale,
        FaultSite::Normalize,
        FaultSite::LinearAccum,
        FaultSite::Activation,
        FaultSite::KvCache,
    ];
}

/// Logical coordinate of an operation: enough to identify it uniquely and
/// deterministically across parallel schedules.
///
/// Conventions: `slot` is the flattened (batch, head) index — or the layer
/// index for feed-forward sites; `i`/`j` address the output element; `k`
/// disambiguates multiple ops per element (e.g. the inner-loop iteration of
/// flash attention, or the FMA index inside an accumulation chain).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpCoord {
    /// Flattened (batch, head) slot or layer index.
    pub slot: u64,
    /// Output row.
    pub i: u64,
    /// Output column.
    pub j: u64,
    /// Sub-operation index (block iteration, k-step…).
    pub k: u64,
}

impl OpCoord {
    /// Convenience constructor.
    pub fn new(slot: usize, i: usize, j: usize, k: usize) -> Self {
        OpCoord {
            slot: slot as u64,
            i: i as u64,
            j: j as u64,
            k: k as u64,
        }
    }
}

/// Mix a 64-bit value (SplitMix64 finaliser).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless hash of (seed, site, coord) → u64.
#[inline]
fn coord_hash(seed: u64, site: FaultSite, c: OpCoord) -> u64 {
    let mut h = seed ^ 0x5851_F42D_4C95_7F2D;
    h = mix(h.wrapping_add(site.id().wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    h = mix(h ^ c.slot.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    h = mix(h ^ c.i.wrapping_mul(0xA076_1D64_78BD_642F));
    h = mix(h ^ c.j.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    h = mix(h ^ c.k.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
    h
}

/// A fault fired inside an accumulation chain: after FMA step `step`, bit
/// `bit` of the f32 accumulator flips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainFault {
    /// FMA index after which the accumulator is corrupted (0-based).
    pub step: usize,
    /// Bit of the f32 accumulator to flip.
    pub bit: u32,
}

/// A fault injector corrupts values produced by simulated compute units.
///
/// Implementations must be `Sync`: kernels call them from rayon workers.
pub trait FaultInjector: Sync {
    /// Possibly corrupt an f32 result produced at `site`/`coord`.
    fn corrupt_f32(&self, site: FaultSite, coord: OpCoord, value: f32) -> f32;

    /// Possibly corrupt an f16 result produced at `site`/`coord`.
    fn corrupt_f16(&self, site: FaultSite, coord: OpCoord, value: F16) -> F16;

    /// Decide whether the accumulation chain of length `k_len` producing
    /// output element `coord` suffers a fault, and where.
    ///
    /// GEMM kernels query this once per output element instead of hashing
    /// per FMA; a BER injector translates its per-operation rate into the
    /// per-chain rate `1 − (1 − ber)^k_len`, so the statistics match
    /// querying every FMA individually (up to the negligible probability of
    /// two faults in one chain under the SEU regime).
    fn decide_chain(&self, site: FaultSite, coord: OpCoord, k_len: usize) -> Option<ChainFault> {
        let _ = (site, coord, k_len);
        None
    }

    /// Number of faults fired so far (for campaign accounting).
    fn fired(&self) -> u64 {
        0
    }

    /// True when the injector can never fire (lets hot loops skip hashing).
    fn is_noop(&self) -> bool {
        false
    }
}

/// Injector that never fires; the error-free baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    #[inline]
    fn corrupt_f32(&self, _: FaultSite, _: OpCoord, value: f32) -> f32 {
        value
    }
    #[inline]
    fn corrupt_f16(&self, _: FaultSite, _: OpCoord, value: F16) -> F16 {
        value
    }
    #[inline]
    fn is_noop(&self) -> bool {
        true
    }
}

/// Single-event upset: flips exactly one chosen bit of the value produced at
/// one exact (site, coordinate). The paper's SEU assumption (§2.2) allows at
/// most one error per detection/correction cycle; experiments place one
/// `SeuInjector` per protected region.
#[derive(Debug)]
pub struct SeuInjector {
    site: FaultSite,
    coord: OpCoord,
    /// Bit to flip. For f32 targets 0..32, for f16 targets 0..16.
    bit: u32,
    /// FMA step targeted when the site is an accumulation chain.
    chain_step: u32,
    fired: AtomicU64,
}

impl SeuInjector {
    /// Flip `bit` of the value produced at exactly (site, coord).
    pub fn new(site: FaultSite, coord: OpCoord, bit: u32) -> Self {
        SeuInjector {
            site,
            coord,
            bit,
            chain_step: 0,
            fired: AtomicU64::new(0),
        }
    }

    /// Target FMA step `step` inside accumulation chains (GEMM sites).
    pub fn at_chain_step(mut self, step: u32) -> Self {
        self.chain_step = step;
        self
    }

    /// The targeted site.
    pub fn site(&self) -> FaultSite {
        self.site
    }

    /// The targeted coordinate.
    pub fn coord(&self) -> OpCoord {
        self.coord
    }
}

impl FaultInjector for SeuInjector {
    fn corrupt_f32(&self, site: FaultSite, coord: OpCoord, value: f32) -> f32 {
        if site == self.site && coord == self.coord {
            self.fired.fetch_add(1, Ordering::Relaxed);
            f32::from_bits(value.to_bits() ^ (1u32 << (self.bit % 32)))
        } else {
            value
        }
    }

    fn corrupt_f16(&self, site: FaultSite, coord: OpCoord, value: F16) -> F16 {
        if site == self.site && coord == self.coord {
            self.fired.fetch_add(1, Ordering::Relaxed);
            value.flip_bit(self.bit % 16)
        } else {
            value
        }
    }

    fn decide_chain(&self, site: FaultSite, coord: OpCoord, k_len: usize) -> Option<ChainFault> {
        if site == self.site && coord == self.coord {
            self.fired.fetch_add(1, Ordering::Relaxed);
            Some(ChainFault {
                step: (self.chain_step as usize).min(k_len.saturating_sub(1)),
                bit: self.bit % 32,
            })
        } else {
            None
        }
    }

    fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

/// Per-operation bit-error-rate injector (Fig. 12 regime).
///
/// Every queried operation independently suffers a flip of one uniformly
/// chosen result bit with probability `ber`. Optionally restricted to a
/// subset of sites (e.g. only GEMM accumulations).
#[derive(Debug)]
pub struct BerInjector {
    seed: u64,
    ber: f64,
    /// If non-empty, only these sites are eligible.
    sites: Vec<FaultSite>,
    /// Half-open bit range faults are drawn from (f32 targets).
    bit_range: (u32, u32),
    fired: AtomicU64,
}

impl BerInjector {
    /// BER injector over all sites.
    pub fn new(seed: u64, ber: f64) -> Self {
        BerInjector {
            seed,
            ber,
            sites: Vec::new(),
            bit_range: (0, 32),
            fired: AtomicU64::new(0),
        }
    }

    /// Restrict f32 flips to bits `[lo, hi)`. E.g. `(13, 32)` limits faults
    /// to the FP16-visible magnitude range (relative error ≥ 2⁻¹⁰), the
    /// paper's FP16 data domain.
    pub fn with_bit_range(mut self, lo: u32, hi: u32) -> Self {
        assert!(lo < hi && hi <= 32);
        self.bit_range = (lo, hi);
        self
    }

    /// Restrict eligibility to `sites`.
    pub fn with_sites(mut self, sites: &[FaultSite]) -> Self {
        self.sites = sites.to_vec();
        self
    }

    /// Configured bit-error rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    #[inline]
    fn eligible(&self, site: FaultSite) -> bool {
        self.sites.is_empty() || self.sites.contains(&site)
    }

    /// Decide (deterministically) whether an op at (site, coord) faults, and
    /// which bit flips. Returns `Some(bit_selector_hash)` on fault.
    #[inline]
    fn decide(&self, site: FaultSite, coord: OpCoord) -> Option<u64> {
        if !self.eligible(site) {
            return None;
        }
        let h = coord_hash(self.seed, site, coord);
        // Compare the top 53 bits against ber as a dyadic fraction.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.ber {
            Some(mix(h ^ 0xC2B2_AE3D_27D4_EB4F))
        } else {
            None
        }
    }
}

impl FaultInjector for BerInjector {
    fn corrupt_f32(&self, site: FaultSite, coord: OpCoord, value: f32) -> f32 {
        match self.decide(site, coord) {
            Some(sel) => {
                self.fired.fetch_add(1, Ordering::Relaxed);
                let (lo, hi) = self.bit_range;
                let bit = lo + (sel % (hi - lo) as u64) as u32;
                f32::from_bits(value.to_bits() ^ (1u32 << bit))
            }
            None => value,
        }
    }

    fn corrupt_f16(&self, site: FaultSite, coord: OpCoord, value: F16) -> F16 {
        match self.decide(site, coord) {
            Some(sel) => {
                self.fired.fetch_add(1, Ordering::Relaxed);
                value.flip_bit((sel % 16) as u32)
            }
            None => value,
        }
    }

    fn decide_chain(&self, site: FaultSite, coord: OpCoord, k_len: usize) -> Option<ChainFault> {
        if !self.eligible(site) || self.ber <= 0.0 {
            return None;
        }
        let h = coord_hash(self.seed, site, coord);
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Per-chain probability 1 − (1 − ber)^k, computed stably.
        let p_chain = -f64::exp_m1(k_len as f64 * f64::ln_1p(-self.ber));
        if u < p_chain {
            self.fired.fetch_add(1, Ordering::Relaxed);
            let sel = mix(h ^ 0xC2B2_AE3D_27D4_EB4F);
            Some(ChainFault {
                step: (sel % k_len as u64) as usize,
                bit: self.bit_range.0
                    + (mix(sel) % (self.bit_range.1 - self.bit_range.0) as u64) as u32,
            })
        } else {
            None
        }
    }

    fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    fn is_noop(&self) -> bool {
        self.ber <= 0.0
    }
}

/// Blanket impl so `&I` can be passed where an injector is expected.
impl<I: FaultInjector + ?Sized> FaultInjector for &I {
    fn corrupt_f32(&self, site: FaultSite, coord: OpCoord, value: f32) -> f32 {
        (**self).corrupt_f32(site, coord, value)
    }
    fn corrupt_f16(&self, site: FaultSite, coord: OpCoord, value: F16) -> F16 {
        (**self).corrupt_f16(site, coord, value)
    }
    fn decide_chain(&self, site: FaultSite, coord: OpCoord, k_len: usize) -> Option<ChainFault> {
        (**self).decide_chain(site, coord, k_len)
    }
    fn fired(&self) -> u64 {
        (**self).fired()
    }
    fn is_noop(&self) -> bool {
        (**self).is_noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_identity() {
        let inj = NoFaults;
        let c = OpCoord::new(0, 1, 2, 3);
        assert_eq!(inj.corrupt_f32(FaultSite::ExpUnit, c, 1.5), 1.5);
        assert_eq!(inj.corrupt_f16(FaultSite::ExpUnit, c, F16::ONE), F16::ONE);
        assert!(inj.is_noop());
        assert_eq!(inj.fired(), 0);
    }

    #[test]
    fn seu_fires_only_at_target() {
        let target = OpCoord::new(1, 5, 7, 0);
        let inj = SeuInjector::new(FaultSite::GemmIAccum, target, 30);
        // Wrong coordinate: untouched.
        let miss = inj.corrupt_f32(FaultSite::GemmIAccum, OpCoord::new(1, 5, 8, 0), 2.0);
        assert_eq!(miss, 2.0);
        // Wrong site: untouched.
        let miss2 = inj.corrupt_f32(FaultSite::GemmIiAccum, target, 2.0);
        assert_eq!(miss2, 2.0);
        assert_eq!(inj.fired(), 0);
        // Exact hit: bit 30 (exponent MSB-1) flips -> large deviation.
        let hit = inj.corrupt_f32(FaultSite::GemmIAccum, target, 2.0);
        assert_ne!(hit, 2.0);
        assert_eq!(hit.to_bits() ^ 2.0f32.to_bits(), 1 << 30);
        assert_eq!(inj.fired(), 1);
    }

    #[test]
    fn seu_f16_flip() {
        let target = OpCoord::new(0, 0, 0, 0);
        let inj = SeuInjector::new(FaultSite::ExpUnit, target, 14);
        let hit = inj.corrupt_f16(FaultSite::ExpUnit, target, F16::ONE);
        assert_eq!(hit, F16::ONE.flip_bit(14));
    }

    #[test]
    fn ber_zero_never_fires() {
        let inj = BerInjector::new(9, 0.0);
        for i in 0..1000 {
            let v = inj.corrupt_f32(FaultSite::ExpUnit, OpCoord::new(0, i, 0, 0), 1.0);
            assert_eq!(v, 1.0);
        }
        assert!(inj.is_noop());
    }

    #[test]
    fn ber_one_always_fires() {
        let inj = BerInjector::new(9, 1.0);
        let mut changed = 0;
        for i in 0..100 {
            let v = inj.corrupt_f32(FaultSite::ExpUnit, OpCoord::new(0, i, 0, 0), 1.0);
            if v != 1.0 {
                changed += 1;
            }
        }
        // A flip always happens; the value always changes (single bit flip of
        // a non-NaN value cannot be identity).
        assert_eq!(changed, 100);
        assert_eq!(inj.fired(), 100);
    }

    #[test]
    fn ber_rate_is_approximately_respected() {
        let ber = 0.01;
        let inj = BerInjector::new(2024, ber);
        let n = 200_000u64;
        for i in 0..n {
            let _ = inj.corrupt_f32(
                FaultSite::GemmIAccum,
                OpCoord::new(0, i as usize, 0, 0),
                1.0,
            );
        }
        let rate = inj.fired() as f64 / n as f64;
        assert!((rate - ber).abs() < ber * 0.2, "rate {rate} vs ber {ber}");
    }

    #[test]
    fn ber_is_deterministic_and_schedule_independent() {
        let a = BerInjector::new(7, 0.05);
        let b = BerInjector::new(7, 0.05);
        // Query in different orders; same coords must give same results.
        let coords: Vec<OpCoord> = (0..500).map(|i| OpCoord::new(i % 7, i, i / 3, 0)).collect();
        let mut va: Vec<f32> = coords
            .iter()
            .map(|&c| a.corrupt_f32(FaultSite::ExpUnit, c, 3.25))
            .collect();
        let mut vb: Vec<f32> = coords
            .iter()
            .rev()
            .map(|&c| b.corrupt_f32(FaultSite::ExpUnit, c, 3.25))
            .collect();
        vb.reverse();
        assert_eq!(va.len(), vb.len());
        va.iter_mut().zip(vb.iter_mut()).for_each(|(x, y)| {
            assert_eq!(x.to_bits(), y.to_bits());
        });
    }

    #[test]
    fn ber_site_restriction() {
        let inj = BerInjector::new(3, 1.0).with_sites(&[FaultSite::ExpUnit]);
        let c = OpCoord::new(0, 0, 0, 0);
        assert_eq!(inj.corrupt_f32(FaultSite::GemmIAccum, c, 1.0), 1.0);
        assert_ne!(inj.corrupt_f32(FaultSite::ExpUnit, c, 1.0), 1.0);
    }

    #[test]
    fn different_sites_decorrelate() {
        // With a moderate BER the fault pattern must differ between sites.
        let inj = BerInjector::new(11, 0.5);
        let mut same = 0;
        let n = 200;
        for i in 0..n {
            let c = OpCoord::new(0, i, 0, 0);
            let x = inj.corrupt_f32(FaultSite::ExpUnit, c, 1.0) != 1.0;
            let y = inj.corrupt_f32(FaultSite::SumReduce, c, 1.0) != 1.0;
            if x == y {
                same += 1;
            }
        }
        assert!(same < n, "site patterns identical — hash ignores site");
    }
}
