//! Roofline cost model turning [`KernelStats`]
//! into simulated A100 execution time.
//!
//! Each kernel's time is `launch_overhead + max(memory_time, compute_time)`
//! — the classical roofline: a kernel is either bandwidth-bound or
//! compute-bound, and the fused/decoupled comparison in the paper flips
//! between those regimes exactly as HBM traffic changes. Constants are
//! calibrated to the paper's testbed (40 GB A100-PCIE, CUDA 12.4):
//!
//! | resource | peak |
//! |---|---|
//! | HBM bandwidth | 1 555 GB/s |
//! | FP16 tensor core | 312 TFLOP/s |
//! | FP32 CUDA core | 19.5 TFLOP/s |
//! | SFU (exp) | ~3.9 Top/s (¼ FP32 rate) |
//! | kernel launch | 5 µs |
//!
//! Absolute times are *not* expected to match the paper (their kernels are
//! hand-tuned CUTLASS; ours is a model), but ratios between variants — the
//! content of Figs. 9–13 and Tables 1–2 — are governed by the same traffic
//! and FLOP counts.

use crate::device::KernelStats;

/// Peak-rate description of a simulated accelerator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// HBM bandwidth in bytes/second.
    pub hbm_bandwidth: f64,
    /// Tensor-core FP16/FP32-accumulate throughput in FLOP/s.
    pub tc_peak_flops: f64,
    /// FP32 CUDA-core throughput in FLOP/s.
    pub fp32_peak_flops: f64,
    /// Special-function-unit throughput (exp) in op/s.
    pub sfu_peak_ops: f64,
    /// Fixed cost of one kernel launch, in seconds.
    pub kernel_launch: f64,
    /// Achievable fraction of peak (kernels never reach 100%).
    pub efficiency: f64,
}

impl CostModel {
    /// The paper's testbed: 40 GB A100-PCIE.
    pub fn a100_pcie_40gb() -> Self {
        CostModel {
            hbm_bandwidth: 1.555e12,
            tc_peak_flops: 312e12,
            fp32_peak_flops: 19.5e12,
            sfu_peak_ops: 4.875e12,
            kernel_launch: 5e-6,
            efficiency: 0.55,
        }
    }

    /// Time for one kernel with the given stats, in seconds.
    pub fn kernel_time(&self, stats: &KernelStats) -> f64 {
        let mem = stats.hbm_total() as f64 / (self.hbm_bandwidth * self.efficiency);
        let tc = stats.tc_flops as f64 / (self.tc_peak_flops * self.efficiency);
        let fp32 = stats.fp32_flops as f64 / (self.fp32_peak_flops * self.efficiency);
        let sfu = stats.sfu_ops as f64 / (self.sfu_peak_ops * self.efficiency);
        // Tensor-core, CUDA-core and SFU pipelines are distinct units that
        // overlap with each other and with memory; the kernel is as slow as
        // its most loaded resource. Serialized work (checksum verification
        // reductions, DMR comparisons) cannot hide under the overlap and is
        // paid on top.
        let compute = tc.max(fp32).max(sfu);
        let serial = stats.serial_flops as f64 / (self.fp32_peak_flops * self.efficiency);
        stats.launches as f64 * self.kernel_launch + mem.max(compute) + serial
    }

    /// Time in milliseconds (the unit the paper's tables use).
    pub fn kernel_time_ms(&self, stats: &KernelStats) -> f64 {
        self.kernel_time(stats) * 1e3
    }
}

/// A labelled sequence of kernel executions; the unit of comparison between
/// attention variants.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    records: Vec<(String, KernelStats)>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Append a kernel record.
    pub fn push(&mut self, label: impl Into<String>, stats: KernelStats) {
        self.records.push((label.into(), stats));
    }

    /// All records.
    pub fn records(&self) -> &[(String, KernelStats)] {
        &self.records
    }

    /// Merge all records into one stats total.
    pub fn total(&self) -> KernelStats {
        self.records
            .iter()
            .fold(KernelStats::default(), |acc, (_, s)| acc.merge(s))
    }

    /// Total simulated time under `model`: kernels execute sequentially.
    pub fn simulated_time(&self, model: &CostModel) -> f64 {
        self.records.iter().map(|(_, s)| model.kernel_time(s)).sum()
    }

    /// Simulated time of records whose label contains `needle` — used for
    /// the overhead breakdown of Fig. 10.
    pub fn simulated_time_matching(&self, model: &CostModel, needle: &str) -> f64 {
        self.records
            .iter()
            .filter(|(l, _)| l.contains(needle))
            .map(|(_, s)| model.kernel_time(s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(launches: u64, read: u64, written: u64, tc: u64) -> KernelStats {
        KernelStats {
            launches,
            hbm_read: read,
            hbm_written: written,
            tc_flops: tc,
            fp32_flops: 0,
            sfu_ops: 0,
            serial_flops: 0,
        }
    }

    #[test]
    fn serial_work_adds_on_top_of_overlap() {
        let m = CostModel::a100_pcie_40gb();
        let mut s = stats(1, 1 << 30, 0, 0);
        let base = m.kernel_time(&s);
        s.serial_flops = 1 << 40;
        let with_serial = m.kernel_time(&s);
        let expect_extra = (1u64 << 40) as f64 / (m.fp32_peak_flops * m.efficiency);
        assert!(((with_serial - base) - expect_extra).abs() / expect_extra < 1e-9);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let m = CostModel::a100_pcie_40gb();
        let t = m.kernel_time(&stats(1, 1024, 1024, 1024));
        assert!(t > 4.9e-6 && t < 6e-6, "tiny kernel ≈ launch cost, got {t}");
    }

    #[test]
    fn bandwidth_bound_kernel_scales_with_bytes() {
        let m = CostModel::a100_pcie_40gb();
        let t1 = m.kernel_time(&stats(1, 1 << 30, 0, 0));
        let t2 = m.kernel_time(&stats(1, 2 << 30, 0, 0));
        let ratio = (t2 - m.kernel_launch) / (t1 - m.kernel_launch);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_kernel_ignores_small_traffic() {
        let m = CostModel::a100_pcie_40gb();
        // Huge FLOPs, tiny memory: time tracks FLOPs.
        let heavy = stats(1, 1024, 1024, 1 << 50);
        let t = m.kernel_time(&heavy);
        let expect = (1u64 << 50) as f64 / (m.tc_peak_flops * m.efficiency) + m.kernel_launch;
        assert!((t - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn three_launches_cost_more_than_one_for_same_work() {
        // The decoupled pipeline's intrinsic penalty.
        let m = CostModel::a100_pcie_40gb();
        let work = stats(1, 1 << 20, 1 << 20, 1 << 30);
        let mut fused = Timeline::new();
        fused.push("efta", work);
        let mut decoupled = Timeline::new();
        let third = stats(1, (1 << 20) / 3, (1 << 20) / 3, (1 << 30) / 3);
        decoupled.push("k1", third);
        decoupled.push("k2", third);
        decoupled.push("k3", third);
        assert!(decoupled.simulated_time(&m) > fused.simulated_time(&m));
    }

    #[test]
    fn timeline_total_and_matching() {
        let mut t = Timeline::new();
        t.push("gemm1/protect", stats(1, 10, 10, 100));
        t.push("softmax", stats(1, 20, 20, 0));
        t.push("gemm2/protect", stats(1, 30, 30, 300));
        assert_eq!(t.total().hbm_read, 60);
        let m = CostModel::a100_pcie_40gb();
        let protect = t.simulated_time_matching(&m, "protect");
        let all = t.simulated_time(&m);
        assert!(protect < all);
        assert!(protect > 0.0);
    }
}
