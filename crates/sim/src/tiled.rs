//! The 64×16×16 TiledMMA used by the paper's EFTA kernel (Fig. 7).
//!
//! Four warps (128 threads) cooperate: warps are stacked along M (16 rows
//! each) and the atom is repeated twice along N (value layout — the *same*
//! threads compute both 8-column halves). Repetitions of the whole tile
//! along M/N/K cover arbitrary block shapes.
//!
//! The two co-residency facts that motivate the strided tensor checksum are
//! theorems of this layout, verified by the tests below:
//!
//! * along a **column** of the output (M direction), elements 64 apart are
//!   computed by the same thread;
//! * along a **row** of the output (N direction), elements 8 apart are
//!   computed by the same thread.

use crate::mma::{self, a_owner, b_owner, c_owner, ATOM_K, ATOM_M, ATOM_N, WARP_SIZE};
use ft_num::{Matrix, MatrixF16, MatrixF32};

/// Rows covered by one TiledMMA (4 warps × atom M).
pub const TILE_M: usize = 64;
/// Columns covered by one TiledMMA (atom N repeated twice, value layout).
pub const TILE_N: usize = 16;
/// Depth covered by one TiledMMA step.
pub const TILE_K: usize = 16;
/// Threads cooperating in one TiledMMA.
pub const TILE_THREADS: usize = 4 * WARP_SIZE;

/// Thread (0..128) computing output element `(i, j)` of a block GEMM tiled
/// by this TiledMMA. Works for arbitrarily large `i, j` via tile repetition.
#[inline]
pub fn c_thread_of(i: usize, j: usize) -> usize {
    let warp = (i % TILE_M) / ATOM_M;
    let lane = c_owner(i % ATOM_M, j % ATOM_N).lane;
    warp * WARP_SIZE + lane
}

/// Thread holding operand-A element `(i, k)` (the Q tile in GEMM I).
#[inline]
pub fn a_thread_of(i: usize, k: usize) -> usize {
    let warp = (i % TILE_M) / ATOM_M;
    let lane = a_owner(i % ATOM_M, k % ATOM_K).lane;
    warp * WARP_SIZE + lane
}

/// Thread holding operand-B element `(k, n)` (the Kᵀ tile in GEMM I).
/// B is broadcast along the warp dimension: all four warps hold the same
/// B fragment, so the owning lane is returned for warp 0.
#[inline]
pub fn b_thread_of(k: usize, n: usize) -> usize {
    b_owner(k % ATOM_K, n % ATOM_N).lane
}

/// Execute `C = A · B + C` (A: M×K, B: K×N row-major, C: M×N) by running
/// every constituent MMA atom through the per-lane fragment machinery.
///
/// This is the layout-faithful executor: slow, but numerically *identical*
/// to [`crate::gemm::gemm_nn`] (same FP16 operands, same f32 accumulation
/// order), used by tests to prove the fast path computes what the simulated
/// hardware would.
pub fn tiled_gemm_exec(a: &MatrixF16, b: &MatrixF16, c: &mut MatrixF32) {
    let (m, k_len) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k_len, kb, "inner dimensions must agree");
    assert_eq!(c.shape(), (m, n));
    assert!(
        m % ATOM_M == 0 && n % ATOM_N == 0 && k_len % ATOM_K == 0,
        "layout-faithful executor requires atom-aligned shapes ({m}x{k_len}x{n})"
    );

    for i0 in (0..m).step_by(ATOM_M) {
        for j0 in (0..n).step_by(ATOM_N) {
            // K-loop innermost: tiles accumulate in ascending k order, the
            // order the fast path replicates.
            let mut acc = c.block(i0, j0, ATOM_M, ATOM_N);
            for k0 in (0..k_len).step_by(ATOM_K) {
                let a_tile = a.block(i0, k0, ATOM_M, ATOM_K);
                let b_tile = b.block(k0, j0, ATOM_K, ATOM_N);
                let mut frags = mma::WarpFragments::load(&a_tile, &b_tile, &acc);
                frags.execute();
                acc = frags.store_c();
            }
            c.set_block(i0, j0, &acc);
        }
    }
}

/// Zero-initialised convenience wrapper for [`tiled_gemm_exec`].
pub fn tiled_gemm(a: &MatrixF16, b: &MatrixF16) -> MatrixF32 {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    tiled_gemm_exec(a, b, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_num::rng::{normal_matrix_f16, rng_from_seed};

    #[test]
    fn column_stride_64_is_thread_invariant() {
        // Paper Fig. 7: Q_i[0][0], Q_i[64][0], Q_i[128][0] on the same thread.
        for j in 0..TILE_N {
            for i in 0..TILE_M {
                let t = c_thread_of(i, j);
                assert_eq!(c_thread_of(i + 64, j), t);
                assert_eq!(c_thread_of(i + 128, j), t);
            }
        }
        assert_eq!(a_thread_of(0, 0), a_thread_of(64, 0));
        assert_eq!(a_thread_of(0, 0), a_thread_of(128, 0));
    }

    #[test]
    fn row_stride_8_is_thread_invariant() {
        // Paper Fig. 7: K⊤[0][0], K⊤[0][8], K⊤[0][16] on the same thread.
        for k in 0..TILE_K {
            for n in 0..ATOM_N {
                let t = b_thread_of(k, n);
                assert_eq!(b_thread_of(k, n + 8), t);
                assert_eq!(b_thread_of(k, n + 16), t);
            }
        }
        for i in 0..TILE_M {
            for j in 0..ATOM_N {
                let t = c_thread_of(i, j);
                assert_eq!(c_thread_of(i, j + 8), t);
                assert_eq!(c_thread_of(i, j + 16), t);
            }
        }
    }

    #[test]
    fn smaller_strides_cross_threads() {
        // Stride < 8 along a row lands on a different thread for at least
        // one position — strided accumulation genuinely needs stride 8.
        let mut violations = 0;
        for s in 1..8 {
            for j in 0..8 {
                if c_thread_of(0, j) != c_thread_of(0, j + s) {
                    violations += 1;
                }
            }
        }
        assert!(violations > 0);
        // And stride 16 along a column crosses warps.
        assert_ne!(c_thread_of(0, 0), c_thread_of(16, 0));
    }

    #[test]
    fn tiled_gemm_matches_scalar_reference() {
        let mut rng = rng_from_seed(321);
        let (m, k, n) = (32, 32, 16);
        let a = normal_matrix_f16(&mut rng, m, k, 0.5);
        let b = normal_matrix_f16(&mut rng, k, n, 0.5);
        let got = tiled_gemm(&a, &b);
        // Scalar reference with identical accumulation order.
        let expect = MatrixF32::from_fn(m, n, |i, j| {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.get(i, kk).to_f32() * b.get(kk, j).to_f32();
            }
            acc
        });
        assert_eq!(got, expect, "fragment execution must be bit-identical");
    }

    #[test]
    fn tile_constants_consistent() {
        assert_eq!(TILE_M, 4 * ATOM_M);
        assert_eq!(TILE_N, 2 * ATOM_N);
        assert_eq!(TILE_THREADS, 128);
    }
}
