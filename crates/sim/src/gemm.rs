//! Block GEMM engine with fault-injection hooks.
//!
//! These are the routines every kernel in `ft-core`/`ft-transformer` builds
//! on. Numerics replicate the tensor-core mixed-precision path exactly:
//! operands have been quantised through binary16 (callers convert FP16
//! tensors to `MatrixF32` views), products are FP32, and accumulation runs
//! in ascending-k order — bit-identical to executing the constituent
//! `m16n8k16` atoms via [`crate::tiled::tiled_gemm_exec`] (a property pinned
//! by tests).
//!
//! Fault injection: each output element's accumulation chain asks the
//! injector *once* whether a transient fault occurs and at which FMA step;
//! the accumulator bit-flips mid-chain and the corrupted partial sum
//! propagates through the remaining FMAs, exactly like a transient fault in
//! a tensor-core accumulator.

use crate::fault::{FaultInjector, FaultSite, OpCoord};
use ft_num::{Matrix, MatrixF32};

/// Context identifying where in the enclosing computation a GEMM runs, so
/// injected faults have well-defined global coordinates.
#[derive(Clone, Copy, Debug)]
pub struct GemmCtx {
    /// Fault site attributed to this GEMM's accumulation chains.
    pub site: FaultSite,
    /// Flattened (batch, head) slot or layer id.
    pub slot: usize,
    /// Global row offset of this block's output.
    pub row_off: usize,
    /// Global column offset of this block's output.
    pub col_off: usize,
    /// Iteration id disambiguating repeated accumulations onto the same
    /// output (the flash-attention inner loop index).
    pub iter: usize,
}

impl GemmCtx {
    /// Context for an unsliced GEMM at origin (0,0), iteration 0.
    pub fn new(site: FaultSite, slot: usize) -> Self {
        GemmCtx {
            site,
            slot,
            row_off: 0,
            col_off: 0,
            iter: 0,
        }
    }

    /// Set the output-block origin.
    pub fn at(mut self, row_off: usize, col_off: usize) -> Self {
        self.row_off = row_off;
        self.col_off = col_off;
        self
    }

    /// Set the iteration id.
    pub fn iter(mut self, iter: usize) -> Self {
        self.iter = iter;
        self
    }
}

#[inline]
fn dot_plain(a_row: &[f32], b_row: &[f32]) -> f32 {
    debug_assert_eq!(a_row.len(), b_row.len());
    let mut acc = 0.0f32;
    for (x, y) in a_row.iter().zip(b_row) {
        acc += x * y;
    }
    acc
}

#[inline]
fn dot_faulty(a_row: &[f32], b_row: &[f32], step: usize, bit: u32) -> f32 {
    let mut acc = 0.0f32;
    for (k, (x, y)) in a_row.iter().zip(b_row).enumerate() {
        acc += x * y;
        if k == step {
            acc = f32::from_bits(acc.to_bits() ^ (1u32 << bit));
        }
    }
    acc
}

/// `C = A · Bᵀ` (both row-major; the QKᵀ shape). No fault injection.
pub fn gemm_nt(a: &MatrixF32, b: &MatrixF32) -> MatrixF32 {
    assert_eq!(a.cols(), b.cols(), "inner dims (k) must match");
    Matrix::from_fn(a.rows(), b.rows(), |i, j| dot_plain(a.row(i), b.row(j)))
}

/// `C = A · Bᵀ` with fault injection under `ctx`.
pub fn gemm_nt_inj<I: FaultInjector>(
    a: &MatrixF32,
    b: &MatrixF32,
    inj: &I,
    ctx: GemmCtx,
) -> MatrixF32 {
    if inj.is_noop() {
        return gemm_nt(a, b);
    }
    assert_eq!(a.cols(), b.cols(), "inner dims (k) must match");
    let k_len = a.cols();
    Matrix::from_fn(a.rows(), b.rows(), |i, j| {
        let coord = OpCoord::new(ctx.slot, ctx.row_off + i, ctx.col_off + j, ctx.iter);
        match inj.decide_chain(ctx.site, coord, k_len) {
            None => dot_plain(a.row(i), b.row(j)),
            Some(f) => dot_faulty(a.row(i), b.row(j), f.step, f.bit),
        }
    })
}

/// `C = A · B` (row-major; the PV shape). No fault injection.
pub fn gemm_nn(a: &MatrixF32, b: &MatrixF32) -> MatrixF32 {
    assert_eq!(a.cols(), b.rows(), "inner dims (k) must match");
    let (m, n) = (a.rows(), b.cols());
    let k_len = a.cols();
    let mut c = Matrix::zeros(m, n);
    // k-outer over rows of B keeps B accesses row-contiguous; accumulation
    // per output element is still ascending-k (each k adds once).
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (k, &aik) in a_row.iter().enumerate().take(k_len) {
            let b_row = b.row(k);
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
    c
}

/// `C = A · B` with fault injection under `ctx`.
///
/// Falls back to a per-element loop so a chain fault can corrupt the
/// accumulator at its exact FMA step.
pub fn gemm_nn_inj<I: FaultInjector>(
    a: &MatrixF32,
    b: &MatrixF32,
    inj: &I,
    ctx: GemmCtx,
) -> MatrixF32 {
    if inj.is_noop() {
        return gemm_nn(a, b);
    }
    assert_eq!(a.cols(), b.rows(), "inner dims (k) must match");
    let k_len = a.cols();
    Matrix::from_fn(a.rows(), b.cols(), |i, j| {
        let coord = OpCoord::new(ctx.slot, ctx.row_off + i, ctx.col_off + j, ctx.iter);
        let fault = inj.decide_chain(ctx.site, coord, k_len);
        let a_row = a.row(i);
        match fault {
            None => {
                let mut acc = 0.0f32;
                for (k, &av) in a_row.iter().enumerate() {
                    acc += av * b.get(k, j);
                }
                acc
            }
            Some(f) => {
                let mut acc = 0.0f32;
                for (k, &av) in a_row.iter().enumerate() {
                    acc += av * b.get(k, j);
                    if k == f.step {
                        acc = f32::from_bits(acc.to_bits() ^ (1u32 << f.bit));
                    }
                }
                acc
            }
        }
    })
}

/// FLOPs of an M×N×K GEMM (multiply + add).
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{BerInjector, NoFaults, SeuInjector};
    use crate::tiled::tiled_gemm;
    use ft_num::rng::{normal_matrix_f16, rng_from_seed};

    #[test]
    fn gemm_nn_matches_nt_on_transposed_operand() {
        let mut rng = rng_from_seed(1);
        let a = normal_matrix_f16(&mut rng, 8, 12, 1.0).to_f32();
        let b = normal_matrix_f16(&mut rng, 12, 10, 1.0).to_f32();
        let c1 = gemm_nn(&a, &b);
        let c2 = gemm_nt(&a, &b.transpose());
        // Same ascending-k accumulation order → bit identical.
        assert_eq!(c1, c2);
    }

    #[test]
    fn fast_gemm_bit_identical_to_fragment_executor() {
        let mut rng = rng_from_seed(17);
        let a16 = normal_matrix_f16(&mut rng, 32, 16, 0.7);
        let b16 = normal_matrix_f16(&mut rng, 16, 16, 0.7);
        let slow = tiled_gemm(&a16, &b16);
        let fast = gemm_nn(&a16.to_f32(), &b16.to_f32());
        assert_eq!(slow, fast, "fast path must equal simulated hardware");
    }

    #[test]
    fn injected_chain_fault_changes_exactly_one_element() {
        let mut rng = rng_from_seed(2);
        let a = normal_matrix_f16(&mut rng, 16, 32, 1.0).to_f32();
        let b = normal_matrix_f16(&mut rng, 16, 32, 1.0).to_f32();
        let clean = gemm_nt(&a, &b);
        let inj =
            SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(0, 3, 5, 0), 30).at_chain_step(31);
        let dirty = gemm_nt_inj(&a, &b, &inj, GemmCtx::new(FaultSite::GemmIAccum, 0));
        let mut diffs = 0;
        for i in 0..16 {
            for j in 0..16 {
                if clean.get(i, j) != dirty.get(i, j) {
                    diffs += 1;
                    assert_eq!((i, j), (3, 5));
                }
            }
        }
        assert_eq!(diffs, 1);
        assert_eq!(inj.fired(), 1);
    }

    #[test]
    fn chain_fault_at_last_step_flips_final_bit_exactly() {
        // Fault after the last FMA = flip one bit of the final value.
        let mut rng = rng_from_seed(3);
        let a = normal_matrix_f16(&mut rng, 4, 8, 1.0).to_f32();
        let b = normal_matrix_f16(&mut rng, 4, 8, 1.0).to_f32();
        let clean = gemm_nt(&a, &b);
        let inj =
            SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(0, 1, 2, 0), 20).at_chain_step(7);
        let dirty = gemm_nt_inj(&a, &b, &inj, GemmCtx::new(FaultSite::GemmIAccum, 0));
        assert_eq!(
            dirty.get(1, 2).to_bits() ^ clean.get(1, 2).to_bits(),
            1 << 20
        );
    }

    #[test]
    fn mid_chain_fault_propagates_additively() {
        // A flip mid-chain adds a bit-flip delta to the partial sum; the
        // remaining FMAs add unchanged terms, so the final error equals the
        // delta introduced at the step (f32 addition is exact for these
        // scale-matched values — verify the error is nonzero and finite).
        let a = MatrixF32::from_fn(1, 16, |_, _| 1.0);
        let b = MatrixF32::from_fn(1, 16, |_, _| 1.0);
        let clean = gemm_nt(&a, &b);
        assert_eq!(clean.get(0, 0), 16.0);
        let inj =
            SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(0, 0, 0, 0), 23).at_chain_step(3);
        let dirty = gemm_nt_inj(&a, &b, &inj, GemmCtx::new(FaultSite::GemmIAccum, 0));
        // After step 3 the accumulator is 4.0 (bits 0x40800000); bit 23 is
        // the exponent LSB, so 4.0 becomes 2.0 and the −2 delta propagates
        // through the remaining 12 additions: 16 − 2 = 14.
        assert_eq!(dirty.get(0, 0), 14.0);
    }

    #[test]
    fn ber_injection_rate_scales_with_chain_length() {
        let ber = 1e-4;
        let inj = BerInjector::new(77, ber);
        let a = MatrixF32::zeros(64, 256);
        let b = MatrixF32::zeros(64, 256);
        let _ = gemm_nt_inj(&a, &b, &inj, GemmCtx::new(FaultSite::GemmIAccum, 0));
        let chains = 64.0 * 64.0;
        let expect = chains * 256.0 * ber; // ≈ chains * p_chain
        let got = inj.fired() as f64;
        assert!(
            (got - expect).abs() < expect.mul_add(0.9, 3.0),
            "got {got}, expect ≈ {expect}"
        );
    }

    #[test]
    fn noop_injector_takes_fast_path() {
        let a = MatrixF32::from_fn(4, 4, |i, j| (i + j) as f32);
        let b = MatrixF32::from_fn(4, 4, |i, j| (i * j) as f32);
        let c1 = gemm_nt(&a, &b);
        let c2 = gemm_nt_inj(&a, &b, &NoFaults, GemmCtx::new(FaultSite::GemmIAccum, 0));
        assert_eq!(c1, c2);
    }

    #[test]
    fn flops_helper() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }
}
