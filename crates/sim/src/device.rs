//! Simulated GPU device: HBM with capacity + traffic accounting, kernel
//! launch bookkeeping.
//!
//! The paper's performance story is architectural, not micro-architectural:
//! the decoupled baseline launches three kernels and moves the O(n²) S and P
//! tensors through HBM, the fused EFTA kernel launches once and keeps score
//! tiles on chip. `Device` measures exactly those quantities — bytes
//! read/written to HBM, peak residency against a 40 GB capacity (the OOM in
//! Fig. 9), and kernel launches — so the cost model can turn any kernel run
//! into simulated A100 time.
//!
//! Counters are atomics: kernels update them from rayon workers.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Error returned when an allocation exceeds simulated HBM capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes already resident.
    pub in_use: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl core::fmt::Display for OomError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "simulated HBM OOM: requested {} B with {} B in use of {} B capacity",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// Aggregate statistics of one or more kernel executions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Kernel launches performed.
    pub launches: u64,
    /// Bytes read from HBM.
    pub hbm_read: u64,
    /// Bytes written to HBM.
    pub hbm_written: u64,
    /// FLOPs executed on tensor cores (FP16 multiply, FP32 accumulate).
    pub tc_flops: u64,
    /// FLOPs executed on FP32 CUDA cores (reductions, rescales, checksum
    /// verification arithmetic).
    pub fp32_flops: u64,
    /// Special-function-unit operations (exponentials).
    pub sfu_ops: u64,
    /// FP32 work that cannot overlap the main pipelines (checksum
    /// encode/verify reductions, DMR comparisons, correction logic) and is
    /// paid serially after the overlapped phase.
    pub serial_flops: u64,
}

impl KernelStats {
    /// Elementwise sum of two stats records.
    pub fn merge(&self, other: &KernelStats) -> KernelStats {
        KernelStats {
            launches: self.launches + other.launches,
            hbm_read: self.hbm_read + other.hbm_read,
            hbm_written: self.hbm_written + other.hbm_written,
            tc_flops: self.tc_flops + other.tc_flops,
            fp32_flops: self.fp32_flops + other.fp32_flops,
            sfu_ops: self.sfu_ops + other.sfu_ops,
            serial_flops: self.serial_flops + other.serial_flops,
        }
    }

    /// Total HBM traffic.
    pub fn hbm_total(&self) -> u64 {
        self.hbm_read + self.hbm_written
    }
}

/// Thread-safe accumulator for [`KernelStats`], updated by parallel workers.
#[derive(Debug, Default)]
pub struct StatsCollector {
    launches: AtomicU64,
    hbm_read: AtomicU64,
    hbm_written: AtomicU64,
    tc_flops: AtomicU64,
    fp32_flops: AtomicU64,
    sfu_ops: AtomicU64,
    serial_flops: AtomicU64,
}

impl StatsCollector {
    /// Fresh zeroed collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one kernel launch.
    pub fn launch(&self) {
        self.launches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an HBM read of `bytes`.
    pub fn read(&self, bytes: u64) {
        self.hbm_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record an HBM write of `bytes`.
    pub fn write(&self, bytes: u64) {
        self.hbm_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record tensor-core FLOPs.
    pub fn tc(&self, flops: u64) {
        self.tc_flops.fetch_add(flops, Ordering::Relaxed);
    }

    /// Record FP32 CUDA-core FLOPs.
    pub fn fp32(&self, flops: u64) {
        self.fp32_flops.fetch_add(flops, Ordering::Relaxed);
    }

    /// Record SFU (exponential) operations.
    pub fn sfu(&self, ops: u64) {
        self.sfu_ops.fetch_add(ops, Ordering::Relaxed);
    }

    /// Record serialized (non-overlapping) FP32 work.
    pub fn serial(&self, flops: u64) {
        self.serial_flops.fetch_add(flops, Ordering::Relaxed);
    }

    /// Snapshot the accumulated stats.
    pub fn snapshot(&self) -> KernelStats {
        KernelStats {
            launches: self.launches.load(Ordering::Relaxed),
            hbm_read: self.hbm_read.load(Ordering::Relaxed),
            hbm_written: self.hbm_written.load(Ordering::Relaxed),
            tc_flops: self.tc_flops.load(Ordering::Relaxed),
            fp32_flops: self.fp32_flops.load(Ordering::Relaxed),
            sfu_ops: self.sfu_ops.load(Ordering::Relaxed),
            serial_flops: self.serial_flops.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.launches.store(0, Ordering::Relaxed);
        self.hbm_read.store(0, Ordering::Relaxed);
        self.hbm_written.store(0, Ordering::Relaxed);
        self.tc_flops.store(0, Ordering::Relaxed);
        self.fp32_flops.store(0, Ordering::Relaxed);
        self.sfu_ops.store(0, Ordering::Relaxed);
        self.serial_flops.store(0, Ordering::Relaxed);
    }
}

/// Simulated HBM: capacity-limited allocator with traffic counters.
#[derive(Debug)]
pub struct Hbm {
    capacity: u64,
    in_use: AtomicU64,
    peak: AtomicU64,
}

impl Hbm {
    /// HBM with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Hbm {
            capacity,
            in_use: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Reserve `bytes`; fails with [`OomError`] past capacity.
    pub fn alloc(&self, bytes: u64) -> Result<Allocation<'_>, OomError> {
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = cur + bytes;
            if next > self.capacity {
                return Err(OomError {
                    requested: bytes,
                    in_use: cur,
                    capacity: self.capacity,
                });
            }
            match self
                .in_use
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(Allocation { hbm: self, bytes });
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes currently resident.
    pub fn in_use(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of residency.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// RAII guard for a simulated HBM reservation.
#[derive(Debug)]
pub struct Allocation<'a> {
    hbm: &'a Hbm,
    bytes: u64,
}

impl Allocation<'_> {
    /// Size of this reservation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Allocation<'_> {
    fn drop(&mut self) {
        self.hbm.in_use.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// A simulated device: HBM plus a stats collector.
#[derive(Debug)]
pub struct Device {
    /// High-bandwidth memory model.
    pub hbm: Hbm,
    /// Kernel statistics collector.
    pub stats: Arc<StatsCollector>,
}

/// 40 GB, the A100-PCIE card in the paper's testbed.
pub const A100_40GB: u64 = 40 * (1 << 30);

impl Device {
    /// Device with the paper's 40 GB A100 capacity.
    pub fn a100_40gb() -> Self {
        Device::with_capacity(A100_40GB)
    }

    /// Device with arbitrary HBM capacity (scaled experiments).
    pub fn with_capacity(capacity: u64) -> Self {
        Device {
            hbm: Hbm::new(capacity),
            stats: Arc::new(StatsCollector::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_within_capacity_succeeds_and_frees_on_drop() {
        let hbm = Hbm::new(1000);
        {
            let a = hbm.alloc(600).unwrap();
            assert_eq!(hbm.in_use(), 600);
            assert_eq!(a.bytes(), 600);
            let _b = hbm.alloc(400).unwrap();
            assert_eq!(hbm.in_use(), 1000);
        }
        assert_eq!(hbm.in_use(), 0);
        assert_eq!(hbm.peak(), 1000);
    }

    #[test]
    fn alloc_past_capacity_fails_with_oom() {
        let hbm = Hbm::new(1000);
        let _a = hbm.alloc(800).unwrap();
        let err = hbm.alloc(300).unwrap_err();
        assert_eq!(err.requested, 300);
        assert_eq!(err.in_use, 800);
        assert_eq!(err.capacity, 1000);
        assert!(err.to_string().contains("OOM"));
    }

    #[test]
    fn decoupled_attention_oom_scenario() {
        // The Fig. 9 OOM: h=32 heads, seq=16k, batch=1 decoupled attention
        // must keep S (and later P) resident: heads * seq^2 * 2 bytes each.
        let dev = Device::a100_40gb();
        let seq = 16 * 1024u64;
        let s_bytes = 32 * seq * seq * 2;
        let _s = dev.hbm.alloc(s_bytes).unwrap(); // 16 GiB, fits
        let p = dev.hbm.alloc(s_bytes); // +16 GiB = 32 GiB, fits
        let _p = p.unwrap();
        // Q,K,V,O + checksums push it over: another S-sized scratch fails.
        assert!(dev.hbm.alloc(s_bytes).is_err());
    }

    #[test]
    fn stats_collector_accumulates_and_snapshots() {
        let s = StatsCollector::new();
        s.launch();
        s.launch();
        s.read(100);
        s.write(50);
        s.tc(1_000);
        s.fp32(10);
        s.sfu(5);
        let snap = s.snapshot();
        assert_eq!(snap.launches, 2);
        assert_eq!(snap.hbm_read, 100);
        assert_eq!(snap.hbm_written, 50);
        assert_eq!(snap.hbm_total(), 150);
        assert_eq!(snap.tc_flops, 1_000);
        s.reset();
        assert_eq!(s.snapshot(), KernelStats::default());
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let a = KernelStats {
            launches: 1,
            hbm_read: 2,
            hbm_written: 3,
            tc_flops: 4,
            fp32_flops: 5,
            sfu_ops: 6,
            serial_flops: 7,
        };
        let b = a;
        let m = a.merge(&b);
        assert_eq!(m.launches, 2);
        assert_eq!(m.sfu_ops, 12);
        assert_eq!(m.serial_flops, 14);
    }

    #[test]
    fn concurrent_alloc_is_consistent() {
        use std::thread;
        let hbm = Hbm::new(10_000);
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if let Ok(a) = hbm.alloc(50) {
                            std::hint::black_box(&a);
                        }
                    }
                });
            }
        });
        assert_eq!(hbm.in_use(), 0, "all allocations released");
        assert!(hbm.peak() <= 10_000, "capacity never exceeded");
    }
}
