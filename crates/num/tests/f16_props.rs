//! Property tests for the software binary16 via the proptest shim — the
//! edge cases the inline unit tests don't sweep: full-bit-pattern round
//! trips, round-to-nearest-even tie behaviour, subnormals, and NaN/Inf
//! arithmetic. Every checksum threshold in the workspace is calibrated to
//! this type's rounding noise, so its conversion semantics are contract.

use ft_num::f16::{EXPONENT_BIAS, MANTISSA_BITS};
use ft_num::{quantize_f32, F16};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn prop_round_trip_any_bit_pattern(bits in 0u32..0x1_0000) {
        // u32 strategy so the inclusive top pattern 0xFFFF (all-ones NaN)
        // is reachable — the shim only supports exclusive ranges.
        let bits = bits as u16;
        let h = F16::from_bits(bits);
        let back = F16::from_f32(h.to_f32());
        if h.is_nan() {
            prop_assert!(back.is_nan(), "NaN-ness must survive {bits:#06x}");
        } else {
            // Every finite/Inf binary16 is exactly representable in f32, so
            // the round trip is the identity on the bit pattern.
            prop_assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn prop_conversion_is_nearest(v in -70000.0f32..70000.0) {
        // The result of from_f32 must be at least as close to v as either
        // of its representable neighbours (nearest rounding).
        let h = F16::from_f32(v);
        if !h.is_nan() && !h.is_infinite() {
            let err = (h.to_f64() - v as f64).abs();
            for neighbour in [
                F16::from_bits(h.to_bits().wrapping_add(1)),
                F16::from_bits(h.to_bits().wrapping_sub(1)),
            ] {
                if neighbour.is_nan() || neighbour.is_infinite() {
                    continue;
                }
                let nerr = (neighbour.to_f64() - v as f64).abs();
                prop_assert!(
                    err <= nerr,
                    "{v}: chose {h:?} (err {err:e}) over {neighbour:?} (err {nerr:e})"
                );
            }
        }
    }

    #[test]
    fn prop_ties_round_to_even_mantissa(bits in 0x0400u16..0x7BFF) {
        // Exact midpoint between a finite normal h and its successor must
        // round to whichever of the two has an even mantissa LSB.
        let h = F16::from_bits(bits);
        let next = F16::from_bits(bits + 1);
        if !next.is_infinite() {
            // Midpoint is exact in f32 (11 significant f16 bits + 1).
            let mid = (h.to_f32() + next.to_f32()) * 0.5;
            let rounded = F16::from_f32(mid);
            prop_assert!(
                rounded == h || rounded == next,
                "midpoint of {h:?}/{next:?} rounded to {rounded:?}"
            );
            prop_assert_eq!(
                rounded.to_bits() & 1,
                0,
                "tie must round to the even mantissa: {:?} -> {:?}", mid, rounded
            );
        }
    }

    #[test]
    fn prop_subnormals_round_trip_and_classify(bits in 1u16..0x0400) {
        let h = F16::from_bits(bits);
        prop_assert!(h.is_subnormal());
        prop_assert!(h.is_finite());
        let f = h.to_f32();
        // All positive subnormals lie strictly below the smallest normal.
        prop_assert!(f > 0.0 && f < F16::MIN_POSITIVE.to_f32());
        // Exact multiple of 2^-24.
        let scaled = f / 2.0f32.powi(-24);
        prop_assert_eq!(scaled, scaled.round());
        prop_assert_eq!(F16::from_f32(f).to_bits(), bits);
    }

    #[test]
    fn prop_halving_min_subnormal_ties_to_zero_even(mult in 1u16..0x0200) {
        // (2k+1)·2^-25 is an exact tie between subnormal neighbours k and
        // k+1 scaled by 2^-24; nearest-even keeps the even one.
        let odd = 2 * mult - 1;
        let v = odd as f32 * 2.0f32.powi(-25);
        let h = F16::from_f32(v);
        prop_assert_eq!(h.to_bits() & 1, 0, "{}*2^-25 -> {:#06x}", odd, h.to_bits());
        let err = (h.to_f32() - v).abs();
        prop_assert!(err <= 2.0f32.powi(-25) + f32::EPSILON);
    }

    #[test]
    fn prop_nan_payload_and_sign_survive(mantissa in 1u32..0x0040_0000, neg in prop::bool::ANY) {
        // f32 NaNs convert to f16 NaNs, quieted, keeping the sign.
        let sign = if neg { 0x8000_0000u32 } else { 0 };
        let nan = f32::from_bits(sign | 0x7F80_0000 | mantissa);
        let h = F16::from_f32(nan);
        prop_assert!(h.is_nan());
        prop_assert_eq!(h.is_sign_negative(), neg);
        // Quiet bit set (hardware converter behaviour).
        prop_assert!(h.to_bits() & 0x0200 != 0);
    }

    #[test]
    fn prop_infinity_arithmetic(v in -60000.0f32..60000.0) {
        let x = F16::from_f32(v);
        prop_assert_eq!(F16::INFINITY + x, F16::INFINITY);
        prop_assert_eq!(F16::NEG_INFINITY + x, F16::NEG_INFINITY);
        prop_assert!((F16::INFINITY - F16::INFINITY).is_nan());
        prop_assert!((F16::INFINITY * F16::ZERO).is_nan());
    }

    #[test]
    fn prop_overflow_boundary_is_exact(delta in 0u32..31) {
        // 65520 is the RN tie to Inf; everything in (65488, 65520) rounds
        // to MAX (65488 itself is a tie that rounds *down* to even 65472),
        // everything at/above 65520 goes to Inf.
        let below = 65520.0 - (delta + 1) as f32;
        let above = 65520.0 + delta as f32;
        prop_assert_eq!(F16::from_f32(below), F16::MAX);
        prop_assert_eq!(F16::from_f32(above), F16::INFINITY);
        prop_assert_eq!(F16::from_f32(-above), F16::NEG_INFINITY);
    }

    #[test]
    fn prop_quantize_is_monotone_projection(a in -65000.0f32..65000.0, b in -65000.0f32..65000.0) {
        let (qa, qb) = (quantize_f32(a), quantize_f32(b));
        if a <= b {
            prop_assert!(qa <= qb);
        }
        prop_assert_eq!(quantize_f32(qa).to_bits(), qa.to_bits());
    }

    #[test]
    fn prop_ulp_distance_is_a_metric(
        x in 0x0001u16..0x7C00,
        y in 0x0001u16..0x7C00,
        z in 0x0001u16..0x7C00,
        sx in prop::bool::ANY,
        sy in prop::bool::ANY,
        sz in prop::bool::ANY,
    ) {
        let sign = |bits: u16, neg: bool| F16::from_bits(bits | if neg { 0x8000 } else { 0 });
        let (a, b, c) = (sign(x, sx), sign(y, sy), sign(z, sz));
        prop_assert_eq!(a.ulp_distance(b), b.ulp_distance(a), "symmetry");
        prop_assert_eq!(a.ulp_distance(a), 0, "identity");
        prop_assert!(
            a.ulp_distance(b) <= a.ulp_distance(c) + c.ulp_distance(b),
            "triangle inequality through {c:?}"
        );
    }
}

#[test]
fn constants_are_consistent_with_field_widths() {
    assert_eq!(MANTISSA_BITS, 10);
    assert_eq!(EXPONENT_BIAS, 15);
    // MAX = (2 − 2^-10) · 2^15.
    assert_eq!(
        F16::MAX.to_f32(),
        (2.0 - 2.0f32.powi(-10)) * 2.0f32.powi(15)
    );
}
