//! # ft-num — numeric substrate for the FT-Transformer reproduction
//!
//! Foundations shared by every other crate in the workspace:
//!
//! * [`f16::F16`] — software IEEE 754 binary16 with round-to-nearest-even
//!   conversion and bit-level access (the soft-error injection surface);
//! * [`matrix::Matrix`] — row-major dense matrices in FP16 (operand) and
//!   FP32 (accumulator) precision, with the block/tiling helpers every
//!   kernel uses;
//! * [`tensor::Tensor4`] — `batch × heads × seq × dim` attention tensors;
//! * [`rng`] — seeded, reproducible workload generation.
//!
//! No GPU, BLAS or `half` dependencies: the numerics are from scratch so the
//! checksum thresholds and fault-injection behaviour studied by the paper
//! are fully auditable.

#![warn(missing_docs)]

pub mod f16;
pub mod matrix;
pub mod rng;
pub mod tensor;

pub use f16::{quantize_f32, F16};
pub use matrix::{block_starts, num_blocks, Matrix, MatrixF16, MatrixF32};
pub use tensor::{Tensor4, Tensor4F16, Tensor4F32};
