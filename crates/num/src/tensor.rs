//! Attention operand tensors.
//!
//! Every tensor in the paper has logical shape
//! `batch × num_heads × seq_len × feature_dim` (§3.1). Batch and head are
//! embarrassingly parallel, so the storage is a flat vector of per-(batch,
//! head) row-major matrices; kernels iterate those slots in parallel with
//! rayon exactly like CTAs spread across the grid.

use crate::f16::F16;
use crate::matrix::{Matrix, MatrixF16, MatrixF32};

/// 4-D tensor `batch × heads × seq × dim` stored as per-(batch, head)
/// matrices.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor4<T> {
    batch: usize,
    heads: usize,
    seq: usize,
    dim: usize,
    slots: Vec<Matrix<T>>,
}

/// FP16 attention tensor (the I/O precision of the paper's kernels).
pub type Tensor4F16 = Tensor4<F16>;
/// FP32 attention tensor (accumulator / verification precision).
pub type Tensor4F32 = Tensor4<f32>;

impl<T: Copy + Default> Tensor4<T> {
    /// Allocate a zeroed tensor.
    pub fn zeros(batch: usize, heads: usize, seq: usize, dim: usize) -> Self {
        let slots = (0..batch * heads)
            .map(|_| Matrix::zeros(seq, dim))
            .collect();
        Tensor4 {
            batch,
            heads,
            seq,
            dim,
            slots,
        }
    }

    /// Build from a closure over `(batch, head, row, col)`.
    pub fn from_fn(
        batch: usize,
        heads: usize,
        seq: usize,
        dim: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Self {
        let mut slots = Vec::with_capacity(batch * heads);
        for b in 0..batch {
            for h in 0..heads {
                slots.push(Matrix::from_fn(seq, dim, |r, c| f(b, h, r, c)));
            }
        }
        Tensor4 {
            batch,
            heads,
            seq,
            dim,
            slots,
        }
    }

    /// Batch size.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of attention heads.
    #[inline]
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Sequence length.
    #[inline]
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Feature dimension (head dim).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of (batch, head) slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Borrow the matrix for `(batch, head)`.
    #[inline]
    pub fn slot(&self, b: usize, h: usize) -> &Matrix<T> {
        &self.slots[b * self.heads + h]
    }

    /// Mutably borrow the matrix for `(batch, head)`.
    #[inline]
    pub fn slot_mut(&mut self, b: usize, h: usize) -> &mut Matrix<T> {
        &mut self.slots[b * self.heads + h]
    }

    /// Borrow slot by flat index (for parallel iteration).
    #[inline]
    pub fn slot_flat(&self, i: usize) -> &Matrix<T> {
        &self.slots[i]
    }

    /// All slots as a slice (rayon-friendly).
    #[inline]
    pub fn slots(&self) -> &[Matrix<T>] {
        &self.slots
    }

    /// All slots, mutably.
    #[inline]
    pub fn slots_mut(&mut self) -> &mut [Matrix<T>] {
        &mut self.slots
    }

    /// Map `(flat_slot) -> (batch, head)`.
    #[inline]
    pub fn unflatten(&self, i: usize) -> (usize, usize) {
        (i / self.heads, i % self.heads)
    }

    /// Assemble from pre-built slot matrices.
    pub fn from_slots(
        batch: usize,
        heads: usize,
        seq: usize,
        dim: usize,
        slots: Vec<Matrix<T>>,
    ) -> Self {
        assert_eq!(slots.len(), batch * heads);
        for s in &slots {
            assert_eq!(s.shape(), (seq, dim));
        }
        Tensor4 {
            batch,
            heads,
            seq,
            dim,
            slots,
        }
    }
}

impl Tensor4F16 {
    /// Widen all slots to f32.
    pub fn to_f32(&self) -> Tensor4F32 {
        Tensor4F32 {
            batch: self.batch,
            heads: self.heads,
            seq: self.seq,
            dim: self.dim,
            slots: self.slots.iter().map(MatrixF16::to_f32).collect(),
        }
    }

    /// Total FP16 bytes (as resident in simulated HBM).
    pub fn size_bytes(&self) -> u64 {
        self.slots.iter().map(MatrixF16::size_bytes).sum()
    }
}

impl Tensor4F32 {
    /// Quantise all slots through binary16.
    pub fn to_f16(&self) -> Tensor4F16 {
        Tensor4F16 {
            batch: self.batch,
            heads: self.heads,
            seq: self.seq,
            dim: self.dim,
            slots: self.slots.iter().map(MatrixF32::to_f16).collect(),
        }
    }

    /// Max absolute element-wise difference across all slots.
    pub fn max_abs_diff(&self, other: &Tensor4F32) -> f32 {
        assert_eq!(self.slots.len(), other.slots.len());
        self.slots
            .iter()
            .zip(&other.slots)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0, f32::max)
    }

    /// True if any slot contains NaN/Inf.
    pub fn has_non_finite(&self) -> bool {
        self.slots.iter().any(MatrixF32::has_non_finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_slot_addressing() {
        let t = Tensor4F32::from_fn(2, 3, 4, 5, |b, h, r, c| {
            (b * 1000 + h * 100 + r * 10 + c) as f32
        });
        assert_eq!(t.num_slots(), 6);
        assert_eq!(t.slot(1, 2).get(3, 4), 1234.0);
        assert_eq!(t.unflatten(5), (1, 2));
        assert_eq!(t.unflatten(0), (0, 0));
    }

    #[test]
    fn f16_round_trip_exact_for_representable() {
        let t = Tensor4F32::from_fn(1, 2, 3, 4, |_, h, r, c| (h + r + c) as f32 * 0.5);
        assert_eq!(t.to_f16().to_f32(), t);
    }

    #[test]
    fn size_bytes_counts_all_slots() {
        let t = Tensor4F16::zeros(2, 4, 8, 16);
        assert_eq!(t.size_bytes(), 2 * 4 * 8 * 16 * 2);
    }

    #[test]
    fn max_abs_diff_spans_slots() {
        let a = Tensor4F32::zeros(1, 2, 2, 2);
        let mut b = a.clone();
        b.slot_mut(0, 1).set(1, 1, 3.0);
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }
}
