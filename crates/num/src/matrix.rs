//! Dense row-major matrices over `f32` and `F16`.
//!
//! All attention kernels in this workspace operate on plain row-major
//! buffers: FP16 matrices model tensors resident in (simulated) HBM or
//! shared memory, and FP32 matrices model accumulator tiles. Keeping the
//! storage dead-simple makes the checksum algebra auditable and lets the
//! fault injector address any element.

use crate::f16::F16;
use core::fmt;

/// Row-major dense matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

/// FP16 matrix (operand precision of the tensor-core path).
pub type MatrixF16 = Matrix<F16>;
/// FP32 matrix (accumulator precision).
pub type MatrixF32 = Matrix<f32>;

impl<T: Copy + Default> Matrix<T> {
    /// Allocate a `rows × cols` matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a flat row-major vector; panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the flat storage vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {:?}",
            (self.rows, self.cols)
        );
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Copy a `row_block × col_block` sub-matrix starting at `(r0, c0)`,
    /// clamped to the matrix bounds (partial edge blocks are returned with
    /// their true, smaller shape).
    pub fn block(&self, r0: usize, c0: usize, row_block: usize, col_block: usize) -> Matrix<T> {
        let r1 = (r0 + row_block).min(self.rows);
        let c1 = (c0 + col_block).min(self.cols);
        assert!(r0 <= r1 && c0 <= c1, "block origin out of bounds");
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for r in r0..r1 {
            out.row_mut(r - r0).copy_from_slice(&self.row(r)[c0..c1]);
        }
        out
    }

    /// Write `block` back at origin `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix<T>) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols);
        for r in 0..block.rows {
            self.row_mut(r0 + r)[c0..c0 + block.cols].copy_from_slice(block.row(r));
        }
    }

    /// Stack matrices vertically (same column count).
    pub fn vstack(parts: &[&Matrix<T>]) -> Matrix<T> {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r = 0;
        for m in parts {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            out.set_block(r, 0, m);
            r += m.rows;
        }
        out
    }

    /// Stack matrices horizontally (same row count).
    pub fn hstack(parts: &[&Matrix<T>]) -> Matrix<T> {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut c = 0;
        for m in parts {
            assert_eq!(m.rows, rows, "hstack row mismatch");
            out.set_block(0, c, m);
            c += m.cols;
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Iterate over `(row, col, value)`.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }
}

impl MatrixF32 {
    /// Quantise every element through binary16 (models storing an FP32
    /// accumulator tile back to an FP16 tensor).
    pub fn to_f16(&self) -> MatrixF16 {
        MatrixF16 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| F16::from_f32(v)).collect(),
        }
    }

    /// Max absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &MatrixF32) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Max relative element-wise difference, with an absolute floor to avoid
    /// blowing up near zero.
    pub fn max_rel_diff(&self, other: &MatrixF32) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs() / a.abs().max(b.abs()).max(1e-6))
            .fold(0.0, f32::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl MatrixF16 {
    /// Widen every element to f32.
    pub fn to_f32(&self) -> MatrixF32 {
        MatrixF32 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v.to_f32()).collect(),
        }
    }

    /// Size in bytes when resident in (simulated) HBM.
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * 2) as u64
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            write!(f, "  ")?;
            for c in 0..8.min(self.cols) {
                write!(f, "{:?} ", self.data[r * self.cols + c])?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Iterator over block origins covering `total` in steps of `block`.
pub fn block_starts(total: usize, block: usize) -> impl Iterator<Item = usize> {
    debug_assert!(block > 0);
    (0..total).step_by(block)
}

/// Number of blocks of size `block` needed to cover `total` (ceil division).
#[inline]
pub fn num_blocks(total: usize, block: usize) -> usize {
    total.div_ceil(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_shape() {
        let m: MatrixF32 = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.len(), 15);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let m = MatrixF32::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn block_extract_and_write_back_round_trip() {
        let m = MatrixF32::from_fn(6, 8, |r, c| (r * 8 + c) as f32);
        let b = m.block(2, 4, 2, 3);
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b.get(0, 0), (2 * 8 + 4) as f32);
        let mut m2 = MatrixF32::zeros(6, 8);
        m2.set_block(2, 4, &b);
        assert_eq!(m2.get(3, 6), m.get(3, 6));
        assert_eq!(m2.get(0, 0), 0.0);
    }

    #[test]
    fn block_clamps_at_edges() {
        let m = MatrixF32::from_fn(5, 5, |r, c| (r + c) as f32);
        let b = m.block(4, 3, 4, 4);
        assert_eq!(b.shape(), (1, 2));
        assert_eq!(b.get(0, 1), 8.0);
    }

    #[test]
    fn transpose_involution() {
        let m = MatrixF32::from_fn(3, 7, |r, c| (r * 100 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(5, 2), m.get(2, 5));
    }

    #[test]
    fn f16_round_trip_matrix() {
        let m = MatrixF32::from_fn(4, 4, |r, c| 0.25 * (r as f32) - 0.5 * (c as f32));
        let q = m.to_f16().to_f32();
        // All values here are exactly representable in f16.
        assert_eq!(q, m);
    }

    #[test]
    fn diff_metrics() {
        let a = MatrixF32::from_fn(2, 2, |_, _| 1.0);
        let mut b = a.clone();
        b.set(1, 1, 1.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!((a.max_rel_diff(&b) - 0.5 / 1.5).abs() < 1e-6);
    }

    #[test]
    fn vstack_and_hstack() {
        let a = MatrixF32::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let b = MatrixF32::from_fn(1, 3, |_, c| 100.0 + c as f32);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.get(2, 1), 101.0);
        assert_eq!(v.get(1, 2), 5.0);
        let c = MatrixF32::from_fn(2, 2, |r, _| r as f32 * 10.0);
        let h = Matrix::hstack(&[&a, &c]);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.get(1, 4), 10.0);
        assert_eq!(h.get(1, 1), 4.0);
    }

    #[test]
    fn block_helpers() {
        assert_eq!(num_blocks(16, 4), 4);
        assert_eq!(num_blocks(17, 4), 5);
        let starts: Vec<_> = block_starts(10, 4).collect();
        assert_eq!(starts, vec![0, 4, 8]);
    }

    proptest! {
        #[test]
        fn prop_block_tiling_covers_matrix(
            rows in 1usize..40, cols in 1usize..40,
            br in 1usize..10, bc in 1usize..10,
        ) {
            let m = MatrixF32::from_fn(rows, cols, |r, c| (r * cols + c) as f32);
            let mut rebuilt = MatrixF32::zeros(rows, cols);
            for r0 in block_starts(rows, br) {
                for c0 in block_starts(cols, bc) {
                    let b = m.block(r0, c0, br, bc);
                    rebuilt.set_block(r0, c0, &b);
                }
            }
            prop_assert_eq!(rebuilt, m);
        }

        #[test]
        fn prop_transpose_preserves_elements(rows in 1usize..20, cols in 1usize..20) {
            let m = MatrixF32::from_fn(rows, cols, |r, c| (r * 31 + c * 7) as f32);
            let t = m.transpose();
            for r in 0..rows {
                for c in 0..cols {
                    prop_assert_eq!(m.get(r, c), t.get(c, r));
                }
            }
        }
    }
}
