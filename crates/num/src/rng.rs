//! Seeded random workload generation.
//!
//! Every experiment in the harness must be reproducible from a single u64
//! seed. This module centralises the RNG plumbing: matrices/tensors of
//! standard-normal or uniform values at a chosen scale, quantised through
//! binary16 so operands are exactly representable at the precision the
//! kernels consume.

use crate::f16::F16;
use crate::matrix::{MatrixF16, MatrixF32};
use crate::tensor::Tensor4F16;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derive an independent stream from a root seed and a stream index.
/// SplitMix64-style mixing so adjacent indices are uncorrelated.
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut z = root ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construct the workspace's standard RNG from a seed.
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Approximate standard-normal sample via Box–Muller.
pub fn sample_normal(rng: &mut SmallRng) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (core::f32::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Random normal matrix, scaled by `scale`, values quantised through f16.
pub fn normal_matrix_f16(rng: &mut SmallRng, rows: usize, cols: usize, scale: f32) -> MatrixF16 {
    MatrixF16::from_fn(rows, cols, |_, _| F16::from_f32(sample_normal(rng) * scale))
}

/// Random normal matrix in f32.
pub fn normal_matrix_f32(rng: &mut SmallRng, rows: usize, cols: usize, scale: f32) -> MatrixF32 {
    MatrixF32::from_fn(rows, cols, |_, _| sample_normal(rng) * scale)
}

/// Random uniform matrix on `[lo, hi)` quantised through f16.
pub fn uniform_matrix_f16(
    rng: &mut SmallRng,
    rows: usize,
    cols: usize,
    lo: f32,
    hi: f32,
) -> MatrixF16 {
    MatrixF16::from_fn(rows, cols, |_, _| F16::from_f32(rng.gen_range(lo..hi)))
}

/// Random normal attention tensor `batch × heads × seq × dim`; the usual
/// Q/K/V generator. `scale` defaults in callers to `1/sqrt(dim)`-ish values
/// so that QKᵀ scores stay in a realistic softmax range.
pub fn normal_tensor_f16(
    seed: u64,
    batch: usize,
    heads: usize,
    seq: usize,
    dim: usize,
    scale: f32,
) -> Tensor4F16 {
    let mut rng = rng_from_seed(seed);
    Tensor4F16::from_fn(batch, heads, seq, dim, |_, _, _, _| {
        F16::from_f32(sample_normal(&mut rng) * scale)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_changes_with_stream() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(derive_seed(42, 0), a);
    }

    #[test]
    fn normal_matrix_is_reproducible() {
        let mut r1 = rng_from_seed(7);
        let mut r2 = rng_from_seed(7);
        let a = normal_matrix_f16(&mut r1, 8, 8, 1.0);
        let b = normal_matrix_f16(&mut r2, 8, 8, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_samples_have_sane_moments() {
        let mut rng = rng_from_seed(123);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn tensor_generator_uses_requested_shape() {
        let t = normal_tensor_f16(1, 2, 3, 16, 8, 0.5);
        assert_eq!((t.batch(), t.heads(), t.seq(), t.dim()), (2, 3, 16, 8));
    }

    #[test]
    fn uniform_matrix_respects_bounds() {
        let mut rng = rng_from_seed(5);
        let m = uniform_matrix_f16(&mut rng, 16, 16, -2.0, 2.0);
        for (_, _, v) in m.iter_indexed() {
            let f = v.to_f32();
            assert!((-2.0..=2.0).contains(&f));
        }
    }
}
