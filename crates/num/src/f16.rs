//! Software IEEE 754 binary16 ("half precision", FP16).
//!
//! The FT-Transformer paper evaluates on A100 tensor cores whose
//! `mma.m16n8k16.f32.f16.f16.f32` instruction multiplies FP16 operands and
//! accumulates in FP32. This module provides a bit-exact binary16 built from
//! scratch (no `half` crate):
//!
//! * `from_f32` implements round-to-nearest-even including subnormal
//!   rounding and overflow-to-infinity, matching hardware conversion.
//! * arithmetic is performed by converting to `f32`, operating, and rounding
//!   back — the semantics of scalar FP16 CUDA math. GEMM kernels instead keep
//!   an `f32` accumulator and only round inputs, matching the tensor-core
//!   mixed-precision path.
//! * every value exposes its raw bits so the fault injector can flip an
//!   arbitrary bit of a result, the paper's soft-error model.
//!
//! The checksum-verification thresholds studied in Figs. 12 and 14 of the
//! paper exist precisely because of the rounding noise this type produces,
//! so the conversion must be exact — it is pinned down by exhaustive and
//! property-based tests at the bottom of this file.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// IEEE 754 binary16 value stored as its raw bit pattern.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct F16(pub u16);

/// Number of explicitly stored mantissa bits in binary16.
pub const MANTISSA_BITS: u32 = 10;
/// Exponent width in bits.
pub const EXPONENT_BITS: u32 = 5;
/// Exponent bias.
pub const EXPONENT_BIAS: i32 = 15;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, -65504.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// Canonical quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Machine epsilon (2^-10): distance from 1.0 to the next value.
    pub const EPSILON: F16 = F16(0x1400);

    /// Construct from raw bits.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even, the IEEE default mode
    /// used by CUDA's `__float2half_rn` and by tensor-core operand loads.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN. Preserve NaN-ness; quiet the payload into the top
            // mantissa bit like hardware converters do.
            return if mantissa == 0 {
                F16(sign | 0x7C00)
            } else {
                F16(sign | 0x7E00 | ((mantissa >> 13) as u16 & 0x03FF) | 0x0200)
            };
        }

        // Unbiased exponent of the f32 value.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflows binary16 → ±Inf (matches RN conversion).
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. Keep 10 mantissa bits, round the lower 13 to
            // nearest-even.
            let half_exp = (unbiased + EXPONENT_BIAS) as u16;
            let mut half_man = (mantissa >> 13) as u16;
            let round_bits = mantissa & 0x1FFF;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_man & 1) == 1) {
                half_man += 1;
            }
            // Mantissa carry may bump the exponent; 0x7C00 (Inf) is reached
            // correctly when rounding 65519.999… up.
            return F16((sign | (half_exp << MANTISSA_BITS)).wrapping_add(half_man));
        }
        if unbiased >= -25 {
            // Subnormal range: shift the implicit bit into the mantissa and
            // round. `shift` is how many extra bits we drop relative to the
            // normal case.
            let full_man = mantissa | 0x0080_0000; // implicit leading 1
            let shift = (-14 - unbiased) as u32; // 1..=11
            let drop = 13 + shift;
            let half_man = (full_man >> drop) as u16;
            let round_mask = 1u32 << (drop - 1);
            let rem_mask = (1u32 << drop) - 1;
            let rem = full_man & rem_mask;
            let rounded = if rem > round_mask || (rem == round_mask && (half_man & 1) == 1) {
                half_man + 1
            } else {
                half_man
            };
            // `rounded` may carry into the normal range (0x0400) — that bit
            // pattern is exactly the smallest normal, so plain addition works.
            return F16(sign | rounded);
        }
        // Too small: underflow to signed zero.
        F16(sign)
    }

    /// Exact widening conversion to `f32` (every binary16 value is
    /// representable in binary32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> MANTISSA_BITS) & 0x1F) as u32;
        let man = (self.0 & 0x03FF) as u32;
        let bits = match (exp, man) {
            (0, 0) => sign, // signed zero
            (0, _) => {
                // Subnormal: value = man * 2^-24 = 1.frac * 2^(msb-24).
                let msb = 31 - man.leading_zeros(); // index of highest set bit, 0..=9
                let exp32 = (msb + 103) << 23; // msb - 24 + 127
                let man32 = (man << (23 - msb)) & 0x007F_FFFF;
                sign | exp32 | man32
            }
            (0x1F, 0) => sign | 0x7F80_0000, // infinity
            (0x1F, _) => sign | 0x7FC0_0000 | (man << 13), // NaN (quiet)
            _ => sign | ((exp + 127 - 15) << 23) | (man << 13),
        };
        f32::from_bits(bits)
    }

    /// Convert from `f64` (via `f32`, double rounding is acceptable here as
    /// workloads are generated in f32 space).
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Widening conversion to `f64`.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if the value is +Inf or -Inf.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True if the value is neither Inf nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// True for subnormal values (exponent field 0, mantissa non-zero).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// True if the sign bit is set (including -0 and NaNs with sign).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & 0x7FFF)
    }

    /// Negation (flips the sign bit, also on NaN, like IEEE `negate`).
    #[inline]
    pub fn negate(self) -> Self {
        F16(self.0 ^ 0x8000)
    }

    /// Flip bit `bit` (0 = LSB of mantissa … 15 = sign). This is the
    /// primitive soft-error model of the paper: a single event upset in a
    /// compute unit manifests as a bit flip in a produced value.
    #[inline]
    #[must_use]
    pub fn flip_bit(self, bit: u32) -> Self {
        debug_assert!(bit < 16, "binary16 has 16 bits");
        F16(self.0 ^ (1u16 << bit))
    }

    /// Units-in-last-place distance between two finite values of the same
    /// sign; used by tests to bound rounding error.
    pub fn ulp_distance(self, other: F16) -> u32 {
        fn key(v: F16) -> i32 {
            let bits = v.0;
            if bits & 0x8000 != 0 {
                -((bits & 0x7FFF) as i32)
            } else {
                (bits & 0x7FFF) as i32
            }
        }
        (key(self) - key(other)).unsigned_abs()
    }

    /// IEEE-754 `totalOrder`-style comparison key for sorting buffers that
    /// may contain NaN (NaN sorts last).
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        let to_key = |v: &F16| {
            let bits = v.0 as i16;
            bits ^ (((bits >> 15) as u16) >> 1) as i16
        };
        to_key(self).cmp(&to_key(other))
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! impl_round_trip_op {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for F16 {
            #[inline]
            fn $assign_method(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_round_trip_op!(Add, add, AddAssign, add_assign, +);
impl_round_trip_op!(Sub, sub, SubAssign, sub_assign, -);
impl_round_trip_op!(Mul, mul, MulAssign, mul_assign, *);
impl_round_trip_op!(Div, div, DivAssign, div_assign, /);

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        self.negate()
    }
}

impl Sum for F16 {
    /// Sequential FP16 summation (rounds after every addition). GEMM kernels
    /// do *not* use this — they accumulate in f32 like tensor cores.
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |acc, x| acc + x)
    }
}

/// Round an `f32` through binary16 and back: the quantisation a value
/// suffers when it is stored to an FP16 register or HBM tensor.
#[inline]
pub fn quantize_f32(v: f32) -> f32 {
    F16::from_f32(v).to_f32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference conversion via the hardware f32→f16 semantics expressed
    /// through integer rounding on the scaled value. Used only in tests to
    /// cross-check `from_f32` on the normal range.
    fn reference_from_f32(v: f32) -> u16 {
        // Build the correctly rounded result by searching the two
        // neighbouring representable halves around v.
        if v.is_nan() {
            return 0x7E00
                | ((v.to_bits() >> 13) as u16 & 0x03FF)
                | 0x0200
                | ((v.to_bits() >> 16) as u16 & 0x8000);
        }
        let sign = if v.is_sign_negative() { 0x8000u16 } else { 0 };
        let a = v.abs();
        if a > 65519.99 {
            return sign | 0x7C00;
        }
        // Scan all finite magnitudes (0..=0x7BFF) for the closest; break
        // ties to even. 30k iterations per call — fine for tests.
        let mut best = 0u16;
        let mut best_err = f64::INFINITY;
        for bits in 0u16..=0x7BFF {
            let cand = F16(bits).to_f64();
            let err = (cand - a as f64).abs();
            if err < best_err || (err == best_err && bits & 1 == 0) {
                best_err = err;
                best = bits;
            }
        }
        sign | best
    }

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn zero_signs() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(-0.0).to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn round_trip_all_finite_bit_patterns() {
        // Every finite f16 must survive f16 -> f32 -> f16 exactly.
        for bits in 0u16..=u16::MAX {
            let h = F16(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn conversion_matches_exhaustive_reference_on_samples() {
        // Cross-check RNE rounding (incl. ties) against the brute-force
        // nearest-even reference on a deliberately nasty sample set.
        let samples = [
            0.0f32,
            1.0,
            1.5,
            0.1,
            0.2,
            0.3,
            1.000_976_6, // 1 + 2^-10 exactly representable
            1.000_488_3, // 1 + 2^-11: tie, rounds to even (1.0)
            1.001_464_8, // 1 + 3*2^-11: tie, rounds up to 1+2^-9... (even)
            65504.0,
            65519.0,        // just below the overflow threshold
            65520.0,        // exactly the RN overflow tie -> Inf
            5.960_464_5e-8, // min subnormal
            2.980_232_2e-8, // half of min subnormal: tie -> 0 (even)
            2.980_233e-8,   // just above the tie -> min subnormal
            6.097_555e-5,   // just below min normal
            6.103_515_6e-5, // min normal
            core::f32::consts::PI,
            -core::f32::consts::E,
            1e-7,
            42.42,
        ];
        for &v in &samples {
            for &s in &[v, -v] {
                assert_eq!(
                    F16::from_f32(s).to_bits(),
                    reference_from_f32(s),
                    "value {s:e}"
                );
            }
        }
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f32(1e9), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e9), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
        // Largest value that still rounds down to MAX.
        assert_eq!(F16::from_f32(65519.996), F16::MAX);
    }

    #[test]
    fn underflow_and_subnormals() {
        assert_eq!(F16::from_f32(1e-10), F16::ZERO);
        assert_eq!(F16::from_f32(-1e-10), F16::NEG_ZERO);
        let sub = F16::from_f32(1e-5);
        assert!(sub.is_subnormal());
        assert!((sub.to_f32() - 1e-5).abs() < 1e-7);
    }

    #[test]
    fn nan_propagates_through_conversion() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
        assert!((F16::NAN + F16::ONE).is_nan());
    }

    #[test]
    fn arithmetic_rounds_each_step() {
        // 1 + 2^-11 rounds back to 1 in f16 even though exact in f32.
        let tiny = F16::from_f32(2.0f32.powi(-11));
        assert_eq!(F16::ONE + tiny, F16::ONE);
        // But 1 + 2^-10 is representable.
        let eps = F16::EPSILON;
        assert!(F16::ONE + eps > F16::ONE);
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let v = F16::from_f32(1.5);
        for b in 0..16 {
            let flipped = v.flip_bit(b);
            assert_eq!((flipped.to_bits() ^ v.to_bits()).count_ones(), 1);
            assert_eq!(flipped.flip_bit(b), v, "double flip restores");
        }
    }

    #[test]
    fn flip_sign_bit_negates() {
        let v = F16::from_f32(3.0);
        assert_eq!(v.flip_bit(15).to_f32(), -3.0);
    }

    #[test]
    fn flip_exponent_msb_is_catastrophic() {
        // Flipping exponent bit 14 of 1.0 produces 2^16 -> Inf territory;
        // this is the classic "large deviation" soft error the paper targets.
        let v = F16::ONE;
        let corrupted = v.flip_bit(14);
        assert!(corrupted.to_f32() >= 32768.0);
    }

    #[test]
    fn ulp_distance_is_zero_for_equal_and_one_for_neighbors() {
        let one = F16::ONE;
        assert_eq!(one.ulp_distance(one), 0);
        assert_eq!(one.ulp_distance(F16(one.to_bits() + 1)), 1);
        // Across the sign boundary: -min_subnormal to +min_subnormal is 2.
        assert_eq!(
            F16::MIN_POSITIVE_SUBNORMAL
                .negate()
                .ulp_distance(F16::MIN_POSITIVE_SUBNORMAL),
            2
        );
    }

    #[test]
    fn total_cmp_sorts_nan_last_and_orders_values() {
        let mut vals = [
            F16::NAN,
            F16::ONE,
            F16::NEG_INFINITY,
            F16::ZERO,
            F16::NEG_ONE,
            F16::INFINITY,
        ];
        vals.sort_by(F16::total_cmp);
        assert_eq!(vals[0], F16::NEG_INFINITY);
        assert_eq!(vals[1], F16::NEG_ONE);
        assert_eq!(vals[2], F16::ZERO);
        assert_eq!(vals[3], F16::ONE);
        assert_eq!(vals[4], F16::INFINITY);
        assert!(vals[5].is_nan());
    }

    proptest! {
        #[test]
        fn prop_from_f32_error_within_half_ulp(v in -65000.0f32..65000.0) {
            let h = F16::from_f32(v);
            let back = h.to_f32();
            // Nearest rounding: |back - v| <= ulp/2 where ulp is the spacing
            // at back's magnitude (2^-10 relative for normals).
            let spacing = if back == 0.0 || F16::from_f32(v).is_subnormal() {
                2.0f32.powi(-24)
            } else {
                back.abs() * 2.0f32.powi(-10)
            };
            prop_assert!((back - v).abs() <= spacing * 0.5 + f32::EPSILON,
                "v={v} back={back} spacing={spacing}");
        }

        #[test]
        fn prop_conversion_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
        }

        #[test]
        fn prop_add_commutative(a in -200.0f32..200.0, b in -200.0f32..200.0) {
            let (x, y) = (F16::from_f32(a), F16::from_f32(b));
            prop_assert_eq!((x + y).to_bits(), (y + x).to_bits());
        }

        #[test]
        fn prop_quantize_idempotent(v in -65000.0f32..65000.0) {
            let q = quantize_f32(v);
            prop_assert_eq!(quantize_f32(q).to_bits(), q.to_bits());
        }

        #[test]
        fn prop_neg_is_involution(v in -65000.0f32..65000.0) {
            let h = F16::from_f32(v);
            prop_assert_eq!(h.negate().negate(), h);
        }
    }
}
