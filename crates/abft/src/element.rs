//! Traditional element-checksum ABFT (Huang & Abraham 1984), the scheme the
//! paper calls "element checksum" / "traditional ABFT".
//!
//! For `C = A·B`, A is encoded with two checksum *rows* appended —
//! `c1·A` (all-one weights) and `c2·A` (weights 1..=M) — and B with two
//! checksum *columns* `B·r1`, `B·r2` (Eq. 8–9 of the paper). After the
//! multiplication, each column of C must sum (plain and weighted) to the
//! corresponding checksum-row entries, and each row to the checksum-column
//! entries. A single corrupted element is located by the ratio of weighted
//! to unweighted discrepancy and corrected by adding the discrepancy back.
//!
//! The checksum *vectors themselves* are quantised through binary16 when
//! `quantize` is set — on tensor cores the encoded operands must be FP16 to
//! feed the MMA, and this quantisation is the dominant source of the
//! "intrinsic rounding error" false alarms the paper studies in Fig. 12.

use crate::thresholds::Check;
use ft_num::{quantize_f32, Matrix, MatrixF32};

/// Column-checksum vectors of an M×K matrix A (to be appended as rows).
#[derive(Clone, Debug, PartialEq)]
pub struct ColChecksums {
    /// Plain sums: `c1[k] = Σ_i A[i][k]`.
    pub c1: Vec<f32>,
    /// Weighted sums: `c2[k] = Σ_i (i+1)·A[i][k]`.
    pub c2: Vec<f32>,
}

/// Row-checksum vectors of a K×N matrix B (to be appended as columns).
#[derive(Clone, Debug, PartialEq)]
pub struct RowChecksums {
    /// Plain sums: `r1[k] = Σ_j B[k][j]`.
    pub r1: Vec<f32>,
    /// Weighted sums: `r2[k] = Σ_j (j+1)·B[k][j]`.
    pub r2: Vec<f32>,
}

/// Encode the column checksums of `a` (weights 1 and `i+1`).
pub fn encode_cols(a: &MatrixF32, quantize: bool) -> ColChecksums {
    let (m, k) = a.shape();
    let mut c1 = vec![0.0f32; k];
    let mut c2 = vec![0.0f32; k];
    for i in 0..m {
        let w = (i + 1) as f32;
        for (j, &v) in a.row(i).iter().enumerate() {
            c1[j] += v;
            c2[j] += w * v;
        }
    }
    if quantize {
        for v in c1.iter_mut().chain(c2.iter_mut()) {
            *v = quantize_f32(*v);
        }
    }
    ColChecksums { c1, c2 }
}

/// Encode the row checksums of `b` (weights 1 and `j+1`).
pub fn encode_rows(b: &MatrixF32, quantize: bool) -> RowChecksums {
    let (k, n) = b.shape();
    let mut r1 = vec![0.0f32; k];
    let mut r2 = vec![0.0f32; k];
    for i in 0..k {
        let mut s1 = 0.0f32;
        let mut s2 = 0.0f32;
        for (j, &v) in b.row(i).iter().enumerate() {
            s1 += v;
            s2 += (j + 1) as f32 * v;
        }
        r1[i] = if quantize { quantize_f32(s1) } else { s1 };
        r2[i] = if quantize { quantize_f32(s2) } else { s2 };
    }
    let _ = n;
    RowChecksums { r1, r2 }
}

/// A with its two checksum rows appended: `(M+2) × K`.
pub fn augment_rows(a: &MatrixF32, cs: &ColChecksums) -> MatrixF32 {
    let (m, k) = a.shape();
    Matrix::from_fn(m + 2, k, |i, j| {
        if i < m {
            a.get(i, j)
        } else if i == m {
            cs.c1[j]
        } else {
            cs.c2[j]
        }
    })
}

/// B with its two checksum columns appended: `K × (N+2)`.
pub fn augment_cols(b: &MatrixF32, cs: &RowChecksums) -> MatrixF32 {
    let (k, n) = b.shape();
    Matrix::from_fn(k, n + 2, |i, j| {
        if j < n {
            b.get(i, j)
        } else if j == n {
            cs.r1[i]
        } else {
            cs.r2[i]
        }
    })
}

/// Location and magnitude of one detected error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorLoc {
    /// Row of the corrupted element.
    pub row: usize,
    /// Column of the corrupted element.
    pub col: usize,
    /// Signed discrepancy (observed − true).
    pub delta: f32,
}

/// Result of a verification + correction pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AbftReport {
    /// Checksum mismatches observed.
    pub detections: usize,
    /// Errors located and corrected in place.
    pub corrected: Vec<ErrorLoc>,
    /// Mismatches that could not be attributed to a single element (located
    /// index out of range, or several errors aliasing one checksum lane).
    /// The caller must recompute the affected region.
    pub uncorrectable: usize,
}

impl AbftReport {
    /// True when no mismatch was observed.
    pub fn clean(&self) -> bool {
        self.detections == 0
    }
}

/// Verify `c` (M×N, *without* checksum rows/cols) against the checksum rows
/// of the augmented product, i.e. `full` must be the `(M+2)×N` top-left part
/// of `A_c · B`. Errors are located by column and corrected in place in `c`.
///
/// `tau` is the relative detection threshold of Fig. 12.
pub fn verify_correct_by_cols(
    c: &mut MatrixF32,
    check_row1: &[f32],
    check_row2: &[f32],
    chk: Check,
) -> AbftReport {
    let (m, n) = c.shape();
    assert_eq!(check_row1.len(), n);
    assert_eq!(check_row2.len(), n);
    let mut report = AbftReport::default();
    for j in 0..n {
        let mut s1 = 0.0f32;
        let mut s2 = 0.0f32;
        for i in 0..m {
            let v = c.get(i, j);
            s1 += v;
            s2 += (i + 1) as f32 * v;
        }
        let d1 = s1 - check_row1[j];
        if chk.detects(s1, check_row1[j]) {
            report.detections += 1;
            let d2 = s2 - check_row2[j];
            let pos = d2 / d1; // (i0+1) for a single error
            let i0 = pos.round() as i64 - 1;
            if i0 >= 0 && (i0 as usize) < m && pos.is_finite() {
                let i0 = i0 as usize;
                let fixed = c.get(i0, j) - d1;
                c.set(i0, j, fixed);
                report.corrected.push(ErrorLoc {
                    row: i0,
                    col: j,
                    delta: d1,
                });
            } else {
                report.uncorrectable += 1;
            }
        }
    }
    report
}

/// Row-direction dual of [`verify_correct_by_cols`]: verify each row of `c`
/// against checksum columns (`C·r1`, `C·r2`).
pub fn verify_correct_by_rows(
    c: &mut MatrixF32,
    check_col1: &[f32],
    check_col2: &[f32],
    chk: Check,
) -> AbftReport {
    let (m, n) = c.shape();
    assert_eq!(check_col1.len(), m);
    assert_eq!(check_col2.len(), m);
    let mut report = AbftReport::default();
    for i in 0..m {
        let mut s1 = 0.0f32;
        let mut s2 = 0.0f32;
        for (j, &v) in c.row(i).iter().enumerate() {
            s1 += v;
            s2 += (j + 1) as f32 * v;
        }
        let d1 = s1 - check_col1[i];
        if chk.detects(s1, check_col1[i]) {
            report.detections += 1;
            let d2 = s2 - check_col2[i];
            let pos = d2 / d1;
            let j0 = pos.round() as i64 - 1;
            if j0 >= 0 && (j0 as usize) < n && pos.is_finite() {
                let j0 = j0 as usize;
                let fixed = c.get(i, j0) - d1;
                c.set(i, j0, fixed);
                report.corrected.push(ErrorLoc {
                    row: i,
                    col: j0,
                    delta: d1,
                });
            } else {
                report.uncorrectable += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::rel_diff;
    use ft_num::rng::{normal_matrix_f16, rng_from_seed};
    use ft_sim::gemm_nt;

    /// Build S = Q·Kᵀ together with its exact checksum rows/cols computed
    /// from encoded operands (no quantisation → exact algebra).
    fn protected_product(
        q: &MatrixF32,
        k: &MatrixF32,
    ) -> (MatrixF32, Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let s = gemm_nt(q, k);
        // Column checksums of S come from row-encoding Q: c1·(Q Kᵀ).
        let qc = encode_cols(q, false);
        let q_aug = augment_rows(q, &qc);
        let full = gemm_nt(&q_aug, k);
        let m = q.rows();
        let row1: Vec<f32> = (0..k.rows()).map(|j| full.get(m, j)).collect();
        let row2: Vec<f32> = (0..k.rows()).map(|j| full.get(m + 1, j)).collect();
        // Row checksums of S come from row-encoding K (S·r = Q·(Kᵀ r)).
        let kc = encode_cols(k, false);
        let k_aug = augment_rows(k, &kc);
        let full_r = gemm_nt(q, &k_aug);
        let n = k.rows();
        let col1: Vec<f32> = (0..m).map(|i| full_r.get(i, n)).collect();
        let col2: Vec<f32> = (0..m).map(|i| full_r.get(i, n + 1)).collect();
        (s, row1, row2, col1, col2)
    }

    #[test]
    fn clean_product_verifies_clean() {
        let mut rng = rng_from_seed(10);
        let q = normal_matrix_f16(&mut rng, 16, 8, 1.0).to_f32();
        let k = normal_matrix_f16(&mut rng, 12, 8, 1.0).to_f32();
        let (mut s, r1, r2, c1, c2) = protected_product(&q, &k);
        let rep = verify_correct_by_cols(&mut s, &r1, &r2, Check::new(1e-3, 0.0));
        assert!(rep.clean(), "{rep:?}");
        let rep = verify_correct_by_rows(&mut s, &c1, &c2, Check::new(1e-3, 0.0));
        assert!(rep.clean(), "{rep:?}");
    }

    #[test]
    fn single_error_is_located_and_corrected_by_cols() {
        let mut rng = rng_from_seed(11);
        let q = normal_matrix_f16(&mut rng, 16, 8, 1.0).to_f32();
        let k = normal_matrix_f16(&mut rng, 12, 8, 1.0).to_f32();
        let (mut s, r1, r2, _, _) = protected_product(&q, &k);
        let truth = s.clone();
        // Corrupt one element noticeably.
        let bad = s.get(5, 3) + 7.5;
        s.set(5, 3, bad);
        let rep = verify_correct_by_cols(&mut s, &r1, &r2, Check::new(1e-3, 0.0));
        assert_eq!(rep.detections, 1);
        assert_eq!(rep.corrected.len(), 1);
        assert_eq!(rep.corrected[0].row, 5);
        assert_eq!(rep.corrected[0].col, 3);
        assert!((s.get(5, 3) - truth.get(5, 3)).abs() < 1e-3);
        assert_eq!(rep.uncorrectable, 0);
    }

    #[test]
    fn single_error_is_corrected_by_rows_direction_too() {
        let mut rng = rng_from_seed(12);
        let q = normal_matrix_f16(&mut rng, 8, 8, 1.0).to_f32();
        let k = normal_matrix_f16(&mut rng, 8, 8, 1.0).to_f32();
        let (mut s, _, _, c1, c2) = protected_product(&q, &k);
        let truth = s.clone();
        s.set(2, 6, s.get(2, 6) - 3.25);
        let rep = verify_correct_by_rows(&mut s, &c1, &c2, Check::new(1e-3, 0.0));
        assert_eq!(rep.corrected.len(), 1);
        assert_eq!((rep.corrected[0].row, rep.corrected[0].col), (2, 6));
        assert!((s.get(2, 6) - truth.get(2, 6)).abs() < 1e-3);
    }

    #[test]
    fn two_errors_in_one_column_are_detected_but_miscorrectable() {
        // The traditional scheme's known weakness: two errors aliasing one
        // checksum lane produce a bogus location. The report must still
        // detect the mismatch (it may "correct" the wrong element or flag
        // uncorrectable, but it must not stay silent).
        let mut rng = rng_from_seed(13);
        let q = normal_matrix_f16(&mut rng, 16, 8, 1.0).to_f32();
        let k = normal_matrix_f16(&mut rng, 12, 8, 1.0).to_f32();
        let (mut s, r1, r2, _, _) = protected_product(&q, &k);
        s.set(1, 4, s.get(1, 4) + 5.0);
        s.set(9, 4, s.get(9, 4) + 11.0);
        let rep = verify_correct_by_cols(&mut s, &r1, &r2, Check::new(1e-3, 0.0));
        assert_eq!(rep.detections, 1);
    }

    #[test]
    fn errors_in_distinct_columns_all_corrected() {
        let mut rng = rng_from_seed(14);
        let q = normal_matrix_f16(&mut rng, 16, 8, 1.0).to_f32();
        let k = normal_matrix_f16(&mut rng, 12, 8, 1.0).to_f32();
        let (mut s, r1, r2, _, _) = protected_product(&q, &k);
        let truth = s.clone();
        s.set(0, 0, s.get(0, 0) + 2.0);
        s.set(7, 5, s.get(7, 5) - 4.0);
        s.set(15, 11, s.get(15, 11) + 9.0);
        let rep = verify_correct_by_cols(&mut s, &r1, &r2, Check::new(1e-3, 0.0));
        assert_eq!(rep.corrected.len(), 3);
        assert!(s.max_abs_diff(&truth) < 1e-3);
    }

    #[test]
    fn quantized_checksums_stay_within_f16_noise() {
        let mut rng = rng_from_seed(15);
        let a = normal_matrix_f16(&mut rng, 32, 16, 1.0).to_f32();
        let exact = encode_cols(&a, false);
        let quant = encode_cols(&a, true);
        for (e, q) in exact.c1.iter().zip(&quant.c1) {
            assert!(rel_diff(*e, *q) < 1e-3, "{e} vs {q}");
        }
    }

    #[test]
    fn augment_shapes() {
        let a = MatrixF32::from_fn(4, 6, |i, j| (i * 6 + j) as f32);
        let cs = encode_cols(&a, false);
        let aug = augment_rows(&a, &cs);
        assert_eq!(aug.shape(), (6, 6));
        assert_eq!(aug.get(4, 0), 0.0 + 6.0 + 12.0 + 18.0);
        let b = MatrixF32::from_fn(3, 4, |i, j| (i + j) as f32);
        let rs = encode_rows(&b, false);
        let augb = augment_cols(&b, &rs);
        assert_eq!(augb.shape(), (3, 6));
        assert_eq!(augb.get(0, 4), 0.0 + 1.0 + 2.0 + 3.0);
    }

    #[test]
    fn checksum_linearity_through_gemm() {
        // (c1·Q)·Kᵀ must equal c1·(Q·Kᵀ): encoding commutes with GEMM.
        let mut rng = rng_from_seed(16);
        let q = normal_matrix_f16(&mut rng, 8, 16, 1.0).to_f32();
        let k = normal_matrix_f16(&mut rng, 8, 16, 1.0).to_f32();
        let (s, r1, _, _, _) = protected_product(&q, &k);
        #[allow(clippy::needless_range_loop)]
        for j in 0..s.cols() {
            let direct: f32 = (0..s.rows()).map(|i| s.get(i, j)).sum();
            assert!(
                (direct - r1[j]).abs() <= 1e-3 * direct.abs().max(1.0),
                "col {j}: {direct} vs {}",
                r1[j]
            );
        }
    }
}
