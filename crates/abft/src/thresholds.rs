//! Verification thresholds and the relative-difference detection criterion.
//!
//! Half-precision tensor-core arithmetic makes checksum results diverge from
//! direct sums even error-free (paper §4.2: "intrinsic rounding errors"), so
//! a detection fires only when the discrepancy exceeds a threshold. The
//! paper sweeps *relative* thresholds and reports optima of ≈ 0.48 for
//! strided ABFT over GEMM results (Fig. 12) and ≈ 7e-6 for the SNVR product
//! check (Fig. 14); the sweep harness in `ft-bench` reproduces those curves
//! on this implementation's noise profile (whose optima differ — checksum
//! operands here are quantised through our software binary16; see
//! EXPERIMENTS.md).
//!
//! Each check combines a relative threshold with an absolute floor: the
//! floor suppresses the degenerate case where both the checksum and the
//! direct sum are near zero (cancellation) and their *ratio* is dominated by
//! rounding noise.

/// Relative difference `|a − b| / max(|a|, |b|, floor)`. The tiny floor only
/// guards the 0/0 case; comparisons of genuinely near-zero sums are the
/// false-alarm source the threshold sweep studies.
#[inline]
pub fn rel_diff(a: f32, b: f32) -> f32 {
    let denom = a.abs().max(b.abs()).max(1e-12);
    (a - b).abs() / denom
}

/// One detection criterion: fire when `|a − b| > abs_floor` **and**
/// `rel_diff(a, b) > rel`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Check {
    /// Relative threshold (the x-axis of Figs. 12/14).
    pub rel: f32,
    /// Absolute floor below which discrepancies are attributed to rounding.
    pub abs_floor: f32,
}

impl Check {
    /// Construct a check.
    pub const fn new(rel: f32, abs_floor: f32) -> Self {
        Check { rel, abs_floor }
    }

    /// Does the pair (observed, expected) constitute a detection?
    #[inline]
    pub fn detects(&self, observed: f32, expected: f32) -> bool {
        if !observed.is_finite() || !expected.is_finite() {
            return true;
        }
        (observed - expected).abs() > self.abs_floor && rel_diff(observed, expected) > self.rel
    }
}

/// Detection thresholds for the hybrid scheme's three check families.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Thresholds {
    /// ABFT checksum check on GEMM outputs (paper optimum ≈ 0.48).
    pub gemm: Check,
    /// SNVR product check on exponentials, ε₁ (paper optimum ≈ 7e-6; ours
    /// is larger because checksum operands are FP16-quantised).
    pub exp_product: Check,
    /// Final output checksum check, ε₂ (covers GEMM II + rescale +
    /// normalise).
    pub output: Check,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            gemm: Check::new(0.48, 1e-3),
            exp_product: Check::new(0.02, 0.0),
            output: Check::new(0.05, 5e-3),
        }
    }
}

impl Thresholds {
    /// Calibrated defaults for this implementation (same as `Default`).
    pub fn calibrated() -> Self {
        Self::default()
    }

    /// The paper's reported optima, for side-by-side sweeps.
    pub fn paper() -> Self {
        Thresholds {
            gemm: Check::new(0.48, 0.0),
            exp_product: Check::new(7e-6, 0.0),
            output: Check::new(0.05, 0.0),
        }
    }

    /// Tight thresholds for exact-algebra unit tests (checksums not
    /// quantised, so rounding noise is f32-level).
    pub fn strict() -> Self {
        Thresholds {
            gemm: Check::new(1e-3, 1e-5),
            exp_product: Check::new(1e-4, 0.0),
            output: Check::new(1e-3, 1e-5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_diff_basics() {
        assert_eq!(rel_diff(1.0, 1.0), 0.0);
        assert!((rel_diff(1.0, 2.0) - 0.5).abs() < 1e-7);
        assert!((rel_diff(-1.0, 1.0) - 2.0).abs() < 1e-7);
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
    }

    #[test]
    fn rel_diff_symmetric() {
        for (a, b) in [(3.0f32, 7.0f32), (-2.0, 0.5), (1e-9, 2e-9)] {
            assert_eq!(rel_diff(a, b), rel_diff(b, a));
        }
    }

    #[test]
    fn near_zero_pair_with_noise_reports_large_relative() {
        // This is the false-alarm mechanism: both the checksum and the sum
        // are ≈ 0 with independent rounding noise → ratio O(1).
        let r = rel_diff(1e-4, -1e-4);
        assert!(r >= 1.0);
    }

    #[test]
    fn abs_floor_suppresses_cancellation_false_alarms() {
        let c = Check::new(0.1, 1e-3);
        // Huge relative, tiny absolute: rounding noise — not a detection.
        assert!(!c.detects(1e-4, -1e-4));
        // Large absolute and relative: detection.
        assert!(c.detects(10.0, 5.0));
        // Large absolute, small relative: not a detection.
        assert!(!c.detects(100.0, 100.5));
    }

    #[test]
    fn non_finite_is_always_detected() {
        let c = Check::new(0.5, 1.0);
        assert!(c.detects(f32::NAN, 1.0));
        assert!(c.detects(f32::INFINITY, 1.0));
        assert!(c.detects(1.0, f32::NEG_INFINITY));
    }

    #[test]
    fn paper_thresholds_expose_reported_optima() {
        let t = Thresholds::paper();
        assert!((t.gemm.rel - 0.48).abs() < 1e-6);
        assert!((t.exp_product.rel - 7e-6).abs() < 1e-12);
    }
}
