//! Strided tensor-checksum ABFT (paper §3.3, Eqs. 12–15).
//!
//! The 64×16×16 TiledMMA layout places output elements whose column indices
//! differ by 8 on the *same thread*, so a checksum that sums elements at
//! stride 8 can be encoded, carried, and verified entirely within one
//! thread's registers — no shuffles, no shared-memory traffic. This module
//! implements that checksum algebra on matrices:
//!
//! * for GEMM I (`S = Q·Kᵀ`): K's **rows** are folded in groups of stride
//!   `s` — `K_c1[t] = Σ_l K[t + s·l]`, `K_c2[t] = Σ_l (l+1)·K[t + s·l]` —
//!   giving an `s × d` pair appended (transposed) as extra columns of Kᵀ.
//!   After the GEMM, `S_c1[i][t] = Σ_l S[i][t + s·l]` must hold.
//! * for GEMM II (`O = P·V`): V's **columns** are folded the same way,
//!   giving `B × s` checksum operands and the invariant
//!   `O_c1[i][t] = Σ_l O[i][t + s·l]`.
//!
//! Because the checksum is `s` elements wide, up to `s` errors per row are
//! independently correctable as long as their columns fall in distinct
//! residue classes mod `s` — the paper's "up to a factor of 8" multi-error
//! claim, pinned by tests below.
//!
//! Note on the locate ratio: with 0-based group index `l` and second-weight
//! `l+1`, a single error in group `l₀` yields `Δ2/Δ1 = l₀ + 1`, so the
//! corrupted column is `t + s·(round(Δ2/Δ1) − 1)`. (The paper's Eq. in
//! §3.3 omits the −1 under its own weight definition; see DESIGN.md §4.)

use crate::element::{AbftReport, ErrorLoc};
use crate::thresholds::Check;
use ft_num::{quantize_f32, Matrix, MatrixF32};

/// Stride aligned to the MMA atom N dimension (8 for m16n8k16).
pub const DEFAULT_STRIDE: usize = 8;

/// A pair of strided checksum operands plus their geometry.
#[derive(Clone, Debug, PartialEq)]
pub struct StridedChecksums {
    /// Plain-weight checksum operand.
    pub w1: MatrixF32,
    /// Group-weighted checksum operand (weights `l+1`).
    pub w2: MatrixF32,
    /// Stride `s` (checksum width).
    pub stride: usize,
    /// Number of groups folded (`⌈extent/s⌉`).
    pub groups: usize,
}

/// Fold the **rows** of `k` (a `B × d` block) in stride-`s` groups:
/// output operands are `s × d`. Used for GEMM I (QKᵀ).
///
/// `quantize` rounds the encoded operands through binary16, modelling their
/// storage as FP16 tensor-core operands.
pub fn encode_rows_strided(k: &MatrixF32, s: usize, quantize: bool) -> StridedChecksums {
    let (b, d) = k.shape();
    assert!(s > 0 && s <= b, "stride {s} out of range for {b} rows");
    let groups = b.div_ceil(s);
    let mut w1 = Matrix::zeros(s, d);
    let mut w2 = Matrix::zeros(s, d);
    for t in 0..s {
        for l in 0..groups {
            let row = t + s * l;
            if row >= b {
                break;
            }
            let wl = (l + 1) as f32;
            for c in 0..d {
                let v = k.get(row, c);
                w1.set(t, c, w1.get(t, c) + v);
                w2.set(t, c, w2.get(t, c) + wl * v);
            }
        }
    }
    if quantize {
        for v in w1.as_mut_slice().iter_mut().chain(w2.as_mut_slice()) {
            *v = quantize_f32(*v);
        }
    }
    StridedChecksums {
        w1,
        w2,
        stride: s,
        groups,
    }
}

/// Fold the **columns** of `v` (a `B × d` block) in stride-`s` groups:
/// output operands are `B × s`. Used for GEMM II (PV).
pub fn encode_cols_strided(v: &MatrixF32, s: usize, quantize: bool) -> StridedChecksums {
    let (b, d) = v.shape();
    assert!(s > 0 && s <= d, "stride {s} out of range for {d} cols");
    let groups = d.div_ceil(s);
    let mut w1 = Matrix::zeros(b, s);
    let mut w2 = Matrix::zeros(b, s);
    for r in 0..b {
        for t in 0..s {
            let mut s1 = 0.0f32;
            let mut s2 = 0.0f32;
            for l in 0..groups {
                let col = t + s * l;
                if col >= d {
                    break;
                }
                let x = v.get(r, col);
                s1 += x;
                s2 += (l + 1) as f32 * x;
            }
            if quantize {
                s1 = quantize_f32(s1);
                s2 = quantize_f32(s2);
            }
            w1.set(r, t, s1);
            w2.set(r, t, s2);
        }
    }
    StridedChecksums {
        w1,
        w2,
        stride: s,
        groups,
    }
}

/// Strided column sums of `c`: `out[i][t] = Σ_l c[i][t + s·l]` — the
/// "intra-thread addition" a lane performs over its own registers.
pub fn strided_sums(c: &MatrixF32, s: usize) -> MatrixF32 {
    let (m, n) = c.shape();
    let mut out = Matrix::zeros(m, s);
    for i in 0..m {
        let row = c.row(i);
        let orow = out.row_mut(i);
        for (j, &v) in row.iter().enumerate() {
            orow[j % s] += v;
        }
    }
    let _ = n;
    out
}

/// Weighted strided sums: `out[i][t] = Σ_l (l+1)·c[i][t + s·l]`.
pub fn strided_sums_weighted(c: &MatrixF32, s: usize) -> MatrixF32 {
    let (m, _n) = c.shape();
    let mut out = Matrix::zeros(m, s);
    for i in 0..m {
        let row = c.row(i);
        let orow = out.row_mut(i);
        for (j, &v) in row.iter().enumerate() {
            orow[j % s] += (j / s + 1) as f32 * v;
        }
    }
    out
}

/// One strided-checksum mismatch: row `i`, residue class `t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StridedMismatch {
    /// Output row.
    pub i: usize,
    /// Residue class (column of the checksum).
    pub t: usize,
    /// Plain discrepancy (observed strided sum − checksum).
    pub delta1: f32,
    /// Weighted discrepancy.
    pub delta2: f32,
}

/// Compare the strided sums of `c` against checksum results `check1` /
/// `check2` (each `rows × s`) and report mismatches above `tau`.
pub fn verify_strided(
    c: &MatrixF32,
    check1: &MatrixF32,
    check2: &MatrixF32,
    s: usize,
    chk: Check,
) -> Vec<StridedMismatch> {
    let sums1 = strided_sums(c, s);
    let sums2 = strided_sums_weighted(c, s);
    assert_eq!(check1.shape(), sums1.shape(), "checksum shape mismatch");
    assert_eq!(check2.shape(), sums2.shape(), "checksum shape mismatch");
    let mut out = Vec::new();
    for i in 0..sums1.rows() {
        for t in 0..s {
            let got = sums1.get(i, t);
            let want = check1.get(i, t);
            if chk.detects(got, want) {
                out.push(StridedMismatch {
                    i,
                    t,
                    delta1: got - want,
                    delta2: sums2.get(i, t) - check2.get(i, t),
                });
            }
        }
    }
    out
}

/// Locate each mismatch's corrupted element via the weighted/plain ratio and
/// correct it in place. Mismatches whose ratio does not identify a valid
/// group are counted `uncorrectable` (the caller recomputes).
pub fn correct_strided(c: &mut MatrixF32, mismatches: &[StridedMismatch], s: usize) -> AbftReport {
    let n = c.cols();
    let mut report = AbftReport {
        detections: mismatches.len(),
        ..Default::default()
    };
    for m in mismatches {
        let ratio = m.delta2 / m.delta1;
        // Reject: non-finite ratio, ratio far from an integer (multi-error
        // aliasing), or out-of-range column. A wildly corrupted ratio can
        // saturate the float→int cast, so the column is computed with
        // checked arithmetic rather than trusted to stay in range.
        let l0 = ratio.round() as i64 - 1;
        let col = (s as i64)
            .checked_mul(l0)
            .and_then(|x| x.checked_add(m.t as i64));
        let plausible = ratio.is_finite()
            && (ratio - ratio.round()).abs() < 0.25
            && l0 >= 0
            && col.is_some_and(|c| (0..n as i64).contains(&c));
        if plausible {
            let col = col.expect("checked above") as usize;
            let fixed = c.get(m.i, col) - m.delta1;
            c.set(m.i, col, fixed);
            report.corrected.push(ErrorLoc {
                row: m.i,
                col,
                delta: m.delta1,
            });
        } else {
            report.uncorrectable += 1;
        }
    }
    report
}

/// End-to-end helper: verify `c` against checksum results and correct.
pub fn verify_and_correct_strided(
    c: &mut MatrixF32,
    check1: &MatrixF32,
    check2: &MatrixF32,
    s: usize,
    chk: Check,
) -> AbftReport {
    let mismatches = verify_strided(c, check1, check2, s, chk);
    correct_strided(c, &mismatches, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_num::rng::{normal_matrix_f16, rng_from_seed};
    use ft_sim::{gemm_nn, gemm_nt};
    use proptest::prelude::*;

    /// S = Q·Kᵀ with exact strided checksum results S_c1, S_c2 computed the
    /// way the kernel does: GEMM against encoded operands.
    fn protected_qkt(q: &MatrixF32, k: &MatrixF32, s: usize) -> (MatrixF32, MatrixF32, MatrixF32) {
        let cs = encode_rows_strided(k, s, false);
        let s_mat = gemm_nt(q, k);
        let s_c1 = gemm_nt(q, &cs.w1);
        let s_c2 = gemm_nt(q, &cs.w2);
        (s_mat, s_c1, s_c2)
    }

    #[test]
    fn checksum_invariant_holds_error_free() {
        // Eq. 14: S_c1[i][t] == Σ_l S[i][t+s·l] up to rounding.
        let mut rng = rng_from_seed(20);
        let q = normal_matrix_f16(&mut rng, 16, 32, 0.5).to_f32();
        let k = normal_matrix_f16(&mut rng, 24, 32, 0.5).to_f32();
        let (s_mat, s_c1, s_c2) = protected_qkt(&q, &k, 8);
        let sums1 = strided_sums(&s_mat, 8);
        let sums2 = strided_sums_weighted(&s_mat, 8);
        assert!(
            sums1.max_abs_diff(&s_c1) < 1e-3,
            "{}",
            sums1.max_abs_diff(&s_c1)
        );
        assert!(sums2.max_abs_diff(&s_c2) < 1e-2);
    }

    #[test]
    fn verify_clean_reports_nothing() {
        let mut rng = rng_from_seed(21);
        let q = normal_matrix_f16(&mut rng, 16, 16, 0.5).to_f32();
        let k = normal_matrix_f16(&mut rng, 16, 16, 0.5).to_f32();
        let (s_mat, c1, c2) = protected_qkt(&q, &k, 8);
        assert!(verify_strided(&s_mat, &c1, &c2, 8, Check::new(1e-2, 0.0)).is_empty());
    }

    #[test]
    fn single_error_located_in_correct_group() {
        let mut rng = rng_from_seed(22);
        let q = normal_matrix_f16(&mut rng, 16, 16, 0.5).to_f32();
        let k = normal_matrix_f16(&mut rng, 32, 16, 0.5).to_f32();
        let (mut s_mat, c1, c2) = protected_qkt(&q, &k, 8);
        let truth = s_mat.clone();
        // Column 19 = residue 3, group 2 (l0 = 2, ratio 3).
        s_mat.set(6, 19, s_mat.get(6, 19) + 4.0);
        let rep = verify_and_correct_strided(&mut s_mat, &c1, &c2, 8, Check::new(1e-2, 0.0));
        assert_eq!(rep.detections, 1);
        assert_eq!(rep.corrected.len(), 1);
        assert_eq!((rep.corrected[0].row, rep.corrected[0].col), (6, 19));
        assert!(s_mat.max_abs_diff(&truth) < 1e-2);
    }

    #[test]
    fn eight_errors_in_one_row_distinct_residues_all_corrected() {
        // The paper's multi-error claim: stride-8 checksums fix up to 8
        // errors per row when residues differ.
        let mut rng = rng_from_seed(23);
        let q = normal_matrix_f16(&mut rng, 16, 16, 0.5).to_f32();
        let k = normal_matrix_f16(&mut rng, 32, 16, 0.5).to_f32();
        let (mut s_mat, c1, c2) = protected_qkt(&q, &k, 8);
        let truth = s_mat.clone();
        for t in 0..8 {
            let col = t + 8 * (t % 4); // residues 0..8, varying groups
            s_mat.set(9, col, s_mat.get(9, col) + 3.0 + t as f32);
        }
        let rep = verify_and_correct_strided(&mut s_mat, &c1, &c2, 8, Check::new(1e-2, 0.0));
        assert_eq!(rep.corrected.len(), 8);
        assert_eq!(rep.uncorrectable, 0);
        assert!(s_mat.max_abs_diff(&truth) < 1e-2);
    }

    #[test]
    fn two_errors_same_residue_flagged_not_silently_miscorrected() {
        let mut rng = rng_from_seed(24);
        let q = normal_matrix_f16(&mut rng, 16, 16, 0.5).to_f32();
        let k = normal_matrix_f16(&mut rng, 32, 16, 0.5).to_f32();
        let (mut s_mat, c1, c2) = protected_qkt(&q, &k, 8);
        // Columns 3 and 11: same residue 3, groups 0 and 1. Equal-magnitude
        // injections give ratio (1·e + 2·e)/(2e) = 1.5 — rejected as
        // implausible, counted uncorrectable.
        s_mat.set(2, 3, s_mat.get(2, 3) + 5.0);
        s_mat.set(2, 11, s_mat.get(2, 11) + 5.0);
        let rep = verify_and_correct_strided(&mut s_mat, &c1, &c2, 8, Check::new(1e-2, 0.0));
        assert_eq!(rep.detections, 1);
        assert_eq!(rep.uncorrectable, 1);
        assert!(rep.corrected.is_empty());
    }

    #[test]
    fn gemm_ii_column_checksums_hold() {
        // O = P·V with V's columns folded: O_c1[i][t] = Σ_l O[i][t+s·l].
        let mut rng = rng_from_seed(25);
        let p = normal_matrix_f16(&mut rng, 16, 24, 0.3).to_f32();
        let v = normal_matrix_f16(&mut rng, 24, 32, 0.5).to_f32();
        let cs = encode_cols_strided(&v, 8, false);
        let o = gemm_nn(&p, &v);
        let o_c1 = gemm_nn(&p, &cs.w1);
        let o_c2 = gemm_nn(&p, &cs.w2);
        assert!(strided_sums(&o, 8).max_abs_diff(&o_c1) < 1e-3);
        assert!(strided_sums_weighted(&o, 8).max_abs_diff(&o_c2) < 1e-2);
    }

    #[test]
    fn stride_one_degenerates_to_element_checksum() {
        // s = 1 folds everything into a single column — the traditional
        // single-wide checksum is the degenerate case of the tensor design.
        let mut rng = rng_from_seed(26);
        let k = normal_matrix_f16(&mut rng, 16, 8, 1.0).to_f32();
        let cs = encode_rows_strided(&k, 1, false);
        assert_eq!(cs.w1.shape(), (1, 8));
        assert_eq!(cs.groups, 16);
        for c in 0..8 {
            let direct: f32 = (0..16).map(|r| k.get(r, c)).sum();
            assert!((cs.w1.get(0, c) - direct).abs() < 1e-4);
        }
    }

    #[test]
    fn partial_last_group_is_handled() {
        // 20 rows with stride 8 → groups = 3, last group ragged.
        let k = MatrixF32::from_fn(20, 4, |r, c| (r * 4 + c) as f32);
        let cs = encode_rows_strided(&k, 8, false);
        assert_eq!(cs.groups, 3);
        // Residue 4: rows 4, 12 only (20 exceeds).
        let expect: f32 = k.get(4, 0) + k.get(12, 0);
        assert_eq!(cs.w1.get(4, 0), expect);
        // Residue 3: rows 3, 11, 19.
        let expect3: f32 = k.get(3, 1) + k.get(11, 1) + k.get(19, 1);
        assert_eq!(cs.w1.get(3, 1), expect3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_single_error_any_position_corrected(
            row in 0usize..16,
            col in 0usize..32,
            magnitude in 1.0f32..50.0,
            sign in prop::bool::ANY,
        ) {
            let mut rng = rng_from_seed(27);
            let q = normal_matrix_f16(&mut rng, 16, 16, 0.5).to_f32();
            let k = normal_matrix_f16(&mut rng, 32, 16, 0.5).to_f32();
            let (mut s_mat, c1, c2) = protected_qkt(&q, &k, 8);
            let truth = s_mat.clone();
            let e = if sign { magnitude } else { -magnitude };
            s_mat.set(row, col, s_mat.get(row, col) + e);
            let rep = verify_and_correct_strided(&mut s_mat, &c1, &c2, 8, Check::new(1e-2, 0.0));
            prop_assert_eq!(rep.corrected.len(), 1);
            prop_assert_eq!((rep.corrected[0].row, rep.corrected[0].col), (row, col));
            prop_assert!(s_mat.max_abs_diff(&truth) < 2e-2);
        }

        #[test]
        fn prop_strided_sums_partition_row_sum(rows in 1usize..12, cols in 1usize..40, s in 1usize..9) {
            let m = MatrixF32::from_fn(rows, cols, |r, c| ((r * 13 + c * 7) % 17) as f32 - 8.0);
            let s = s.min(cols);
            let folded = strided_sums(&m, s);
            for r in 0..rows {
                let total: f32 = m.row(r).iter().sum();
                let folded_total: f32 = folded.row(r).iter().sum();
                prop_assert!((total - folded_total).abs() < 1e-3);
            }
        }
    }
}
