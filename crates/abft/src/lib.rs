//! # ft-abft — algorithm-based fault tolerance checksum algebra
//!
//! The two checksum families of the FT-Transformer paper, plus their
//! transport through the fused softmax pipeline:
//!
//! * [`element`] — traditional Huang–Abraham element checksums (the
//!   decoupled baseline's protection, and the "traditional ABFT"
//!   comparator of Fig. 11);
//! * [`strided`] — the paper's tensor checksum: stride-8 folds aligned to
//!   the MMA thread-data layout, communication-free to encode/verify, and
//!   able to correct up to 8 errors per row (§3.3);
//! * [`propagate`] — checksum reuse across max-subtraction, exponential,
//!   rescale and normalisation steps (the unified verification of §3.4);
//! * [`thresholds`] — the relative-difference detection criterion and the
//!   paper's threshold optima.

#![warn(missing_docs)]

pub mod element;
pub mod propagate;
pub mod strided;
pub mod thresholds;

pub use element::{AbftReport, ColChecksums, ErrorLoc, RowChecksums};
pub use strided::{StridedChecksums, StridedMismatch, DEFAULT_STRIDE};
pub use thresholds::{rel_diff, Thresholds};
