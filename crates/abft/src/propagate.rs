//! Checksum transport through the non-GEMM steps of Algorithm 1.
//!
//! The unified-verification optimisation (paper §3.4) reuses one tensor
//! checksum across a chain of operations instead of re-encoding after each:
//!
//! * **max subtraction** — `S_c1[i][t]` is a sum of `count_t` score values,
//!   so subtracting the row max `m_i` from every score subtracts
//!   `count_t · m_i` from the checksum (Algorithm 1 line 12);
//! * **exponentiation** — `exp` turns the additive invariant into a
//!   multiplicative one: `exp(S_c1[i][t] − count_t·m_i) = ∏_l P[i][t+s·l]`
//!   (the product check of line 13);
//! * **rescale / normalise** — both are row-wise scalar multiplies, which
//!   commute with strided column sums, so the same transformation applied to
//!   `O` and `O_c1` preserves the invariant until the single final check
//!   (lines 19–20, 25–28).

// Index-based loops are kept deliberately: they mirror the thread/lane
// structure of the GPU kernels this module models.
#![allow(clippy::needless_range_loop)]

use crate::strided::StridedMismatch;
use crate::thresholds::Check;
use ft_num::{Matrix, MatrixF32};

/// Number of elements folded into residue class `t` when an extent of
/// `extent` columns is folded at stride `s`:
/// `count[t] = |{l : t + s·l < extent}|`.
pub fn residue_counts(extent: usize, s: usize) -> Vec<usize> {
    (0..s)
        .map(|t| {
            if t < extent {
                (extent - t).div_ceil(s)
            } else {
                0
            }
        })
        .collect()
}

/// Apply the max-subtraction transport: `check[i][t] −= count_t · m_i`.
pub fn transport_subtract_max(check: &mut MatrixF32, row_max: &[f32], counts: &[usize]) {
    assert_eq!(check.rows(), row_max.len());
    assert_eq!(check.cols(), counts.len());
    for i in 0..check.rows() {
        let m = row_max[i];
        let row = check.row_mut(i);
        for (t, v) in row.iter_mut().enumerate() {
            *v -= counts[t] as f32 * m;
        }
    }
}

/// Element-wise exponential of a checksum matrix (the transported checksum
/// enters the product domain).
pub fn transport_exp(check: &MatrixF32) -> MatrixF32 {
    Matrix::from_fn(check.rows(), check.cols(), |i, t| check.get(i, t).exp())
}

/// Strided *products* of `p`: `out[i][t] = ∏_l p[i][t + s·l]`.
pub fn strided_products(p: &MatrixF32, s: usize) -> MatrixF32 {
    let (m, _) = p.shape();
    let mut out = Matrix::from_fn(m, s, |_, _| 1.0f32);
    for i in 0..m {
        let row = p.row(i);
        let orow = out.row_mut(i);
        for (j, &v) in row.iter().enumerate() {
            orow[j % s] *= v;
        }
    }
    out
}

/// Compare strided products of `p` against the transported checksum
/// `p_check` and report residue classes whose product diverges beyond `tau`
/// (the ε₁ check of Algorithm 1 line 13).
///
/// Product-domain checks *detect* but cannot linearly *locate* an erroneous
/// exponential — the paper corrects EXP faults by recomputation, so the
/// mismatch carries the residue class for targeted recompute.
pub fn verify_products(
    p: &MatrixF32,
    p_check: &MatrixF32,
    s: usize,
    chk: Check,
) -> Vec<StridedMismatch> {
    let prods = strided_products(p, s);
    assert_eq!(prods.shape(), p_check.shape());
    let mut out = Vec::new();
    for i in 0..prods.rows() {
        for t in 0..s {
            let got = prods.get(i, t);
            let want = p_check.get(i, t);
            if chk.detects(got, want) {
                out.push(StridedMismatch {
                    i,
                    t,
                    delta1: got - want,
                    delta2: if want != 0.0 {
                        got / want
                    } else {
                        f32::INFINITY
                    },
                });
            }
        }
    }
    out
}

/// Row-wise rescale: `mat[i][*] *= factors[i]`. Applied identically to `O`
/// and `O_c1` so the strided-sum invariant survives the online-softmax
/// rescale (Algorithm 1 lines 18–20).
pub fn rescale_rows(mat: &mut MatrixF32, factors: &[f32]) {
    assert_eq!(mat.rows(), factors.len());
    for i in 0..mat.rows() {
        let f = factors[i];
        for v in mat.row_mut(i) {
            *v *= f;
        }
    }
}

/// Row-wise normalisation: `mat[i][*] /= ell[i]` (Algorithm 1 line 25).
pub fn normalize_rows(mat: &mut MatrixF32, ell: &[f32]) {
    assert_eq!(mat.rows(), ell.len());
    for i in 0..mat.rows() {
        let inv = 1.0 / ell[i];
        for v in mat.row_mut(i) {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strided::{encode_rows_strided, strided_sums};
    use crate::thresholds::rel_diff;
    use ft_num::rng::{normal_matrix_f16, rng_from_seed};
    use ft_sim::gemm_nt;

    #[test]
    fn residue_counts_exact() {
        assert_eq!(residue_counts(16, 8), vec![2; 8]);
        assert_eq!(residue_counts(20, 8), vec![3, 3, 3, 3, 2, 2, 2, 2]);
        assert_eq!(residue_counts(8, 8), vec![1; 8]);
        assert_eq!(residue_counts(4, 8), vec![1, 1, 1, 1, 0, 0, 0, 0]);
    }

    /// Full transport chain: S → S−m → exp, checked against direct P.
    #[test]
    fn exp_transport_matches_strided_products() {
        let mut rng = rng_from_seed(30);
        let q = normal_matrix_f16(&mut rng, 8, 16, 0.4).to_f32();
        let k = normal_matrix_f16(&mut rng, 16, 16, 0.4).to_f32();
        let cs = encode_rows_strided(&k, 8, false);
        let s_mat = gemm_nt(&q, &k);
        let mut s_c1 = gemm_nt(&q, &cs.w1);

        // Row max and stabilised softmax numerator.
        let row_max: Vec<f32> = (0..s_mat.rows())
            .map(|i| {
                s_mat
                    .row(i)
                    .iter()
                    .cloned()
                    .fold(f32::NEG_INFINITY, f32::max)
            })
            .collect();
        let p = MatrixF32::from_fn(s_mat.rows(), s_mat.cols(), |i, j| {
            (s_mat.get(i, j) - row_max[i]).exp()
        });

        let counts = residue_counts(s_mat.cols(), 8);
        transport_subtract_max(&mut s_c1, &row_max, &counts);
        let p_c1 = transport_exp(&s_c1);
        let direct = strided_products(&p, 8);
        // Multiplicative invariant holds within fp noise.
        for i in 0..direct.rows() {
            for t in 0..8 {
                assert!(
                    rel_diff(direct.get(i, t), p_c1.get(i, t)) < 1e-4,
                    "({i},{t}): {} vs {}",
                    direct.get(i, t),
                    p_c1.get(i, t)
                );
            }
        }
        // And a corrupted exponential is caught.
        let mut p_bad = p.clone();
        p_bad.set(3, 5, p_bad.get(3, 5) * 1.5);
        let mism = verify_products(&p_bad, &p_c1, 8, Check::new(1e-3, 0.0));
        assert_eq!(mism.len(), 1);
        assert_eq!((mism[0].i, mism[0].t), (3, 5));
    }

    #[test]
    fn rescale_and_normalize_commute_with_strided_sums() {
        let mut rng = rng_from_seed(31);
        let o = normal_matrix_f16(&mut rng, 8, 32, 1.0).to_f32();
        let factors: Vec<f32> = (0..8).map(|i| 0.5 + i as f32 * 0.1).collect();
        let ell: Vec<f32> = (0..8).map(|i| 1.0 + i as f32).collect();

        // Path A: fold then transform.
        let mut folded = strided_sums(&o, 8);
        rescale_rows(&mut folded, &factors);
        normalize_rows(&mut folded, &ell);

        // Path B: transform then fold.
        let mut full = o.clone();
        rescale_rows(&mut full, &factors);
        normalize_rows(&mut full, &ell);
        let folded_b = strided_sums(&full, 8);

        assert!(folded.max_abs_diff(&folded_b) < 1e-4);
    }

    #[test]
    fn verify_products_clean_is_silent() {
        let p = MatrixF32::from_fn(4, 16, |i, j| 0.1 + 0.01 * (i * 16 + j) as f32);
        let check = strided_products(&p, 8);
        assert!(verify_products(&p, &check, 8, Check::new(1e-6, 0.0)).is_empty());
    }

    #[test]
    fn transport_subtract_handles_ragged_counts() {
        // 12 columns, stride 8: residues 0..4 have 2 elements, 4..8 have 1.
        let s_mat = MatrixF32::from_fn(2, 12, |i, j| (i * 12 + j) as f32 * 0.1);
        let check = strided_sums(&s_mat, 8);
        let mut transported = check.clone();
        let row_max = vec![1.0, 2.0];
        let counts = residue_counts(12, 8);
        transport_subtract_max(&mut transported, &row_max, &counts);
        // Direct: fold the subtracted matrix.
        let sub = MatrixF32::from_fn(2, 12, |i, j| s_mat.get(i, j) - row_max[i]);
        let direct = strided_sums(&sub, 8);
        assert!(transported.max_abs_diff(&direct) < 1e-5);
    }
}
