//! A pre-norm transformer block: `x + MHA(LN(x))`, then `x + FFN(LN(x))`.

use crate::ffn::{FeedForward, FfnReport};
use crate::mha::{BackendKind, KvCache, MhaReport, MultiHeadAttention};
use crate::norm::LayerNorm;
use ft_abft::thresholds::Thresholds;
use ft_core::serve::StreamId;
use ft_num::MatrixF32;
use ft_sim::FaultInjector;

/// One transformer block.
#[derive(Clone, Debug)]
pub struct TransformerBlock {
    /// Pre-attention LayerNorm.
    pub ln1: LayerNorm,
    /// Multi-head attention.
    pub mha: MultiHeadAttention,
    /// Pre-FFN LayerNorm.
    pub ln2: LayerNorm,
    /// Feed-forward network.
    pub ffn: FeedForward,
}

/// FT events of one block forward.
#[derive(Clone, Copy, Debug, Default)]
pub struct BlockReport {
    /// Attention-module events.
    pub mha: MhaReport,
    /// Feed-forward events.
    pub ffn: FfnReport,
}

impl TransformerBlock {
    /// Random block (seeded).
    pub fn random(
        seed: u64,
        hidden: usize,
        heads: usize,
        ffn_dim: usize,
        kernel: BackendKind,
    ) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(hidden),
            mha: MultiHeadAttention::random(seed, hidden, heads, kernel),
            ln2: LayerNorm::new(hidden),
            ffn: FeedForward::random(seed + 100, hidden, ffn_dim),
        }
    }

    /// Forward pass over `seq × hidden` activations.
    pub fn forward<I: FaultInjector>(
        &self,
        x: &MatrixF32,
        inj: &I,
        layer_idx: usize,
        thresholds: &Thresholds,
    ) -> (MatrixF32, BlockReport) {
        let mut report = BlockReport::default();

        let mut normed = x.clone();
        self.ln1.forward(&mut normed);
        let (attn, mha_rep) = self.mha.forward(&normed, inj, layer_idx * 2, thresholds);
        report.mha = mha_rep;
        let mut h = x.clone();
        for i in 0..h.rows() {
            for (v, a) in h.row_mut(i).iter_mut().zip(attn.row(i)) {
                *v += a;
            }
        }

        let mut normed2 = h.clone();
        self.ln2.forward(&mut normed2);
        let (ff, ffn_rep) = self
            .ffn
            .forward(&normed2, inj, layer_idx * 2 + 1, thresholds);
        report.ffn = ffn_rep;
        for i in 0..h.rows() {
            for (v, f) in h.row_mut(i).iter_mut().zip(ff.row(i)) {
                *v += f;
            }
        }
        (h, report)
    }

    /// Incremental-decode forward over a single `1 × hidden` token row,
    /// attending through `cache` instead of re-running the full sequence
    /// (restricted to the attention module's sliding window, when set).
    pub fn forward_decode<I: FaultInjector>(
        &self,
        x: &MatrixF32,
        cache: &mut KvCache,
        inj: &I,
        layer_idx: usize,
        thresholds: &Thresholds,
    ) -> (MatrixF32, BlockReport) {
        let mut report = BlockReport::default();

        let mut normed = x.clone();
        self.ln1.forward(&mut normed);
        let (attn, mha_rep) =
            self.mha
                .forward_decode(&normed, cache, inj, layer_idx * 2, thresholds);
        report.mha = mha_rep;
        let mut h = x.clone();
        for (v, a) in h.row_mut(0).iter_mut().zip(attn.row(0)) {
            *v += a;
        }

        let mut normed2 = h.clone();
        self.ln2.forward(&mut normed2);
        let (ff, ffn_rep) = self
            .ffn
            .forward(&normed2, inj, layer_idx * 2 + 1, thresholds);
        report.ffn = ffn_rep;
        for (v, f) in h.row_mut(0).iter_mut().zip(ff.row(0)) {
            *v += f;
        }
        (h, report)
    }

    /// Continuous-batching decode forward: each stream contributes a
    /// `c × hidden` activation chunk attending through its own cache; the
    /// attention fan-out is shared across streams (see
    /// [`MultiHeadAttention::forward_decode_batch`]), everything row-wise
    /// (norms, residuals, FFN) runs per stream. `windows[i]` is stream
    /// `i`'s sliding attention window (a per-stream request property):
    /// that stream's cache is front-evicted before its chunk is appended
    /// and each of its rows attends only its window — eviction counts land
    /// in that stream's [`BlockReport`]
    /// (`mha.attention.cache_evicted_blocks`).
    #[allow(clippy::too_many_arguments)]
    pub fn forward_decode_batch<I: FaultInjector>(
        &self,
        xs: &[MatrixF32],
        caches: &mut [&mut KvCache],
        streams: &[StreamId],
        windows: &[Option<usize>],
        inj: &I,
        layer_idx: usize,
        thresholds: &Thresholds,
    ) -> Vec<(MatrixF32, BlockReport)> {
        let normed: Vec<MatrixF32> = xs
            .iter()
            .map(|x| {
                let mut n = x.clone();
                self.ln1.forward(&mut n);
                n
            })
            .collect();
        let attn = self.mha.forward_decode_batch(
            &normed,
            caches,
            streams,
            windows,
            inj,
            layer_idx * 2,
            thresholds,
        );
        xs.iter()
            .zip(attn)
            .map(|(x, (a, mha_rep))| {
                let mut h = x.clone();
                for i in 0..h.rows() {
                    for (v, av) in h.row_mut(i).iter_mut().zip(a.row(i)) {
                        *v += av;
                    }
                }
                let mut normed2 = h.clone();
                self.ln2.forward(&mut normed2);
                let (ff, ffn_rep) = self
                    .ffn
                    .forward(&normed2, inj, layer_idx * 2 + 1, thresholds);
                for i in 0..h.rows() {
                    for (v, f) in h.row_mut(i).iter_mut().zip(ff.row(i)) {
                        *v += f;
                    }
                }
                (
                    h,
                    BlockReport {
                        mha: mha_rep,
                        ffn: ffn_rep,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::efta::EftaOptions;
    use ft_num::rng::{normal_matrix_f16, rng_from_seed};
    use ft_sim::NoFaults;

    #[test]
    fn block_preserves_shape_and_is_deterministic() {
        let blk = TransformerBlock::random(1, 32, 4, 64, BackendKind::Flash);
        let mut rng = rng_from_seed(2);
        let x = normal_matrix_f16(&mut rng, 16, 32, 1.0).to_f32();
        let (y1, _) = blk.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        let (y2, _) = blk.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        assert_eq!(y1.shape(), (16, 32));
        assert_eq!(y1, y2);
    }

    #[test]
    fn residual_path_dominates_small_weights() {
        // With 0.02-scale weights the block output stays near the input.
        let blk = TransformerBlock::random(3, 32, 4, 64, BackendKind::Flash);
        let mut rng = rng_from_seed(4);
        let x = normal_matrix_f16(&mut rng, 16, 32, 1.0).to_f32();
        let (y, _) = blk.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        assert!(y.max_abs_diff(&x) < 1.0, "residual output drifted too far");
    }

    #[test]
    fn efta_and_flash_blocks_agree_when_clean() {
        let flash_blk = TransformerBlock::random(5, 64, 8, 128, BackendKind::Flash);
        let efta_blk = TransformerBlock {
            mha: MultiHeadAttention {
                kernel: BackendKind::Efta(EftaOptions::optimized()),
                ..flash_blk.mha.clone()
            },
            ..flash_blk.clone()
        };
        let mut rng = rng_from_seed(6);
        let x = normal_matrix_f16(&mut rng, 32, 64, 1.0).to_f32();
        let (yf, _) = flash_blk.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        let (ye, rep) = efta_blk.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        assert!(rep.mha.attention.clean());
        assert!(yf.max_abs_diff(&ye) < 1e-2);
    }
}
