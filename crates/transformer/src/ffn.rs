//! Feed-forward module: ABFT linear → range-restricted activation → ABFT
//! linear (paper Fig. 1, "Feed Forward Fault Tolerance").

use crate::activation::{apply_restricted, Activation, ActivationReport};
use crate::linear::{Linear, LinearReport};
use ft_abft::thresholds::Thresholds;
use ft_num::MatrixF32;
use ft_sim::FaultInjector;

/// Two-layer feed-forward network with protected projections and a
/// range-restricted activation.
#[derive(Clone, Debug)]
pub struct FeedForward {
    /// Expansion projection (hidden → ffn).
    pub up: Linear,
    /// Contraction projection (ffn → hidden).
    pub down: Linear,
    /// Activation between them.
    pub activation: Activation,
}

/// FT events of one FFN forward.
#[derive(Clone, Copy, Debug, Default)]
pub struct FfnReport {
    /// Aggregated projection report.
    pub projections: LinearReport,
    /// Activation restriction events.
    pub activation: ActivationReport,
}

impl FeedForward {
    /// Random FFN (seeded): `hidden → ffn_dim → hidden`.
    pub fn random(seed: u64, hidden: usize, ffn_dim: usize) -> Self {
        FeedForward {
            up: Linear::random(seed, hidden, ffn_dim),
            down: Linear::random(seed + 1, ffn_dim, hidden),
            activation: Activation::Gelu,
        }
    }

    /// Forward pass over `seq × hidden` activations.
    pub fn forward<I: FaultInjector>(
        &self,
        x: &MatrixF32,
        inj: &I,
        layer_slot: usize,
        thresholds: &Thresholds,
    ) -> (MatrixF32, FfnReport) {
        let mut report = FfnReport::default();
        let (mut h, r1) = self.up.forward(x, inj, layer_slot * 8 + 4, thresholds);
        report.projections = r1;
        // Range-restricted activation, row by row.
        for i in 0..h.rows() {
            let max_in = h.row(i).iter().map(|v| v.abs()).fold(0.0f32, f32::max);
            let rep = apply_restricted(
                self.activation,
                h.row_mut(i),
                inj,
                layer_slot * 8 + 5,
                i,
                max_in,
            );
            report.activation.restricted += rep.restricted;
        }
        let (y, r2) = self.down.forward(&h, inj, layer_slot * 8 + 6, thresholds);
        report.projections.detected += r2.detected;
        report.projections.corrected += r2.corrected;
        report.projections.recomputed += r2.recomputed;
        (y, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_num::rng::{normal_matrix_f16, rng_from_seed};
    use ft_sim::{FaultSite, NoFaults, OpCoord, SeuInjector};

    #[test]
    fn shapes_and_cleanliness() {
        let ffn = FeedForward::random(1, 32, 128);
        let mut rng = rng_from_seed(2);
        let x = normal_matrix_f16(&mut rng, 16, 32, 1.0).to_f32();
        let (y, rep) = ffn.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        assert_eq!(y.shape(), (16, 32));
        assert_eq!(rep.projections, LinearReport::default());
        assert_eq!(rep.activation.restricted, 0);
    }

    #[test]
    fn activation_fault_is_restricted() {
        let ffn = FeedForward::random(3, 32, 64);
        let mut rng = rng_from_seed(4);
        let x = normal_matrix_f16(&mut rng, 8, 32, 1.0).to_f32();
        let (clean, _) = ffn.forward(&x, &NoFaults, 2, &Thresholds::calibrated());
        // Huge corruption of one activation output (layer slot 2*8+5 = 21).
        let inj = SeuInjector::new(FaultSite::Activation, OpCoord::new(21, 3, 10, 0), 30);
        let (dirty, rep) = ffn.forward(&x, &inj, 2, &Thresholds::calibrated());
        assert_eq!(inj.fired(), 1);
        assert_eq!(rep.activation.restricted, 1);
        assert!(dirty.max_abs_diff(&clean) < 1e-4);
    }

    #[test]
    fn projection_fault_is_corrected() {
        let ffn = FeedForward::random(5, 64, 64);
        let mut rng = rng_from_seed(6);
        let x = normal_matrix_f16(&mut rng, 64, 64, 1.0).to_f32();
        let (clean, _) = ffn.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        let inj = SeuInjector::new(FaultSite::LinearAccum, OpCoord::new(4, 5, 6, 0), 30)
            .at_chain_step(10);
        let (dirty, rep) = ffn.forward(&x, &inj, 0, &Thresholds::calibrated());
        assert_eq!(inj.fired(), 1);
        assert!(rep.projections.corrected > 0, "{rep:?}");
        assert!(dirty.max_abs_diff(&clean) < 1e-2);
    }
}
