//! Model configurations for the Fig. 15 experiment: GPT-2, BERT-Base,
//! BERT-Large and T5-Small at the shapes the paper uses (input length 512).

/// Transformer model hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Number of transformer blocks. For T5-Small this counts encoder plus
    /// decoder blocks: the paper measures per-step *time overhead*, for
    /// which a 12-block stack of the same per-block shape is equivalent
    /// work (see DESIGN.md).
    pub layers: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Model width.
    pub hidden: usize,
    /// Feed-forward inner width.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length.
    pub max_seq: usize,
}

impl ModelConfig {
    /// GPT-2 (117M): 12 layers, 12 heads, width 768.
    pub fn gpt2() -> Self {
        ModelConfig {
            name: "GPT2",
            layers: 12,
            heads: 12,
            hidden: 768,
            ffn_dim: 3072,
            vocab: 50257,
            max_seq: 1024,
        }
    }

    /// BERT-Base: 12 layers, 12 heads, width 768.
    pub fn bert_base() -> Self {
        ModelConfig {
            name: "BERT-Base",
            layers: 12,
            heads: 12,
            hidden: 768,
            ffn_dim: 3072,
            vocab: 30522,
            max_seq: 512,
        }
    }

    /// BERT-Large: 24 layers, 16 heads, width 1024.
    pub fn bert_large() -> Self {
        ModelConfig {
            name: "BERT-Large",
            layers: 24,
            heads: 16,
            hidden: 1024,
            ffn_dim: 4096,
            vocab: 30522,
            max_seq: 512,
        }
    }

    /// T5-Small: 6 encoder + 6 decoder blocks, 8 heads, width 512.
    pub fn t5_small() -> Self {
        ModelConfig {
            name: "T5-Small",
            layers: 12,
            heads: 8,
            hidden: 512,
            ffn_dim: 2048,
            vocab: 32128,
            max_seq: 512,
        }
    }

    /// The four models of Fig. 15.
    pub fn paper_models() -> [ModelConfig; 4] {
        [
            Self::gpt2(),
            Self::bert_base(),
            Self::bert_large(),
            Self::t5_small(),
        ]
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// A shrunken version preserving head structure, for fast tests and
    /// scaled benches.
    pub fn scaled(mut self, hidden: usize, layers: usize) -> Self {
        assert_eq!(hidden % self.heads, 0);
        self.ffn_dim = hidden * 4;
        self.hidden = hidden;
        self.layers = layers;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_shapes() {
        let g = ModelConfig::gpt2();
        assert_eq!(g.head_dim(), 64);
        let bl = ModelConfig::bert_large();
        assert_eq!(bl.head_dim(), 64);
        assert_eq!(bl.layers, 24);
        let t5 = ModelConfig::t5_small();
        assert_eq!(t5.head_dim(), 64);
        assert_eq!(ModelConfig::paper_models().len(), 4);
    }

    #[test]
    fn scaled_preserves_head_structure() {
        let s = ModelConfig::gpt2().scaled(96, 2);
        assert_eq!(s.heads, 12);
        assert_eq!(s.head_dim(), 8);
        assert_eq!(s.layers, 2);
        assert_eq!(s.ffn_dim, 384);
    }
}
