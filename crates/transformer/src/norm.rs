//! Layer normalisation.

use ft_num::MatrixF32;

/// LayerNorm with learned scale/shift.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    /// Per-feature scale γ.
    pub gamma: Vec<f32>,
    /// Per-feature shift β.
    pub beta: Vec<f32>,
    /// Numerical epsilon.
    pub eps: f32,
}

impl LayerNorm {
    /// Identity LayerNorm (γ = 1, β = 0) over `features`.
    pub fn new(features: usize) -> Self {
        LayerNorm {
            gamma: vec![1.0; features],
            beta: vec![0.0; features],
            eps: 1e-5,
        }
    }

    /// Normalise each row of `x` in place.
    pub fn forward(&self, x: &mut MatrixF32) {
        assert_eq!(x.cols(), self.gamma.len());
        for i in 0..x.rows() {
            let row = x.row_mut(i);
            let n = row.len() as f32;
            let mean = row.iter().sum::<f32>() / n;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let inv = 1.0 / (var + self.eps).sqrt();
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - mean) * inv * self.gamma[j] + self.beta[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_num::Matrix;

    #[test]
    fn normalised_rows_have_zero_mean_unit_variance() {
        let ln = LayerNorm::new(16);
        let mut x = Matrix::from_fn(4, 16, |i, j| (i * 16 + j) as f32 * 0.3 - 2.0);
        ln.forward(&mut x);
        for i in 0..4 {
            let row = x.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_apply() {
        let mut ln = LayerNorm::new(4);
        ln.gamma = vec![2.0; 4];
        ln.beta = vec![1.0; 4];
        let mut x = Matrix::from_fn(1, 4, |_, j| j as f32);
        ln.forward(&mut x);
        let mean: f32 = x.row(0).iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-5, "shifted mean {mean}");
    }

    #[test]
    fn constant_row_stays_finite() {
        let ln = LayerNorm::new(8);
        let mut x = Matrix::from_fn(1, 8, |_, _| 3.5);
        ln.forward(&mut x);
        assert!(x.row(0).iter().all(|v| v.is_finite()));
        assert!(x.row(0).iter().all(|v| v.abs() < 1e-2));
    }
}
