//! Multi-head attention wiring the Q/K/V/O projections around any
//! [`AttentionBackend`] from `ft-core`, selected by [`BackendKind`].

use crate::linear::{Linear, LinearReport};
use ft_abft::thresholds::Thresholds;
use ft_core::backend::{AttentionBackend, AttentionRequest};
use ft_core::config::AttentionConfig;
use ft_core::decode::DecodeRequest;
use ft_core::serve::{StreamId, StreamSlice};
use ft_core::types::FtReport;
use ft_num::{Matrix, MatrixF32, Tensor4F16};
use ft_sim::FaultInjector;

pub use ft_core::backend::BackendKind;
pub use ft_core::kv::KvCache;

/// Multi-head attention module.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    /// Number of heads.
    pub heads: usize,
    /// Attention backend selection.
    pub kernel: BackendKind,
    /// Causal masking for the prefill path. The decode path is inherently
    /// causal (the cache only holds the past), so prefill must be causal
    /// too for the two to produce the same activations. Unmasked prefill
    /// (the paper's benchmark setting) remains the default.
    pub causal: bool,
    /// *Default* sliding-window attention for the decode paths: each step
    /// attends only the cache blocks holding the most recent `window` rows
    /// (block-granular), and storage behind the window is front-evicted
    /// *before* each append — bounded cache memory per stream. `None`
    /// (the default) attends and retains the full history.
    ///
    /// Since the typed-request redesign the window is a *per-stream*
    /// property: the batched serving path
    /// ([`forward_decode_batch`](MultiHeadAttention::forward_decode_batch))
    /// takes one window per stream (resolved by the engine from each
    /// `GenerationRequest`, with this field as the default), and only the
    /// single-stream [`forward_decode`](MultiHeadAttention::forward_decode)
    /// still reads it directly. Decode-only: the prefill path ignores it.
    pub window: Option<usize>,
    /// Rows per KV-cache block ([`KvCache::block`]); also the granularity
    /// of sliding-window eviction. Defaults to the paper's 64-row CTA
    /// tile; benches and tests shrink it to exercise eviction at small
    /// sequence lengths.
    pub cache_block: usize,
}

/// The paper's CTA tile: default rows per KV-cache block.
pub const DEFAULT_CACHE_BLOCK: usize = 64;

/// FT events of one MHA forward.
#[derive(Clone, Copy, Debug, Default)]
pub struct MhaReport {
    /// Aggregated projection-layer report.
    pub projections: LinearReport,
    /// Attention-kernel report.
    pub attention: FtReport,
}

impl MultiHeadAttention {
    /// Random MHA (seeded) for `hidden = heads × head_dim`.
    pub fn random(seed: u64, hidden: usize, heads: usize, kernel: BackendKind) -> Self {
        assert_eq!(hidden % heads, 0, "hidden must split evenly across heads");
        MultiHeadAttention {
            wq: Linear::random(seed, hidden, hidden),
            wk: Linear::random(seed + 1, hidden, hidden),
            wv: Linear::random(seed + 2, hidden, hidden),
            wo: Linear::random(seed + 3, hidden, hidden),
            heads,
            kernel,
            causal: false,
            window: None,
            cache_block: DEFAULT_CACHE_BLOCK,
        }
    }

    /// Split `seq × hidden` activations into a `1 × heads × seq × head_dim`
    /// FP16 tensor (the attention kernel's operand precision).
    fn split_heads(&self, x: &MatrixF32) -> Tensor4F16 {
        let (seq, hidden) = x.shape();
        let hd = hidden / self.heads;
        let mut t = Tensor4F16::zeros(1, self.heads, seq, hd);
        for h in 0..self.heads {
            let slot = t.slot_mut(0, h);
            for i in 0..seq {
                for j in 0..hd {
                    slot.set(i, j, ft_num::F16::from_f32(x.get(i, h * hd + j)));
                }
            }
        }
        t
    }

    /// Merge a `1 × heads × seq × head_dim` tensor back to `seq × hidden`.
    fn merge_heads(&self, t: &ft_num::Tensor4F32) -> MatrixF32 {
        let (seq, hd) = (t.seq(), t.dim());
        Matrix::from_fn(seq, self.heads * hd, |i, j| {
            t.slot(0, j / hd).get(i, j % hd)
        })
    }

    /// Forward pass over `seq × hidden` activations.
    pub fn forward<I: FaultInjector>(
        &self,
        x: &MatrixF32,
        inj: &I,
        layer_slot: usize,
        thresholds: &Thresholds,
    ) -> (MatrixF32, MhaReport) {
        let (seq, hidden) = x.shape();
        let hd = hidden / self.heads;
        let mut report = MhaReport::default();

        let (q, r1) = self.wq.forward(x, inj, layer_slot * 8, thresholds);
        let (k, r2) = self.wk.forward(x, inj, layer_slot * 8 + 1, thresholds);
        let (v, r3) = self.wv.forward(x, inj, layer_slot * 8 + 2, thresholds);
        for r in [r1, r2, r3] {
            report.projections.detected += r.detected;
            report.projections.corrected += r.corrected;
            report.projections.recomputed += r.recomputed;
        }

        let qt = self.split_heads(&q);
        let kt = self.split_heads(&k);
        let vt = self.split_heads(&v);
        let cfg = AttentionConfig::new(1, self.heads, seq, hd)
            .with_auto_block()
            .with_causal(self.causal);

        let out = self
            .kernel
            .run(&AttentionRequest::new(cfg, &qt, &kt, &vt).with_injector(inj));
        report.attention = out.report;

        let merged = self.merge_heads(&out.o);
        let (y, r4) = self
            .wo
            .forward(&merged, inj, layer_slot * 8 + 3, thresholds);
        report.projections.detected += r4.detected;
        report.projections.corrected += r4.corrected;
        report.projections.recomputed += r4.recomputed;
        (y, report)
    }

    /// Fresh per-layer KV cache matching this module's head geometry and
    /// configured [`cache_block`](MultiHeadAttention::cache_block) size.
    pub fn new_cache(&self) -> KvCache {
        let hd = self.wq.out_features() / self.heads;
        KvCache::new(
            1,
            self.heads,
            hd,
            self.cache_block,
            ft_abft::strided::DEFAULT_STRIDE,
            1.0 / (hd as f32).sqrt(),
        )
    }

    /// One incremental-decode step over a `1 × hidden` activation row:
    /// project Q/K/V for the new token, append K/V to `cache`, and attend
    /// the query over the whole cache through the backend's
    /// [`try_decode`](AttentionBackend::try_decode) path — O(cache len)
    /// work instead of the O(seq²) full prefill.
    pub fn forward_decode<I: FaultInjector>(
        &self,
        x: &MatrixF32,
        cache: &mut KvCache,
        inj: &I,
        layer_slot: usize,
        thresholds: &Thresholds,
    ) -> (MatrixF32, MhaReport) {
        assert_eq!(x.rows(), 1, "decode processes one token row at a time");
        let mut report = MhaReport::default();

        let (q, r1) = self.wq.forward(x, inj, layer_slot * 8, thresholds);
        let (k, r2) = self.wk.forward(x, inj, layer_slot * 8 + 1, thresholds);
        let (v, r3) = self.wv.forward(x, inj, layer_slot * 8 + 2, thresholds);
        for r in [r1, r2, r3] {
            report.projections.detected += r.detected;
            report.projections.corrected += r.corrected;
            report.projections.recomputed += r.recomputed;
        }

        let qt = self.split_heads(&q);
        // Storage eviction happens *before* the append (on the pre-chunk
        // length), so the new row's attention window never reaches behind
        // the eviction frontier.
        let evicted = match self.window {
            Some(w) => cache.enforce_window(w) as u64,
            None => 0,
        };
        let heal = cache.append(&self.split_heads(&k), &self.split_heads(&v));
        let step = cache.len() - 1;
        let req = DecodeRequest::new(cache, &qt)
            .with_injector(inj)
            .with_thresholds(*thresholds)
            .at_step(step)
            .with_window(self.window);
        let out = self.kernel.decode(&req);
        report.attention = out.report;
        report.attention.cache_detected += heal.detected;
        report.attention.cache_corrected += heal.corrected;
        report.attention.cache_evicted_blocks += evicted;
        // heal.uncorrectable is deliberately NOT added: append already
        // folded it into the cache's sticky `poisoned` counter, which the
        // protected decode surfaces as cache_uncorrectable every step —
        // adding it here would double-count the same physical event.

        let merged = self.merge_heads(&out.o);
        let (y, r4) = self
            .wo
            .forward(&merged, inj, layer_slot * 8 + 3, thresholds);
        report.projections.detected += r4.detected;
        report.projections.corrected += r4.corrected;
        report.projections.recomputed += r4.recomputed;
        (y, report)
    }

    /// One continuous-batching sweep over many streams' activations: per
    /// stream, project Q/K/V for its chunk (`c × hidden` rows — one row for
    /// a decoding stream, a prefill chunk otherwise) and append K/V to that
    /// stream's cache; then attend every stream's rows through the
    /// backend's batched
    /// [`try_decode_sweep`](AttentionBackend::try_decode_sweep) — one
    /// kernel fan-out shared by all streams, with fault events attributed
    /// per stream.
    ///
    /// `windows[i]` is stream `i`'s sliding attention window (a per-stream
    /// request property; the serving engine resolves it from each
    /// `GenerationRequest`, falling back to the module-level
    /// [`window`](MultiHeadAttention::window) default): it drives both that
    /// stream's pre-append storage eviction and its rows'
    /// [`StreamSlice::window`] in the kernel sweep.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_decode_batch<I: FaultInjector>(
        &self,
        xs: &[MatrixF32],
        caches: &mut [&mut KvCache],
        streams: &[StreamId],
        windows: &[Option<usize>],
        inj: &I,
        layer_slot: usize,
        thresholds: &Thresholds,
    ) -> Vec<(MatrixF32, MhaReport)> {
        assert_eq!(xs.len(), caches.len());
        assert_eq!(xs.len(), streams.len());
        assert_eq!(xs.len(), windows.len());
        let mut reports: Vec<MhaReport> = vec![MhaReport::default(); xs.len()];
        let mut qts = Vec::with_capacity(xs.len());
        let mut heals = Vec::with_capacity(xs.len());
        let mut evictions = Vec::with_capacity(xs.len());
        for (i, x) in xs.iter().enumerate() {
            let (q, r1) = self.wq.forward(x, inj, layer_slot * 8, thresholds);
            let (k, r2) = self.wk.forward(x, inj, layer_slot * 8 + 1, thresholds);
            let (v, r3) = self.wv.forward(x, inj, layer_slot * 8 + 2, thresholds);
            for r in [r1, r2, r3] {
                reports[i].projections.detected += r.detected;
                reports[i].projections.corrected += r.corrected;
                reports[i].projections.recomputed += r.recomputed;
            }
            qts.push(self.split_heads(&q));
            // Evict on the pre-chunk length: every chunk row's causal
            // window still finds its blocks resident (see
            // `KvCache::enforce_window`). Per stream: each stream's own
            // request window governs its storage.
            evictions.push(match windows[i] {
                Some(w) => caches[i].enforce_window(w) as u64,
                None => 0,
            });
            heals.push(caches[i].append(&self.split_heads(&k), &self.split_heads(&v)));
        }
        let slices: Vec<StreamSlice<'_>> = qts
            .iter()
            .enumerate()
            .map(|(i, q)| StreamSlice {
                stream: streams[i],
                cache: &*caches[i],
                q,
                window: windows[i],
            })
            .collect();
        let outs = self.kernel.decode_sweep(&slices, inj, Some(*thresholds));
        drop(slices);
        outs.into_iter()
            .enumerate()
            .map(|(i, out)| {
                let mut report = reports[i];
                report.attention = out.report;
                report.attention.cache_detected += heals[i].detected;
                report.attention.cache_corrected += heals[i].corrected;
                report.attention.cache_evicted_blocks += evictions[i];
                // heal.uncorrectable is deliberately NOT added: append
                // already folded it into the cache's sticky `poisoned`
                // counter, which the protected sweep re-surfaces as
                // cache_uncorrectable — adding it here would double-count.
                let merged = self.merge_heads(&out.o);
                let (y, r4) = self
                    .wo
                    .forward(&merged, inj, layer_slot * 8 + 3, thresholds);
                report.projections.detected += r4.detected;
                report.projections.corrected += r4.corrected;
                report.projections.recomputed += r4.recomputed;
                (y, report)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::efta::EftaOptions;
    use ft_num::rng::{normal_matrix_f16, rng_from_seed};
    use ft_sim::NoFaults;

    #[test]
    fn split_merge_round_trip() {
        let mha = MultiHeadAttention::random(1, 32, 4, BackendKind::Flash);
        let mut rng = rng_from_seed(2);
        let x = normal_matrix_f16(&mut rng, 16, 32, 1.0).to_f32();
        let t = mha.split_heads(&x);
        assert_eq!((t.heads(), t.seq(), t.dim()), (4, 16, 8));
        let back = mha.merge_heads(&t.to_f32());
        // Values passed through FP16 once, inputs were already FP16-exact.
        assert!(back.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn flash_and_efta_kernels_agree_when_clean() {
        let mut rng = rng_from_seed(3);
        let x = normal_matrix_f16(&mut rng, 64, 32, 1.0).to_f32();
        let flash = MultiHeadAttention::random(7, 32, 4, BackendKind::Flash);
        let efta = MultiHeadAttention {
            kernel: BackendKind::Efta(EftaOptions::optimized()),
            ..flash.clone()
        };
        let (yf, _) = flash.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        let (ye, rep) = efta.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        assert!(rep.attention.clean(), "{:?}", rep.attention);
        let diff = yf.max_abs_diff(&ye);
        assert!(diff < 1e-2, "kernel mismatch {diff}");
    }

    #[test]
    fn output_shape_matches_input() {
        let mha = MultiHeadAttention::random(5, 48, 6, BackendKind::Flash);
        let mut rng = rng_from_seed(6);
        let x = normal_matrix_f16(&mut rng, 40, 48, 1.0).to_f32();
        let (y, _) = mha.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        assert_eq!(y.shape(), (40, 48));
    }
}
