//! Full transformer model: embeddings → blocks → final norm → LM head.

use crate::block::{BlockReport, TransformerBlock};
use crate::configs::ModelConfig;
use crate::embed::Embedding;
use crate::linear::{Linear, LinearProtection};
use crate::mha::BackendKind;
use crate::norm::LayerNorm;
use ft_abft::thresholds::Thresholds;
use ft_num::MatrixF32;
use ft_sim::FaultInjector;

/// A complete transformer for inference experiments.
#[derive(Clone, Debug)]
pub struct TransformerModel {
    /// Model hyper-parameters.
    pub config: ModelConfig,
    /// Embedding table + positions.
    pub embed: Embedding,
    /// Transformer blocks.
    pub blocks: Vec<TransformerBlock>,
    /// Final LayerNorm.
    pub final_norm: LayerNorm,
    /// Language-model head (hidden → vocab).
    pub lm_head: Linear,
    /// Detection thresholds used by all protected layers.
    pub thresholds: Thresholds,
}

/// Aggregated FT events of one forward pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelReport {
    /// Sum over blocks.
    pub total_detected: u64,
    /// Sum over blocks.
    pub total_repaired: u64,
}

impl TransformerModel {
    /// Random model (seeded) with every block using `kernel`.
    pub fn random(seed: u64, config: ModelConfig, kernel: BackendKind) -> Self {
        let blocks = (0..config.layers)
            .map(|l| {
                TransformerBlock::random(
                    seed + 1000 * (l as u64 + 1),
                    config.hidden,
                    config.heads,
                    config.ffn_dim,
                    kernel,
                )
            })
            .collect();
        TransformerModel {
            config,
            embed: Embedding::random(seed, config.vocab, config.hidden, config.max_seq),
            blocks,
            final_norm: LayerNorm::new(config.hidden),
            // The LM head is a huge vocab-wide projection; the paper
            // protects the transformer layers, so it stays unprotected.
            lm_head: Linear::random(seed + 7, config.hidden, config.vocab)
                .with_protection(LinearProtection::None),
            thresholds: Thresholds::calibrated(),
        }
    }

    /// Forward pass: token ids → logits (`seq × vocab`).
    pub fn forward<I: FaultInjector>(&self, tokens: &[u32], inj: &I) -> (MatrixF32, ModelReport) {
        let (h, report) = self.forward_hidden(tokens, inj);
        let (logits, _) = self
            .lm_head
            .forward(&h, inj, usize::MAX / 2, &self.thresholds);
        (logits, report)
    }

    /// Forward pass up to the final hidden states (`seq × hidden`),
    /// skipping the expensive LM head — what the per-token timing
    /// experiments measure.
    pub fn forward_hidden<I: FaultInjector>(
        &self,
        tokens: &[u32],
        inj: &I,
    ) -> (MatrixF32, ModelReport) {
        let mut h = self.embed.forward(tokens);
        let mut report = ModelReport::default();
        for (l, block) in self.blocks.iter().enumerate() {
            let (next, rep) = block.forward(&h, inj, l, &self.thresholds);
            h = next;
            report.absorb(&rep);
        }
        self.final_norm.forward(&mut h);
        (h, report)
    }

    /// Greedy generation: append `new_tokens` ids chosen by argmax.
    pub fn generate<I: FaultInjector>(
        &self,
        prompt: &[u32],
        new_tokens: usize,
        inj: &I,
    ) -> (Vec<u32>, ModelReport) {
        let mut tokens = prompt.to_vec();
        let mut report = ModelReport::default();
        for _ in 0..new_tokens {
            let (logits, rep) = self.forward(&tokens, inj);
            report.total_detected += rep.total_detected;
            report.total_repaired += rep.total_repaired;
            let last = logits.row(logits.rows() - 1);
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &v) in last.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            tokens.push(best as u32);
            if tokens.len() >= self.config.max_seq {
                break;
            }
        }
        (tokens, report)
    }
}

impl ModelReport {
    fn absorb(&mut self, rep: &BlockReport) {
        self.total_detected += rep.mha.projections.detected
            + rep.mha.attention.total_detected()
            + rep.ffn.projections.detected
            + rep.ffn.activation.restricted;
        self.total_repaired += rep.mha.projections.corrected
            + rep.mha.projections.recomputed
            + rep.mha.attention.total_repaired()
            + rep.ffn.projections.corrected
            + rep.ffn.projections.recomputed
            + rep.ffn.activation.restricted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::efta::EftaOptions;
    use ft_sim::{FaultSite, NoFaults, OpCoord, SeuInjector};

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            name: "tiny",
            layers: 2,
            heads: 4,
            hidden: 32,
            ffn_dim: 64,
            vocab: 101,
            max_seq: 64,
        }
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let model = TransformerModel::random(1, tiny_config(), BackendKind::Flash);
        let tokens: Vec<u32> = (0..16).collect();
        let (l1, rep) = model.forward(&tokens, &NoFaults);
        let (l2, _) = model.forward(&tokens, &NoFaults);
        assert_eq!(l1.shape(), (16, 101));
        assert_eq!(l1, l2);
        assert_eq!(rep.total_detected, 0);
    }

    #[test]
    fn efta_model_matches_flash_model_when_clean() {
        let flash = TransformerModel::random(2, tiny_config(), BackendKind::Flash);
        let efta = TransformerModel {
            blocks: flash
                .blocks
                .iter()
                .map(|b| TransformerBlock {
                    mha: crate::mha::MultiHeadAttention {
                        kernel: BackendKind::Efta(EftaOptions::optimized()),
                        ..b.mha.clone()
                    },
                    ..b.clone()
                })
                .collect(),
            ..flash.clone()
        };
        let tokens: Vec<u32> = (0..24).map(|i| i * 3 % 101).collect();
        let (lf, _) = flash.forward(&tokens, &NoFaults);
        let (le, rep) = efta.forward(&tokens, &NoFaults);
        assert_eq!(rep.total_detected, 0);
        assert!(lf.max_abs_diff(&le) < 0.05, "diff {}", lf.max_abs_diff(&le));
    }

    #[test]
    fn generation_extends_sequence_deterministically() {
        let model = TransformerModel::random(3, tiny_config(), BackendKind::Flash);
        let (out, _) = model.generate(&[5, 6, 7], 4, &NoFaults);
        assert_eq!(out.len(), 7);
        let (out2, _) = model.generate(&[5, 6, 7], 4, &NoFaults);
        assert_eq!(out, out2);
    }

    #[test]
    fn fault_in_protected_projection_is_repaired_and_counted() {
        let model = TransformerModel::random(4, tiny_config(), BackendKind::Flash);
        let tokens: Vec<u32> = (0..16).collect();
        let (clean, _) = model.forward_hidden(&tokens, &NoFaults);
        // Layer 0 MHA query projection is layer_slot 0 (layer_idx*2*8).
        let inj =
            SeuInjector::new(FaultSite::LinearAccum, OpCoord::new(0, 3, 7, 0), 30).at_chain_step(5);
        let (dirty, rep) = model.forward_hidden(&tokens, &inj);
        assert_eq!(inj.fired(), 1);
        assert!(rep.total_detected > 0);
        assert!(rep.total_repaired > 0);
        assert!(
            dirty.max_abs_diff(&clean) < 0.05,
            "diff {}",
            dirty.max_abs_diff(&clean)
        );
    }

    #[test]
    fn fault_without_protection_changes_output() {
        let mut model = TransformerModel::random(5, tiny_config(), BackendKind::Flash);
        for b in &mut model.blocks {
            b.mha.wq.protection = LinearProtection::None;
            b.mha.wk.protection = LinearProtection::None;
            b.mha.wv.protection = LinearProtection::None;
            b.mha.wo.protection = LinearProtection::None;
            b.ffn.up.protection = LinearProtection::None;
            b.ffn.down.protection = LinearProtection::None;
        }
        let tokens: Vec<u32> = (0..16).collect();
        let (clean, _) = model.forward_hidden(&tokens, &NoFaults);
        let inj =
            SeuInjector::new(FaultSite::LinearAccum, OpCoord::new(0, 3, 7, 0), 30).at_chain_step(5);
        let (dirty, rep) = model.forward_hidden(&tokens, &inj);
        assert_eq!(inj.fired(), 1);
        // With projections unprotected the fault reaches the activations
        // (possibly as NaN after LayerNorm of a 2^128-scale value); the
        // FFN's range restriction is the only check left to notice.
        let _ = rep;
        assert!(
            dirty.has_non_finite() || dirty.max_abs_diff(&clean) > 1e-3,
            "fault must propagate when unprotected"
        );
    }
}
