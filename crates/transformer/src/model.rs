//! Full transformer model: embeddings → blocks → final norm → LM head.

use crate::block::{BlockReport, TransformerBlock};
use crate::configs::ModelConfig;
use crate::embed::Embedding;
use crate::linear::{Linear, LinearProtection};
use crate::mha::{BackendKind, KvCache};
use crate::norm::LayerNorm;
use ft_abft::thresholds::Thresholds;
use ft_core::kv::{CacheMark, KvReadReport, SizeBreakdown};
use ft_core::protect::ProtectionLevel;
use ft_core::serve::{
    DecodeScheduler, EngineEvent, FinishReason, GenerationRequest, RecoveryPolicy, SamplingMode,
    SchedulerConfig, StreamId, StreamState,
};
use ft_core::types::FtReport;
use ft_num::{Matrix, MatrixF32};
use ft_sim::FaultInjector;

/// A complete transformer for inference experiments.
#[derive(Clone, Debug)]
pub struct TransformerModel {
    /// Model hyper-parameters.
    pub config: ModelConfig,
    /// Embedding table + positions.
    pub embed: Embedding,
    /// Transformer blocks.
    pub blocks: Vec<TransformerBlock>,
    /// Final LayerNorm.
    pub final_norm: LayerNorm,
    /// Language-model head (hidden → vocab).
    pub lm_head: Linear,
    /// Detection thresholds used by all protected layers.
    pub thresholds: Thresholds,
}

/// Aggregated FT events of one forward pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelReport {
    /// Sum over blocks.
    pub total_detected: u64,
    /// Sum over blocks.
    pub total_repaired: u64,
    /// Unrepairable cache-resident damage events seen by the decode path
    /// (sticky: once a cache is poisoned every later step re-reports it).
    /// Non-zero means the only true recovery is re-prefilling the stream —
    /// serving layers must check this, not just detected/repaired.
    pub cache_uncorrectable: u64,
}

impl ModelReport {
    /// Multi-*step* aggregation: fold one step's (or sweep's) report into a
    /// stream or session total.
    ///
    /// The counter mixing is deliberately non-uniform, and the asymmetry is
    /// load-bearing:
    ///
    /// * `total_detected` / `total_repaired` count **fresh events** — each
    ///   step's alarms fired exactly once — so they sum.
    /// * `cache_uncorrectable` is a **sticky level**, not an event count:
    ///   the protected decode path re-surfaces a cache's surviving damage
    ///   count on *every* subsequent step (so the re-prefill signal cannot
    ///   be missed), which means summing across steps would count one
    ///   physical poisoning event once per step it was re-reported.
    ///   `.max()` folds the re-reports idempotently while still growing
    ///   when new damage raises the per-step level.
    ///
    /// Within one step, per-**layer** counts are summed by the private
    /// `absorb_layer` fold: two layers poisoned in the same step are two
    /// distinct physical events, and the step-level
    /// count of 2 then rides through `.max()` unchanged — neither dropped
    /// nor double-counted (pinned by the
    /// `two_layer_poison_is_counted_once_across_steps` regression test).
    /// The residual approximation: damage retired (evicted/recovered) and
    /// *then* re-introduced at a lower level is absorbed by the max — the
    /// level history, not the event census, is what this field reports.
    pub fn accumulate(&mut self, other: &ModelReport) {
        self.total_detected += other.total_detected;
        self.total_repaired += other.total_repaired;
        self.cache_uncorrectable = self.cache_uncorrectable.max(other.cache_uncorrectable);
    }
}

/// Per-layer KV caches plus the number of token positions fed so far — the
/// whole mutable state of one decode stream.
#[derive(Clone, Debug)]
pub struct ModelKvCache {
    /// One checksummed [`KvCache`] per transformer block.
    pub layers: Vec<KvCache>,
    /// Tokens decoded into the caches so far (the next token's position).
    pub positions: usize,
}

impl ModelKvCache {
    /// Tokens fed so far.
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// Total FP16 payload bytes across layers.
    pub fn size_bytes(&self) -> u64 {
        self.layers.iter().map(KvCache::size_bytes).sum()
    }

    /// Total FP32 checksum-metadata bytes across layers.
    pub fn checksum_bytes(&self) -> u64 {
        self.layers.iter().map(KvCache::checksum_bytes).sum()
    }

    /// Byte footprint split into payload vs protection metadata, summed
    /// across layers (see [`KvCache::size_breakdown`]).
    pub fn size_breakdown(&self) -> SizeBreakdown {
        self.layers
            .iter()
            .map(KvCache::size_breakdown)
            .fold(SizeBreakdown::default(), |acc, b| acc.merged(&b))
    }

    /// The graded protection level this stream's caches were created at
    /// (every layer shares it — see
    /// [`TransformerModel::new_cache_with`]).
    pub fn protection(&self) -> ProtectionLevel {
        self.layers
            .first()
            .map(|c| c.protection())
            .unwrap_or_default()
    }

    /// Sticky unrepairable-damage count across layers (see
    /// [`KvCache::poisoned`]): non-zero means this stream's cached state is
    /// permanently wrong and the only recovery is a fresh prefill. Works
    /// for every backend, including the unprotected decode paths that
    /// never report cache events.
    pub fn poisoned(&self) -> u64 {
        self.layers.iter().map(KvCache::poisoned).sum()
    }

    /// Sticky unrepairable-damage count restricted, per layer, to the
    /// blocks a decode step at the current length would attend under
    /// `window` (see [`KvCache::poisoned_attended`]) — the serving
    /// engine's re-prefill trigger: damage that slid behind the attention
    /// window can no longer reach a future token and must not trigger
    /// recovery (it is retired outright once eviction drops its block).
    /// Like [`poisoned`](ModelKvCache::poisoned), works for every backend.
    pub fn poisoned_attended(&self, window: Option<usize>) -> u64 {
        self.layers
            .iter()
            .map(|c| c.poisoned_attended(window))
            .sum()
    }

    /// Checkpoint the current length for a later
    /// [`truncate_to`](ModelKvCache::truncate_to) — every layer shares the
    /// same logical length, so one [`CacheMark`] covers them all.
    pub fn checkpoint(&self) -> CacheMark {
        CacheMark::at(self.positions)
    }

    /// Roll every layer's cache back to `mark` (see
    /// [`KvCache::truncate_to`]) and rewind `positions` to match. The
    /// merged boundary-heal report is returned for callers that audit it;
    /// the serving engine discards it — correction evidence was already
    /// counted when the rows were read, and anything unlocatable is
    /// carried by the surviving blocks' sticky poison marks.
    pub fn truncate_to(&mut self, mark: CacheMark) -> KvReadReport {
        let mut report = KvReadReport::default();
        for c in &mut self.layers {
            report = report.merged(&c.truncate_to(mark));
        }
        self.positions = mark.position();
        report
    }

    /// Earliest attended block carrying a sticky poison mark in *any*
    /// layer (see [`KvCache::first_poisoned_attended_block`]) — the
    /// damage-localization query behind
    /// [`RecoveryPolicy::ReprefillPartial`]. Layers share geometry,
    /// length, and eviction schedule, so block indices are comparable
    /// across them.
    pub fn first_poisoned_attended_block(&self, window: Option<usize>) -> Option<usize> {
        self.layers
            .iter()
            .filter_map(|c| c.first_poisoned_attended_block(window))
            .min()
    }

    /// Partial-recovery rollback target: the row count `p` to
    /// [`truncate_to`](ModelKvCache::truncate_to) so that the first
    /// poisoned attended block is dropped and re-prefilling rows
    /// `p..` rebuilds a provably clean suffix. `upper` bounds the target
    /// at the last row the caller can re-feed (the emitted history's
    /// final row — anything past it is provisional speculation state).
    ///
    /// Returns `None` — fall back to a full re-prefill — when any of the
    /// viability conditions fail:
    /// * no layer localizes the damage to a block (live uncorrectable
    ///   reads without a sticky mark cannot be rolled back surgically),
    /// * the target would keep nothing (the poisoned block is the first
    ///   attended block, or sits at the eviction frontier),
    /// * the first re-fed row's attention window reaches behind the
    ///   eviction frontier (the rows it must attend no longer exist), or
    /// * a block the rebuilt suffix will attend is itself poisoned
    ///   (partial recovery would re-trigger forever on the same mark).
    pub fn rollback_target(&self, window: Option<usize>, upper: usize) -> Option<usize> {
        let lc = self.layers.first()?;
        let (block, start) = (lc.block(), lc.start());
        let fpb = self.first_poisoned_attended_block(window)?;
        let p = (fpb * block).min(upper);
        if p == 0 || p <= start {
            return None;
        }
        // First re-fed row (position p, visible length p + 1): every row
        // it attends must still be resident after the truncation.
        let r0 = match window {
            Some(w) if p + 1 > w => p + 1 - w,
            _ => 0,
        };
        if r0 < start {
            return None;
        }
        // Every block any re-fed row can attend must be clean — windows
        // only move forward, so length p + 1 attends the earliest set.
        let kept = p.div_ceil(block);
        if (r0 / block..kept).any(|b| self.layers.iter().any(|c| c.block_poisoned(b) > 0)) {
            return None;
        }
        Some(p)
    }
}

impl TransformerModel {
    /// Random model (seeded) with every block using `kernel`.
    pub fn random(seed: u64, config: ModelConfig, kernel: BackendKind) -> Self {
        let blocks = (0..config.layers)
            .map(|l| {
                TransformerBlock::random(
                    seed + 1000 * (l as u64 + 1),
                    config.hidden,
                    config.heads,
                    config.ffn_dim,
                    kernel,
                )
            })
            .collect();
        TransformerModel {
            config,
            embed: Embedding::random(seed, config.vocab, config.hidden, config.max_seq),
            blocks,
            final_norm: LayerNorm::new(config.hidden),
            // The LM head is a huge vocab-wide projection; the paper
            // protects the transformer layers, so it stays unprotected.
            lm_head: Linear::random(seed + 7, config.hidden, config.vocab)
                .with_protection(LinearProtection::None),
            thresholds: Thresholds::calibrated(),
        }
    }

    /// Forward pass: token ids → logits (`seq × vocab`).
    pub fn forward<I: FaultInjector>(&self, tokens: &[u32], inj: &I) -> (MatrixF32, ModelReport) {
        let (h, mut report) = self.forward_hidden(tokens, inj);
        let (logits, head_rep) = self
            .lm_head
            .forward(&h, inj, usize::MAX / 2, &self.thresholds);
        report.total_detected += head_rep.detected;
        report.total_repaired += head_rep.corrected + head_rep.recomputed;
        (logits, report)
    }

    /// Forward pass up to the final hidden states (`seq × hidden`),
    /// skipping the expensive LM head — what the per-token timing
    /// experiments measure.
    pub fn forward_hidden<I: FaultInjector>(
        &self,
        tokens: &[u32],
        inj: &I,
    ) -> (MatrixF32, ModelReport) {
        let mut h = self.embed.forward(tokens);
        let mut report = ModelReport::default();
        for (l, block) in self.blocks.iter().enumerate() {
            let (next, rep) = block.forward(&h, inj, l, &self.thresholds);
            h = next;
            report.absorb_layer(&rep);
        }
        self.final_norm.forward(&mut h);
        (h, report)
    }

    /// Enable/disable causal masking on every block's attention (decode and
    /// prefill then compute the same function; EFTA backends support the
    /// causal setting only through the decode path).
    pub fn with_causal(mut self, causal: bool) -> Self {
        for b in &mut self.blocks {
            b.mha.causal = causal;
        }
        self
    }

    /// *Default* sliding-window attention for the decode paths: each step
    /// attends only the cache blocks holding the most recent `window`
    /// rows, and storage behind the window is front-evicted before each
    /// append — per-stream cache memory is bounded by roughly
    /// `window + cache_block` rows per layer instead of growing with the
    /// sequence. Token-at-a-time decode, chunked prefill, and scheduled
    /// serving all compute the same windowed function (pinned by
    /// `tests/eviction_equivalence.rs`). Decode-only: the prefill path is
    /// unaffected.
    ///
    /// Since the typed-request redesign the window is a **per-stream**
    /// property: this builder is the compatibility shim that sets the
    /// default a [`GenerationRequest`] without its own
    /// [`window`](ft_core::serve::GenerationRequest::window) inherits at
    /// [`ServeSession::submit_request`] time. Requests that do set one
    /// override it, so one session can serve full-attention and windowed
    /// streams side by side. [`TransformerModel::decode_step`] (the raw
    /// token-at-a-time loop, which has no request) always uses the default.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "a zero-row window cannot serve decode");
        for b in &mut self.blocks {
            b.mha.window = Some(window);
        }
        self
    }

    /// Rows per KV-cache block on every block's attention (the granularity
    /// of sliding-window eviction; default 64, the paper's CTA tile).
    /// Affects caches created *after* the call ([`new_cache`]).
    ///
    /// [`new_cache`]: TransformerModel::new_cache
    pub fn with_cache_block(mut self, cache_block: usize) -> Self {
        assert!(cache_block > 0);
        for b in &mut self.blocks {
            b.mha.cache_block = cache_block;
        }
        self
    }

    /// The decode sliding window configured via
    /// [`with_window`](TransformerModel::with_window), if any.
    pub fn window(&self) -> Option<usize> {
        self.blocks.first().and_then(|b| b.mha.window)
    }

    /// Fresh decode state: one empty checksummed KV cache per block.
    pub fn new_cache(&self) -> ModelKvCache {
        self.new_cache_with(ProtectionLevel::Full)
    }

    /// Fresh decode state at a graded protection level: one empty KV cache
    /// per block, each created at `level` (see [`ProtectionLevel`]).
    /// [`new_cache`](TransformerModel::new_cache) is the `Full` case —
    /// bit-identical to the pre-lattice behavior.
    pub fn new_cache_with(&self, level: ProtectionLevel) -> ModelKvCache {
        ModelKvCache {
            layers: self
                .blocks
                .iter()
                .map(|b| b.mha.new_cache().with_protection(level))
                .collect(),
            positions: 0,
        }
    }

    /// One incremental-decode step: embed `token` at the cache's next
    /// position, run every block through its KV cache, and return the
    /// `1 × vocab` logits row. O(cache len) attention and O(1) projection
    /// work — versus a full prefill per token.
    ///
    /// Before computing, all cached state is exposed to the injector at
    /// [`ft_sim::FaultSite::KvCache`]: cache-resident SEUs accumulate
    /// *between* steps, which is exactly the residency window the
    /// checksummed cache protects.
    pub fn decode_step<I: FaultInjector>(
        &self,
        token: u32,
        cache: &mut ModelKvCache,
        inj: &I,
    ) -> (MatrixF32, ModelReport) {
        assert_eq!(
            cache.layers.len(),
            self.blocks.len(),
            "cache does not belong to this model"
        );
        let pos = cache.positions;
        let mut h = self.embed.forward_at(&[token], pos);
        let mut report = ModelReport::default();
        let layers = self.blocks.len();
        for (l, (block, layer_cache)) in self.blocks.iter().zip(&mut cache.layers).enumerate() {
            // Distinct exposure step per (position, layer): stateless-hash
            // injectors would otherwise fire bit-identical fault patterns
            // in every layer's cache.
            layer_cache.expose(inj, (pos * layers + l) as u64);
            let (next, rep) = block.forward_decode(&h, layer_cache, inj, l, &self.thresholds);
            h = next;
            report.absorb_layer(&rep);
        }
        self.final_norm.forward(&mut h);
        cache.positions += 1;
        let (logits, head_rep) = self
            .lm_head
            .forward(&h, inj, usize::MAX / 2, &self.thresholds);
        report.total_detected += head_rep.detected;
        report.total_repaired += head_rep.corrected + head_rep.recomputed;
        (logits, report)
    }

    /// Greedy generation over the checksummed KV-cache decode path — the
    /// one-stream special case of [`TransformerModel::serve`]: the prompt
    /// is consumed in prefill chunks (one batched sweep per chunk, the
    /// vocab-wide LM head run only where a token is actually sampled),
    /// then each new token costs one O(cache) decode sweep instead of an
    /// O(seq) prefill.
    ///
    /// A request with no token budget (`new_tokens == 0`, or a prompt
    /// already at `max_seq`) returns the prompt without running the model
    /// at all — its report is empty. Use [`TransformerModel::decode_step`]
    /// directly to push a prompt through the model without sampling.
    pub fn generate<I: FaultInjector>(
        &self,
        prompt: &[u32],
        new_tokens: usize,
        inj: &I,
    ) -> (Vec<u32>, ModelReport) {
        assert!(!prompt.is_empty(), "generation needs at least one token");
        let mut session = self.serve();
        let id = session.submit_request(GenerationRequest::new(prompt.to_vec(), new_tokens));
        let finished = session.run(inj);
        let stream = finished
            .into_iter()
            .find(|f| f.id == id)
            .expect("the submitted stream finishes");
        (stream.tokens, stream.report)
    }

    /// Greedy generation by full re-prefill each step — the pre-KV-cache
    /// path, kept as the baseline the `decode` bench measures speedup
    /// against. Note its attention is *bidirectional* under the default
    /// non-causal configuration, while the cached path is inherently
    /// causal; build the model [`with_causal`](TransformerModel::with_causal)
    /// to make the two paths compute the same function.
    pub fn generate_prefill<I: FaultInjector>(
        &self,
        prompt: &[u32],
        new_tokens: usize,
        inj: &I,
    ) -> (Vec<u32>, ModelReport) {
        let mut tokens = prompt.to_vec();
        let mut report = ModelReport::default();
        for _ in 0..new_tokens {
            if tokens.len() >= self.config.max_seq {
                break;
            }
            let (logits, rep) = self.forward(&tokens, inj);
            report.accumulate(&rep);
            tokens.push(argmax(logits.row(logits.rows() - 1)) as u32);
        }
        (tokens, report)
    }

    /// Open a continuous-batching serving session with the default
    /// [`SchedulerConfig`]. Submit typed requests with
    /// [`ServeSession::submit_request`] (or, with a caller-allocated id,
    /// [`ServeSession::submit_request_with_id`]) and drive them with
    /// [`ServeSession::sweep_events`] — each sweep emits the typed
    /// [`EngineEvent`] lifecycle — or fire-and-forget with
    /// [`ServeSession::run`].
    ///
    /// ```
    /// use ft_sim::NoFaults;
    /// use ft_transformer::{
    ///     BackendKind, EngineEvent, FinishReason, GenerationRequest, ModelConfig,
    ///     RecoveryPolicy, TransformerModel,
    /// };
    ///
    /// let cfg = ModelConfig {
    ///     name: "doc",
    ///     layers: 1,
    ///     heads: 2,
    ///     hidden: 16,
    ///     ffn_dim: 32,
    ///     vocab: 31,
    ///     max_seq: 32,
    /// };
    /// let model = TransformerModel::random(7, cfg, BackendKind::Flash).with_causal(true);
    /// let mut session = model.serve();
    /// let id = session.submit_request(
    ///     GenerationRequest::new(vec![1, 2, 3], 2)
    ///         .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 2 }),
    /// );
    /// // Drive sweep by sweep, observing the typed lifecycle.
    /// let mut tokens = Vec::new();
    /// while !session.idle() {
    ///     for ev in session.sweep_events(&NoFaults) {
    ///         match ev {
    ///             EngineEvent::TokenEmitted { token, .. } => tokens.push(token),
    ///             EngineEvent::Finished { reason, .. } => {
    ///                 assert_eq!(reason, FinishReason::MaxTokens); // clean run: no recovery
    ///             }
    ///             _ => {}
    ///         }
    ///     }
    /// }
    /// let finished = session.take_finished();
    /// assert_eq!(finished[0].id, id);
    /// assert_eq!(finished[0].recoveries, 0);
    /// assert_eq!(&finished[0].tokens[3..], &tokens[..]);
    /// ```
    pub fn serve(&self) -> ServeSession<&TransformerModel> {
        self.serve_with(SchedulerConfig::default())
    }

    /// Open a serving session with explicit slot-table width, prefill
    /// chunk size, and optional cache-byte admission budget
    /// ([`SchedulerConfig::memory_budget`]): when set, pending streams are
    /// admitted while the session's total cache footprint (payload +
    /// checksum metadata, reported to the scheduler before every sweep)
    /// plus per-stream token-budget projections fits the budget —
    /// admission by bytes, not stream count. The projections count FP16
    /// payload only, so the budget throttles admission rather than hard-
    /// capping the realised peak (checksum metadata rides on top; see
    /// [`SchedulerConfig::memory_budget`]) — check
    /// [`ServeSession::peak_cache_bytes`] for what a workload actually
    /// occupied.
    pub fn serve_with(&self, cfg: SchedulerConfig) -> ServeSession<&TransformerModel> {
        ServeSession::new(self, cfg)
    }

    /// Open a serving session that *owns* the model — the `Send` form a
    /// push-based serving loop moves onto its worker thread (see
    /// [`Engine`](crate::engine::Engine)). Scheduling behavior is identical
    /// to [`serve_with`](TransformerModel::serve_with); clone the model
    /// first if the caller needs to keep using it.
    pub fn into_serve(self, cfg: SchedulerConfig) -> ServeSession<TransformerModel> {
        ServeSession::new(self, cfg)
    }

    /// One batched decode sweep over many streams: per stream, embed its
    /// fed tokens at the cache's next positions; per layer, expose every
    /// stream's cache to the injector (the between-sweep residency window)
    /// and run the shared multi-stream attention fan-out; finally run the
    /// LM head on the rows that sample a token.
    ///
    /// `feeds[i]` must pair with `caches[i]`. Returns, per stream, the
    /// final-normed hidden rows of the feed's last `sample_rows` positions
    /// (`sample_rows × hidden`, if the feed asked for any), the sweep's
    /// model-level report, and the attention-level [`FtReport`] attributed
    /// to that stream alone. The vocab-wide LM head is deliberately *not*
    /// run here: the engine evaluates it lazily, row by row, stopping at
    /// the first rejected draft — under speculation the head cost per
    /// *emitted* token then matches plain decode exactly, and only the
    /// attention/FFN sweep is amortized across the drafted rows.
    fn run_sweep<I: FaultInjector>(
        &self,
        feeds: &[SweepFeed],
        caches: &mut [&mut ModelKvCache],
        inj: &I,
    ) -> Vec<(Option<MatrixF32>, ModelReport, FtReport)> {
        let layers = self.blocks.len();
        for (_, c) in feeds.iter().zip(&*caches) {
            assert_eq!(
                c.layers.len(),
                layers,
                "a sweep cache does not belong to this model"
            );
        }
        let streams: Vec<StreamId> = feeds.iter().map(|f| f.stream).collect();
        let windows: Vec<Option<usize>> = feeds.iter().map(|f| f.window).collect();
        let base_pos: Vec<usize> = caches.iter().map(|c| c.positions).collect();
        let mut hs: Vec<MatrixF32> = feeds
            .iter()
            .zip(&base_pos)
            .map(|(f, &pos)| self.embed.forward_at(&f.tokens, pos))
            .collect();
        let mut reports = vec![ModelReport::default(); feeds.len()];
        let mut attn_reports = vec![FtReport::default(); feeds.len()];
        for (l, block) in self.blocks.iter().enumerate() {
            let mut layer_caches: Vec<&mut KvCache> =
                caches.iter_mut().map(|c| &mut c.layers[l]).collect();
            for (i, lc) in layer_caches.iter_mut().enumerate() {
                // Exposure models residency between sweeps; the step is
                // namespaced per stream so a shared stateless injector does
                // not fire identical patterns in every stream's cache.
                lc.expose(inj, serve_expose_step(streams[i], base_pos[i], layers, l));
            }
            let outs = block.forward_decode_batch(
                &hs,
                &mut layer_caches,
                &streams,
                &windows,
                inj,
                l,
                &self.thresholds,
            );
            for (i, (h, rep)) in outs.into_iter().enumerate() {
                hs[i] = h;
                attn_reports[i] = attn_reports[i].merged(&rep.mha.attention);
                reports[i].absorb_layer(&rep);
            }
        }
        for (c, f) in caches.iter_mut().zip(feeds) {
            c.positions += f.tokens.len();
        }
        feeds
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let rows = if f.sample_rows > 0 {
                    // Only the chunk's trailing sample rows are normed and
                    // handed to the engine's lazy head loop; the interior
                    // prefill rows never pay the vocab-wide head.
                    let h = &hs[i];
                    debug_assert!(f.sample_rows <= h.rows(), "more sample rows than fed rows");
                    let base = h.rows() - f.sample_rows;
                    let mut m = Matrix::from_fn(f.sample_rows, h.cols(), |r, j| h.get(base + r, j));
                    self.final_norm.forward(&mut m);
                    Some(m)
                } else {
                    None
                };
                (rows, reports[i], attn_reports[i])
            })
            .collect()
    }
}

/// One stream's share of a batched sweep, as the engine hands it to
/// [`TransformerModel::run_sweep`].
struct SweepFeed {
    stream: StreamId,
    tokens: Vec<u32>,
    /// Trailing rows of the feed whose normed hidden states the engine
    /// will sample from: 0 for interior prefill chunks, 1 for plain
    /// decode, `1 + speculate` for a draft-verify sweep.
    sample_rows: usize,
    /// Trailing tokens of the feed that are provisional drafts (the last
    /// `speculate` of `tokens`), to be verified against the engine's own
    /// samples and rolled back past the first mismatch.
    speculate: usize,
    window: Option<usize>,
    /// The stream's graded protection level: any cache (re)built for the
    /// stream this sweep — including recovery re-prefills — is created at
    /// this level.
    protection: ProtectionLevel,
}

/// Cache-exposure step namespace for serving. Exposure steps are drawn
/// from the same `pos * layers + layer` lattice as
/// [`TransformerModel::decode_step`], with stream 0 unshifted and streams
/// ≥ 1 shifted into disjoint ranges, so a shared injector can target — and
/// a report can attribute — one stream's cache in isolation.
///
/// A session exposes caches once per *sweep* (at the sweep's base
/// position), not once per token: during chunked prefill only the chunk
/// bases (`0, prefill_chunk, 2·prefill_chunk, …`) appear, and interior
/// prompt positions are skipped — target those bases, or run with
/// `prefill_chunk = 1` to reproduce the token-at-a-time exposure schedule
/// exactly. Decode-phase sweeps (one token each) match `decode_step`'s
/// schedule position for position.
pub fn serve_expose_step(stream: StreamId, pos: usize, layers: usize, layer: usize) -> u64 {
    let local = (pos * layers + layer) as u64;
    debug_assert!(
        local < (1 << 20),
        "position × layers exceeds the per-stream exposure namespace"
    );
    (stream.0 << 20) + local
}

/// A retired serving stream: its full token history, fault accounting, and
/// lifecycle outcome.
#[derive(Clone, Debug)]
pub struct FinishedStream {
    /// Stream identity (as returned by [`ServeSession::submit_request`]).
    pub id: StreamId,
    /// Prompt followed by the sampled continuation.
    pub tokens: Vec<u32>,
    /// Model-level fault accounting accumulated over the stream's sweeps
    /// (projections, attention, FFN, LM head).
    pub report: ModelReport,
    /// Attention-kernel fault history attributed to this stream alone —
    /// per-stream cache detected/corrected/uncorrectable counts included.
    pub attention: FtReport,
    /// Why the stream retired. On [`FinishReason::AbortedPoisoned`] the
    /// token history may be wrong from the last poisoned position onward.
    pub finish: FinishReason,
    /// Re-prefill recovery attempts this stream went through (aborted
    /// streams carry the attempts they consumed; [`finish`] says whether
    /// they ultimately succeeded).
    ///
    /// [`finish`]: FinishedStream::finish
    pub recoveries: u32,
    /// Times the stream was parked (preemption or backpressure) and
    /// resumed through re-prefill. Not a fault: a preempted-and-resumed
    /// stream's tokens are bit-identical to an uninterrupted run.
    pub preemptions: u32,
    /// History tokens the recovery requeues scheduled for re-feeding: full
    /// re-prefills count the whole history, partial re-prefills only the
    /// suffix past the truncation point — the measurable saving of
    /// [`RecoveryPolicy::ReprefillPartial`].
    pub recovery_fed: usize,
    /// Provisional tokens drafted across the stream's verify sweeps
    /// (zero unless the request carried a
    /// [`SpeculationPolicy`](ft_core::serve::SpeculationPolicy)).
    pub spec_drafted: u64,
    /// Drafted tokens that verified against the engine's own samples and
    /// were committed — `spec_accepted / spec_drafted` is the stream's
    /// realized acceptance rate.
    pub spec_accepted: u64,
    /// The graded cache-protection level the stream ran at — every cache
    /// the engine built for it (admission, recovery re-prefill, migration
    /// re-adoption) was created at this level.
    pub protection: ProtectionLevel,
}

/// A continuous-batching serving session over one [`TransformerModel`]:
/// many generation streams, each with its own per-layer [`ModelKvCache`],
/// request configuration ([`GenerationRequest`]: per-stream window,
/// sampling mode, recovery policy), and fault history, multiplexed through
/// shared batched decode sweeps that emit typed [`EngineEvent`]s.
///
/// ```text
/// submit_request ─▶ scheduler slot table ─▶ sweep: embed → layers (shared
///   attention fan-out, per-stream windows) → LM head + per-stream
///   sampling ─▶ events: TokenEmitted / FaultCorrected / EvictedBlocks
///                        / CachePoisoned → Recovering (drop cache,
///                          re-prefill history) or Finished(AbortedPoisoned)
///   ─▶ retire finished streams with a FinishReason
/// ```
///
/// The recovery half is the paper's detect → correct → **recover** story
/// closed end to end: when a stream's attended window carries unrepairable
/// cache damage and its request asked for
/// [`RecoveryPolicy::ReprefillBounded`], the engine discards the suspect
/// sweep output, drops the stream's cache, replays its prompt *plus every
/// already-emitted token* through chunked prefill, and resumes decoding —
/// deterministic sampling makes a successful recovery bit-identical to an
/// undamaged run (pinned by `tests/engine_recovery.rs`).
///
/// [`TransformerModel::generate`] is the one-stream special case.
///
/// The session is generic over model *ownership*: `M` is anything that
/// borrows a [`TransformerModel`] — `&TransformerModel` for the classic
/// in-thread session ([`TransformerModel::serve`]), or the model itself
/// for the owned, `Send` session a serving loop moves onto its worker
/// thread ([`TransformerModel::into_serve`]).
pub struct ServeSession<M: core::borrow::Borrow<TransformerModel> = TransformerModel> {
    model: M,
    scheduler: DecodeScheduler,
    caches: Vec<(StreamId, ModelKvCache)>,
    reports: Vec<(StreamId, ModelReport)>,
    finished: Vec<FinishedStream>,
    events: Vec<EngineEvent>,
    recoveries: u64,
    preemptions: u64,
    peak_cache_bytes: u64,
    peak_cache_breakdown: SizeBreakdown,
}

impl<M: core::borrow::Borrow<TransformerModel>> ServeSession<M> {
    /// Open a session over `model` (borrowed or owned) with the given
    /// scheduler sizing — the common constructor behind
    /// [`TransformerModel::serve_with`] and
    /// [`TransformerModel::into_serve`].
    pub fn new(model: M, cfg: SchedulerConfig) -> Self {
        let (bytes_per_token, block) = {
            let m: &TransformerModel = model.borrow();
            // Projection for admission: FP16 K+V payload per token per
            // layer (2 tensors × hidden × 2 bytes); checksum metadata
            // rides along in the noted totals once streams are resident.
            (
                (4 * m.config.hidden * m.config.layers) as u64,
                m.blocks.first().map_or(0, |b| b.mha.cache_block),
            )
        };
        let mut scheduler = DecodeScheduler::new(cfg);
        scheduler.set_bytes_per_token(bytes_per_token);
        // Under a sliding window a stream keeps at most ~window +
        // cache_block rows resident however long its prompt — the window
        // is a per-request property now, so the scheduler derives each
        // windowed stream's projection cap itself; we supply the
        // block-granularity slack (one partially evictable block).
        scheduler.set_window_slack(block);
        ServeSession {
            model,
            scheduler,
            caches: Vec::new(),
            reports: Vec::new(),
            finished: Vec::new(),
            events: Vec::new(),
            recoveries: 0,
            preemptions: 0,
            peak_cache_bytes: 0,
            peak_cache_breakdown: SizeBreakdown::default(),
        }
    }
    /// Submit a typed [`GenerationRequest`]. `max_new_tokens` is clamped to
    /// the model's `max_seq`; a request without its own window inherits the
    /// model default ([`TransformerModel::with_window`]). The stream joins
    /// the next sweep with a free slot — mid-flight, without stalling
    /// streams already decoding.
    pub fn submit_request(&mut self, req: GenerationRequest) -> StreamId {
        let req = self.resolve_request(req);
        self.scheduler.submit_request(req)
    }

    /// [`submit_request`](ServeSession::submit_request) with a
    /// caller-chosen [`StreamId`]: the serving loop allocates ids on the
    /// submitting thread and replays them here in whatever order its
    /// submission channel delivers them. Panics if `id` is already known
    /// to the session's scheduler.
    pub fn submit_request_with_id(&mut self, req: GenerationRequest, id: StreamId) -> StreamId {
        let req = self.resolve_request(req);
        self.scheduler.submit_request_with_id(req, id)
    }

    /// Clamp the token budget to the model's `max_seq` and resolve the
    /// model-default window for requests without their own.
    fn resolve_request(&self, mut req: GenerationRequest) -> GenerationRequest {
        let model = self.model.borrow();
        assert!(!req.prompt.is_empty(), "a stream needs at least one token");
        assert!(
            req.prompt.len() <= model.config.max_seq,
            "prompt exceeds max_seq"
        );
        req.max_new_tokens = req
            .max_new_tokens
            .min(model.config.max_seq - req.prompt.len());
        req.window = req.window.or(model.window());
        req
    }

    /// Run one batched sweep and return its typed [`EngineEvent`]s: plan
    /// (admitting pending streams), feed every active stream its next
    /// chunk through the shared fan-out, sample where due (per-stream
    /// [`SamplingMode`]), apply each stream's [`RecoveryPolicy`] to
    /// poisoned caches, and retire finished streams.
    pub fn sweep_events<I: FaultInjector>(&mut self, inj: &I) -> Vec<EngineEvent> {
        self.sweep_inner(inj);
        std::mem::take(&mut self.events)
    }

    /// Drain the events queued since the last
    /// [`sweep_events`](ServeSession::sweep_events) without sweeping —
    /// park/resume transitions driven from outside a sweep (backpressure,
    /// work migration) queue their events here, and the serving loop must
    /// route them before shipping a stream elsewhere.
    pub fn drain_events(&mut self) -> Vec<EngineEvent> {
        self.absorb_park_resume();
        std::mem::take(&mut self.events)
    }

    fn sweep_inner<I: FaultInjector>(&mut self, inj: &I) -> usize {
        // Report the live footprint so memory-budget admission sees what
        // the resident streams actually occupy.
        self.scheduler.note_bytes(self.cache_bytes());
        let plan = self.scheduler.plan();
        // Planning may have parked or resumed streams (preemption);
        // absorb those transitions before feeding anything.
        self.absorb_park_resume();
        if plan.is_empty() {
            self.collect_finished();
            return 0;
        }
        for item in &plan {
            // Cache and report existence are tracked separately: a stream
            // resuming from a park gets a fresh cache but keeps the model
            // report it accumulated before parking.
            if !self.caches.iter().any(|(id, _)| *id == item.stream) {
                self.caches.push((
                    item.stream,
                    self.model.borrow().new_cache_with(item.protection),
                ));
            }
            if !self.reports.iter().any(|(id, _)| *id == item.stream) {
                self.reports.push((item.stream, ModelReport::default()));
            }
        }
        // Pair feeds with caches in storage order (plan order and storage
        // order both follow admission, but matching by id keeps the sweep
        // correct under any future scheduling policy).
        let mut feeds: Vec<SweepFeed> = Vec::with_capacity(plan.len());
        let mut cache_refs: Vec<&mut ModelKvCache> = Vec::with_capacity(plan.len());
        for (id, cache) in self.caches.iter_mut() {
            if let Some(item) = plan.iter().find(|it| it.stream == *id) {
                feeds.push(SweepFeed {
                    stream: *id,
                    tokens: item.feed.clone(),
                    sample_rows: if item.sample { 1 + item.speculate } else { 0 },
                    speculate: item.speculate,
                    window: item.window,
                    protection: item.protection,
                });
                cache_refs.push(cache);
            }
        }
        debug_assert_eq!(feeds.len(), plan.len());
        let results = self.model.borrow().run_sweep(&feeds, &mut cache_refs, inj);
        let n = feeds.len();
        self.peak_cache_bytes = self.peak_cache_bytes.max(self.cache_bytes());
        let split = self.cache_breakdown();
        if split.total_bytes() > self.peak_cache_breakdown.total_bytes() {
            self.peak_cache_breakdown = split;
        }
        for (feed, (rows, rep, attn)) in feeds.iter().zip(results) {
            let id = feed.stream;
            let entry = self
                .reports
                .iter_mut()
                .find(|(rid, _)| *rid == id)
                .expect("report entry exists for every planned stream");
            entry.1.accumulate(&rep);
            if attn.total_detected() > 0 {
                self.events.push(EngineEvent::FaultCorrected {
                    stream: id,
                    detected: attn.total_detected(),
                    repaired: attn.total_repaired(),
                });
            }
            if attn.cache_evicted_blocks > 0 {
                self.events.push(EngineEvent::EvictedBlocks {
                    stream: id,
                    blocks: attn.cache_evicted_blocks,
                });
            }
            // Poison trigger, scoped to the stream's attended window: the
            // sticky per-block marks work for every backend (append-time
            // laundering needs no protected kernel), and the sweep report
            // adds the EFTA read path's live uncorrectable detections.
            // Marks behind the window — and marks retired by eviction,
            // which leave with their block — must not trigger.
            let sticky = self
                .caches
                .iter()
                .find(|(cid, _)| *cid == id)
                .map_or(0, |(_, c)| c.poisoned_attended(feed.window));
            let poisoned = sticky.max(attn.cache_uncorrectable);
            if poisoned > 0 {
                self.events.push(EngineEvent::CachePoisoned {
                    stream: id,
                    events: poisoned,
                });
            }
            let state = self
                .scheduler
                .active_stream(id)
                .expect("planned stream is active");
            let (recovery, attempts, sampling, position) = (
                state.recovery,
                state.recoveries,
                state.sampling,
                state.total(),
            );
            match recovery {
                RecoveryPolicy::ReprefillBounded { max_attempts } if poisoned > 0 => {
                    // Whatever this sweep produced was computed over
                    // damaged state — a sampled token must not enter the
                    // history. Either give up (budget spent) or drop the
                    // cache and replay the emitted history.
                    if attempts >= max_attempts {
                        self.scheduler
                            .abort(id, &attn, FinishReason::AbortedPoisoned { attempts });
                    } else {
                        let attempt = self.scheduler.requeue(id, &attn);
                        self.recoveries += 1;
                        self.events.push(EngineEvent::Recovering {
                            stream: id,
                            attempt,
                        });
                        let slot = self
                            .caches
                            .iter_mut()
                            .find(|(cid, _)| *cid == id)
                            .expect("planned stream has a cache");
                        slot.1 = self.model.borrow().new_cache_with(feed.protection);
                    }
                }
                RecoveryPolicy::ReprefillPartial { max_attempts } if poisoned > 0 => {
                    // Same discard rule as the bounded policy — whatever
                    // this sweep produced was computed over damaged state —
                    // but the rollback primitive localizes the damage:
                    // truncate to the last clean boundary before the first
                    // poisoned attended block and replay only the suffix,
                    // O(window) recovery cost instead of O(history).
                    if attempts >= max_attempts {
                        self.scheduler
                            .abort(id, &attn, FinishReason::AbortedPoisoned { attempts });
                    } else {
                        let slot = self
                            .caches
                            .iter_mut()
                            .find(|(cid, _)| *cid == id)
                            .expect("planned stream has a cache");
                        let target = slot
                            .1
                            .rollback_target(feed.window, position.saturating_sub(1));
                        let attempt = if let Some(p) = target {
                            // The boundary-heal report is discarded:
                            // read-time verification already counted the
                            // evidence, and surviving marks stay sticky.
                            let _ = slot.1.truncate_to(CacheMark::at(p));
                            self.scheduler.requeue_suffix(id, &attn, p)
                        } else {
                            // Damage not block-localized, or the rebuilt
                            // suffix would attend evicted or still-poisoned
                            // rows: fall back to the full replay.
                            slot.1 = self.model.borrow().new_cache_with(feed.protection);
                            self.scheduler.requeue(id, &attn)
                        };
                        self.recoveries += 1;
                        self.events.push(EngineEvent::Recovering {
                            stream: id,
                            attempt,
                        });
                    }
                }
                _ => {
                    if feed.sample_rows == 0 {
                        self.scheduler.record(id, None, &attn);
                        continue;
                    }
                    let rows = rows.expect("sampling feed returns hidden rows");
                    let drafts = &feed.tokens[feed.tokens.len() - feed.speculate..];
                    let model = self.model.borrow();
                    let mut head_rep = ModelReport::default();
                    let mut emitted: Vec<u32> = Vec::with_capacity(feed.sample_rows);
                    let mut accepted = 0usize;
                    for j in 0..feed.sample_rows {
                        // Lazy vocab-wide head: one row per *emitted* token,
                        // stopping at the first rejected draft — under
                        // speculation the head cost per emitted token is
                        // exactly plain decode's, and only the fused
                        // attention/FFN sweep is amortized across rows.
                        let row = Matrix::from_fn(1, rows.cols(), |_, c| rows.get(j, c));
                        let (logits, hr) =
                            model
                                .lm_head
                                .forward(&row, inj, usize::MAX / 2, &model.thresholds);
                        head_rep.total_detected += hr.detected;
                        head_rep.total_repaired += hr.corrected + hr.recomputed;
                        let t = sample_token(sampling, &logits, id, position + j);
                        emitted.push(t);
                        self.events.push(EngineEvent::TokenEmitted {
                            stream: id,
                            token: t,
                        });
                        if j < drafts.len() && t == drafts[j] {
                            accepted += 1;
                        } else {
                            break;
                        }
                    }
                    if accepted < feed.speculate {
                        // Roll the rejected provisional rows back so the
                        // cache again trails the emitted history by exactly
                        // one row — by construction the next sweep starts
                        // from state bit-identical to plain decode's.
                        let slot = self
                            .caches
                            .iter_mut()
                            .find(|(cid, _)| *cid == id)
                            .expect("planned stream has a cache");
                        let _ = slot.1.truncate_to(CacheMark::at(position + accepted));
                    }
                    let entry = self
                        .reports
                        .iter_mut()
                        .find(|(rid, _)| *rid == id)
                        .expect("report entry exists for every planned stream");
                    entry.1.accumulate(&head_rep);
                    if feed.speculate == 0 {
                        self.scheduler.record(id, Some(emitted[0]), &attn);
                    } else {
                        self.scheduler.record_speculative(
                            id,
                            &emitted,
                            feed.speculate,
                            accepted,
                            &attn,
                        );
                    }
                }
            }
        }
        self.collect_finished();
        n
    }

    /// Sweep until every submitted stream has retired, then drain them
    /// (ordered by stream id). Events are discarded sweep by sweep — drive
    /// the session with [`sweep_events`](ServeSession::sweep_events) to
    /// observe the lifecycle.
    pub fn run<I: FaultInjector>(&mut self, inj: &I) -> Vec<FinishedStream> {
        while !self.scheduler.idle() {
            self.sweep_inner(inj);
            self.events.clear();
        }
        self.take_finished()
    }

    /// Park an active stream: drop its cache, keep its emitted tokens, and
    /// requeue it to be resumed later through the bit-identical chunked
    /// re-prefill path. Emits [`EngineEvent::Preempted`] (in the next
    /// [`sweep_events`](ServeSession::sweep_events) batch) on success.
    /// Returns `false` — a no-op — when the stream is not active, is
    /// mid-sweep, or is already done; the serving loop's backpressure
    /// decisions race benignly with retirement.
    pub fn park_stream(&mut self, stream: StreamId) -> bool {
        let parked = self.scheduler.park(stream);
        self.absorb_park_resume();
        parked
    }

    /// Backpressure hold: keep the stream's slot and cache but stop
    /// feeding it until [`release_stream`](ServeSession::release_stream).
    /// Returns `false` when the stream is not active or already held.
    pub fn hold_stream(&mut self, stream: StreamId) -> bool {
        self.scheduler.hold(stream)
    }

    /// Lift a backpressure hold. Returns `false` when the stream is not
    /// active or was not held.
    pub fn release_stream(&mut self, stream: StreamId) -> bool {
        self.scheduler.release(stream)
    }

    /// True while `stream` holds a decode slot (planned, held, or awaiting
    /// its record — parked and retired streams are not active).
    pub fn is_active(&self, stream: StreamId) -> bool {
        self.scheduler.active_stream(stream).is_some()
    }

    /// Ids of the streams waiting for a slot, in queue order.
    pub fn pending_stream_ids(&self) -> Vec<StreamId> {
        self.scheduler.pending_ids()
    }

    /// Ids of the streams holding slots, in admission order.
    pub fn active_stream_ids(&self) -> Vec<StreamId> {
        self.scheduler.active_ids()
    }

    /// Remove a *pending* stream for adoption by another session (work
    /// migration between fleet shards). Active streams must be
    /// [`park_stream`](ServeSession::park_stream)ed first — a parked
    /// stream has no cache, so only scheduler state and the accumulated
    /// [`ModelReport`] travel; the adopting shard rebuilds the cache by
    /// chunked re-prefill, bit-identical to a never-migrated run. Route
    /// [`drain_events`](ServeSession::drain_events) before extracting so
    /// the park's `Preempted` event is not lost with the stream.
    pub fn extract_stream(&mut self, stream: StreamId) -> Option<(StreamState, ModelReport)> {
        let state = self.scheduler.extract_pending(stream)?;
        debug_assert!(
            !self.caches.iter().any(|(id, _)| *id == stream),
            "a pending stream cannot hold a cache"
        );
        let report = self
            .reports
            .iter()
            .position(|(id, _)| *id == stream)
            .map(|i| self.reports.remove(i).1)
            .unwrap_or_default();
        Some((state, report))
    }

    /// Adopt a stream extracted from another session: the receiving half
    /// of [`extract_stream`](ServeSession::extract_stream). The stream
    /// joins the queue and re-prefills its history on the next planned
    /// sweep; if it was parked on the donor, admission here emits the
    /// [`EngineEvent::Resumed`] the park promised.
    pub fn adopt_stream(&mut self, state: StreamState, report: ModelReport) {
        let id = state.id;
        self.scheduler.adopt_pending(state);
        debug_assert!(!self.reports.iter().any(|(rid, _)| *rid == id));
        self.reports.push((id, report));
    }

    /// Total park transitions (preemption + backpressure) across the
    /// session; per-stream counts ride on [`FinishedStream::preemptions`].
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// The protection level of `stream`'s *resident* cache — `None` while
    /// the stream holds no cache (pending, parked, or retired). Every
    /// cache the session builds for a stream — admission, re-prefill
    /// recovery, park/resume, migration re-adoption — must come back at
    /// the level its [`GenerationRequest`] asked for; this is the
    /// introspection hook the protection-survival suite pins that with.
    pub fn stream_cache_protection(&self, stream: StreamId) -> Option<ProtectionLevel> {
        self.caches
            .iter()
            .find(|(id, _)| *id == stream)
            .map(|(_, c)| c.protection())
    }

    /// Turn the scheduler's park/resume transitions into session state:
    /// a parked stream's cache is dropped (its model report survives for
    /// the resume), and both directions surface as typed events.
    fn absorb_park_resume(&mut self) {
        for id in self.scheduler.drain_parked() {
            self.caches.retain(|(cid, _)| *cid != id);
            self.preemptions += 1;
            self.events.push(EngineEvent::Preempted { stream: id });
        }
        for id in self.scheduler.drain_resumed() {
            self.events.push(EngineEvent::Resumed { stream: id });
        }
    }

    /// Total re-prefill recovery attempts across the session — the
    /// serving report's headline recovery count. Attempts by streams that
    /// later aborted are included; per-stream detail (attempts + outcome)
    /// rides on [`FinishedStream::recoveries`] / [`FinishedStream::finish`].
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// True when no stream is active or queued.
    pub fn idle(&self) -> bool {
        self.scheduler.idle()
    }

    /// Streams currently holding decode slots.
    pub fn active_streams(&self) -> usize {
        self.scheduler.active_len()
    }

    /// Streams waiting for a free slot.
    pub fn pending_streams(&self) -> usize {
        self.scheduler.pending_len()
    }

    /// Current total cache footprint across resident streams: FP16 K/V
    /// payload plus FP32 checksum metadata, all layers.
    pub fn cache_bytes(&self) -> u64 {
        self.caches
            .iter()
            .map(|(_, c)| c.size_bytes() + c.checksum_bytes())
            .sum()
    }

    /// Largest [`cache_bytes`](ServeSession::cache_bytes) observed after
    /// any sweep — the bounded-memory serving metric: under a sliding
    /// window this flattens instead of growing with generated length.
    pub fn peak_cache_bytes(&self) -> u64 {
        self.peak_cache_bytes
    }

    /// The footprint split at the peak-occupancy sweep (sampled at the
    /// same instant as [`peak_cache_bytes`](ServeSession::peak_cache_bytes),
    /// before that sweep's retiring streams drop their caches): how much
    /// of the peak was FP16 payload vs FP32 protection metadata.
    pub fn peak_cache_breakdown(&self) -> SizeBreakdown {
        self.peak_cache_breakdown
    }

    /// Current cache footprint split into FP16 payload vs FP32 protection
    /// metadata, summed over resident streams (see
    /// [`ModelKvCache::size_breakdown`]) — how the graded protection
    /// lattice's byte overhead shows up in a live session.
    pub fn cache_breakdown(&self) -> SizeBreakdown {
        self.caches
            .iter()
            .map(|(_, c)| c.size_breakdown())
            .fold(SizeBreakdown::default(), |acc, b| acc.merged(&b))
    }

    /// Drain retired streams, ordered by stream id.
    pub fn take_finished(&mut self) -> Vec<FinishedStream> {
        self.collect_finished();
        let mut out = std::mem::take(&mut self.finished);
        out.sort_by_key(|f| f.id);
        out
    }

    fn collect_finished(&mut self) {
        for s in self.scheduler.take_finished() {
            let report = self
                .reports
                .iter()
                .position(|(id, _)| *id == s.id)
                .map(|i| self.reports.remove(i).1)
                .unwrap_or_default();
            self.caches.retain(|(id, _)| *id != s.id);
            let reason = s.finish.unwrap_or(FinishReason::MaxTokens);
            self.events.push(EngineEvent::Finished {
                stream: s.id,
                reason,
            });
            self.finished.push(FinishedStream {
                id: s.id,
                tokens: s.tokens(),
                report,
                attention: s.report,
                finish: reason,
                recoveries: s.recoveries,
                preemptions: s.preemptions,
                recovery_fed: s.recovery_fed,
                spec_drafted: s.spec_drafted,
                spec_accepted: s.spec_accepted,
                protection: s.protection,
            });
        }
    }
}

/// Pick the next token from a `1 × vocab` logits row per the stream's
/// [`SamplingMode`]. Deterministic in every mode, and keyed by the token's
/// absolute position so a re-prefill recovery re-draws exactly the tokens
/// it replays.
fn sample_token(mode: SamplingMode, logits: &MatrixF32, stream: StreamId, position: usize) -> u32 {
    let row = logits.row(0);
    match mode {
        SamplingMode::Greedy => argmax(row) as u32,
        SamplingMode::TopK { k, seed } => {
            let k = k.clamp(1, row.len());
            // Partition the k largest to the front, then order only those
            // k — O(V + k log k) on the per-token hot path instead of a
            // full vocab sort. The comparator is total (ties to the lower
            // index), so the selected set and order are identical to a
            // full sort's first k.
            let cmp = |a: &usize, b: &usize| {
                row[*b]
                    .partial_cmp(&row[*a])
                    .unwrap_or(core::cmp::Ordering::Equal)
                    .then(a.cmp(b))
            };
            let mut idx: Vec<usize> = (0..row.len()).collect();
            if k < idx.len() {
                idx.select_nth_unstable_by(k - 1, cmp);
                idx.truncate(k);
            }
            idx.sort_unstable_by(cmp);
            let h = mix64(
                seed ^ stream.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (position as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
            );
            idx[(h % k as u64) as usize] as u32
        }
    }
}

/// SplitMix64 finaliser (the stateless draw behind [`SamplingMode::TopK`]).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Index of the largest logit.
fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

impl ModelReport {
    /// Per-*layer* aggregation within one step: every counter sums,
    /// `cache_uncorrectable` included — each layer's sticky level is a
    /// distinct physical cache's damage, so a step that sees two poisoned
    /// layers reports level 2. Across steps the re-reported levels are then
    /// folded by [`accumulate`](ModelReport::accumulate)'s max, not
    /// re-summed.
    fn absorb_layer(&mut self, rep: &BlockReport) {
        self.total_detected += rep.mha.projections.detected
            + rep.mha.attention.total_detected()
            + rep.ffn.projections.detected
            + rep.ffn.activation.restricted;
        self.total_repaired += rep.mha.projections.corrected
            + rep.mha.projections.recomputed
            + rep.mha.attention.total_repaired()
            + rep.ffn.projections.corrected
            + rep.ffn.projections.recomputed
            + rep.ffn.activation.restricted;
        // Summed across the layers of one step; across steps the sticky
        // re-reports are folded by `accumulate`'s max, not re-summed.
        self.cache_uncorrectable += rep.mha.attention.cache_uncorrectable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::efta::EftaOptions;
    use ft_sim::{FaultSite, NoFaults, OpCoord, SeuInjector};

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            name: "tiny",
            layers: 2,
            heads: 4,
            hidden: 32,
            ffn_dim: 64,
            vocab: 101,
            max_seq: 64,
        }
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let model = TransformerModel::random(1, tiny_config(), BackendKind::Flash);
        let tokens: Vec<u32> = (0..16).collect();
        let (l1, rep) = model.forward(&tokens, &NoFaults);
        let (l2, _) = model.forward(&tokens, &NoFaults);
        assert_eq!(l1.shape(), (16, 101));
        assert_eq!(l1, l2);
        assert_eq!(rep.total_detected, 0);
    }

    #[test]
    fn efta_model_matches_flash_model_when_clean() {
        let flash = TransformerModel::random(2, tiny_config(), BackendKind::Flash);
        let efta = TransformerModel {
            blocks: flash
                .blocks
                .iter()
                .map(|b| TransformerBlock {
                    mha: crate::mha::MultiHeadAttention {
                        kernel: BackendKind::Efta(EftaOptions::optimized()),
                        ..b.mha.clone()
                    },
                    ..b.clone()
                })
                .collect(),
            ..flash.clone()
        };
        let tokens: Vec<u32> = (0..24).map(|i| i * 3 % 101).collect();
        let (lf, _) = flash.forward(&tokens, &NoFaults);
        let (le, rep) = efta.forward(&tokens, &NoFaults);
        assert_eq!(rep.total_detected, 0);
        assert!(lf.max_abs_diff(&le) < 0.05, "diff {}", lf.max_abs_diff(&le));
    }

    #[test]
    fn generation_extends_sequence_deterministically() {
        let model = TransformerModel::random(3, tiny_config(), BackendKind::Flash);
        let (out, _) = model.generate(&[5, 6, 7], 4, &NoFaults);
        assert_eq!(out.len(), 7);
        let (out2, _) = model.generate(&[5, 6, 7], 4, &NoFaults);
        assert_eq!(out, out2);
    }

    #[test]
    fn decode_steps_match_causal_prefill_logits() {
        // The acceptance contract of the KV-cache path: feeding tokens one
        // at a time through decode_step reproduces, at every position, the
        // last-row logits of a causal prefill over the same prefix.
        let model =
            TransformerModel::random(6, tiny_config(), BackendKind::Flash).with_causal(true);
        let tokens: Vec<u32> = (0..19).map(|i| (i * 13) % 101).collect();
        let mut cache = model.new_cache();
        for t in 1..=tokens.len() {
            let (step_logits, _) = self::decode_prefix(&model, &tokens[..t], &mut cache);
            let (prefill_logits, _) = model.forward(&tokens[..t], &NoFaults);
            let diff: f32 = step_logits
                .row(0)
                .iter()
                .zip(prefill_logits.row(t - 1))
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(diff < 2e-2, "prefix {t}: logits diff {diff}");
        }
    }

    /// Feed exactly the *new* suffix of `prefix` into the cache.
    fn decode_prefix(
        model: &TransformerModel,
        prefix: &[u32],
        cache: &mut ModelKvCache,
    ) -> (MatrixF32, ModelReport) {
        let mut out = None;
        for &t in &prefix[cache.positions()..] {
            out = Some(model.decode_step(t, cache, &NoFaults));
        }
        out.expect("non-empty suffix")
    }

    #[test]
    fn cached_generate_matches_causal_prefill_generate() {
        let model =
            TransformerModel::random(7, tiny_config(), BackendKind::Flash).with_causal(true);
        let prompt = [5u32, 6, 7, 8];
        let (cached, _) = model.generate(&prompt, 5, &NoFaults);
        let (prefill, _) = model.generate_prefill(&prompt, 5, &NoFaults);
        assert_eq!(cached, prefill, "the two generation paths must agree");
    }

    #[test]
    fn efta_decode_matches_flash_decode_when_clean() {
        use ft_core::efta::EftaOptions;
        let flash =
            TransformerModel::random(8, tiny_config(), BackendKind::Flash).with_causal(true);
        let efta = TransformerModel {
            blocks: flash
                .blocks
                .iter()
                .map(|b| TransformerBlock {
                    mha: crate::mha::MultiHeadAttention {
                        kernel: BackendKind::Efta(EftaOptions::optimized()),
                        ..b.mha.clone()
                    },
                    ..b.clone()
                })
                .collect(),
            ..flash.clone()
        };
        let prompt = [3u32, 9, 27, 81, 40];
        let (tf, _) = flash.generate(&prompt, 4, &NoFaults);
        let (te, rep) = efta.generate(&prompt, 4, &NoFaults);
        assert_eq!(rep.total_detected, 0, "clean decode must raise no alarms");
        assert_eq!(tf, te, "EFTA decode tokens must match flash decode");
    }

    #[test]
    fn cache_resident_fault_is_absorbed_by_efta_decode() {
        use ft_core::efta::EftaOptions;
        use ft_sim::BerInjector;
        let model = TransformerModel::random(
            9,
            tiny_config(),
            BackendKind::Efta(EftaOptions::optimized()),
        )
        .with_causal(true);
        let prompt = [2u32, 4, 8, 16, 32, 64];
        let (clean, _) = model.generate(&prompt, 4, &NoFaults);
        // Bombard only cache-resident state.
        let inj = BerInjector::new(1234, 2e-3).with_sites(&[FaultSite::KvCache]);
        let (dirty, rep) = model.generate(&prompt, 4, &inj);
        assert!(inj.fired() > 0, "exposure must hit the cache");
        assert!(
            rep.total_detected > 0,
            "cache checksums must notice: {rep:?}"
        );
        assert_eq!(clean, dirty, "decode output must be fault-free");
    }

    #[test]
    fn windowed_serving_bounds_cache_bytes_and_reports_evictions() {
        let base = TransformerModel::random(
            12,
            tiny_config(),
            BackendKind::Efta(EftaOptions::optimized()),
        )
        .with_causal(true)
        .with_cache_block(4);
        let windowed = base.clone().with_window(8);
        assert_eq!(windowed.window(), Some(8));
        let prompt: Vec<u32> = (0..12).map(|i| (i * 7) % 101).collect();

        let run = |model: &TransformerModel| {
            let mut session = model.serve_with(SchedulerConfig {
                max_active: 4,
                prefill_chunk: 6,
                ..Default::default()
            });
            let ids: Vec<_> = (0..3)
                .map(|_| session.submit_request(GenerationRequest::new(prompt.clone(), 12)))
                .collect();
            let finished = session.run(&NoFaults);
            (ids, finished, session.peak_cache_bytes())
        };
        let (_, unbounded, peak_unbounded) = run(&base);
        let (_, bounded, peak_bounded) = run(&windowed);
        assert!(
            peak_bounded < peak_unbounded,
            "window must bound the footprint: {peak_bounded} vs {peak_unbounded}"
        );
        let evicted: u64 = bounded
            .iter()
            .map(|f| f.attention.cache_evicted_blocks)
            .sum();
        assert!(evicted > 0, "eviction events surface in per-stream reports");
        for f in &unbounded {
            assert_eq!(f.attention.cache_evicted_blocks, 0);
        }
        // Windowed serving is deterministic run to run.
        let (_, bounded2, _) = run(&windowed);
        for (a, b) in bounded.iter().zip(&bounded2) {
            assert_eq!(a.tokens, b.tokens);
        }
    }

    #[test]
    fn memory_budget_throttles_concurrency_but_completes_all_streams() {
        let model = TransformerModel::random(
            13,
            tiny_config(),
            BackendKind::Efta(EftaOptions::optimized()),
        )
        .with_causal(true);
        let prompt: Vec<u32> = (0..8).map(|i| (i * 11) % 101).collect();
        // Budget roughly one stream's prompt footprint: streams must run
        // (mostly) one at a time, and all of them must still finish.
        let budget = (4 * model.config.hidden * model.config.layers * 10) as u64;
        let mut session = model.serve_with(SchedulerConfig {
            max_active: 4,
            prefill_chunk: 8,
            memory_budget: Some(budget),
            ..Default::default()
        });
        let ids: Vec<_> = (0..3)
            .map(|_| session.submit_request(GenerationRequest::new(prompt.clone(), 4)))
            .collect();
        let mut max_active = 0;
        while !session.idle() {
            session.sweep_events(&NoFaults);
            max_active = max_active.max(session.active_streams());
        }
        let finished = session.take_finished();
        assert_eq!(finished.len(), ids.len());
        assert!(
            max_active < 3,
            "the byte budget must throttle concurrency (saw {max_active})"
        );
        // Same tokens as an unthrottled session: admission policy must not
        // change what any stream computes.
        let mut free = model.serve();
        for _ in 0..3 {
            free.submit_request(GenerationRequest::new(prompt.clone(), 4));
        }
        let unthrottled = free.run(&NoFaults);
        for (a, b) in finished.iter().zip(&unthrottled) {
            assert_eq!(a.tokens, b.tokens);
        }
    }

    #[test]
    fn two_layer_poison_is_counted_once_across_steps() {
        // Regression for the accumulate/absorb_layer mixing contract:
        // cache_uncorrectable sums across layers within one step (two
        // poisoned layers = two physical events) but folds by max across
        // steps (the sticky level is re-reported every step).
        let layer_rep = |uncorrectable: u64| {
            let mut b = BlockReport::default();
            b.mha.attention.cache_uncorrectable = uncorrectable;
            b
        };
        let mut step = ModelReport::default();
        step.absorb_layer(&layer_rep(1));
        step.absorb_layer(&layer_rep(1));
        assert_eq!(
            step.cache_uncorrectable, 2,
            "two layers poisoned in one step are two events"
        );
        let mut stream = ModelReport::default();
        for _ in 0..5 {
            stream.accumulate(&step);
        }
        assert_eq!(
            stream.cache_uncorrectable, 2,
            "five re-reports of the same sticky level must not compound"
        );
    }

    #[test]
    fn topk_sampling_is_deterministic_and_k1_is_greedy() {
        use ft_core::serve::{GenerationRequest, SamplingMode};
        let model =
            TransformerModel::random(14, tiny_config(), BackendKind::Flash).with_causal(true);
        let prompt = [3u32, 1, 4, 1, 5];
        let run = |mode: SamplingMode| {
            let mut session = model.serve();
            let id = session
                .submit_request(GenerationRequest::new(prompt.to_vec(), 5).with_sampling(mode));
            let finished = session.run(&NoFaults);
            finished.into_iter().find(|f| f.id == id).unwrap().tokens
        };
        let greedy = run(SamplingMode::Greedy);
        let k1 = run(SamplingMode::TopK { k: 1, seed: 99 });
        assert_eq!(greedy, k1, "top-1 must reduce to greedy");
        let k4a = run(SamplingMode::TopK { k: 4, seed: 7 });
        let k4b = run(SamplingMode::TopK { k: 4, seed: 7 });
        assert_eq!(k4a, k4b, "sampling is stateless-deterministic");
        let k4c = run(SamplingMode::TopK { k: 4, seed: 8 });
        assert_eq!(k4a.len(), k4c.len());
    }

    #[test]
    fn per_request_window_overrides_the_model_default() {
        // One session, two streams: a full-attention stream and a
        // request-windowed stream. Each must match its own single-stream
        // oracle (the model-default knob drives the stepwise loop).
        let base = TransformerModel::random(
            15,
            tiny_config(),
            BackendKind::Efta(EftaOptions::optimized()),
        )
        .with_causal(true)
        .with_cache_block(4);
        let windowed = base.clone().with_window(6);
        let prompt: Vec<u32> = (0..14).map(|i| (i * 5) % 101).collect();
        let mut session = base.serve_with(SchedulerConfig {
            max_active: 4,
            prefill_chunk: 5,
            ..Default::default()
        });
        use ft_core::serve::GenerationRequest;
        let full = session.submit_request(GenerationRequest::new(prompt.clone(), 6));
        let win = session.submit_request(GenerationRequest::new(prompt.clone(), 6).with_window(6));
        let finished = session.run(&NoFaults);
        let tokens_of = |id| {
            finished
                .iter()
                .find(|f: &&FinishedStream| f.id == id)
                .unwrap()
                .tokens
                .clone()
        };
        let (full_want, _) = base.generate(&prompt, 6, &NoFaults);
        let (win_want, _) = windowed.generate(&prompt, 6, &NoFaults);
        assert_eq!(tokens_of(full), full_want);
        assert_eq!(tokens_of(win), win_want);
        let evicted = finished
            .iter()
            .find(|f| f.id == win)
            .unwrap()
            .attention
            .cache_evicted_blocks;
        assert!(evicted > 0, "the windowed stream must actually evict");
        assert_eq!(
            finished
                .iter()
                .find(|f| f.id == full)
                .unwrap()
                .attention
                .cache_evicted_blocks,
            0,
            "the full-attention stream must not"
        );
    }

    #[test]
    fn fault_in_protected_projection_is_repaired_and_counted() {
        let model = TransformerModel::random(4, tiny_config(), BackendKind::Flash);
        let tokens: Vec<u32> = (0..16).collect();
        let (clean, _) = model.forward_hidden(&tokens, &NoFaults);
        // Layer 0 MHA query projection is layer_slot 0 (layer_idx*2*8).
        let inj =
            SeuInjector::new(FaultSite::LinearAccum, OpCoord::new(0, 3, 7, 0), 30).at_chain_step(5);
        let (dirty, rep) = model.forward_hidden(&tokens, &inj);
        assert_eq!(inj.fired(), 1);
        assert!(rep.total_detected > 0);
        assert!(rep.total_repaired > 0);
        assert!(
            dirty.max_abs_diff(&clean) < 0.05,
            "diff {}",
            dirty.max_abs_diff(&clean)
        );
    }

    #[test]
    fn fault_without_protection_changes_output() {
        let mut model = TransformerModel::random(5, tiny_config(), BackendKind::Flash);
        for b in &mut model.blocks {
            b.mha.wq.protection = LinearProtection::None;
            b.mha.wk.protection = LinearProtection::None;
            b.mha.wv.protection = LinearProtection::None;
            b.mha.wo.protection = LinearProtection::None;
            b.ffn.up.protection = LinearProtection::None;
            b.ffn.down.protection = LinearProtection::None;
        }
        let tokens: Vec<u32> = (0..16).collect();
        let (clean, _) = model.forward_hidden(&tokens, &NoFaults);
        let inj =
            SeuInjector::new(FaultSite::LinearAccum, OpCoord::new(0, 3, 7, 0), 30).at_chain_step(5);
        let (dirty, rep) = model.forward_hidden(&tokens, &inj);
        assert_eq!(inj.fired(), 1);
        // With projections unprotected the fault reaches the activations
        // (possibly as NaN after LayerNorm of a 2^128-scale value); the
        // FFN's range restriction is the only check left to notice.
        let _ = rep;
        assert!(
            dirty.has_non_finite() || dirty.max_abs_diff(&clean) > 1e-3,
            "fault must propagate when unprotected"
        );
    }
}
