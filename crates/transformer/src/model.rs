//! Full transformer model: embeddings → blocks → final norm → LM head.

use crate::block::{BlockReport, TransformerBlock};
use crate::configs::ModelConfig;
use crate::embed::Embedding;
use crate::linear::{Linear, LinearProtection};
use crate::mha::{BackendKind, KvCache};
use crate::norm::LayerNorm;
use ft_abft::thresholds::Thresholds;
use ft_core::serve::{DecodeScheduler, SchedulerConfig, StreamId};
use ft_core::types::FtReport;
use ft_num::{Matrix, MatrixF32};
use ft_sim::FaultInjector;

/// A complete transformer for inference experiments.
#[derive(Clone, Debug)]
pub struct TransformerModel {
    /// Model hyper-parameters.
    pub config: ModelConfig,
    /// Embedding table + positions.
    pub embed: Embedding,
    /// Transformer blocks.
    pub blocks: Vec<TransformerBlock>,
    /// Final LayerNorm.
    pub final_norm: LayerNorm,
    /// Language-model head (hidden → vocab).
    pub lm_head: Linear,
    /// Detection thresholds used by all protected layers.
    pub thresholds: Thresholds,
}

/// Aggregated FT events of one forward pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelReport {
    /// Sum over blocks.
    pub total_detected: u64,
    /// Sum over blocks.
    pub total_repaired: u64,
    /// Unrepairable cache-resident damage events seen by the decode path
    /// (sticky: once a cache is poisoned every later step re-reports it).
    /// Non-zero means the only true recovery is re-prefilling the stream —
    /// serving layers must check this, not just detected/repaired.
    pub cache_uncorrectable: u64,
}

impl ModelReport {
    /// Field-wise accumulate (multi-step aggregation).
    pub fn accumulate(&mut self, other: &ModelReport) {
        self.total_detected += other.total_detected;
        self.total_repaired += other.total_repaired;
        self.cache_uncorrectable = self.cache_uncorrectable.max(other.cache_uncorrectable);
    }
}

/// Per-layer KV caches plus the number of token positions fed so far — the
/// whole mutable state of one decode stream.
#[derive(Clone, Debug)]
pub struct ModelKvCache {
    /// One checksummed [`KvCache`] per transformer block.
    pub layers: Vec<KvCache>,
    /// Tokens decoded into the caches so far (the next token's position).
    pub positions: usize,
}

impl ModelKvCache {
    /// Tokens fed so far.
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// Total FP16 payload bytes across layers.
    pub fn size_bytes(&self) -> u64 {
        self.layers.iter().map(KvCache::size_bytes).sum()
    }

    /// Total FP32 checksum-metadata bytes across layers.
    pub fn checksum_bytes(&self) -> u64 {
        self.layers.iter().map(KvCache::checksum_bytes).sum()
    }

    /// Sticky unrepairable-damage count across layers (see
    /// [`KvCache::poisoned`]): non-zero means this stream's cached state is
    /// permanently wrong and the only recovery is a fresh prefill. Works
    /// for every backend, including the unprotected decode paths that
    /// never report cache events.
    pub fn poisoned(&self) -> u64 {
        self.layers.iter().map(KvCache::poisoned).sum()
    }
}

impl TransformerModel {
    /// Random model (seeded) with every block using `kernel`.
    pub fn random(seed: u64, config: ModelConfig, kernel: BackendKind) -> Self {
        let blocks = (0..config.layers)
            .map(|l| {
                TransformerBlock::random(
                    seed + 1000 * (l as u64 + 1),
                    config.hidden,
                    config.heads,
                    config.ffn_dim,
                    kernel,
                )
            })
            .collect();
        TransformerModel {
            config,
            embed: Embedding::random(seed, config.vocab, config.hidden, config.max_seq),
            blocks,
            final_norm: LayerNorm::new(config.hidden),
            // The LM head is a huge vocab-wide projection; the paper
            // protects the transformer layers, so it stays unprotected.
            lm_head: Linear::random(seed + 7, config.hidden, config.vocab)
                .with_protection(LinearProtection::None),
            thresholds: Thresholds::calibrated(),
        }
    }

    /// Forward pass: token ids → logits (`seq × vocab`).
    pub fn forward<I: FaultInjector>(&self, tokens: &[u32], inj: &I) -> (MatrixF32, ModelReport) {
        let (h, mut report) = self.forward_hidden(tokens, inj);
        let (logits, head_rep) = self
            .lm_head
            .forward(&h, inj, usize::MAX / 2, &self.thresholds);
        report.total_detected += head_rep.detected;
        report.total_repaired += head_rep.corrected + head_rep.recomputed;
        (logits, report)
    }

    /// Forward pass up to the final hidden states (`seq × hidden`),
    /// skipping the expensive LM head — what the per-token timing
    /// experiments measure.
    pub fn forward_hidden<I: FaultInjector>(
        &self,
        tokens: &[u32],
        inj: &I,
    ) -> (MatrixF32, ModelReport) {
        let mut h = self.embed.forward(tokens);
        let mut report = ModelReport::default();
        for (l, block) in self.blocks.iter().enumerate() {
            let (next, rep) = block.forward(&h, inj, l, &self.thresholds);
            h = next;
            report.absorb(&rep);
        }
        self.final_norm.forward(&mut h);
        (h, report)
    }

    /// Enable/disable causal masking on every block's attention (decode and
    /// prefill then compute the same function; EFTA backends support the
    /// causal setting only through the decode path).
    pub fn with_causal(mut self, causal: bool) -> Self {
        for b in &mut self.blocks {
            b.mha.causal = causal;
        }
        self
    }

    /// Sliding-window attention on every block's decode path: each step
    /// attends only the cache blocks holding the most recent `window`
    /// rows, and storage behind the window is front-evicted before each
    /// append — per-stream cache memory is bounded by roughly
    /// `window + cache_block` rows per layer instead of growing with the
    /// sequence. Token-at-a-time decode, chunked prefill, and scheduled
    /// serving all compute the same windowed function (pinned by
    /// `tests/eviction_equivalence.rs`). Decode-only: the prefill path is
    /// unaffected.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "a zero-row window cannot serve decode");
        for b in &mut self.blocks {
            b.mha.window = Some(window);
        }
        self
    }

    /// Rows per KV-cache block on every block's attention (the granularity
    /// of sliding-window eviction; default 64, the paper's CTA tile).
    /// Affects caches created *after* the call ([`new_cache`]).
    ///
    /// [`new_cache`]: TransformerModel::new_cache
    pub fn with_cache_block(mut self, cache_block: usize) -> Self {
        assert!(cache_block > 0);
        for b in &mut self.blocks {
            b.mha.cache_block = cache_block;
        }
        self
    }

    /// The decode sliding window configured via
    /// [`with_window`](TransformerModel::with_window), if any.
    pub fn window(&self) -> Option<usize> {
        self.blocks.first().and_then(|b| b.mha.window)
    }

    /// Fresh decode state: one empty checksummed KV cache per block.
    pub fn new_cache(&self) -> ModelKvCache {
        ModelKvCache {
            layers: self.blocks.iter().map(|b| b.mha.new_cache()).collect(),
            positions: 0,
        }
    }

    /// One incremental-decode step: embed `token` at the cache's next
    /// position, run every block through its KV cache, and return the
    /// `1 × vocab` logits row. O(cache len) attention and O(1) projection
    /// work — versus a full prefill per token.
    ///
    /// Before computing, all cached state is exposed to the injector at
    /// [`ft_sim::FaultSite::KvCache`]: cache-resident SEUs accumulate
    /// *between* steps, which is exactly the residency window the
    /// checksummed cache protects.
    pub fn decode_step<I: FaultInjector>(
        &self,
        token: u32,
        cache: &mut ModelKvCache,
        inj: &I,
    ) -> (MatrixF32, ModelReport) {
        assert_eq!(
            cache.layers.len(),
            self.blocks.len(),
            "cache does not belong to this model"
        );
        let pos = cache.positions;
        let mut h = self.embed.forward_at(&[token], pos);
        let mut report = ModelReport::default();
        let layers = self.blocks.len();
        for (l, (block, layer_cache)) in self.blocks.iter().zip(&mut cache.layers).enumerate() {
            // Distinct exposure step per (position, layer): stateless-hash
            // injectors would otherwise fire bit-identical fault patterns
            // in every layer's cache.
            layer_cache.expose(inj, (pos * layers + l) as u64);
            let (next, rep) = block.forward_decode(&h, layer_cache, inj, l, &self.thresholds);
            h = next;
            report.absorb(&rep);
        }
        self.final_norm.forward(&mut h);
        cache.positions += 1;
        let (logits, head_rep) = self
            .lm_head
            .forward(&h, inj, usize::MAX / 2, &self.thresholds);
        report.total_detected += head_rep.detected;
        report.total_repaired += head_rep.corrected + head_rep.recomputed;
        (logits, report)
    }

    /// Greedy generation over the checksummed KV-cache decode path — the
    /// one-stream special case of [`TransformerModel::serve`]: the prompt
    /// is consumed in prefill chunks (one batched sweep per chunk, the
    /// vocab-wide LM head run only where a token is actually sampled),
    /// then each new token costs one O(cache) decode sweep instead of an
    /// O(seq) prefill.
    ///
    /// A request with no token budget (`new_tokens == 0`, or a prompt
    /// already at `max_seq`) returns the prompt without running the model
    /// at all — its report is empty. Use [`TransformerModel::decode_step`]
    /// directly to push a prompt through the model without sampling.
    pub fn generate<I: FaultInjector>(
        &self,
        prompt: &[u32],
        new_tokens: usize,
        inj: &I,
    ) -> (Vec<u32>, ModelReport) {
        assert!(!prompt.is_empty(), "generation needs at least one token");
        let mut session = self.serve();
        let id = session.submit(prompt, new_tokens);
        let finished = session.run(inj);
        let stream = finished
            .into_iter()
            .find(|f| f.id == id)
            .expect("the submitted stream finishes");
        (stream.tokens, stream.report)
    }

    /// Greedy generation by full re-prefill each step — the pre-KV-cache
    /// path, kept as the baseline the `decode` bench measures speedup
    /// against. Note its attention is *bidirectional* under the default
    /// non-causal configuration, while the cached path is inherently
    /// causal; build the model [`with_causal`](TransformerModel::with_causal)
    /// to make the two paths compute the same function.
    pub fn generate_prefill<I: FaultInjector>(
        &self,
        prompt: &[u32],
        new_tokens: usize,
        inj: &I,
    ) -> (Vec<u32>, ModelReport) {
        let mut tokens = prompt.to_vec();
        let mut report = ModelReport::default();
        for _ in 0..new_tokens {
            if tokens.len() >= self.config.max_seq {
                break;
            }
            let (logits, rep) = self.forward(&tokens, inj);
            report.accumulate(&rep);
            tokens.push(argmax(logits.row(logits.rows() - 1)) as u32);
        }
        (tokens, report)
    }

    /// Open a continuous-batching serving session with the default
    /// [`SchedulerConfig`]. Submit streams with
    /// [`ServeSession::submit`], drive them with [`ServeSession::sweep`]
    /// or [`ServeSession::run`].
    pub fn serve(&self) -> ServeSession<'_> {
        self.serve_with(SchedulerConfig::default())
    }

    /// Open a serving session with explicit slot-table width, prefill
    /// chunk size, and optional cache-byte admission budget
    /// ([`SchedulerConfig::memory_budget`]): when set, pending streams are
    /// admitted while the session's total cache footprint (payload +
    /// checksum metadata, reported to the scheduler before every sweep)
    /// plus per-stream token-budget projections fits the budget —
    /// admission by bytes, not stream count. The projections count FP16
    /// payload only, so the budget throttles admission rather than hard-
    /// capping the realised peak (checksum metadata rides on top; see
    /// [`SchedulerConfig::memory_budget`]) — check
    /// [`ServeSession::peak_cache_bytes`] for what a workload actually
    /// occupied.
    pub fn serve_with(&self, cfg: SchedulerConfig) -> ServeSession<'_> {
        let mut scheduler = DecodeScheduler::new(cfg);
        // Projection for admission: FP16 K+V payload per token per layer
        // (2 tensors × hidden × 2 bytes); checksum metadata rides along in
        // the noted totals once streams are resident.
        scheduler.set_bytes_per_token((4 * self.config.hidden * self.config.layers) as u64);
        // Under a sliding window a stream keeps at most ~window +
        // cache_block rows resident however long its prompt — project
        // that bound, not the raw prompt length, or long-prompt windowed
        // streams would be throttled to near-serial admission.
        if let Some(w) = self.window() {
            let block = self.blocks.first().map_or(0, |b| b.mha.cache_block);
            scheduler.set_projection_cap(w + block);
        }
        ServeSession {
            model: self,
            scheduler,
            caches: Vec::new(),
            reports: Vec::new(),
            finished: Vec::new(),
            peak_cache_bytes: 0,
        }
    }

    /// One batched decode sweep over many streams: per stream, embed its
    /// fed tokens at the cache's next positions; per layer, expose every
    /// stream's cache to the injector (the between-sweep residency window)
    /// and run the shared multi-stream attention fan-out; finally run the
    /// LM head on the rows that sample a token.
    ///
    /// `feeds[i]` is `(stream, tokens to feed, sample?)` and must pair with
    /// `caches[i]`. Returns, per stream, the sampled token (if requested),
    /// the sweep's model-level report, and the attention-level [`FtReport`]
    /// attributed to that stream alone.
    fn run_sweep<I: FaultInjector>(
        &self,
        feeds: &[(StreamId, Vec<u32>, bool)],
        caches: &mut [&mut ModelKvCache],
        inj: &I,
    ) -> Vec<(Option<u32>, ModelReport, FtReport)> {
        let layers = self.blocks.len();
        for (_, c) in feeds.iter().zip(&*caches) {
            assert_eq!(
                c.layers.len(),
                layers,
                "a sweep cache does not belong to this model"
            );
        }
        let streams: Vec<StreamId> = feeds.iter().map(|f| f.0).collect();
        let base_pos: Vec<usize> = caches.iter().map(|c| c.positions).collect();
        let mut hs: Vec<MatrixF32> = feeds
            .iter()
            .zip(&base_pos)
            .map(|((_, toks, _), &pos)| self.embed.forward_at(toks, pos))
            .collect();
        let mut reports = vec![ModelReport::default(); feeds.len()];
        let mut attn_reports = vec![FtReport::default(); feeds.len()];
        for (l, block) in self.blocks.iter().enumerate() {
            let mut layer_caches: Vec<&mut KvCache> =
                caches.iter_mut().map(|c| &mut c.layers[l]).collect();
            for (i, lc) in layer_caches.iter_mut().enumerate() {
                // Exposure models residency between sweeps; the step is
                // namespaced per stream so a shared stateless injector does
                // not fire identical patterns in every stream's cache.
                lc.expose(inj, serve_expose_step(streams[i], base_pos[i], layers, l));
            }
            let outs = block.forward_decode_batch(
                &hs,
                &mut layer_caches,
                &streams,
                inj,
                l,
                &self.thresholds,
            );
            for (i, (h, rep)) in outs.into_iter().enumerate() {
                hs[i] = h;
                attn_reports[i] = attn_reports[i].merged(&rep.mha.attention);
                reports[i].absorb(&rep);
            }
        }
        for (c, (_, toks, _)) in caches.iter_mut().zip(feeds) {
            c.positions += toks.len();
        }
        feeds
            .iter()
            .enumerate()
            .map(|(i, (_, _, sample))| {
                let sampled = if *sample {
                    // Only the chunk's final row feeds the sampler; the
                    // interior prefill rows never pay the vocab-wide head.
                    let h = &hs[i];
                    let last = h.rows() - 1;
                    let mut row = Matrix::from_fn(1, h.cols(), |_, j| h.get(last, j));
                    self.final_norm.forward(&mut row);
                    let (logits, head_rep) =
                        self.lm_head
                            .forward(&row, inj, usize::MAX / 2, &self.thresholds);
                    reports[i].total_detected += head_rep.detected;
                    reports[i].total_repaired += head_rep.corrected + head_rep.recomputed;
                    Some(argmax(logits.row(0)) as u32)
                } else {
                    None
                };
                (sampled, reports[i], attn_reports[i])
            })
            .collect()
    }
}

/// Cache-exposure step namespace for serving. Exposure steps are drawn
/// from the same `pos * layers + layer` lattice as
/// [`TransformerModel::decode_step`], with stream 0 unshifted and streams
/// ≥ 1 shifted into disjoint ranges, so a shared injector can target — and
/// a report can attribute — one stream's cache in isolation.
///
/// A session exposes caches once per *sweep* (at the sweep's base
/// position), not once per token: during chunked prefill only the chunk
/// bases (`0, prefill_chunk, 2·prefill_chunk, …`) appear, and interior
/// prompt positions are skipped — target those bases, or run with
/// `prefill_chunk = 1` to reproduce the token-at-a-time exposure schedule
/// exactly. Decode-phase sweeps (one token each) match `decode_step`'s
/// schedule position for position.
pub fn serve_expose_step(stream: StreamId, pos: usize, layers: usize, layer: usize) -> u64 {
    let local = (pos * layers + layer) as u64;
    debug_assert!(
        local < (1 << 20),
        "position × layers exceeds the per-stream exposure namespace"
    );
    (stream.0 << 20) + local
}

/// A retired serving stream: its full token history and fault accounting.
#[derive(Clone, Debug)]
pub struct FinishedStream {
    /// Stream identity (as returned by [`ServeSession::submit`]).
    pub id: StreamId,
    /// Prompt followed by the sampled continuation.
    pub tokens: Vec<u32>,
    /// Model-level fault accounting accumulated over the stream's sweeps
    /// (projections, attention, FFN, LM head).
    pub report: ModelReport,
    /// Attention-kernel fault history attributed to this stream alone —
    /// per-stream cache detected/corrected/uncorrectable counts included.
    pub attention: FtReport,
}

/// A continuous-batching serving session over one [`TransformerModel`]:
/// many generation streams, each with its own per-layer [`ModelKvCache`],
/// sampling state, and fault history, multiplexed through shared batched
/// decode sweeps.
///
/// ```text
/// submit ─▶ scheduler slot table ─▶ sweep: embed → layers (shared
///   attention fan-out over every stream's chunk) → LM head on sampled
///   rows ─▶ record tokens + per-stream reports ─▶ retire finished
/// ```
///
/// [`TransformerModel::generate`] is the one-stream special case.
pub struct ServeSession<'m> {
    model: &'m TransformerModel,
    scheduler: DecodeScheduler,
    caches: Vec<(StreamId, ModelKvCache)>,
    reports: Vec<(StreamId, ModelReport)>,
    finished: Vec<FinishedStream>,
    peak_cache_bytes: u64,
}

impl ServeSession<'_> {
    /// Submit a stream: `prompt` plus up to `max_new_tokens` greedy
    /// continuations (clamped to the model's `max_seq`). The stream joins
    /// the next sweep with a free slot — mid-flight, without stalling
    /// streams already decoding.
    pub fn submit(&mut self, prompt: &[u32], max_new_tokens: usize) -> StreamId {
        assert!(!prompt.is_empty(), "a stream needs at least one token");
        assert!(
            prompt.len() <= self.model.config.max_seq,
            "prompt exceeds max_seq"
        );
        let capped = max_new_tokens.min(self.model.config.max_seq - prompt.len());
        self.scheduler.submit(prompt.to_vec(), capped)
    }

    /// Run one batched sweep: plan (admitting pending streams), feed every
    /// active stream its next chunk through the shared fan-out, sample
    /// where due, record per-stream reports, and retire finished streams.
    /// Returns the number of streams that took part.
    pub fn sweep<I: FaultInjector>(&mut self, inj: &I) -> usize {
        // Report the live footprint so memory-budget admission sees what
        // the resident streams actually occupy.
        self.scheduler.note_bytes(self.cache_bytes());
        let plan = self.scheduler.plan();
        if plan.is_empty() {
            self.collect_finished();
            return 0;
        }
        for item in &plan {
            if !self.caches.iter().any(|(id, _)| *id == item.stream) {
                self.caches.push((item.stream, self.model.new_cache()));
                self.reports.push((item.stream, ModelReport::default()));
            }
        }
        // Pair feeds with caches in storage order (plan order and storage
        // order both follow admission, but matching by id keeps the sweep
        // correct under any future scheduling policy).
        let mut feeds: Vec<(StreamId, Vec<u32>, bool)> = Vec::with_capacity(plan.len());
        let mut cache_refs: Vec<&mut ModelKvCache> = Vec::with_capacity(plan.len());
        for (id, cache) in self.caches.iter_mut() {
            if let Some(item) = plan.iter().find(|it| it.stream == *id) {
                feeds.push((*id, item.feed.clone(), item.sample));
                cache_refs.push(cache);
            }
        }
        debug_assert_eq!(feeds.len(), plan.len());
        let results = self.model.run_sweep(&feeds, &mut cache_refs, inj);
        let n = feeds.len();
        self.peak_cache_bytes = self.peak_cache_bytes.max(self.cache_bytes());
        for ((id, _, _), (sampled, rep, attn)) in feeds.iter().zip(results) {
            let entry = self
                .reports
                .iter_mut()
                .find(|(rid, _)| rid == id)
                .expect("report entry exists for every planned stream");
            entry.1.accumulate(&rep);
            self.scheduler.record(*id, sampled, &attn);
        }
        self.collect_finished();
        n
    }

    /// Sweep until every submitted stream has retired, then drain them
    /// (ordered by stream id).
    pub fn run<I: FaultInjector>(&mut self, inj: &I) -> Vec<FinishedStream> {
        while !self.scheduler.idle() {
            self.sweep(inj);
        }
        self.take_finished()
    }

    /// True when no stream is active or queued.
    pub fn idle(&self) -> bool {
        self.scheduler.idle()
    }

    /// Streams currently holding decode slots.
    pub fn active_streams(&self) -> usize {
        self.scheduler.active_len()
    }

    /// Streams waiting for a free slot.
    pub fn pending_streams(&self) -> usize {
        self.scheduler.pending_len()
    }

    /// Current total cache footprint across resident streams: FP16 K/V
    /// payload plus FP32 checksum metadata, all layers.
    pub fn cache_bytes(&self) -> u64 {
        self.caches
            .iter()
            .map(|(_, c)| c.size_bytes() + c.checksum_bytes())
            .sum()
    }

    /// Largest [`cache_bytes`](ServeSession::cache_bytes) observed after
    /// any sweep — the bounded-memory serving metric: under a sliding
    /// window this flattens instead of growing with generated length.
    pub fn peak_cache_bytes(&self) -> u64 {
        self.peak_cache_bytes
    }

    /// Drain retired streams, ordered by stream id.
    pub fn take_finished(&mut self) -> Vec<FinishedStream> {
        self.collect_finished();
        let mut out = std::mem::take(&mut self.finished);
        out.sort_by_key(|f| f.id);
        out
    }

    fn collect_finished(&mut self) {
        for s in self.scheduler.take_finished() {
            let report = self
                .reports
                .iter()
                .position(|(id, _)| *id == s.id)
                .map(|i| self.reports.remove(i).1)
                .unwrap_or_default();
            self.caches.retain(|(id, _)| *id != s.id);
            self.finished.push(FinishedStream {
                id: s.id,
                tokens: s.tokens(),
                report,
                attention: s.report,
            });
        }
    }
}

/// Index of the largest logit.
fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

impl ModelReport {
    fn absorb(&mut self, rep: &BlockReport) {
        self.total_detected += rep.mha.projections.detected
            + rep.mha.attention.total_detected()
            + rep.ffn.projections.detected
            + rep.ffn.activation.restricted;
        self.total_repaired += rep.mha.projections.corrected
            + rep.mha.projections.recomputed
            + rep.mha.attention.total_repaired()
            + rep.ffn.projections.corrected
            + rep.ffn.projections.recomputed
            + rep.ffn.activation.restricted;
        // Summed across the layers of one step; across steps the sticky
        // re-reports are folded by `accumulate`'s max, not re-summed.
        self.cache_uncorrectable += rep.mha.attention.cache_uncorrectable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::efta::EftaOptions;
    use ft_sim::{FaultSite, NoFaults, OpCoord, SeuInjector};

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            name: "tiny",
            layers: 2,
            heads: 4,
            hidden: 32,
            ffn_dim: 64,
            vocab: 101,
            max_seq: 64,
        }
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let model = TransformerModel::random(1, tiny_config(), BackendKind::Flash);
        let tokens: Vec<u32> = (0..16).collect();
        let (l1, rep) = model.forward(&tokens, &NoFaults);
        let (l2, _) = model.forward(&tokens, &NoFaults);
        assert_eq!(l1.shape(), (16, 101));
        assert_eq!(l1, l2);
        assert_eq!(rep.total_detected, 0);
    }

    #[test]
    fn efta_model_matches_flash_model_when_clean() {
        let flash = TransformerModel::random(2, tiny_config(), BackendKind::Flash);
        let efta = TransformerModel {
            blocks: flash
                .blocks
                .iter()
                .map(|b| TransformerBlock {
                    mha: crate::mha::MultiHeadAttention {
                        kernel: BackendKind::Efta(EftaOptions::optimized()),
                        ..b.mha.clone()
                    },
                    ..b.clone()
                })
                .collect(),
            ..flash.clone()
        };
        let tokens: Vec<u32> = (0..24).map(|i| i * 3 % 101).collect();
        let (lf, _) = flash.forward(&tokens, &NoFaults);
        let (le, rep) = efta.forward(&tokens, &NoFaults);
        assert_eq!(rep.total_detected, 0);
        assert!(lf.max_abs_diff(&le) < 0.05, "diff {}", lf.max_abs_diff(&le));
    }

    #[test]
    fn generation_extends_sequence_deterministically() {
        let model = TransformerModel::random(3, tiny_config(), BackendKind::Flash);
        let (out, _) = model.generate(&[5, 6, 7], 4, &NoFaults);
        assert_eq!(out.len(), 7);
        let (out2, _) = model.generate(&[5, 6, 7], 4, &NoFaults);
        assert_eq!(out, out2);
    }

    #[test]
    fn decode_steps_match_causal_prefill_logits() {
        // The acceptance contract of the KV-cache path: feeding tokens one
        // at a time through decode_step reproduces, at every position, the
        // last-row logits of a causal prefill over the same prefix.
        let model =
            TransformerModel::random(6, tiny_config(), BackendKind::Flash).with_causal(true);
        let tokens: Vec<u32> = (0..19).map(|i| (i * 13) % 101).collect();
        let mut cache = model.new_cache();
        for t in 1..=tokens.len() {
            let (step_logits, _) = self::decode_prefix(&model, &tokens[..t], &mut cache);
            let (prefill_logits, _) = model.forward(&tokens[..t], &NoFaults);
            let diff: f32 = step_logits
                .row(0)
                .iter()
                .zip(prefill_logits.row(t - 1))
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(diff < 2e-2, "prefix {t}: logits diff {diff}");
        }
    }

    /// Feed exactly the *new* suffix of `prefix` into the cache.
    fn decode_prefix(
        model: &TransformerModel,
        prefix: &[u32],
        cache: &mut ModelKvCache,
    ) -> (MatrixF32, ModelReport) {
        let mut out = None;
        for &t in &prefix[cache.positions()..] {
            out = Some(model.decode_step(t, cache, &NoFaults));
        }
        out.expect("non-empty suffix")
    }

    #[test]
    fn cached_generate_matches_causal_prefill_generate() {
        let model =
            TransformerModel::random(7, tiny_config(), BackendKind::Flash).with_causal(true);
        let prompt = [5u32, 6, 7, 8];
        let (cached, _) = model.generate(&prompt, 5, &NoFaults);
        let (prefill, _) = model.generate_prefill(&prompt, 5, &NoFaults);
        assert_eq!(cached, prefill, "the two generation paths must agree");
    }

    #[test]
    fn efta_decode_matches_flash_decode_when_clean() {
        use ft_core::efta::EftaOptions;
        let flash =
            TransformerModel::random(8, tiny_config(), BackendKind::Flash).with_causal(true);
        let efta = TransformerModel {
            blocks: flash
                .blocks
                .iter()
                .map(|b| TransformerBlock {
                    mha: crate::mha::MultiHeadAttention {
                        kernel: BackendKind::Efta(EftaOptions::optimized()),
                        ..b.mha.clone()
                    },
                    ..b.clone()
                })
                .collect(),
            ..flash.clone()
        };
        let prompt = [3u32, 9, 27, 81, 40];
        let (tf, _) = flash.generate(&prompt, 4, &NoFaults);
        let (te, rep) = efta.generate(&prompt, 4, &NoFaults);
        assert_eq!(rep.total_detected, 0, "clean decode must raise no alarms");
        assert_eq!(tf, te, "EFTA decode tokens must match flash decode");
    }

    #[test]
    fn cache_resident_fault_is_absorbed_by_efta_decode() {
        use ft_core::efta::EftaOptions;
        use ft_sim::BerInjector;
        let model = TransformerModel::random(
            9,
            tiny_config(),
            BackendKind::Efta(EftaOptions::optimized()),
        )
        .with_causal(true);
        let prompt = [2u32, 4, 8, 16, 32, 64];
        let (clean, _) = model.generate(&prompt, 4, &NoFaults);
        // Bombard only cache-resident state.
        let inj = BerInjector::new(1234, 2e-3).with_sites(&[FaultSite::KvCache]);
        let (dirty, rep) = model.generate(&prompt, 4, &inj);
        assert!(inj.fired() > 0, "exposure must hit the cache");
        assert!(
            rep.total_detected > 0,
            "cache checksums must notice: {rep:?}"
        );
        assert_eq!(clean, dirty, "decode output must be fault-free");
    }

    #[test]
    fn windowed_serving_bounds_cache_bytes_and_reports_evictions() {
        let base = TransformerModel::random(
            12,
            tiny_config(),
            BackendKind::Efta(EftaOptions::optimized()),
        )
        .with_causal(true)
        .with_cache_block(4);
        let windowed = base.clone().with_window(8);
        assert_eq!(windowed.window(), Some(8));
        let prompt: Vec<u32> = (0..12).map(|i| (i * 7) % 101).collect();

        let run = |model: &TransformerModel| {
            let mut session = model.serve_with(SchedulerConfig {
                max_active: 4,
                prefill_chunk: 6,
                ..Default::default()
            });
            let ids: Vec<_> = (0..3).map(|_| session.submit(&prompt, 12)).collect();
            let finished = session.run(&NoFaults);
            (ids, finished, session.peak_cache_bytes())
        };
        let (_, unbounded, peak_unbounded) = run(&base);
        let (_, bounded, peak_bounded) = run(&windowed);
        assert!(
            peak_bounded < peak_unbounded,
            "window must bound the footprint: {peak_bounded} vs {peak_unbounded}"
        );
        let evicted: u64 = bounded
            .iter()
            .map(|f| f.attention.cache_evicted_blocks)
            .sum();
        assert!(evicted > 0, "eviction events surface in per-stream reports");
        for f in &unbounded {
            assert_eq!(f.attention.cache_evicted_blocks, 0);
        }
        // Windowed serving is deterministic run to run.
        let (_, bounded2, _) = run(&windowed);
        for (a, b) in bounded.iter().zip(&bounded2) {
            assert_eq!(a.tokens, b.tokens);
        }
    }

    #[test]
    fn memory_budget_throttles_concurrency_but_completes_all_streams() {
        let model = TransformerModel::random(
            13,
            tiny_config(),
            BackendKind::Efta(EftaOptions::optimized()),
        )
        .with_causal(true);
        let prompt: Vec<u32> = (0..8).map(|i| (i * 11) % 101).collect();
        // Budget roughly one stream's prompt footprint: streams must run
        // (mostly) one at a time, and all of them must still finish.
        let budget = (4 * model.config.hidden * model.config.layers * 10) as u64;
        let mut session = model.serve_with(SchedulerConfig {
            max_active: 4,
            prefill_chunk: 8,
            memory_budget: Some(budget),
        });
        let ids: Vec<_> = (0..3).map(|_| session.submit(&prompt, 4)).collect();
        let mut max_active = 0;
        while !session.idle() {
            session.sweep(&NoFaults);
            max_active = max_active.max(session.active_streams());
        }
        let finished = session.take_finished();
        assert_eq!(finished.len(), ids.len());
        assert!(
            max_active < 3,
            "the byte budget must throttle concurrency (saw {max_active})"
        );
        // Same tokens as an unthrottled session: admission policy must not
        // change what any stream computes.
        let mut free = model.serve();
        for _ in 0..3 {
            free.submit(&prompt, 4);
        }
        let unthrottled = free.run(&NoFaults);
        for (a, b) in finished.iter().zip(&unthrottled) {
            assert_eq!(a.tokens, b.tokens);
        }
    }

    #[test]
    fn fault_in_protected_projection_is_repaired_and_counted() {
        let model = TransformerModel::random(4, tiny_config(), BackendKind::Flash);
        let tokens: Vec<u32> = (0..16).collect();
        let (clean, _) = model.forward_hidden(&tokens, &NoFaults);
        // Layer 0 MHA query projection is layer_slot 0 (layer_idx*2*8).
        let inj =
            SeuInjector::new(FaultSite::LinearAccum, OpCoord::new(0, 3, 7, 0), 30).at_chain_step(5);
        let (dirty, rep) = model.forward_hidden(&tokens, &inj);
        assert_eq!(inj.fired(), 1);
        assert!(rep.total_detected > 0);
        assert!(rep.total_repaired > 0);
        assert!(
            dirty.max_abs_diff(&clean) < 0.05,
            "diff {}",
            dirty.max_abs_diff(&clean)
        );
    }

    #[test]
    fn fault_without_protection_changes_output() {
        let mut model = TransformerModel::random(5, tiny_config(), BackendKind::Flash);
        for b in &mut model.blocks {
            b.mha.wq.protection = LinearProtection::None;
            b.mha.wk.protection = LinearProtection::None;
            b.mha.wv.protection = LinearProtection::None;
            b.mha.wo.protection = LinearProtection::None;
            b.ffn.up.protection = LinearProtection::None;
            b.ffn.down.protection = LinearProtection::None;
        }
        let tokens: Vec<u32> = (0..16).collect();
        let (clean, _) = model.forward_hidden(&tokens, &NoFaults);
        let inj =
            SeuInjector::new(FaultSite::LinearAccum, OpCoord::new(0, 3, 7, 0), 30).at_chain_step(5);
        let (dirty, rep) = model.forward_hidden(&tokens, &inj);
        assert_eq!(inj.fired(), 1);
        // With projections unprotected the fault reaches the activations
        // (possibly as NaN after LayerNorm of a 2^128-scale value); the
        // FFN's range restriction is the only check left to notice.
        let _ = rep;
        assert!(
            dirty.has_non_finite() || dirty.max_abs_diff(&clean) > 1e-3,
            "fault must propagate when unprotected"
        );
    }
}
