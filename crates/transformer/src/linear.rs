//! Dense projection layers with strided-ABFT protection.
//!
//! `Y = X·Wᵀ + bias` — the paper's Fig. 1 "Linear Projection with ABFT
//! Protection": the same tensor-checksum scheme as attention GEMM I is
//! applied per 64-row block of X, with located elements recomputed exactly.

use ft_abft::strided::{
    correct_strided, encode_rows_strided, strided_sums, strided_sums_weighted, StridedMismatch,
};
use ft_abft::thresholds::Thresholds;
use ft_num::rng::{normal_matrix_f16, rng_from_seed};
use ft_num::{block_starts, Matrix, MatrixF16, MatrixF32};
use ft_sim::{gemm_nt, gemm_nt_inj, FaultInjector, FaultSite, GemmCtx};
use rayon::prelude::*;

/// Protection level of a linear layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinearProtection {
    /// Plain GEMM.
    None,
    /// Strided tensor-checksum ABFT (stride 8).
    StridedAbft,
}

/// A dense layer `Y = X·Wᵀ + b` with FP16 weights.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weights, `out_features × in_features` (row-major, FP16 storage).
    pub weight: MatrixF16,
    /// Bias, `out_features` (FP32).
    pub bias: Vec<f32>,
    /// Protection applied on forward passes.
    pub protection: LinearProtection,
}

/// Fault-tolerance statistics of one forward pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinearReport {
    /// Checksum mismatches detected.
    pub detected: u64,
    /// Elements located and recomputed.
    pub corrected: u64,
    /// Blocks recomputed wholesale.
    pub recomputed: u64,
}

impl Linear {
    /// Random layer (seeded; std 0.02 like GPT-2 init).
    pub fn random(seed: u64, in_features: usize, out_features: usize) -> Self {
        let mut rng = rng_from_seed(seed);
        Linear {
            weight: normal_matrix_f16(&mut rng, out_features, in_features, 0.02),
            bias: vec![0.0; out_features],
            protection: LinearProtection::StridedAbft,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.cols()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }

    /// Set the protection level.
    pub fn with_protection(mut self, p: LinearProtection) -> Self {
        self.protection = p;
        self
    }

    /// Forward pass: `Y = X·Wᵀ + b`, protected per `self.protection`.
    ///
    /// `layer_slot` namespaces fault coordinates; `thresholds.gemm` is the
    /// detection criterion.
    pub fn forward<I: FaultInjector>(
        &self,
        x: &MatrixF32,
        inj: &I,
        layer_slot: usize,
        thresholds: &Thresholds,
    ) -> (MatrixF32, LinearReport) {
        assert_eq!(x.cols(), self.in_features(), "input feature mismatch");
        let w = self.weight.to_f32();
        let out_f = self.out_features();
        let stride = 8.min(out_f).max(1);
        let block = 64usize;

        let results: Vec<(usize, MatrixF32, LinearReport)> = block_starts(x.rows(), block)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|r0| {
                let x_blk = x.block(r0, 0, block, x.cols());
                let mut report = LinearReport::default();
                let mut y = gemm_nt_inj(
                    &x_blk,
                    &w,
                    inj,
                    GemmCtx::new(FaultSite::LinearAccum, layer_slot).at(r0, 0),
                );
                if self.protection == LinearProtection::StridedAbft {
                    // Fold W's rows (the output dimension) at the stride.
                    let cs = encode_rows_strided(&w, stride, true);
                    let y_c1 = gemm_nt_inj(
                        &x_blk,
                        &cs.w1,
                        inj,
                        GemmCtx::new(FaultSite::LinearAccum, layer_slot)
                            .at(r0, out_f)
                            .iter(1),
                    );
                    let y_c2 = gemm_nt_inj(
                        &x_blk,
                        &cs.w2,
                        inj,
                        GemmCtx::new(FaultSite::LinearAccum, layer_slot)
                            .at(r0, out_f)
                            .iter(2),
                    );
                    let sums1 = strided_sums(&y, stride);
                    let sums2 = strided_sums_weighted(&y, stride);
                    let mut mismatches = Vec::new();
                    for i in 0..y.rows() {
                        for t in 0..stride {
                            if thresholds.gemm.detects(sums1.get(i, t), y_c1.get(i, t)) {
                                mismatches.push(StridedMismatch {
                                    i,
                                    t,
                                    delta1: sums1.get(i, t) - y_c1.get(i, t),
                                    delta2: sums2.get(i, t) - y_c2.get(i, t),
                                });
                            }
                        }
                    }
                    if !mismatches.is_empty() {
                        let rep = correct_strided(&mut y, &mismatches, stride);
                        // Located elements are recomputed exactly.
                        for loc in &rep.corrected {
                            let mut acc = 0.0f32;
                            for (a, b) in x_blk.row(loc.row).iter().zip(w.row(loc.col)) {
                                acc += a * b;
                            }
                            y.set(loc.row, loc.col, acc);
                        }
                        report.detected += rep.detections as u64;
                        report.corrected += rep.corrected.len() as u64;
                        if rep.uncorrectable > 0 {
                            y = gemm_nt(&x_blk, &w);
                            report.recomputed += rep.uncorrectable as u64;
                        }
                    }
                }
                // Bias.
                for i in 0..y.rows() {
                    for (v, b) in y.row_mut(i).iter_mut().zip(&self.bias) {
                        *v += b;
                    }
                }
                (r0, y, report)
            })
            .collect();

        let mut out = Matrix::zeros(x.rows(), out_f);
        let mut total = LinearReport::default();
        for (r0, y, rep) in results {
            out.set_block(r0, 0, &y);
            total.detected += rep.detected;
            total.corrected += rep.corrected;
            total.recomputed += rep.recomputed;
        }
        (out, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_sim::{NoFaults, OpCoord, SeuInjector};

    #[test]
    fn forward_matches_plain_gemm_when_clean() {
        let layer = Linear::random(1, 32, 48);
        let mut rng = rng_from_seed(2);
        let x = normal_matrix_f16(&mut rng, 80, 32, 1.0).to_f32();
        let (y, rep) = layer.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        assert_eq!(rep, LinearReport::default());
        let w = layer.weight.to_f32();
        let expect = gemm_nt(&x, &w);
        assert!(y.max_abs_diff(&expect) < 1e-6);
        assert_eq!(y.shape(), (80, 48));
    }

    #[test]
    fn bias_is_applied() {
        let mut layer = Linear::random(3, 8, 4);
        layer.bias = vec![1.0, 2.0, 3.0, 4.0];
        let x = MatrixF32::zeros(2, 8);
        let (y, _) = layer.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        assert_eq!(y.row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.row(1), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn seu_in_projection_is_corrected() {
        let layer = Linear::random(4, 64, 64);
        let mut rng = rng_from_seed(5);
        let x = normal_matrix_f16(&mut rng, 64, 64, 1.0).to_f32();
        let (clean, _) = layer.forward(&x, &NoFaults, 7, &Thresholds::calibrated());
        let inj = SeuInjector::new(FaultSite::LinearAccum, OpCoord::new(7, 10, 20, 0), 30)
            .at_chain_step(30);
        let (dirty, rep) = layer.forward(&x, &inj, 7, &Thresholds::calibrated());
        assert_eq!(inj.fired(), 1);
        assert!(rep.detected > 0);
        assert!(rep.corrected > 0);
        assert!(
            dirty.max_abs_diff(&clean) < 1e-3,
            "diff {}",
            dirty.max_abs_diff(&clean)
        );
    }

    #[test]
    fn unprotected_layer_lets_fault_through() {
        let layer = Linear::random(4, 64, 64).with_protection(LinearProtection::None);
        let mut rng = rng_from_seed(5);
        let x = normal_matrix_f16(&mut rng, 64, 64, 1.0).to_f32();
        let (clean, _) = layer.forward(&x, &NoFaults, 7, &Thresholds::calibrated());
        let inj = SeuInjector::new(FaultSite::LinearAccum, OpCoord::new(7, 10, 20, 0), 30)
            .at_chain_step(30);
        let (dirty, rep) = layer.forward(&x, &inj, 7, &Thresholds::calibrated());
        assert_eq!(rep, LinearReport::default());
        assert!(dirty.max_abs_diff(&clean) > 1.0);
    }

    #[test]
    fn ragged_rows_and_narrow_outputs_work() {
        // 70 rows (64 + 6 ragged), 4 output features (< stride 8).
        let layer = Linear::random(9, 16, 4);
        let mut rng = rng_from_seed(10);
        let x = normal_matrix_f16(&mut rng, 70, 16, 1.0).to_f32();
        let (y, rep) = layer.forward(&x, &NoFaults, 0, &Thresholds::calibrated());
        assert_eq!(y.shape(), (70, 4));
        assert_eq!(rep, LinearReport::default());
    }
}
