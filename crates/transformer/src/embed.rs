//! Token and positional embeddings.

use ft_num::rng::{normal_matrix_f16, rng_from_seed};
use ft_num::{Matrix, MatrixF16, MatrixF32};

/// Learned token embedding table plus sinusoidal positions.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// `vocab × hidden` embedding table (FP16 storage).
    pub table: MatrixF16,
    /// Maximum sequence length supported by the positional encoding.
    pub max_seq: usize,
}

impl Embedding {
    /// Random table (seeded) for `vocab` tokens of width `hidden`.
    pub fn random(seed: u64, vocab: usize, hidden: usize, max_seq: usize) -> Self {
        let mut rng = rng_from_seed(seed);
        Embedding {
            table: normal_matrix_f16(&mut rng, vocab, hidden, 0.02),
            max_seq,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.table.cols()
    }

    /// Sinusoidal positional value for (position, channel).
    fn positional(&self, pos: usize, ch: usize, hidden: usize) -> f32 {
        let i = (ch / 2) as f32;
        let angle = pos as f32 / 10_000f32.powf(2.0 * i / hidden as f32);
        if ch.is_multiple_of(2) {
            angle.sin()
        } else {
            angle.cos()
        }
    }

    /// Embed a token sequence: `seq × hidden` activations (token + position).
    pub fn forward(&self, tokens: &[u32]) -> MatrixF32 {
        self.forward_at(tokens, 0)
    }

    /// Embed tokens occupying absolute positions `start_pos..` — the decode
    /// path embeds one token at a time at its true position so cached and
    /// prefill activations agree.
    pub fn forward_at(&self, tokens: &[u32], start_pos: usize) -> MatrixF32 {
        assert!(
            start_pos + tokens.len() <= self.max_seq,
            "sequence exceeds max_seq"
        );
        let hidden = self.hidden();
        Matrix::from_fn(tokens.len(), hidden, |i, j| {
            let tok = tokens[i] as usize % self.vocab();
            self.table.get(tok, j).to_f32() + self.positional(start_pos + i, j, hidden)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let e = Embedding::random(1, 100, 32, 64);
        let x = e.forward(&[1, 2, 3, 2]);
        assert_eq!(x.shape(), (4, 32));
        let y = e.forward(&[1, 2, 3, 2]);
        assert_eq!(x, y);
    }

    #[test]
    fn same_token_differs_by_position() {
        let e = Embedding::random(2, 50, 16, 64);
        let x = e.forward(&[7, 7]);
        let d: f32 = x
            .row(0)
            .iter()
            .zip(x.row(1))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-3, "positions must distinguish identical tokens");
    }

    #[test]
    fn positional_encoding_is_bounded() {
        let e = Embedding::random(3, 10, 64, 128);
        let x = e.forward(&(0..100).map(|i| i % 10).collect::<Vec<_>>());
        for (_, _, v) in x.iter_indexed() {
            assert!(v.abs() < 2.0, "embedding value {v} out of expected range");
        }
    }

    #[test]
    fn out_of_vocab_tokens_wrap() {
        let e = Embedding::random(4, 10, 8, 16);
        let a = e.forward(&[3]);
        let b = e.forward(&[13]);
        assert_eq!(a, b);
    }
}
