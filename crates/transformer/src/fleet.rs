//! Shard-parallel serving fleet: N worker threads, each owning its own
//! [`DecodeScheduler`](ft_core::serve::DecodeScheduler) + [`ServeSession`]
//! over one shared [`TransformerModel`], behind a shared admission router.
//!
//! ```text
//!  caller threads                router                 shard workers
//!  ──────────────        ─────────────────────          ──────────────────
//!  Fleet::submit ──▶ alloc global StreamId (atomic)     shard0: scheduler+
//!                    project cache bytes                  session, sweeps
//!                    pick shard:                        shard1:    "
//!                      LeastLoaded (projected bytes)      ⋮
//!                      ConsistentHash (prompt affinity) shardN-1:  "
//!                 ──▶ per-shard mpsc ────────────────▶  chosen shard
//!  StreamHandle ◀── bounded per-stream channel ◀──────  event routing
//!
//!  ragged tails: an idle shard posts "hungry"; a loaded shard parks one
//!  stream, routes its Preempted event, and ships scheduler state +
//!  report + outbox over the migration board; the thief re-admits it
//!  through chunked re-prefill (bit-identical to a never-migrated run).
//! ```
//!
//! Design invariants:
//!
//! * **Same handle API.** [`Fleet::submit`] returns the exact
//!   [`StreamHandle`] the single-worker [`Engine`](crate::Engine) hands
//!   out — callers cannot tell how many shards serve them. `Engine` *is*
//!   the `workers = 1` fleet.
//! * **Fleet-unique ids.** One shared atomic allocator hands out
//!   [`StreamId`]s before routing, so ids are unique across shards and a
//!   migrated stream keeps its identity.
//! * **Bit-identical migration.** Only *pending* (queued or parked)
//!   streams migrate; a parked stream has no cache, so the move ships
//!   scheduler state + accumulated report and the thief rebuilds the
//!   cache by chunked re-prefill — the same machinery preemption uses,
//!   already pinned bit-identical by the preemption suite.
//! * **Lossless roll-up.** Every token, detection, repair, recovery,
//!   park, and speculation count lands in exactly one
//!   [`ShardReport`]; [`FleetReport::total`] is a plain sum. Event-level
//!   counters (tokens, recoveries, parks) are attributed to the shard
//!   where they happened; stream-level ledgers (fault reports,
//!   speculation) to the shard that retired the stream.
//! * **Composable parallelism.** Each shard thread caps the rayon-shim
//!   fan-out of its own sweeps to `cores / workers` (override:
//!   [`FleetConfig::shard_threads`], or the `FT_RAYON_WORKERS`
//!   environment variable process-wide), so shards × sweep-workers stays
//!   at about one thread per core instead of multiplying.

use crate::engine::{EngineConfig, StreamHandle};
use crate::model::{ModelReport, ServeSession, TransformerModel};
use ft_core::serve::{EngineEvent, GenerationRequest, Priority, StreamId, StreamState};
use ft_sim::{FaultInjector, NoFaults};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Identity of one fleet shard (worker thread). Displays as `shardN`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub usize);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Admission routing policy of a [`Fleet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Route each request to the shard with the smallest projected cache
    /// footprint (sum of the admission-projection bytes of the streams it
    /// owns). Best aggregate balance; no placement affinity.
    LeastLoaded,
    /// Route by consistent hash of the prompt tokens: identical prompts
    /// land on the same shard (prefix/session affinity), and adding
    /// shards only remaps `1/N` of the keyspace. Load can be ragged —
    /// work stealing covers the tails.
    ConsistentHash,
}

/// Sizing and policy knobs of a [`Fleet`].
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Shard worker threads. The default is the machine's available
    /// parallelism; `1` reproduces the classic [`Engine`](crate::Engine).
    pub workers: usize,
    /// Admission routing policy.
    pub router: RouterPolicy,
    /// Per-shard serving-loop knobs (scheduler sizing, channel capacity,
    /// backpressure park threshold) — every shard runs the same config.
    pub engine: EngineConfig,
    /// Allow idle shards to steal parked/queued streams from loaded ones.
    /// Migration is bit-identical (park + chunked re-prefill); disable it
    /// to pin streams to their routed shard.
    pub steal: bool,
    /// Rayon-shim worker cap set on each shard thread for its sweeps.
    /// `None` derives `max(1, cores / workers)` so the fleet does not
    /// oversubscribe; CI containers can also cap process-wide via the
    /// `FT_RAYON_WORKERS` environment variable.
    pub shard_threads: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
            router: RouterPolicy::LeastLoaded,
            engine: EngineConfig::default(),
            steal: true,
            shard_threads: None,
        }
    }
}

/// One shard's serving ledger. Event-level counters (tokens, recoveries,
/// parks, migrations) count where they *happened*; stream-level ledgers
/// (fault totals, speculation, finished ids) count on the shard that
/// *retired* the stream — recovery of a migrated stream is therefore
/// attributed to the shard that owned it when the fault hit.
#[derive(Clone, Debug, Default)]
pub struct ShardReport {
    /// Which shard (or the synthetic total row — see
    /// [`FleetReport::total`]).
    pub shard: ShardId,
    /// Streams retired on this shard.
    pub streams_finished: u64,
    /// Tokens emitted by this shard's sweeps (migrated streams count the
    /// tokens emitted here only — re-prefill replays are not re-emitted).
    pub tokens_emitted: u64,
    /// Re-prefill recovery attempts started on this shard.
    pub recoveries: u64,
    /// Park transitions (preemption, backpressure, or migration export)
    /// executed on this shard.
    pub preemptions: u64,
    /// Streams adopted from the migration board.
    pub migrations_in: u64,
    /// Streams shipped to the migration board.
    pub migrations_out: u64,
    /// Sum of retired streams' detected fault counts (model-wide).
    pub detected: u64,
    /// Sum of retired streams' repaired fault counts (model-wide).
    pub repaired: u64,
    /// Sum of retired streams' uncorrectable cache detections.
    pub cache_uncorrectable: u64,
    /// History tokens re-fed by retired streams' recoveries.
    pub recovery_fed: u64,
    /// Speculative tokens drafted by retired streams.
    pub spec_drafted: u64,
    /// Speculative tokens committed by retired streams.
    pub spec_accepted: u64,
    /// Peak resident cache bytes of this shard's session.
    pub peak_cache_bytes: u64,
    /// Ids of the streams that retired here, in retirement order.
    pub finished_streams: Vec<StreamId>,
}

impl ShardReport {
    fn fold_finished(&mut self, f: &crate::model::FinishedStream) {
        self.streams_finished += 1;
        self.detected += f.report.total_detected;
        self.repaired += f.report.total_repaired;
        self.cache_uncorrectable += f.report.cache_uncorrectable;
        self.recovery_fed += f.recovery_fed as u64;
        self.spec_drafted += f.spec_drafted;
        self.spec_accepted += f.spec_accepted;
        self.finished_streams.push(f.id);
    }

    fn absorb(&mut self, other: &ShardReport) {
        self.streams_finished += other.streams_finished;
        self.tokens_emitted += other.tokens_emitted;
        self.recoveries += other.recoveries;
        self.preemptions += other.preemptions;
        self.migrations_in += other.migrations_in;
        self.migrations_out += other.migrations_out;
        self.detected += other.detected;
        self.repaired += other.repaired;
        self.cache_uncorrectable += other.cache_uncorrectable;
        self.recovery_fed += other.recovery_fed;
        self.spec_drafted += other.spec_drafted;
        self.spec_accepted += other.spec_accepted;
        self.peak_cache_bytes += other.peak_cache_bytes;
        self.finished_streams
            .extend_from_slice(&other.finished_streams);
    }
}

impl fmt::Display for ShardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} streams, {} tok, {} recoveries, {} parks, {} in/{} out, \
             det {} rep {} unc {}, spec {}/{}, peak {} B",
            self.shard,
            self.streams_finished,
            self.tokens_emitted,
            self.recoveries,
            self.preemptions,
            self.migrations_in,
            self.migrations_out,
            self.detected,
            self.repaired,
            self.cache_uncorrectable,
            self.spec_accepted,
            self.spec_drafted,
            self.peak_cache_bytes,
        )
    }
}

/// Per-shard ledgers of one fleet run, plus the fleet-level admission
/// count. The roll-up is lossless: [`total`](FleetReport::total) is a
/// plain per-counter sum over [`shards`](FleetReport::shards).
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// One ledger per shard, indexed by [`ShardId`].
    pub shards: Vec<ShardReport>,
    /// Streams admitted through the router.
    pub streams_submitted: u64,
}

impl FleetReport {
    /// Sum the per-shard ledgers into one fleet-level row. The synthetic
    /// row carries `ShardId(shards.len())`; `peak_cache_bytes` is the sum
    /// of per-shard peaks (an upper bound on the fleet-wide peak, since
    /// shards do not peak simultaneously), and `finished_streams` is the
    /// concatenation sorted by id.
    pub fn total(&self) -> ShardReport {
        let mut out = ShardReport {
            shard: ShardId(self.shards.len()),
            ..ShardReport::default()
        };
        for s in &self.shards {
            out.absorb(s);
        }
        out.finished_streams.sort_unstable();
        out
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fleet: {} streams submitted", self.streams_submitted)?;
        for s in &self.shards {
            writeln!(f, "  {s}")?;
        }
        write!(f, "  total: {}", self.total())
    }
}

/// A request plus the router's pre-allocated id, event sender, and
/// projected cache footprint, as shipped over a shard's submission
/// channel.
enum Command {
    Submit {
        id: StreamId,
        req: GenerationRequest,
        events: SyncSender<EngineEvent>,
        projection: u64,
    },
}

/// Worker-side event queue of one stream: everything the bounded channel
/// could not absorb yet, plus the stream's routing projection (released
/// when it retires or migrates). Migration ships the whole outbox, so
/// buffered events stay ordered across the move.
struct Outbox {
    tx: SyncSender<EngineEvent>,
    buf: VecDeque<EngineEvent>,
    held_sweeps: u32,
    finished: bool,
    dead: bool,
    projection: u64,
}

impl Outbox {
    /// Push as much buffered backlog into the channel as fits.
    fn flush(&mut self) {
        while let Some(&ev) = self.buf.front() {
            match self.tx.try_send(ev) {
                Ok(()) => {
                    self.buf.pop_front();
                }
                Err(TrySendError::Full(_)) => return,
                Err(TrySendError::Disconnected(_)) => {
                    // Consumer dropped its handle: discard the backlog and
                    // stop routing to this stream. The outbox itself stays
                    // until the stream retires — it carries the projection.
                    self.dead = true;
                    self.buf.clear();
                    return;
                }
            }
        }
    }

    /// Undelivered events remain and the consumer is still attached.
    fn blocked(&self) -> bool {
        !self.dead && !self.buf.is_empty()
    }

    fn push(&mut self, ev: EngineEvent) {
        if self.dead {
            return;
        }
        if matches!(ev, EngineEvent::Finished { .. }) {
            self.finished = true;
        }
        self.buf.push_back(ev);
        self.flush();
    }
}

/// A parked/queued stream in flight between shards: scheduler state (the
/// full ledger — tokens, recoveries, priority, speculation counters),
/// the accumulated model report, and the consumer's outbox. No cache —
/// the thief rebuilds it by chunked re-prefill.
struct Migrant {
    state: StreamState,
    report: ModelReport,
    outbox: Outbox,
}

/// State shared by the router and every shard worker.
struct FleetShared {
    /// Projected cache bytes per shard (admission-time projections, held
    /// until the stream retires or migrates away).
    loads: Vec<AtomicU64>,
    /// Idle shards currently advertising for work (advisory — donors
    /// check it before parking anything).
    hungry: AtomicUsize,
    /// The migration board: parked streams awaiting adoption. Any idle
    /// worker (including the donor, if the thief left) claims from here,
    /// so no migrant is ever stranded.
    board: Mutex<VecDeque<Migrant>>,
    /// Live per-shard ledgers, refreshed every worker-loop iteration —
    /// the source of [`Fleet::report`] snapshots.
    live: Vec<Mutex<ShardReport>>,
}

/// Handle to a sharded serving fleet: N worker threads behind one
/// admission router. Same submission/consumption contract as
/// [`Engine`](crate::Engine) — see the module docs for the invariants.
///
/// ```no_run
/// use ft_transformer::{
///     BackendKind, Fleet, FleetConfig, GenerationRequest, ModelConfig, TransformerModel,
/// };
///
/// let cfg = ModelConfig {
///     name: "doc",
///     layers: 1,
///     heads: 2,
///     hidden: 16,
///     ffn_dim: 32,
///     vocab: 31,
///     max_seq: 32,
/// };
/// let model = TransformerModel::random(7, cfg, BackendKind::Flash).with_causal(true);
/// let fleet = Fleet::spawn(model, FleetConfig { workers: 4, ..Default::default() });
/// let handles: Vec<_> = (0..64)
///     .map(|i| fleet.submit(GenerationRequest::new(vec![1, 2, i], 8)))
///     .collect();
/// let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
/// let report = fleet.shutdown(); // per-shard attribution + lossless total
/// println!("{report}");
/// ```
pub struct Fleet {
    txs: Vec<Option<Sender<Command>>>,
    workers: Vec<Option<thread::JoinHandle<ShardReport>>>,
    shared: Arc<FleetShared>,
    next_id: Arc<AtomicU64>,
    submitted: AtomicU64,
    capacity: usize,
    router: RouterPolicy,
    ring: Vec<(u64, usize)>,
    bytes_per_token: u64,
    window_slack: usize,
    max_seq: usize,
    default_window: Option<usize>,
}

/// Hash points per shard on the consistent-hash ring. Enough that the
/// keyspace split stays within a few percent of even.
const VNODES: usize = 16;

impl Fleet {
    /// Spawn the fleet over an owned model with no fault injection.
    pub fn spawn(model: TransformerModel, cfg: FleetConfig) -> Fleet {
        Fleet::spawn_with(model, cfg, Arc::new(NoFaults))
    }

    /// Spawn the fleet with a shared fault injector: every shard's sweeps
    /// expose cache-resident state and kernel operations to `inj`, and
    /// per-request recovery runs unchanged on whichever shard owns the
    /// stream when the damage is attended.
    pub fn spawn_with(
        model: TransformerModel,
        cfg: FleetConfig,
        inj: Arc<dyn FaultInjector + Send + Sync>,
    ) -> Fleet {
        assert!(cfg.workers > 0, "a fleet needs at least one shard");
        assert!(
            cfg.engine.channel_capacity > 0,
            "a stream needs event capacity"
        );
        // The whole point of the refactor: the model, the sessions, and
        // the injector all cross thread boundaries. Pin it at compile
        // time so a future field can't silently break the fleet.
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<TransformerModel>();
        assert_send::<ServeSession<Arc<TransformerModel>>>();
        assert_send::<Migrant>();

        let model = Arc::new(model);
        let bytes_per_token = (4 * model.config.hidden * model.config.layers) as u64;
        let window_slack = model.blocks.first().map_or(0, |b| b.mha.cache_block);
        let shared = Arc::new(FleetShared {
            loads: (0..cfg.workers).map(|_| AtomicU64::new(0)).collect(),
            hungry: AtomicUsize::new(0),
            board: Mutex::new(VecDeque::new()),
            live: (0..cfg.workers)
                .map(|s| {
                    Mutex::new(ShardReport {
                        shard: ShardId(s),
                        ..ShardReport::default()
                    })
                })
                .collect(),
        });
        let cores = thread::available_parallelism().map_or(1, |n| n.get());
        let sweep_workers = cfg
            .shard_threads
            .unwrap_or_else(|| (cores / cfg.workers).max(1));
        let mut txs = Vec::with_capacity(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        for s in 0..cfg.workers {
            let (tx, rx) = mpsc::channel();
            let model = Arc::clone(&model);
            let inj = Arc::clone(&inj);
            let shared = Arc::clone(&shared);
            let steal = cfg.steal && cfg.workers > 1;
            let engine_cfg = cfg.engine;
            let worker = thread::Builder::new()
                .name(format!("ft-serve-{}", ShardId(s)))
                .spawn(move || {
                    rayon::set_thread_workers(sweep_workers);
                    worker_loop(ShardId(s), model, engine_cfg, steal, inj, rx, shared)
                })
                .expect("spawn shard worker thread");
            txs.push(Some(tx));
            workers.push(Some(worker));
        }
        let mut ring: Vec<(u64, usize)> = (0..cfg.workers)
            .flat_map(|s| (0..VNODES).map(move |v| (mix64((s as u64) << 32 | v as u64), s)))
            .collect();
        ring.sort_unstable();
        Fleet {
            txs,
            workers,
            shared,
            next_id: Arc::new(AtomicU64::new(0)),
            submitted: AtomicU64::new(0),
            capacity: cfg.engine.channel_capacity,
            router: cfg.router,
            ring,
            bytes_per_token,
            window_slack,
            max_seq: model.config.max_seq,
            default_window: model.window(),
        }
    }

    /// Shards in the fleet.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Submit a request and get the stream's event handle — the same
    /// [`StreamHandle`] the single-worker engine returns. The router
    /// allocates a fleet-unique [`StreamId`], projects the request's
    /// cache footprint, and forwards to the chosen shard.
    pub fn submit(&self, req: GenerationRequest) -> StreamHandle {
        let id = StreamId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let priority = req.priority;
        let projection = self.project(&req);
        let shard = match self.router {
            RouterPolicy::LeastLoaded => self.least_loaded(),
            RouterPolicy::ConsistentHash => self.hash_shard(&req.prompt),
        };
        self.shared.loads[shard].fetch_add(projection, Ordering::Relaxed);
        let (events, handle_rx) = mpsc::sync_channel(self.capacity);
        self.txs[shard]
            .as_ref()
            .expect("submission channels open while the fleet is alive")
            .send(Command::Submit {
                id,
                req,
                events,
                projection,
            })
            .expect("shard worker alive while the fleet is alive");
        StreamHandle::attach(id, priority, handle_rx)
    }

    /// [`submit`](Fleet::submit) with an explicit priority class
    /// (overrides whatever the request carried).
    pub fn submit_with_priority(&self, req: GenerationRequest, priority: Priority) -> StreamHandle {
        self.submit(req.with_priority(priority))
    }

    /// Admission projection: the same FP16 K+V payload estimate the
    /// shard schedulers use for memory budgeting, capped by the stream's
    /// sliding window (plus one evictable block of slack) when it has
    /// one.
    fn project(&self, req: &GenerationRequest) -> u64 {
        let prompt = req.prompt.len().min(self.max_seq);
        let rows = prompt + req.max_new_tokens.min(self.max_seq - prompt);
        let rows = match req.window.or(self.default_window) {
            Some(w) => rows.min(w + self.window_slack),
            None => rows,
        };
        (rows as u64).max(1) * self.bytes_per_token
    }

    fn least_loaded(&self) -> usize {
        let mut best = 0usize;
        let mut best_load = u64::MAX;
        for (s, load) in self.shared.loads.iter().enumerate() {
            let l = load.load(Ordering::Relaxed);
            if l < best_load {
                best_load = l;
                best = s;
            }
        }
        best
    }

    fn hash_shard(&self, prompt: &[u32]) -> usize {
        let mut key = 0xA076_1D64_78BD_642Fu64;
        for &t in prompt {
            key = mix64(key ^ t as u64);
        }
        let i = self.ring.partition_point(|&(p, _)| p < key);
        self.ring[i % self.ring.len()].1
    }

    /// Snapshot the live per-shard ledgers without stopping the fleet.
    /// Counters are monotone; a snapshot taken mid-sweep lags that sweep.
    pub fn report(&self) -> FleetReport {
        FleetReport {
            shards: self
                .shared
                .live
                .iter()
                .map(|m| m.lock().unwrap().clone())
                .collect(),
            streams_submitted: self.submitted.load(Ordering::Relaxed),
        }
    }

    /// Hang up the submission channels, wait for every shard to finish
    /// the streams it owns, and fold the final per-shard ledgers into the
    /// fleet report. Only call after draining (or dropping) all handles —
    /// a blocked consumer would leave its shard, and hence this join,
    /// waiting on it.
    pub fn shutdown(mut self) -> FleetReport {
        for tx in &mut self.txs {
            *tx = None;
        }
        let shards = self
            .workers
            .iter_mut()
            .map(|w| {
                w.take()
                    .expect("worker joined once")
                    .join()
                    .unwrap_or_else(|p| std::panic::resume_unwind(p))
            })
            .collect();
        FleetReport {
            shards,
            streams_submitted: self.submitted.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Fleet {
    /// Hang up the submission channels and detach: shards finish their
    /// remaining streams in the background (handles stay valid) and exit.
    fn drop(&mut self) {
        for tx in &mut self.txs {
            *tx = None;
        }
        for w in &mut self.workers {
            drop(w.take());
        }
    }
}

/// SplitMix64 — the same mixer the deterministic sampler uses, local so
/// the router cannot drift from a private helper elsewhere.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One shard's serving loop. The single-worker case (`steal = false`)
/// is exactly the classic engine loop; with stealing on, an idle shard
/// advertises on `shared.hungry`, loaded shards export one pending or
/// parked stream at a time over `shared.board`, and every idle shard —
/// donor included — adopts from the board, so a migrant is never
/// stranded. Runs until the submission channel is hung up, every owned
/// stream has finished with its events delivered (or its consumer gone),
/// and the board is empty.
fn worker_loop(
    me: ShardId,
    model: Arc<TransformerModel>,
    cfg: EngineConfig,
    steal: bool,
    inj: Arc<dyn FaultInjector + Send + Sync>,
    rx: Receiver<Command>,
    shared: Arc<FleetShared>,
) -> ShardReport {
    let mut session: ServeSession<Arc<TransformerModel>> = ServeSession::new(model, cfg.scheduler);
    let inj: &(dyn FaultInjector + Send + Sync) = &*inj;
    let mut outboxes: BTreeMap<u64, Outbox> = BTreeMap::new();
    let mut report = ShardReport {
        shard: me,
        ..ShardReport::default()
    };
    let mut open = true;
    let mut hungry_marked = false;
    let accept = |cmd: Command,
                  session: &mut ServeSession<Arc<TransformerModel>>,
                  outboxes: &mut BTreeMap<u64, Outbox>| {
        let Command::Submit {
            id,
            req,
            events,
            projection,
        } = cmd;
        session.submit_request_with_id(req, id);
        outboxes.insert(
            id.0,
            Outbox {
                tx: events,
                buf: VecDeque::new(),
                held_sweeps: 0,
                finished: false,
                dead: false,
                projection,
            },
        );
    };
    loop {
        // Drain submissions without blocking the sweep cadence.
        while open {
            match rx.try_recv() {
                Ok(cmd) => accept(cmd, &mut session, &mut outboxes),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => open = false,
            }
        }
        // Retry blocked backlogs; consumers that caught up get their
        // stream fed again.
        let mut caught_up = Vec::new();
        for (id, ob) in outboxes.iter_mut() {
            ob.flush();
            if !ob.blocked() && ob.held_sweeps > 0 {
                ob.held_sweeps = 0;
                caught_up.push(StreamId(*id));
            }
        }
        for id in caught_up {
            session.release_stream(id);
        }
        // Retired-and-delivered (or abandoned) streams need no routing.
        // An abandoned (dead) outbox stays until its stream retires — it
        // still carries the stream's routing projection.
        outboxes.retain(|_, ob| !(ob.finished && (ob.dead || ob.buf.is_empty())));
        if session.idle() {
            // Idle shard: adopt a migrant if one is posted. Any idle
            // worker claims — including a donor whose thief already left
            // — so the board always drains.
            if steal {
                let migrant = shared.board.lock().unwrap().pop_front();
                if let Some(m) = migrant {
                    if hungry_marked {
                        shared.hungry.fetch_sub(1, Ordering::Relaxed);
                        hungry_marked = false;
                    }
                    shared.loads[me.0].fetch_add(m.outbox.projection, Ordering::Relaxed);
                    report.migrations_in += 1;
                    outboxes.insert(m.state.id.0, m.outbox);
                    session.adopt_stream(m.state, m.report);
                    publish(&shared, me, &report);
                    continue;
                }
            }
            if outboxes.is_empty() {
                if !open {
                    if hungry_marked {
                        shared.hungry.fetch_sub(1, Ordering::Relaxed);
                    }
                    report.peak_cache_bytes = session.peak_cache_bytes();
                    publish(&shared, me, &report);
                    return report;
                }
                if steal {
                    // Advertise for work, then poll submissions and the
                    // board together (a board post cannot wake a blocked
                    // recv).
                    if !hungry_marked {
                        shared.hungry.fetch_add(1, Ordering::Relaxed);
                        hungry_marked = true;
                    }
                    match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok(cmd) => accept(cmd, &mut session, &mut outboxes),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => open = false,
                    }
                } else {
                    // Single-shard fleet (the classic engine): nothing can
                    // migrate, so block until the next submission.
                    match rx.recv() {
                        Ok(cmd) => accept(cmd, &mut session, &mut outboxes),
                        Err(_) => {
                            report.peak_cache_bytes = session.peak_cache_bytes();
                            publish(&shared, me, &report);
                            return report;
                        }
                    }
                }
                continue;
            }
            // All streams retired but some consumers have not absorbed
            // their final events yet: wait on them (and on new work).
            if open {
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(cmd) => accept(cmd, &mut session, &mut outboxes),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => open = false,
                }
            } else {
                thread::sleep(Duration::from_millis(1));
            }
            continue;
        }
        if hungry_marked {
            shared.hungry.fetch_sub(1, Ordering::Relaxed);
            hungry_marked = false;
        }
        // Work export: a hungry shard exists and the board is clear —
        // park one stream (queue tail first; else the newest active
        // stream) and post it. Keep at least one stream for ourselves.
        if steal
            && shared.hungry.load(Ordering::Relaxed) > 0
            && session.active_streams() + session.pending_streams() >= 2
            && shared.board.lock().unwrap().is_empty()
        {
            donate(me, &mut session, &mut outboxes, &mut report, &shared);
        }
        // Backpressure park: a stream whose consumer has been stuck for
        // enough sweeps gives its slot (and cache bytes) to waiting work.
        if session.pending_streams() > 0 {
            let stuck: Vec<StreamId> = outboxes
                .iter()
                .filter(|(_, ob)| {
                    ob.blocked() && !ob.finished && ob.held_sweeps >= cfg.park_after_held_sweeps
                })
                .map(|(&id, _)| StreamId(id))
                .collect();
            for id in stuck {
                if session.park_stream(id) {
                    if let Some(ob) = outboxes.get_mut(&id.0) {
                        ob.held_sweeps = 0;
                    }
                }
            }
        }
        let events = session.sweep_events(&inj);
        let swept = !events.is_empty();
        route(events, &mut outboxes, &mut report);
        // Streams whose consumers still lag get held: slot and cache stay,
        // but no further tokens are generated for them.
        let mut lagging = Vec::new();
        for (id, ob) in outboxes.iter_mut() {
            if ob.blocked() && !ob.finished {
                ob.held_sweeps += 1;
                lagging.push(StreamId(*id));
            }
        }
        for id in lagging {
            // Tolerant no-op when the stream is pending (parked) or
            // already retired.
            session.hold_stream(id);
        }
        // Fold retirements into the shard ledger and release their
        // routing projections.
        for f in session.take_finished() {
            if let Some(ob) = outboxes.get_mut(&f.id.0) {
                shared.loads[me.0].fetch_sub(ob.projection, Ordering::Relaxed);
                ob.projection = 0;
                // A dead outbox never sees its Finished event; mark it
                // done here so the retain above can drop it.
                ob.finished = true;
            }
            report.fold_finished(&f);
        }
        report.peak_cache_bytes = session.peak_cache_bytes();
        publish(&shared, me, &report);
        if !swept {
            // Every feedable stream is held or awaiting its consumer:
            // yield briefly instead of spinning on empty plans.
            thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Export one stream to the migration board: pick a victim (queue tail
/// first — it has no cache to drop — else park the newest active
/// stream), route the park's `Preempted` event to the victim's own
/// outbox *before* the move, and ship scheduler state + model report +
/// outbox.
fn donate(
    me: ShardId,
    session: &mut ServeSession<Arc<TransformerModel>>,
    outboxes: &mut BTreeMap<u64, Outbox>,
    report: &mut ShardReport,
    shared: &FleetShared,
) {
    let victim = match session.pending_stream_ids().last() {
        Some(&id) => Some(id),
        None => session
            .active_stream_ids()
            .iter()
            .rev()
            .copied()
            .find(|&id| session.park_stream(id)),
    };
    let Some(victim) = victim else { return };
    // The park (if any) queued a Preempted event; route it into the
    // victim's outbox so it travels with the stream, in order.
    route(session.drain_events(), outboxes, report);
    let Some((state, model_report)) = session.extract_stream(victim) else {
        return;
    };
    let Some(outbox) = outboxes.remove(&victim.0) else {
        // Unreachable in practice: every accepted stream has an outbox
        // until it retires. Re-adopt rather than lose the stream.
        session.adopt_stream(state, model_report);
        return;
    };
    shared.loads[me.0].fetch_sub(outbox.projection, Ordering::Relaxed);
    report.migrations_out += 1;
    shared.board.lock().unwrap().push_back(Migrant {
        state,
        report: model_report,
        outbox,
    });
}

/// Route a batch of session events into the per-stream outboxes and count
/// the event-level ledgers (tokens, recoveries, parks) for this shard.
fn route(events: Vec<EngineEvent>, outboxes: &mut BTreeMap<u64, Outbox>, report: &mut ShardReport) {
    for ev in events {
        match ev {
            EngineEvent::TokenEmitted { .. } => report.tokens_emitted += 1,
            EngineEvent::Recovering { .. } => report.recoveries += 1,
            EngineEvent::Preempted { .. } => report.preemptions += 1,
            _ => {}
        }
        if let Some(ob) = outboxes.get_mut(&ev.stream().0) {
            ob.push(ev);
        }
    }
}

/// Refresh this shard's live ledger snapshot (the [`Fleet::report`]
/// source).
fn publish(shared: &FleetShared, me: ShardId, report: &ShardReport) {
    *shared.live[me.0].lock().unwrap() = report.clone();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_and_report_display() {
        assert_eq!(format!("{}", ShardId(3)), "shard3");
        let mut fr = FleetReport {
            shards: vec![
                ShardReport {
                    shard: ShardId(0),
                    streams_finished: 2,
                    tokens_emitted: 10,
                    ..ShardReport::default()
                },
                ShardReport {
                    shard: ShardId(1),
                    streams_finished: 1,
                    tokens_emitted: 5,
                    recoveries: 1,
                    ..ShardReport::default()
                },
            ],
            streams_submitted: 3,
        };
        fr.shards[0].finished_streams = vec![StreamId(2), StreamId(0)];
        fr.shards[1].finished_streams = vec![StreamId(1)];
        let total = fr.total();
        assert_eq!(total.shard, ShardId(2), "synthetic total row");
        assert_eq!(total.streams_finished, 3);
        assert_eq!(total.tokens_emitted, 15);
        assert_eq!(total.recoveries, 1);
        assert_eq!(
            total.finished_streams,
            vec![StreamId(0), StreamId(1), StreamId(2)],
            "total concatenates sorted by id"
        );
        let text = format!("{fr}");
        assert!(text.contains("shard0:"), "{text}");
        assert!(text.contains("shard1:"), "{text}");
        assert!(text.contains("3 streams submitted"), "{text}");
        assert!(text.contains("total:"), "{text}");
    }

    #[test]
    fn consistent_hash_ring_is_stable_and_complete() {
        // Every shard owns part of the keyspace, identical prompts map to
        // identical shards, and different prompts spread.
        let mut ring: Vec<(u64, usize)> = (0..4usize)
            .flat_map(|s| (0..VNODES).map(move |v| (mix64((s as u64) << 32 | v as u64), s)))
            .collect();
        ring.sort_unstable();
        let fleet_shards = |prompt: &[u32]| {
            let mut key = 0xA076_1D64_78BD_642Fu64;
            for &t in prompt {
                key = mix64(key ^ t as u64);
            }
            let i = ring.partition_point(|&(p, _)| p < key);
            ring[i % ring.len()].1
        };
        let mut hit = [false; 4];
        for p in 0..256u32 {
            let prompt = [p, p.wrapping_mul(7), 3];
            let s = fleet_shards(&prompt);
            assert_eq!(s, fleet_shards(&prompt), "stable routing");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "every shard owns keyspace: {hit:?}");
    }
}
