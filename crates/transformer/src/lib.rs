//! # ft-transformer — fault-tolerant transformer inference substrate
//!
//! The model stack the paper's Fig. 15 experiment runs EFTA inside:
//! embeddings, LayerNorm, multi-head attention over the `ft-core` kernels,
//! ABFT-protected linear projections (Fig. 1's "Linear Projection with ABFT
//! Protection"), feed-forward modules with range-restricted activations,
//! and the GPT-2 / BERT-Base / BERT-Large / T5-Small configurations.
//!
//! Weights are seeded-random: Fig. 15 measures *time overhead ratios* of
//! fault tolerance inside whole-model inference, which depends on tensor
//! shapes, not weight values.
//!
//! Generation runs over the checksum-protected KV-cache decode path:
//! O(cache) work per token instead of a full prefill, with cache-resident
//! state re-verified every step. Serving traffic goes through
//! [`ServeSession`] ([`TransformerModel::serve`]), a typed
//! request/response lifecycle: streams are submitted as
//! [`GenerationRequest`]s (per-stream window, sampling mode, recovery
//! policy), each sweep emits [`EngineEvent`]s, and retired streams carry a
//! [`FinishReason`]. The headline recovery behavior —
//! [`RecoveryPolicy::ReprefillBounded`] — closes the paper's
//! detect → correct → *recover* loop: a stream whose attended cache window
//! is poisoned is re-prefilled (prompt plus already-emitted tokens) and
//! resumes bit-identically to an undamaged run.
//! [`TransformerModel::generate`] is the session's one-stream special
//! case, and [`TransformerModel::decode_step`] remains the explicit
//! token-at-a-time loop. The pre-cache prefill-per-token baseline survives
//! as [`TransformerModel::generate_prefill`].
//!
//! On top of the pull-mode session sits the push-based serving loop
//! ([`Engine`], [`crate::engine`]): an owned session on a dedicated worker
//! thread, a [`Priority`]-classed run queue with aging, preemption through
//! the bit-identical re-prefill path, and bounded per-stream event
//! channels ([`StreamHandle`]) with backpressure that holds or parks slow
//! consumers' streams instead of stalling the sweep.
//!
//! For multi-core serving, [`Fleet`] ([`crate::fleet`]) shards that loop:
//! N worker threads each own a scheduler + session over one shared model,
//! behind an admission router (least-loaded or consistent-hash) that
//! allocates fleet-unique stream ids and returns the same
//! [`StreamHandle`]s; idle shards steal parked streams bit-identically,
//! and per-shard [`ShardReport`]s roll up losslessly into a
//! [`FleetReport`]. [`Engine`] is the `workers = 1` case.

#![warn(missing_docs)]

pub mod activation;
pub mod block;
pub mod configs;
pub mod embed;
pub mod engine;
pub mod ffn;
pub mod fleet;
pub mod linear;
pub mod mha;
pub mod model;
pub mod norm;

pub use activation::Activation;
pub use block::TransformerBlock;
pub use configs::ModelConfig;
pub use embed::Embedding;
pub use engine::{Engine, EngineConfig, StreamHandle, StreamOutcome};
pub use ffn::FeedForward;
pub use fleet::{Fleet, FleetConfig, FleetReport, RouterPolicy, ShardId, ShardReport};
pub use ft_core::kv::SizeBreakdown;
pub use ft_core::protect::ProtectionLevel;
pub use ft_core::serve::{
    DraftSource, EngineEvent, FinishReason, GenerationRequest, Priority, RecoveryPolicy,
    SamplingMode, SchedulerConfig, SpeculationPolicy, StreamId,
};
pub use linear::{Linear, LinearProtection};
pub use mha::{BackendKind, KvCache, MhaReport, MultiHeadAttention};
pub use model::{
    serve_expose_step, FinishedStream, ModelKvCache, ModelReport, ServeSession, TransformerModel,
};
pub use norm::LayerNorm;
