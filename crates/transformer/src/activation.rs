//! Activation functions with range restriction.
//!
//! The FT-Transformer framework (paper Fig. 1, right panel) protects the
//! feed-forward module as *ABFT linear → activation with range restriction →
//! ABFT linear*. Activations have known theoretical output ranges — ReLU is
//! non-negative, GELU is bounded below by ≈ −0.1700 — so an out-of-range
//! result is necessarily a computational error and is repaired by
//! recomputation (here: clamping to the recomputed true value).

use ft_sim::{FaultInjector, FaultSite, OpCoord};

/// Supported activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation, as in GPT-2/BERT).
    Gelu,
}

/// Global minimum of the GELU function (attained near x ≈ −0.7518).
pub const GELU_MIN: f32 = -0.170_04;

impl Activation {
    /// Apply the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Gelu => {
                // tanh approximation: 0.5x(1 + tanh(√(2/π)(x + 0.044715x³)))
                let inner = 0.797_884_6 * (x + 0.044_715 * x * x * x);
                0.5 * x * (1.0 + inner.tanh())
            }
        }
    }

    /// Theoretical output range `(lo, hi)` given the input magnitude bound.
    ///
    /// ReLU maps into `[0, max_in]`; GELU into `[GELU_MIN, max_in]` (GELU(x)
    /// ≤ x for x ≥ 0 and ≥ GELU_MIN everywhere).
    pub fn output_range(self, max_abs_input: f32) -> (f32, f32) {
        match self {
            Activation::Relu => (0.0, max_abs_input),
            Activation::Gelu => (GELU_MIN, max_abs_input),
        }
    }
}

/// Outcome of a range-restricted activation pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActivationReport {
    /// Values found outside the theoretical range and repaired.
    pub restricted: u64,
}

/// Apply `act` element-wise to `x` in place with fault injection at the
/// activation unit and range restriction on the results.
///
/// `slot` identifies the layer for fault coordinates; `max_abs_input` bounds
/// the input (callers can pass the actual block max).
pub fn apply_restricted<I: FaultInjector>(
    act: Activation,
    x: &mut [f32],
    inj: &I,
    slot: usize,
    row: usize,
    max_abs_input: f32,
) -> ActivationReport {
    let (lo, hi) = act.output_range(max_abs_input);
    let slack = 1e-3 * max_abs_input.max(1.0);
    let mut report = ActivationReport::default();
    for (j, v) in x.iter_mut().enumerate() {
        let input = *v;
        let out = inj.corrupt_f32(
            FaultSite::Activation,
            OpCoord::new(slot, row, j, 0),
            act.apply(input),
        );
        if out.is_finite() && out >= lo - slack && out <= hi + slack {
            *v = out;
        } else {
            // Out of theoretical range: recompute (fault-free unit).
            *v = act.apply(input);
            report.restricted += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_sim::{NoFaults, SeuInjector};

    #[test]
    fn relu_and_gelu_basics() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
        assert!((Activation::Gelu.apply(0.0)).abs() < 1e-7);
        // GELU(1) ≈ 0.8412, GELU(-1) ≈ -0.1588.
        assert!((Activation::Gelu.apply(1.0) - 0.8412).abs() < 1e-3);
        assert!((Activation::Gelu.apply(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_respects_global_minimum() {
        let mut min = f32::INFINITY;
        let mut x = -6.0f32;
        while x < 6.0 {
            min = min.min(Activation::Gelu.apply(x));
            x += 1e-3;
        }
        assert!(min >= GELU_MIN - 1e-4, "observed min {min}");
    }

    #[test]
    fn clean_pass_restricts_nothing() {
        let mut x = vec![-2.0, -0.5, 0.0, 0.7, 3.0];
        let max_in = 3.0;
        let rep = apply_restricted(Activation::Gelu, &mut x, &NoFaults, 0, 0, max_in);
        assert_eq!(rep.restricted, 0);
        assert!(x.iter().all(|v| *v >= GELU_MIN - 1e-3 && *v <= max_in));
    }

    #[test]
    fn corrupted_activation_is_restricted() {
        let mut x = vec![0.5f32; 8];
        // Exponent-bit corruption of the activation output at column 3.
        let inj = SeuInjector::new(FaultSite::Activation, OpCoord::new(0, 0, 3, 0), 30);
        let rep = apply_restricted(Activation::Relu, &mut x, &inj, 0, 0, 1.0);
        assert_eq!(rep.restricted, 1);
        // Repaired to the true ReLU value.
        assert_eq!(x[3], 0.5);
    }

    #[test]
    fn in_range_corruption_passes_relu() {
        // A small corruption inside [0, max] is invisible to range
        // restriction — the known limitation of the technique.
        let mut x = vec![0.5f32; 4];
        let inj = SeuInjector::new(FaultSite::Activation, OpCoord::new(0, 0, 1, 0), 18);
        let rep = apply_restricted(Activation::Relu, &mut x, &inj, 0, 0, 1.0);
        assert_eq!(rep.restricted, 0);
        assert_ne!(x[1], 0.5);
        assert!(x[1] >= 0.0 && x[1] <= 1.0);
    }
}
