//! Push-based serving loop: a [`ServeSession`](crate::model::ServeSession)
//! on a dedicated worker thread, driven by submissions instead of polled
//! sweeps.
//!
//! The pull-mode [`ServeSession`](crate::model::ServeSession) makes the
//! *caller* the event loop: it
//! must call `sweep_events` in a loop and dispatch the events itself, and
//! every stream it submitted advances in lock step with that loop. This
//! module inverts the control flow — [`Engine::spawn`] moves an owned
//! session onto a worker thread, [`Engine::submit`] hands back a
//! [`StreamHandle`] whose [`EngineEvent`]s arrive over a bounded per-stream
//! channel, and the worker sweeps continuously on its own:
//!
//! ```text
//!  caller threads                     worker thread
//!  ──────────────                     ─────────────────────────────────
//!  Engine::submit ──┐                 loop {
//!    (alloc id,     │  mpsc::channel    drain submissions → scheduler
//!     make handle)  ├─────────────────▶ flush per-stream outboxes
//!                   │                   park consumers stuck too long
//!  StreamHandle ◀───┘                   sweep_events(injector)
//!    .recv()  ◀── bounded sync_channel  route events → outboxes
//!    .wait()                          }
//! ```
//!
//! Three policies make it a *server* rather than a threaded loop:
//!
//! * **Priority classes.** Every request carries a [`Priority`]
//!   (`Latency` / `Normal` / `Batch`); the scheduler's run queue admits
//!   by class with deadline-aware aging
//!   ([`SchedulerConfig::priority_aging`]), so batch work cannot starve
//!   and latency work does not queue behind it.
//! * **Preemption.** With [`SchedulerConfig::preempt`] on (the engine
//!   default), a blocked higher-class arrival parks the weakest active
//!   stream: its cache is dropped, its emitted tokens are kept, and it
//!   resumes later through the same chunked re-prefill path recovery
//!   uses — so a preempted stream's output is bit-identical to an
//!   uninterrupted run ([`EngineEvent::Preempted`] / `Resumed` mark the
//!   transitions).
//! * **Backpressure.** Per-stream channels are bounded
//!   ([`EngineConfig::channel_capacity`]). A full channel never blocks
//!   the sweep: the stream's events buffer in a worker-side outbox, the
//!   stream itself is first *held* (keeps slot + cache, stops being fed)
//!   and, after [`EngineConfig::park_after_held_sweeps`] sweeps with a
//!   still-stuck consumer while others wait for a slot, *parked* — the
//!   slot and cache bytes go to streams whose consumers are keeping up.
//!
//! Speculative decoding composes transparently with all three: a request
//! carrying a [`SpeculationPolicy`](ft_core::serve::SpeculationPolicy)
//! has its drafts verified inside the worker's ordinary sweeps, so a
//! handle simply observes several [`EngineEvent::TokenEmitted`] events
//! per sweep (the commit) while rejected drafts are rolled back before
//! anything reaches the channel — consumers never see a retracted token.
//!
//! Since the shard-parallel refactor, `Engine` is the `workers = 1`
//! special case of the [`Fleet`]: same worker loop, same
//! handles, one shard, no migration. Multi-core serving wants
//! [`Fleet::spawn`](crate::Fleet::spawn) instead.
//!
//! No async runtime: plain `std::thread` + `std::sync::mpsc`, per the
//! repo's no-new-dependencies policy.

use crate::fleet::{Fleet, FleetConfig, RouterPolicy};
use crate::model::TransformerModel;
use ft_core::serve::{
    EngineEvent, FinishReason, GenerationRequest, Priority, SchedulerConfig, StreamId,
};
use ft_sim::{FaultInjector, NoFaults};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Duration;

/// Sizing and policy knobs of an [`Engine`] (and of each shard of a
/// [`Fleet`]).
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Scheduler sizing handed to the worker's [`ServeSession`]. The
    /// engine default turns preemption on and ages queued streams one
    /// class per 64 plan ticks (a plain [`SchedulerConfig::default`]
    /// leaves both off for pull-mode compatibility).
    ///
    /// [`ServeSession`]: crate::model::ServeSession
    pub scheduler: SchedulerConfig,
    /// Bound of each stream's event channel. A full channel parks events
    /// in a worker-side outbox (and eventually the stream itself) instead
    /// of blocking the sweep.
    pub channel_capacity: usize,
    /// Sweeps a stream may sit *held* (slot kept, not fed) with a stuck
    /// consumer before the worker parks it — but only while other streams
    /// are waiting for a slot. `0` parks at the first blocked sweep.
    pub park_after_held_sweeps: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scheduler: SchedulerConfig {
                preempt: true,
                priority_aging: Some(64),
                ..SchedulerConfig::default()
            },
            channel_capacity: 64,
            park_after_held_sweeps: 4,
        }
    }
}

/// Handle to a serving loop running on its own worker thread.
///
/// Submissions are non-blocking from any number of caller threads (the
/// handle allocates the [`StreamId`] locally, so it is known before the
/// worker sees the request). Dropping the engine hangs up the submission
/// channel; the worker finishes the streams it already has — delivering
/// into whatever [`StreamHandle`]s are still alive — and exits, so handles
/// outlive the engine. Dropping a `StreamHandle` early discards that
/// stream's remaining events (the stream itself still runs to completion).
///
/// ```no_run
/// use ft_transformer::{
///     BackendKind, Engine, EngineConfig, GenerationRequest, ModelConfig, Priority,
///     TransformerModel,
/// };
///
/// let cfg = ModelConfig {
///     name: "doc",
///     layers: 1,
///     heads: 2,
///     hidden: 16,
///     ffn_dim: 32,
///     vocab: 31,
///     max_seq: 32,
/// };
/// let model = TransformerModel::random(7, cfg, BackendKind::Flash).with_causal(true);
/// let engine = Engine::spawn(model, EngineConfig::default());
/// let handle = engine
///     .submit(GenerationRequest::new(vec![1, 2, 3], 8).with_priority(Priority::Latency));
/// for event in handle.iter() {
///     println!("{event}"); // stream0 token=…, stream0 finished: max-tokens
/// }
/// ```
pub struct Engine {
    fleet: Fleet,
}

impl Engine {
    /// Spawn the serving loop over an owned model with no fault injection.
    pub fn spawn(model: TransformerModel, cfg: EngineConfig) -> Engine {
        Engine::spawn_with(model, cfg, Arc::new(NoFaults))
    }

    /// Spawn the serving loop with a shared fault injector: every sweep
    /// exposes cache-resident state and kernel operations to `inj`, and
    /// per-request [`RecoveryPolicy`](ft_core::serve::RecoveryPolicy)
    /// handling (including re-prefill after park/resume) runs unchanged on
    /// the worker.
    pub fn spawn_with(
        model: TransformerModel,
        cfg: EngineConfig,
        inj: Arc<dyn FaultInjector + Send + Sync>,
    ) -> Engine {
        Engine {
            fleet: Fleet::spawn_with(
                model,
                FleetConfig {
                    workers: 1,
                    router: RouterPolicy::LeastLoaded,
                    engine: cfg,
                    steal: false,
                    // One worker is the whole fleet: its sweeps may use
                    // every core, exactly as before the shard refactor.
                    shard_threads: Some(0),
                },
                inj,
            ),
        }
    }

    /// Submit a request and get the stream's event handle. The request's
    /// own [`GenerationRequest::priority`] is honored; `max_new_tokens`
    /// clamping and model-default window resolution happen on the worker,
    /// exactly as in [`ServeSession::submit_request`].
    ///
    /// [`ServeSession::submit_request`]: crate::model::ServeSession::submit_request
    pub fn submit(&self, req: GenerationRequest) -> StreamHandle {
        self.fleet.submit(req)
    }

    /// [`submit`](Engine::submit) with an explicit priority class
    /// (overrides whatever the request carried).
    pub fn submit_with_priority(&self, req: GenerationRequest, priority: Priority) -> StreamHandle {
        self.fleet.submit_with_priority(req, priority)
    }

    /// Hang up the submission channel and wait for the worker to finish
    /// every stream it already has. Only call after draining (or dropping)
    /// all handles — a blocked consumer would leave the worker, and hence
    /// this join, waiting on it.
    pub fn shutdown(self) {
        self.fleet.shutdown();
    }
}

/// The receiving side of one stream: yields the stream's [`EngineEvent`]s
/// in order, ending after [`EngineEvent::Finished`].
pub struct StreamHandle {
    id: StreamId,
    priority: Priority,
    events: Receiver<EngineEvent>,
}

impl StreamHandle {
    /// Bind a handle to its worker-side event channel — the
    /// router/engine submission path's half of the pair.
    pub(crate) fn attach(id: StreamId, priority: Priority, events: Receiver<EngineEvent>) -> Self {
        StreamHandle {
            id,
            priority,
            events,
        }
    }

    /// The stream's identity (allocated at submission, before the worker
    /// ran anything).
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// The class the stream was submitted under.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Block for the next event; `None` once the stream has finished and
    /// every event has been delivered.
    pub fn recv(&self) -> Option<EngineEvent> {
        self.events.recv().ok()
    }

    /// Non-blocking receive: `None` when no event is ready right now *or*
    /// the stream is complete (disambiguate with a final
    /// [`EngineEvent::Finished`], which always precedes the hang-up).
    pub fn try_recv(&self) -> Option<EngineEvent> {
        self.events.try_recv().ok()
    }

    /// [`recv`](StreamHandle::recv) with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<EngineEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Blocking iterator over the stream's remaining events.
    pub fn iter(&self) -> impl Iterator<Item = EngineEvent> + '_ {
        std::iter::from_fn(move || self.recv())
    }

    /// Drain the stream to completion and fold its lifecycle into a
    /// [`StreamOutcome`].
    pub fn wait(self) -> StreamOutcome {
        let mut outcome = StreamOutcome {
            id: self.id,
            priority: self.priority,
            tokens: Vec::new(),
            finish: None,
            recoveries: 0,
            preemptions: 0,
            events: Vec::new(),
        };
        for ev in self.iter() {
            match ev {
                EngineEvent::TokenEmitted { token, .. } => outcome.tokens.push(token),
                EngineEvent::Recovering { .. } => outcome.recoveries += 1,
                EngineEvent::Preempted { .. } => outcome.preemptions += 1,
                EngineEvent::Finished { reason, .. } => outcome.finish = Some(reason),
                _ => {}
            }
            outcome.events.push(ev);
        }
        outcome
    }
}

/// A completed stream's lifecycle, folded by [`StreamHandle::wait`].
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// The stream's identity.
    pub id: StreamId,
    /// The class it was submitted under.
    pub priority: Priority,
    /// Sampled continuation tokens, in emission order (the prompt is not
    /// echoed).
    pub tokens: Vec<u32>,
    /// Terminal reason; `None` only if the engine was torn down before the
    /// stream finished.
    pub finish: Option<FinishReason>,
    /// Re-prefill recovery attempts observed ([`EngineEvent::Recovering`]).
    pub recoveries: u32,
    /// Park transitions observed ([`EngineEvent::Preempted`]).
    pub preemptions: u32,
    /// The full ordered event log.
    pub events: Vec<EngineEvent>,
}
