//! Criterion micro-benches for the software binary16 substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft_num::F16;
use std::time::Duration;

fn bench_f16(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096).map(|i| (i as f32 - 2048.0) * 0.37).collect();
    let halves: Vec<F16> = values.iter().map(|&v| F16::from_f32(v)).collect();

    let mut g = c.benchmark_group("f16");
    g.sample_size(50).measurement_time(Duration::from_secs(2));
    g.bench_function("from_f32_4096", |b| {
        b.iter(|| {
            values
                .iter()
                .map(|&v| F16::from_f32(black_box(v)))
                .fold(0u16, |acc, h| acc ^ h.to_bits())
        })
    });
    g.bench_function("to_f32_4096", |b| {
        b.iter(|| halves.iter().map(|h| black_box(*h).to_f32()).sum::<f32>())
    });
    g.finish();
}

criterion_group!(benches, bench_f16);
criterion_main!(benches);
