//! Criterion benches for the attention kernels: the wall-clock companions
//! of Fig. 9 and Tables 1–2 at a fixed small shape, driven through the
//! unified backend API.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_core::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_core::config::AttentionConfig;
use ft_core::decoupled::DecoupledOptions;
use ft_core::efta::EftaOptions;
use ft_num::rng::normal_tensor_f16;
use ft_sim::device::Device;
use std::time::Duration;

fn bench_attention(c: &mut Criterion) {
    let cfg = AttentionConfig::new(1, 4, 256, 64);
    let q = normal_tensor_f16(1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let k = normal_tensor_f16(2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let v = normal_tensor_f16(3, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
    let dev = Device::a100_40gb();
    let req = AttentionRequest::new(cfg, &q, &k, &v);
    let dec_req = req.with_device(&dev);

    let mut g = c.benchmark_group("attention_256x64x4h");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.bench_function("flash_unprotected", |b| {
        b.iter(|| BackendKind::Flash.run(&req))
    });
    g.bench_function("efta_unified", |b| {
        b.iter(|| BackendKind::Efta(EftaOptions::optimized()).run(&req))
    });
    g.bench_function("efta_per_step", |b| {
        b.iter(|| BackendKind::Efta(EftaOptions::per_step()).run(&req))
    });
    g.bench_function("decoupled_ft", |b| {
        b.iter(|| {
            BackendKind::Decoupled(DecoupledOptions::default())
                .try_run(&dec_req)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
