//! Criterion micro-benches for the checksum algebra: encode, verify,
//! correct — the building blocks whose cost Fig. 11 compares.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_abft::strided::{encode_rows_strided, strided_sums, strided_sums_weighted, verify_strided};
use ft_abft::thresholds::Check;
use ft_num::rng::{normal_matrix_f16, rng_from_seed};
use ft_sim::gemm_nt;
use std::time::Duration;

fn bench_abft(c: &mut Criterion) {
    let mut rng = rng_from_seed(7);
    let k = normal_matrix_f16(&mut rng, 64, 64, 0.5).to_f32();
    let q = normal_matrix_f16(&mut rng, 64, 64, 0.5).to_f32();
    let s_mat = gemm_nt(&q, &k);
    let cs = encode_rows_strided(&k, 8, true);
    let c1 = gemm_nt(&q, &cs.w1);
    let c2 = gemm_nt(&q, &cs.w2);

    let mut g = c.benchmark_group("abft_64x64_block");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    g.bench_function("encode_strided_s8", |b| {
        b.iter(|| encode_rows_strided(&k, 8, true))
    });
    g.bench_function("encode_strided_s1", |b| {
        b.iter(|| encode_rows_strided(&k, 1, true))
    });
    g.bench_function("strided_sums", |b| b.iter(|| strided_sums(&s_mat, 8)));
    g.bench_function("strided_sums_weighted", |b| {
        b.iter(|| strided_sums_weighted(&s_mat, 8))
    });
    g.bench_function("verify_clean", |b| {
        b.iter(|| verify_strided(&s_mat, &c1, &c2, 8, Check::new(0.48, 1e-3)))
    });
    g.finish();
}

criterion_group!(benches, bench_abft);
criterion_main!(benches);
