//! # ft-bench — experiment harness for the FT-Transformer reproduction
//!
//! One binary per table/figure of the paper's evaluation section (run with
//! `cargo run -p ft-bench --release --bin figNN`), repo-native benches for
//! the serving path (`backend`, `decode`, `serve`, `ablations`), and
//! criterion micro-benches — see `docs/benches.md` for what each one
//! reproduces. Every binary accepts:
//!
//! * `--full` — run the paper's exact sizes (seq 512…16k, 16k total
//!   tokens). Hours of CPU; the default is a geometry-preserving 1/8
//!   scale whose *ratios* match.
//! * `--scale <f>` — custom scale factor.
//! * `--trials <n>` — statistical campaign size.
//! * `--seed <n>` — RNG seed.
//!
//! Simulated-A100 roofline numbers are always computed at the full paper
//! sizes (they are analytic in the shapes); wall-clock numbers come from
//! the actual Rust kernels at the chosen scale.

#![warn(missing_docs)]

use ft_core::config::AttentionConfig;
use ft_num::rng::normal_tensor_f16;
use ft_num::Tensor4F16;
use std::time::Instant;

pub use ft_inject::report::{bar, ms, pct, TextTable};

/// Parsed command-line arguments shared by all bench binaries.
#[derive(Clone, Copy, Debug)]
pub struct HarnessArgs {
    /// Linear scale factor on sequence lengths and total tokens.
    pub scale: f64,
    /// Campaign trial count.
    pub trials: u64,
    /// Root RNG seed.
    pub seed: u64,
    /// True when running the paper's full sizes.
    pub full: bool,
    /// CI smoke mode: minimal sizes and trial counts, seconds not minutes.
    pub smoke: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 1.0 / 8.0,
            trials: 200,
            seed: 2025,
            full: false,
            smoke: false,
        }
    }
}

impl HarnessArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> Self {
        let mut out = HarnessArgs::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => {
                    out.full = true;
                    out.scale = 1.0;
                }
                "--smoke" => {
                    out.smoke = true;
                }
                "--scale" => {
                    i += 1;
                    out.scale = args[i].parse().expect("--scale <float>");
                }
                "--trials" => {
                    i += 1;
                    out.trials = args[i].parse().expect("--trials <u64>");
                }
                "--seed" => {
                    i += 1;
                    out.seed = args[i].parse().expect("--seed <u64>");
                }
                // Binary-specific switches (parsed by the binaries via
                // `has_flag`); listed here so the shared parser does not
                // warn about them.
                "--bounded-only" | "--recovery-only" | "--latency-only" | "--fused-only"
                | "--spec-only" | "--shard-only" => {}
                other => {
                    eprintln!("ignoring unknown argument {other}");
                }
            }
            i += 1;
        }
        out
    }

    /// The paper's sequence-length sweep, scaled.
    pub fn sweep_seqs(&self) -> Vec<usize> {
        [512usize, 1024, 2048, 4096, 8192, 16384]
            .iter()
            .map(|&s| ((s as f64 * self.scale) as usize).max(64))
            .collect()
    }

    /// Labels for the sweep (paper's axis labels).
    pub fn sweep_labels(&self) -> Vec<String> {
        let paper = ["512", "1k", "2k", "4k", "8k", "16k"];
        self.sweep_seqs()
            .iter()
            .zip(paper)
            .map(|(s, p)| {
                if self.full {
                    p.to_string()
                } else {
                    format!("{p}→{s}")
                }
            })
            .collect()
    }

    /// Total token budget (paper: 16k), scaled.
    pub fn total_tokens(&self) -> usize {
        ((16 * 1024) as f64 * self.scale) as usize
    }

    /// The paper's medium attention setting at a swept sequence length.
    pub fn medium_cfg(&self, seq: usize) -> AttentionConfig {
        AttentionConfig::medium(1, seq).with_total_tokens(self.total_tokens())
    }

    /// The paper's large attention setting at a swept sequence length.
    pub fn large_cfg(&self, seq: usize) -> AttentionConfig {
        AttentionConfig::large(1, seq).with_total_tokens(self.total_tokens())
    }

    /// The full-size (paper) twin of a swept config, for the analytic
    /// simulated-A100 numbers.
    pub fn full_cfg(&self, cfg: &AttentionConfig, idx: usize) -> AttentionConfig {
        let paper_seq = [512usize, 1024, 2048, 4096, 8192, 16384][idx];
        AttentionConfig::new(1, cfg.heads, paper_seq, cfg.head_dim).with_total_tokens(16 * 1024)
    }
}

/// True when `name` (e.g. `"--bounded-only"`) appears on the command line
/// — binary-specific switches beyond the shared [`HarnessArgs`] set.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Generate a seeded attention workload for `cfg`.
pub fn attention_workload(
    cfg: &AttentionConfig,
    seed: u64,
) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
    let q = normal_tensor_f16(seed, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let k = normal_tensor_f16(seed + 1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let v = normal_tensor_f16(seed + 2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
    (q, k, v)
}

/// Run `f` `reps` times and return (last result, best wall-clock seconds).
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (out.unwrap(), best)
}

/// Header banner shared by the binaries.
pub fn banner(title: &str, args: &HarnessArgs) {
    println!("=== {title} ===");
    println!(
        "scale={:.3} (total tokens {}) trials={} seed={}{}",
        args.scale,
        args.total_tokens(),
        args.trials,
        args.seed,
        if args.full { " [FULL paper sizes]" } else { "" }
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_is_geometry_preserving() {
        let a = HarnessArgs::default();
        let seqs = a.sweep_seqs();
        assert_eq!(seqs.len(), 6);
        assert_eq!(seqs[0], 64);
        assert_eq!(seqs[5], 2048);
        assert_eq!(a.total_tokens(), 2048);
        for w in seqs.windows(2) {
            assert_eq!(w[1] / w[0], 2);
        }
    }

    #[test]
    fn batch_keeps_total_tokens() {
        let a = HarnessArgs::default();
        for seq in a.sweep_seqs() {
            let cfg = a.medium_cfg(seq);
            assert_eq!(cfg.batch * cfg.seq, a.total_tokens());
        }
    }

    #[test]
    fn full_cfg_restores_paper_sizes() {
        let a = HarnessArgs::default();
        let scaled = a.medium_cfg(64);
        let full = a.full_cfg(&scaled, 0);
        assert_eq!(full.seq, 512);
        assert_eq!(full.batch * full.seq, 16 * 1024);
        assert_eq!(full.heads, 16);
    }

    #[test]
    fn time_best_returns_min() {
        let (_, t) = time_best(3, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert!(t >= 0.001);
    }
}
