//! Backend CLI — run any attention backend by name over a shape grid.
//!
//! The registry-driven entry point the unified API exists for: pick
//! pipelines with `--backend <name>` (repeatable; `all` sweeps the whole
//! registry), a shape with `--seq/--heads/--dim/--batch`, and compare
//! wall-clock, simulated-A100 time, and fault-tolerance activity side by
//! side.
//!
//! ```sh
//! cargo run -p ft-bench --release --bin backend -- --backend efta-o --backend flash --seq 512
//! cargo run -p ft-bench --release --bin backend -- --backend all
//! ```

use ft_bench::{ms, TextTable};
use ft_core::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_core::config::AttentionConfig;
use ft_num::rng::normal_tensor_f16;
use ft_sim::cost::CostModel;
use ft_sim::device::Device;

struct CliArgs {
    backends: Vec<BackendKind>,
    batch: usize,
    heads: usize,
    seq: usize,
    dim: usize,
    seed: u64,
}

fn parse_args() -> CliArgs {
    let mut out = CliArgs {
        backends: Vec::new(),
        batch: 1,
        heads: 4,
        seq: 256,
        dim: 64,
        seed: 2025,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag {
            "--backend" => {
                let name = value();
                if name == "all" {
                    out.backends.extend(BackendKind::all());
                } else {
                    match name.parse::<BackendKind>() {
                        Ok(kind) => out.backends.push(kind),
                        Err(e) => {
                            eprintln!("{e}");
                            std::process::exit(2);
                        }
                    }
                }
            }
            "--batch" => out.batch = value().parse().expect("--batch <usize>"),
            "--heads" => out.heads = value().parse().expect("--heads <usize>"),
            "--seq" => out.seq = value().parse().expect("--seq <usize>"),
            "--dim" => out.dim = value().parse().expect("--dim <usize>"),
            "--seed" => out.seed = value().parse().expect("--seed <u64>"),
            "--help" | "-h" => {
                println!(
                    "usage: backend [--backend <name|all>]... [--batch N] [--heads N] \
                     [--seq N] [--dim N] [--seed N]\nbackends: {}",
                    BackendKind::NAMES.join(", ")
                );
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
        i += 1;
    }
    if out.backends.is_empty() {
        out.backends = vec![
            "flash".parse().unwrap(),
            "efta".parse().unwrap(),
            "efta-o".parse().unwrap(),
        ];
    }
    out
}

fn main() {
    let args = parse_args();
    let cfg = AttentionConfig::new(args.batch, args.heads, args.seq, args.dim).with_auto_block();
    println!(
        "=== Attention backends @ batch={} heads={} seq={} dim={} block={} ===\n",
        cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, cfg.block
    );

    let q = normal_tensor_f16(args.seed, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let k = normal_tensor_f16(
        args.seed + 1,
        cfg.batch,
        cfg.heads,
        cfg.seq,
        cfg.head_dim,
        0.6,
    );
    let v = normal_tensor_f16(
        args.seed + 2,
        cfg.batch,
        cfg.heads,
        cfg.seq,
        cfg.head_dim,
        0.8,
    );
    let dev = Device::a100_40gb();
    let model = CostModel::a100_pcie_40gb();
    let req = AttentionRequest::new(cfg, &q, &k, &v).with_device(&dev);

    // Warm the thread pool so the first backend is not penalised.
    let _ = BackendKind::Flash.run(&req);

    let mut table = TextTable::new(&[
        "backend",
        "wall (ms)",
        "simA100 (ms)",
        "launches",
        "HBM (MiB)",
        "detected",
        "repaired",
    ]);
    for kind in &args.backends {
        match ft_bench::time_best(2, || kind.try_run(&req)) {
            (Ok(out), t) => {
                let total = out.timeline.total();
                table.row(&[
                    kind.to_string(),
                    ms(t),
                    ms(out.timeline.simulated_time(&model)),
                    total.launches.to_string(),
                    format!("{:.1}", total.hbm_total() as f64 / (1 << 20) as f64),
                    out.report.total_detected().to_string(),
                    out.report.total_repaired().to_string(),
                ]);
            }
            (Err(e), _) => {
                table.row(&[
                    kind.to_string(),
                    format!("failed: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    println!("{}", table.render());
}
