//! Decode-path benchmark: tokens/sec of KV-cache incremental decode versus
//! prefill-per-token generation, plus the fault-tolerance overhead and
//! coverage of the EFTA decode pipeline.
//!
//! ```sh
//! cargo run --release -p ft-bench --bin decode            # scaled model
//! cargo run --release -p ft-bench --bin decode -- --smoke # CI smoke run
//! ```
//!
//! Reported:
//! * prefill-per-token generation (the pre-KV-cache path, O(seq) prefills);
//! * cached decode with the unprotected flash/reference path;
//! * cached decode with EFTA protection (checksummed reads + protected
//!   arithmetic), its overhead %, and its behaviour under a cache-resident
//!   BER campaign.

use ft_bench::{banner, time_best, HarnessArgs, TextTable};
use ft_core::efta::EftaOptions;
use ft_sim::{BerInjector, FaultInjector, FaultSite, NoFaults};
use ft_transformer::{BackendKind, ModelConfig, TransformerModel};
use std::time::Instant;

fn main() {
    let args = HarnessArgs::parse();
    let smoke = args.smoke;
    banner("decode — KV-cache decode vs prefill-per-token", &args);

    // A GPT-2-shaped model scaled to keep wall-clock sane; causal so the
    // two generation paths compute the same function.
    let (hidden, layers, prompt_len, new_tokens, reps) = if smoke {
        (96, 2, 8, 8, 1)
    } else {
        (192, 2, 16, 48, 3)
    };
    let cfg = ModelConfig::gpt2().scaled(hidden, layers);
    let prompt: Vec<u32> = (0..prompt_len)
        .map(|i| ((i * 97) % cfg.vocab) as u32)
        .collect();

    let flash = TransformerModel::random(11, cfg, BackendKind::Flash).with_causal(true);
    let efta = TransformerModel::random(11, cfg, BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true);

    // Correctness gate before timing anything.
    let (tokens_prefill, _) = flash.generate_prefill(&prompt, new_tokens, &NoFaults);
    let (tokens_cached, _) = flash.generate(&prompt, new_tokens, &NoFaults);
    assert_eq!(
        tokens_prefill, tokens_cached,
        "cached decode must reproduce prefill-per-token generation"
    );

    let (_, t_prefill) = time_best(reps, || {
        flash.generate_prefill(&prompt, new_tokens, &NoFaults)
    });
    let (_, t_cached) = time_best(reps, || flash.generate(&prompt, new_tokens, &NoFaults));
    let (_, t_efta) = time_best(reps, || efta.generate(&prompt, new_tokens, &NoFaults));

    let tps = |t: f64| new_tokens as f64 / t;
    let mut table = TextTable::new(&["path", "tokens/s", "vs prefill", "ft overhead"]);
    table.row(&[
        "prefill-per-token (flash)".into(),
        format!("{:.1}", tps(t_prefill)),
        "1.00x".into(),
        "-".into(),
    ]);
    table.row(&[
        "kv-cache decode (flash)".into(),
        format!("{:.1}", tps(t_cached)),
        format!("{:.2}x", t_prefill / t_cached),
        "-".into(),
    ]);
    table.row(&[
        "kv-cache decode (efta-o)".into(),
        format!("{:.1}", tps(t_efta)),
        format!("{:.2}x", t_prefill / t_efta),
        format!("{:+.1}%", 100.0 * (t_efta / t_cached - 1.0)),
    ]);
    print!("{}", table.render());

    // Cache memory accounting.
    let mut cache = efta.new_cache();
    for &t in &prompt {
        let _ = efta.decode_step(t, &mut cache, &NoFaults);
    }
    println!(
        "\ncache after {} tokens: {} payload bytes + {} checksum bytes ({:.1}%)",
        prompt.len(),
        cache.size_bytes(),
        cache.checksum_bytes(),
        100.0 * cache.checksum_bytes() as f64 / cache.size_bytes() as f64
    );

    // Fault-coverage: bombard cache-resident state and the decode GEMMs,
    // count detections and compare tokens against the fault-free run.
    let (trials, ber) = if smoke { (2, 3e-4) } else { (8, 3e-5) };
    let (clean_tokens, _) = efta.generate(&prompt, new_tokens, &NoFaults);
    let mut matched = 0u64;
    let mut fired = 0u64;
    let mut detected = 0u64;
    let t0 = Instant::now();
    for trial in 0..trials {
        let inj = BerInjector::new(9000 + trial, ber)
            .with_sites(&[
                FaultSite::KvCache,
                FaultSite::GemmIAccum,
                FaultSite::GemmIiAccum,
            ])
            .with_bit_range(27, 32);
        let (tokens, rep) = efta.generate(&prompt, new_tokens, &inj);
        fired += inj.fired();
        detected += rep.total_detected;
        matched += u64::from(tokens == clean_tokens);
    }
    println!(
        "fault campaign: {trials} trials, {fired} faults fired, {detected} detected, \
         {matched}/{trials} outputs fault-free ({:.1}s)",
        t0.elapsed().as_secs_f64()
    );
}
