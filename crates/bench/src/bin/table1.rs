//! Table 1 — EFTA (per-step verification) vs optimised EFTA (unified
//! verification) for head = 16, dim = 64.
//!
//! Paper: optimised EFTA cuts average overhead from 53% to 15.3%, a 1.32×
//! speedup, and is 7.56× faster than the decoupled method.

use ft_bench::{attention_workload, banner, ms, pct, HarnessArgs, TextTable};
use ft_core::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_core::efta::EftaOptions;

/// Shared implementation for Tables 1 and 2.
pub fn run_table(title: &str, args: &HarnessArgs, large: bool, paper_note: &str) {
    banner(title, args);
    let warm = args.medium_cfg(64);
    let (q, k, v) = attention_workload(&warm, 1);
    let _ =
        BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(warm, &q, &k, &v));

    let mut table = TextTable::new(&[
        "Length",
        "EFTA (ms)",
        "Overhead",
        "EFTA-o (ms)",
        "Overhead",
        "EFTA-o speedup",
    ]);
    let mut speedups = Vec::new();
    for (idx, seq) in args.sweep_seqs().into_iter().enumerate() {
        let cfg = if large {
            args.large_cfg(seq)
        } else {
            args.medium_cfg(seq)
        };
        let (q, k, v) = attention_workload(&cfg, args.seed + idx as u64);
        let (_, t_base) = ft_bench::time_best(2, || {
            BackendKind::Efta(EftaOptions::unprotected())
                .run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        let (_, t_per_step) = ft_bench::time_best(2, || {
            BackendKind::Efta(EftaOptions::per_step()).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        let (_, t_unified) = ft_bench::time_best(2, || {
            BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        speedups.push(t_per_step / t_unified);
        table.row(&[
            args.sweep_labels()[idx].clone(),
            ms(t_per_step),
            pct((t_per_step - t_base).max(0.0) / t_base),
            ms(t_unified),
            pct((t_unified - t_base).max(0.0) / t_base),
            format!("{:.2}x", t_per_step / t_unified),
        ]);
    }
    println!("{}", table.render());
    let avg: f64 = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("average EFTA→EFTA-o speedup: {avg:.2}x");
    println!("{paper_note}");
}

fn main() {
    let args = HarnessArgs::parse();
    run_table(
        "Table 1: EFTA vs optimized EFTA (head=16, dim=64)",
        &args,
        false,
        "paper: overhead 53% → 15.3% avg, 1.32x speedup, 7.56x vs decoupled",
    );
}
