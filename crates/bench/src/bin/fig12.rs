//! Figure 12 — error coverage and false-alarm analysis of strided ABFT.
//!
//! Left: error coverage vs computational bit-error rate for the 8-wide
//! tensor checksum vs the 1-wide element checksum (paper: 92.5% vs 48% at
//! BER 1e-7). Right: fault-detection and false-alarm rates of strided ABFT
//! across relative detection thresholds (paper optimum ≈ 0.48).

use ft_abft::thresholds::Thresholds;
use ft_bench::{banner, bar, pct, HarnessArgs, TextTable};
use ft_inject::{abft_threshold_sweep, coverage_campaign, GemmShape, Scheme};

fn main() {
    let args = HarnessArgs::parse();
    banner("Figure 12: ABFT protection ability", &args);

    // ---- Left plot: coverage vs BER -----------------------------------
    // "Computational bit error rate" is per *bit* per operation (32 bits
    // per FP32 FMA). Rows are seq-length wide (4096, the paper's S width at
    // its largest protected extent), so at BER 1e-7 an element-checksum
    // lane sees ≈0.84 faults — multi-fault aliasing breaks the 1-wide
    // checksum while the 8-wide tensor checksum keeps lanes mostly
    // single-fault.
    let shape = GemmShape {
        br: 64,
        bc: 4096,
        d: 64,
    };
    let bits_per_op = 32.0;
    // Detection runs at this implementation's calibrated optimum (the
    // paper likewise evaluates coverage at its own optimum, 0.48 — our
    // FP16-quantised checksum noise floor sits lower, see fig12-right).
    let chk = ft_abft::thresholds::Check::new(0.02, 1e-3);
    let _ = Thresholds::calibrated();
    let bers = [1e-8f64, 5e-8, 1e-7];
    let mut table = TextTable::new(&[
        "BER",
        "tensor coverage",
        "element coverage",
        "tensor faults",
        "element faults",
    ]);
    for &ber in &bers {
        let op_ber = ber * bits_per_op;
        let t = coverage_campaign(args.trials, args.seed, op_ber, Scheme::Tensor, shape, chk);
        let e = coverage_campaign(args.trials, args.seed, op_ber, Scheme::Element, shape, chk);
        table.row(&[
            format!("{ber:.0e}"),
            pct(t.coverage()),
            pct(e.coverage()),
            t.injected.to_string(),
            e.injected.to_string(),
        ]);
    }
    println!("--- ABFT's Protection Ability (coverage vs BER) ---");
    println!("{}", table.render());
    println!("paper @1e-7: tensor checksum 92.5%, element checksum 48%\n");

    // ---- Right plot: detection / false alarm vs threshold --------------
    let taus: Vec<f32> = vec![0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.48, 0.5, 0.6, 0.8, 1.0];
    let sweep = abft_threshold_sweep(args.trials, args.seed + 1, &taus);
    let mut table = TextTable::new(&["threshold", "detection", "false alarm", "det", "fa"]);
    for (tau, st) in sweep.taus.iter().zip(&sweep.stats) {
        table.row(&[
            format!("{tau:.2}"),
            pct(st.detection_rate()),
            pct(st.false_alarm_rate()),
            bar(st.detection_rate(), 20),
            bar(st.false_alarm_rate(), 20),
        ]);
    }
    println!("--- False Alarm & Fault Detection vs threshold ---");
    println!("{}", table.render());
    println!(
        "best threshold (detection − false-alarm margin): {:.2}; paper optimum 0.48",
        sweep.best_tau()
    );
}
