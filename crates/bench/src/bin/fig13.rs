//! Figure 13 — softmax protection inside EFTA: DMR vs selective neuron
//! value restriction (SNVR), as overhead on the unprotected E2E attention.
//!
//! Paper: DMR averages 62.5% (medium) / 30.6% (large) overhead; SNVR
//! 14.3% / 13.6%. GEMM protection is held at strided ABFT in all arms so
//! only the softmax protection varies.

use ft_bench::{attention_workload, banner, ms, pct, HarnessArgs, TextTable};
use ft_core::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_core::efta::{EftaOptions, SoftmaxProtection, VerifyMode};

fn run_config(name: &str, args: &HarnessArgs, large: bool) {
    println!("--- FT-design for Softmax ({name}) ---");
    let mut table = TextTable::new(&[
        "seq",
        "e2e (ms)",
        "DMR (ms)",
        "DMR ovh",
        "SNVR (ms)",
        "SNVR ovh",
    ]);
    let base = EftaOptions {
        softmax: SoftmaxProtection::Unprotected,
        verify: VerifyMode::PerStep,
        ..EftaOptions::optimized()
    };
    let dmr = EftaOptions {
        softmax: SoftmaxProtection::Dmr,
        ..base
    };
    let snvr = EftaOptions {
        softmax: SoftmaxProtection::Snvr,
        ..base
    };
    for (idx, seq) in args.sweep_seqs().into_iter().enumerate() {
        let cfg = if large {
            args.large_cfg(seq)
        } else {
            args.medium_cfg(seq)
        };
        let (q, k, v) = attention_workload(&cfg, args.seed + idx as u64);
        let (_, t_e2e) = ft_bench::time_best(2, || {
            BackendKind::Efta(EftaOptions::unprotected())
                .run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        let (_, t_base) = ft_bench::time_best(2, || {
            BackendKind::Efta(base).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        let (_, t_dmr) = ft_bench::time_best(2, || {
            BackendKind::Efta(dmr).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        let (_, t_snvr) = ft_bench::time_best(2, || {
            BackendKind::Efta(snvr).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        table.row(&[
            args.sweep_labels()[idx].clone(),
            ms(t_e2e),
            ms(t_dmr),
            pct((t_dmr - t_base).max(0.0) / t_e2e),
            ms(t_snvr),
            pct((t_snvr - t_base).max(0.0) / t_e2e),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let args = HarnessArgs::parse();
    banner("Figure 13: DMR vs SNVR softmax protection in EFTA", &args);
    let warm = args.medium_cfg(64);
    let (q, k, v) = attention_workload(&warm, 1);
    let _ =
        BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(warm, &q, &k, &v));
    run_config("head=16, dim=64", &args, false);
    run_config("head=32, dim=128", &args, true);
    println!("paper: DMR 62.5%/30.6% avg overhead; SNVR 14.3%/13.6%");
}
