//! Graded-protection fault campaign: cache-resident BER × protection
//! level over scheduled serving runs — the serving analogue of the
//! paper's accuracy/overhead frontier (Fig. 12).
//!
//! ```text
//! cargo run --release -p ft-bench --bin campaign
//! cargo run --release -p ft-bench --bin campaign -- --smoke   # CI smoke
//! ```
//!
//! Every cell of the sweep runs the same mixed-prompt-length workload
//! through a [`ServeSession`](ft_transformer::ServeSession) with all
//! streams pinned to one [`ProtectionLevel`] and a
//! cache-resident `BerInjector` at one bit-error rate, with bounded
//! re-prefill recovery requested (the full detect → correct → recover
//! loop — which `Raw` streams can never enter, since nothing detects).
//! Reported per cell, against the same-level undamaged oracle:
//!
//! * token-match rate (position-wise over the generated continuation);
//! * aggregate tokens/sec;
//! * peak cache bytes split into FP16 payload vs FP32 protection
//!   metadata (checksums + max-norm snapshots);
//! * the fault ledger: detected / corrected / tolerated / recoveries.
//!
//! Hard asserts (CI gates, all deterministic):
//!
//! * clean `Lazy` and `Approximate` runs are token-identical to the
//!   clean `Full` run (the lattice's bit-identity invariant);
//! * metadata bytes order `Raw` (= 0) < `Lazy`/`Approximate` ≤ `Full`;
//! * at the highest BER rung the accuracy frontier orders
//!   `Full` ≥ `Approximate` ≥ `Raw`;
//! * every stream retires with a typed finish reason in every cell.

use ft_bench::{banner, HarnessArgs, TextTable};
use ft_core::efta::EftaOptions;
use ft_core::protect::DEFAULT_APPROX_TOL;
use ft_sim::{BerInjector, FaultInjector, FaultSite, NoFaults};
use ft_transformer::{
    BackendKind, FinishedStream, GenerationRequest, ModelConfig, ProtectionLevel, RecoveryPolicy,
    SchedulerConfig, SizeBreakdown, TransformerModel,
};
use std::time::Instant;

/// One (BER, level) cell of the campaign.
struct Cell {
    finished: Vec<FinishedStream>,
    secs: f64,
    peak: SizeBreakdown,
}

/// Run the workload with every stream at `level` under `inj`, tracking the
/// peak payload/metadata footprint across sweeps.
fn run_cell<I: FaultInjector>(
    model: &TransformerModel,
    prompts: &[Vec<u32>],
    sched_cfg: SchedulerConfig,
    new_tokens: usize,
    level: ProtectionLevel,
    inj: &I,
) -> Cell {
    let mut session = model.serve_with(sched_cfg);
    for p in prompts {
        session.submit_request(
            GenerationRequest::new(p.clone(), new_tokens)
                .with_protection(level)
                .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 2 }),
        );
    }
    let t0 = Instant::now();
    let finished = session.run(inj);
    let secs = t0.elapsed().as_secs_f64();
    let peak = session.peak_cache_breakdown();
    assert_eq!(
        finished.len(),
        prompts.len(),
        "every stream must retire with a typed reason at level {level}"
    );
    Cell {
        finished,
        secs,
        peak,
    }
}

/// Position-wise token-match rate of the generated continuations against
/// the same-level undamaged oracle.
fn match_rate(faulted: &[FinishedStream], clean: &[FinishedStream], prompts: &[Vec<u32>]) -> f64 {
    let (mut ok, mut total) = (0usize, 0usize);
    for ((f, c), p) in faulted.iter().zip(clean).zip(prompts) {
        assert_eq!(f.id, c.id, "oracle streams must pair by id");
        let skip = p.len();
        let fg = &f.tokens[skip.min(f.tokens.len())..];
        let cg = &c.tokens[skip.min(c.tokens.len())..];
        total += cg.len();
        ok += fg.iter().zip(cg).filter(|(a, b)| a == b).count();
    }
    ok as f64 / total.max(1) as f64
}

fn main() {
    let args = HarnessArgs::parse();
    let smoke = args.smoke;
    banner(
        "campaign — KV-cache BER × graded protection level frontier",
        &args,
    );

    // GPT-2-shaped and causal like the serve bench; small cache blocks
    // keep ragged appends (the Lazy deferral window) and per-block
    // metadata both in play.
    let (hidden, layers, new_tokens, prompt_cycle, n_streams): (
        usize,
        usize,
        usize,
        Vec<usize>,
        usize,
    ) = if smoke {
        (96, 2, 6, vec![12, 6, 9, 4], 4)
    } else {
        (96, 2, 12, vec![48, 24, 12, 6], 8)
    };
    let cfg = ModelConfig::gpt2().scaled(hidden, layers);
    let model = TransformerModel::random(11, cfg, BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(8);
    let prompts: Vec<Vec<u32>> = (0..n_streams)
        .map(|i| {
            let len = prompt_cycle[i % prompt_cycle.len()];
            (0..len)
                .map(|t| ((t * 97 + i * 131) % cfg.vocab) as u32)
                .collect()
        })
        .collect();
    let sched_cfg = SchedulerConfig {
        max_active: 16,
        prefill_chunk: 16,
        ..Default::default()
    };

    let levels = [
        ProtectionLevel::Full,
        ProtectionLevel::Lazy,
        ProtectionLevel::Approximate {
            tol: DEFAULT_APPROX_TOL,
        },
        ProtectionLevel::Raw,
    ];
    let bers: Vec<f64> = if smoke {
        vec![5e-5, 1e-3]
    } else {
        vec![1e-5, 1e-4, 5e-4, 2e-3]
    };

    // Undamaged oracles, one per level (greedy decode is deterministic).
    let oracles: Vec<Cell> = levels
        .iter()
        .map(|&l| run_cell(&model, &prompts, sched_cfg, new_tokens, l, &NoFaults))
        .collect();

    // Lattice invariant: below Raw, a clean stream's tokens are
    // bit-identical to the Full (legacy) path at every level.
    for (l, o) in levels.iter().zip(&oracles).skip(1) {
        if !matches!(l, ProtectionLevel::Raw) {
            for (f, c) in o.finished.iter().zip(&oracles[0].finished) {
                assert_eq!(
                    f.tokens, c.tokens,
                    "clean {l} stream {} must match the clean full run",
                    f.id
                );
            }
        }
    }
    let raw_clean_matches = oracles[3]
        .finished
        .iter()
        .zip(&oracles[0].finished)
        .all(|(f, c)| f.tokens == c.tokens);

    // Metadata overhead across the lattice (peak of the clean runs).
    println!("cache footprint across the lattice (clean runs):");
    let mut table = TextTable::new(&["protection", "payload B", "metadata B", "overhead"]);
    for (l, o) in levels.iter().zip(&oracles) {
        table.row(&[
            format!("{l}"),
            format!("{}", o.peak.payload_bytes),
            format!("{}", o.peak.metadata_bytes()),
            format!(
                "{:.1}%",
                100.0 * o.peak.metadata_bytes() as f64 / o.peak.payload_bytes.max(1) as f64
            ),
        ]);
    }
    print!("{}", table.render());
    let meta = |i: usize| oracles[i].peak.metadata_bytes();
    assert_eq!(meta(3), 0, "raw must store no protection metadata");
    assert!(
        meta(3) < meta(1) && meta(1) <= meta(0),
        "metadata bytes must order raw < lazy <= full"
    );
    assert!(
        meta(3) < meta(2) && meta(2) <= meta(0),
        "metadata bytes must order raw < approx <= full"
    );
    println!(
        "clean-run bit-identity: lazy/approx == full (hard-asserted); raw == full: {}\n",
        raw_clean_matches
    );

    // The frontier: BER × level.
    println!("accuracy/overhead frontier (token match vs same-level clean oracle):");
    let mut table = TextTable::new(&[
        "cache BER",
        "protection",
        "tok match",
        "tok/s",
        "detected",
        "corrected",
        "tolerated",
        "recoveries",
    ]);
    let mut top_rung: Vec<f64> = Vec::new();
    let generated = (n_streams * new_tokens) as f64;
    for (bi, &ber) in bers.iter().enumerate() {
        for (li, &level) in levels.iter().enumerate() {
            let inj = BerInjector::new(6000 + bi as u64, ber).with_sites(&[FaultSite::KvCache]);
            let cell = run_cell(&model, &prompts, sched_cfg, new_tokens, level, &inj);
            let rate = match_rate(&cell.finished, &oracles[li].finished, &prompts);
            let sum = |f: fn(&FinishedStream) -> u64| cell.finished.iter().map(f).sum::<u64>();
            table.row(&[
                format!("{ber:.0e}"),
                format!("{level}"),
                format!("{:.3}", rate),
                format!("{:.1}", generated / cell.secs),
                format!("{}", sum(|f| f.attention.cache_detected)),
                format!("{}", sum(|f| f.attention.cache_corrected)),
                format!("{}", sum(|f| f.attention.cache_tolerated)),
                format!("{}", sum(|f| f.recoveries as u64)),
            ]);
            if bi + 1 == bers.len() {
                top_rung.push(rate);
            }
        }
    }
    print!("{}", table.render());

    // The acceptance gate: at the highest BER rung the frontier must be
    // monotone down the lattice — Full >= Approximate >= Raw.
    let (m_full, m_approx, m_raw) = (top_rung[0], top_rung[2], top_rung[3]);
    assert!(
        m_full >= m_approx && m_approx >= m_raw,
        "accuracy frontier must order full ({m_full:.3}) >= approx \
         ({m_approx:.3}) >= raw ({m_raw:.3}) at BER {:.0e}",
        bers[bers.len() - 1]
    );
    println!(
        "\nfrontier at BER {:.0e}: full {m_full:.3} >= approx {m_approx:.3} \
         >= raw {m_raw:.3} (hard-asserted); metadata bytes raw < lazy/approx \
         <= full (hard-asserted)",
        bers[bers.len() - 1]
    );
}
