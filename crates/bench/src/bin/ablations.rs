//! Ablation benches beyond the paper's figures, covering the design choices
//! DESIGN.md calls out:
//!
//! * checksum stride s ∈ {1, 2, 4, 8, 16}: coverage vs EFTA overhead (the
//!   paper fixes s = 8 for the MMA layout; this shows the trade-off);
//! * verification frequency: per-step vs unified at several block sizes;
//! * block size sweep for the fused kernel.

use ft_abft::thresholds::Thresholds;
use ft_bench::{attention_workload, banner, ms, pct, HarnessArgs, TextTable};
use ft_core::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_core::efta::EftaOptions;
use ft_inject::{coverage_campaign_stride, GemmShape};

fn stride_ablation(args: &HarnessArgs) {
    println!("--- Checksum stride ablation (coverage at BER 1e-7, EFTA overhead) ---");
    let seq = args.sweep_seqs()[3];
    let cfg = args.medium_cfg(seq);
    let (q, k, v) = attention_workload(&cfg, args.seed);
    let (_, t_base) = ft_bench::time_best(2, || {
        BackendKind::Efta(EftaOptions::unprotected()).run(&AttentionRequest::new(cfg, &q, &k, &v))
    });
    // Same collision regime as Fig. 12: 4096-wide rows, per-bit BER.
    let shape = GemmShape {
        br: 64,
        bc: 4096,
        d: 64,
    };
    let mut table = TextTable::new(&["stride", "coverage", "EFTA overhead"]);
    for s in [1usize, 2, 4, 8, 16] {
        let cov = coverage_campaign_stride(
            args.trials,
            args.seed,
            1e-7 * 32.0,
            s,
            shape,
            Thresholds::calibrated().gemm,
        );
        let opts = EftaOptions::optimized().with_stride(s);
        let (_, t) = ft_bench::time_best(2, || {
            BackendKind::Efta(opts).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        table.row(&[
            s.to_string(),
            pct(cov.coverage()),
            pct((t - t_base).max(0.0) / t_base),
        ]);
    }
    println!("{}", table.render());
}

fn block_size_ablation(args: &HarnessArgs) {
    println!("--- Block size ablation (EFTA-o wall clock) ---");
    let seq = args.sweep_seqs()[4];
    let mut table = TextTable::new(&["block", "EFTA-o (ms)", "unprotected (ms)", "overhead"]);
    for block in [32usize, 64, 128] {
        if block > seq {
            continue;
        }
        let cfg = args.medium_cfg(seq).with_block(block);
        let (q, k, v) = attention_workload(&cfg, args.seed);
        let (_, t_base) = ft_bench::time_best(2, || {
            BackendKind::Efta(EftaOptions::unprotected())
                .run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        let (_, t) = ft_bench::time_best(2, || {
            BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        table.row(&[
            block.to_string(),
            ms(t),
            ms(t_base),
            pct((t - t_base).max(0.0) / t_base),
        ]);
    }
    println!("{}", table.render());
}

fn verify_mode_ablation(args: &HarnessArgs) {
    println!("--- Verification frequency ablation ---");
    let mut table = TextTable::new(&["seq", "per-step (ms)", "unified (ms)", "gain"]);
    for (idx, seq) in args.sweep_seqs().into_iter().enumerate().step_by(2) {
        let cfg = args.medium_cfg(seq);
        let (q, k, v) = attention_workload(&cfg, args.seed + idx as u64);
        let (_, t_ps) = ft_bench::time_best(2, || {
            BackendKind::Efta(EftaOptions::per_step()).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        let (_, t_u) = ft_bench::time_best(2, || {
            BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        table.row(&[
            args.sweep_labels()[idx].clone(),
            ms(t_ps),
            ms(t_u),
            format!("{:.2}x", t_ps / t_u),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Ablations: stride, block size, verification frequency",
        &args,
    );
    let warm = args.medium_cfg(64);
    let (q, k, v) = attention_workload(&warm, 1);
    let _ =
        BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(warm, &q, &k, &v));
    stride_ablation(&args);
    block_size_ablation(&args);
    verify_mode_ablation(&args);
}
