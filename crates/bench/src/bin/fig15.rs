//! Figure 15 — EFTA inside whole transformer models: GPT-2, BERT-Base,
//! BERT-Large, T5-Small at input length 512.
//!
//! Three arms per model:
//! * original inference (flash attention, no protection anywhere);
//! * fault detection (EFTA + ABFT projections, no faults injected);
//! * fault correction (same, with one SEU injected per attention call —
//!   the paper's "single bit flip for each attention computation").
//!
//! Paper: detection averages 4.7% overhead, correction 9.1%.

use ft_bench::{banner, ms, pct, HarnessArgs, TextTable};
use ft_core::efta::EftaOptions;
use ft_sim::{FaultSite, NoFaults, OpCoord, SeuInjector};
use ft_transformer::{BackendKind, LinearProtection, ModelConfig, TransformerModel};

fn build(seed: u64, cfg: ModelConfig, protected: bool) -> TransformerModel {
    let kernel = if protected {
        BackendKind::Efta(EftaOptions::optimized())
    } else {
        BackendKind::Flash
    };
    let mut model = TransformerModel::random(seed, cfg, kernel);
    if !protected {
        for b in &mut model.blocks {
            b.mha.wq.protection = LinearProtection::None;
            b.mha.wk.protection = LinearProtection::None;
            b.mha.wv.protection = LinearProtection::None;
            b.mha.wo.protection = LinearProtection::None;
            b.ffn.up.protection = LinearProtection::None;
            b.ffn.down.protection = LinearProtection::None;
        }
    }
    model
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 15: EFTA on Transformer models (input length 512)",
        &args,
    );

    // Default scale shrinks seq and layer count while keeping head
    // structure; --full runs the paper's exact shapes.
    let seq = ((512.0 * args.scale.max(0.25)) as usize).max(64);
    let mut table = TextTable::new(&[
        "model",
        "original (ms)",
        "detect (ms)",
        "detect ovh",
        "correct (ms)",
        "correct ovh",
        "repairs",
    ]);
    let mut det_sum = 0.0;
    let mut corr_sum = 0.0;
    for cfg in ModelConfig::paper_models() {
        let cfg = if args.full {
            cfg
        } else {
            let layers = (cfg.layers / 4).max(2);
            cfg.scaled(cfg.hidden / 2, layers)
        };
        let tokens: Vec<u32> = (0..seq as u32).map(|i| i * 7 % cfg.vocab as u32).collect();

        let baseline = build(args.seed, cfg, false);
        let protected = build(args.seed, cfg, true);

        let (_, t_orig) = ft_bench::time_best(2, || baseline.forward_hidden(&tokens, &NoFaults));
        let (_, t_detect) = ft_bench::time_best(2, || protected.forward_hidden(&tokens, &NoFaults));
        // One SEU per attention computation: all layers share slot-local
        // fault coordinates, so a single targeted SEU fires once per
        // attention call (per layer).
        let inj =
            SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(0, 3, 5, 0), 30).at_chain_step(10);
        let ((_, rep), t_correct) =
            ft_bench::time_best(2, || protected.forward_hidden(&tokens, &inj));

        let det_ovh = (t_detect - t_orig).max(0.0) / t_orig;
        let corr_ovh = (t_correct - t_orig).max(0.0) / t_orig;
        det_sum += det_ovh;
        corr_sum += corr_ovh;
        table.row(&[
            cfg.name.to_string(),
            ms(t_orig),
            ms(t_detect),
            pct(det_ovh),
            ms(t_correct),
            pct(corr_ovh),
            rep.total_repaired.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "averages: detect {} correct {} — paper: 4.7% / 9.1%",
        pct(det_sum / 4.0),
        pct(corr_sum / 4.0)
    );
}
