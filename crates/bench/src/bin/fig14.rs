//! Figure 14 — SNVR analysis.
//!
//! Left: fault-detection and false-alarm rates of the SNVR product check
//! across relative error thresholds (paper optimum ≈ 7e-6 with 97.2%
//! detection, 5.9% false alarms). Right: distribution of residual errors
//! after restriction — selective (SNVR) vs traditional range restriction
//! (paper: SNVR concentrates errors within 0–0.02, traditional spreads to
//! 0.15).

use ft_bench::{banner, bar, pct, HarnessArgs, TextTable};
use ft_inject::{restriction_error_distribution, snvr_threshold_sweep};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 14: SNVR detection sweep and restriction quality",
        &args,
    );

    // ---- Left: detection / false alarm vs threshold --------------------
    let taus: Vec<f32> = vec![1e-7, 7e-7, 3e-6, 7e-6, 3e-5, 1e-4, 1e-3];
    let sweep = snvr_threshold_sweep(args.trials, args.seed, &taus);
    let mut table = TextTable::new(&["threshold", "detection", "false alarm", "det", "fa"]);
    for (tau, st) in sweep.taus.iter().zip(&sweep.stats) {
        table.row(&[
            format!("{tau:.0e}"),
            pct(st.detection_rate()),
            pct(st.false_alarm_rate()),
            bar(st.detection_rate(), 20),
            bar(st.false_alarm_rate(), 20),
        ]);
    }
    println!("--- False Alarm & Fault Detection (SNVR product check) ---");
    println!("{}", table.render());
    println!(
        "best threshold: {:.0e}; paper optimum 7e-6 (97.2% detection, 5.9% FA)\n",
        sweep.best_tau()
    );

    // ---- Right: error distribution after restriction --------------------
    let cmp = restriction_error_distribution(args.trials * 10, args.seed + 1);
    println!("--- Error Distribution After Restriction (RMS row error) ---");
    let mut table = TextTable::new(&["bin", "selective", "traditional"]);
    let sel = cmp.selective.rates();
    let trad = cmp.traditional.rates();
    for (i, (s, t)) in sel.iter().zip(&trad).enumerate() {
        let lo = i as f32 * cmp.selective.bin_width;
        table.row(&[
            format!("{:.2}-{:.2}", lo, lo + cmp.selective.bin_width),
            format!("{:>6.3} {}", s, bar(*s, 25)),
            format!("{:>6.3} {}", t, bar(*t, 25)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "within 0.02: selective {} vs traditional {} (paper: SNVR within 0–0.02, traditional 0–0.15)",
        pct(cmp.selective.fraction_within(0.02)),
        pct(cmp.traditional.fraction_within(0.02)),
    );
}
