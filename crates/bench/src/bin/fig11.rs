//! Figure 11 — EFTA execution time with strided (tensor-checksum) ABFT vs
//! traditional element-checksum ABFT protecting QKᵀ and PV (softmax left
//! unprotected to isolate the GEMM protection).
//!
//! Paper: traditional ABFT averages 35% overhead (medium: 27–62%),
//! strided ABFT 11.8% (medium) / 10.5% (large) — a ~64% reduction.

use ft_bench::{attention_workload, banner, ms, pct, HarnessArgs, TextTable};
use ft_core::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_core::efta::{EftaOptions, GemmProtection, SoftmaxProtection, VerifyMode};
use ft_core::efta_analytic_stats;
use ft_sim::cost::{CostModel, Timeline};

fn run_config(name: &str, args: &HarnessArgs, large: bool) {
    println!("--- FT-design for Mixed-Precision GEMM ({name}) ---");
    let model = CostModel::a100_pcie_40gb();
    let mut table = TextTable::new(&[
        "seq",
        "e2e (ms)",
        "trad ABFT (ms)",
        "trad ovh",
        "strided ABFT (ms)",
        "strided ovh",
        "simA100 trad ovh",
        "simA100 strided ovh",
    ]);
    let base_opts = EftaOptions {
        gemm: GemmProtection::Unprotected,
        softmax: SoftmaxProtection::Unprotected,
        verify: VerifyMode::PerStep,
        ..EftaOptions::optimized()
    };
    let trad_opts = EftaOptions {
        gemm: GemmProtection::Traditional,
        ..base_opts
    };
    let strided_opts = EftaOptions {
        gemm: GemmProtection::Strided,
        ..base_opts
    };
    for (idx, seq) in args.sweep_seqs().into_iter().enumerate() {
        let cfg = if large {
            args.large_cfg(seq)
        } else {
            args.medium_cfg(seq)
        };
        let full = args.full_cfg(&cfg, idx);
        let (q, k, v) = attention_workload(&cfg, args.seed + idx as u64);
        let (_, t_base) = ft_bench::time_best(2, || {
            BackendKind::Efta(base_opts).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        let (_, t_trad) = ft_bench::time_best(2, || {
            BackendKind::Efta(trad_opts).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        let (_, t_str) = ft_bench::time_best(2, || {
            BackendKind::Efta(strided_opts).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });

        let sim = |o: &EftaOptions| {
            let mut tl = Timeline::new();
            tl.push("efta", efta_analytic_stats(&full, o));
            tl.simulated_time(&model)
        };
        let sim_base = sim(&base_opts);
        let sim_trad = sim(&trad_opts);
        let sim_str = sim(&strided_opts);

        table.row(&[
            args.sweep_labels()[idx].clone(),
            ms(t_base),
            ms(t_trad),
            pct((t_trad - t_base).max(0.0) / t_base),
            ms(t_str),
            pct((t_str - t_base).max(0.0) / t_base),
            pct((sim_trad - sim_base) / sim_base),
            pct((sim_str - sim_base) / sim_base),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 11: strided ABFT vs traditional ABFT inside EFTA",
        &args,
    );
    let warm = args.medium_cfg(64);
    let (q, k, v) = attention_workload(&warm, 1);
    let _ =
        BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(warm, &q, &k, &v));
    run_config("head=16, dim=64", &args, false);
    run_config("head=32, dim=128", &args, true);
    println!("paper: traditional ≈35% avg overhead; strided 11.8% (medium) / 10.5% (large)");
}
