//! Figure 10 — breakdown of fault-tolerance overhead inside the fused
//! kernel when the *traditional* methods (element-checksum ABFT + DMR) are
//! used for protection: QKᵀ protection, softmax protection, PV protection,
//! each as a percentage of the unprotected E2E attention time.
//!
//! Paper: total overhead averages 96% (medium) / 68% (large); softmax DMR
//! alone averages 47%, traditional ABFT on the GEMMs 35%.

use ft_bench::{attention_workload, banner, ms, pct, HarnessArgs, TextTable};
use ft_core::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_core::efta::{EftaOptions, GemmProtection, SoftmaxProtection, VerifyMode};

fn run_config(name: &str, args: &HarnessArgs, large: bool) {
    println!("--- Overhead Breakdown ({name}) ---");
    let mut table = TextTable::new(&[
        "seq",
        "e2e (ms)",
        "qkt prot",
        "softmax prot",
        "pv prot",
        "total overhead",
    ]);
    let opts = EftaOptions {
        gemm: GemmProtection::Traditional,
        softmax: SoftmaxProtection::Dmr,
        verify: VerifyMode::PerStep,
        ..EftaOptions::optimized()
    };
    for (idx, seq) in args.sweep_seqs().into_iter().enumerate() {
        let cfg = if large {
            args.large_cfg(seq)
        } else {
            args.medium_cfg(seq)
        };
        let (q, k, v) = attention_workload(&cfg, args.seed + idx as u64);
        let (_, t_base) = ft_bench::time_best(2, || {
            BackendKind::Efta(EftaOptions::unprotected())
                .run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        let (out, t_ft) = ft_bench::time_best(2, || {
            BackendKind::Efta(opts).run(&AttentionRequest::new(cfg, &q, &k, &v))
        });
        // Phase timers sum worker-thread time; normalise each protection
        // phase by its share of the total worker time, then apply to the
        // measured wall-clock overhead.
        let p = out.phases;
        let worker_total = p.compute_total() + p.protect_total();
        let overhead_wall = (t_ft - t_base).max(0.0);
        let share = |prot: f64| {
            if worker_total <= 0.0 {
                0.0
            } else {
                overhead_wall * (prot / p.protect_total().max(1e-12)) / t_base
            }
        };
        table.row(&[
            args.sweep_labels()[idx].clone(),
            ms(t_base),
            pct(share(p.gemm1_protect)),
            pct(share(p.softmax_protect)),
            pct(share(p.gemm2_protect)),
            pct(overhead_wall / t_base),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 10: FT overhead breakdown of EFTA with traditional protection",
        &args,
    );
    let warm = args.medium_cfg(64);
    let (q, k, v) = attention_workload(&warm, 1);
    let _ =
        BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(warm, &q, &k, &v));
    run_config("head=16, dim=64", &args, false);
    run_config("head=32, dim=128", &args, true);
    println!("paper: medium avg total 96%, large avg 68%; DMR softmax ≈47%, traditional ABFT ≈35%");
}
