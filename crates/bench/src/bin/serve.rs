//! Serving benchmark: aggregate tokens/sec of the continuous-batching
//! scheduler ([`TransformerModel::serve`]) versus decoding the same
//! streams sequentially with the pre-scheduler API — one request at a
//! time through a token-at-a-time `decode_step` loop, which pays the
//! vocab-wide LM head on *every* prompt token because the step API always
//! produces logits.
//!
//! ```sh
//! cargo run --release -p ft-bench --bin serve            # 1/4/16/64 streams
//! cargo run --release -p ft-bench --bin serve -- --smoke # CI smoke run
//! cargo run --release -p ft-bench --bin serve -- --smoke --bounded-only
//! #                       ^ just the bounded-memory (sliding-window) sweep
//! cargo run --release -p ft-bench --bin serve -- --smoke --recovery-only
//! #                       ^ just the fault-recovery (auto re-prefill) sweep
//! cargo run --release -p ft-bench --bin serve -- --smoke --latency-only
//! #                       ^ just the priority-scheduling latency sweep
//! cargo run --release -p ft-bench --bin serve -- --smoke --fused-only
//! #                       ^ just the fused multi-row sweep-kernel report
//! cargo run --release -p ft-bench --bin serve -- --smoke --spec-only
//! #                       ^ just the speculative draft/verify/rollback sweep
//! cargo run --release -p ft-bench --bin serve -- --smoke --shard-only
//! #                       ^ just the shard-parallel fleet scaling curve
//! ```
//!
//! Reported, per stream count, over a mixed-prompt-length workload:
//! * sequential decode (PR2-style `decode_step` loop per request);
//! * scheduled decode (shared batched EFTA sweeps, chunked prefill,
//!   LM head only on sampled rows) and the speedup versus sequential;
//! * a per-stream fault-attribution campaign: cache-resident BER with the
//!   detected/corrected counts broken down by stream.
//!
//! Acceptance target: ≥ 2× aggregate tokens/sec at 16 mixed-length
//! streams versus sequential decode. On a single core the win is
//! algorithmic (prefill chunks amortise per-token overhead and skip the
//! LM head on interior prompt rows); with more cores the shared fan-out
//! additionally widens the parallel section across streams.
//!
//! The bounded-memory sweep (also standalone via `--bounded-only`) runs
//! the same mixed workload with longer generations through a sliding
//! window (`TransformerModel::with_window`): peak cache bytes must
//! flatten versus the unbounded run at ≤ 10% aggregate tokens/sec cost,
//! and a byte-budget session (`SchedulerConfig::memory_budget`) must
//! throttle concurrency while still completing every stream.
//!
//! The speculative sweep (standalone via `--spec-only`) forces several
//! draft accept rates with scripted draft sources built from the greedy
//! oracle and reports tokens/sec versus plain scheduled decode and versus
//! the sequential baseline. Hard asserts: emitted tokens bit-identical to
//! plain decode at every rate, ≥ 1.3× plain scheduled decode at forced
//! accept-rate ≥ 0.75, and the accept-rate-0 floor — zero-accept
//! speculation (backoff converging to plain decode) must stay ≥ 1.0× the
//! plain-decode baseline.
//!
//! The shard sweep (standalone via `--shard-only`) runs the same mixed
//! workload through the multi-worker [`Fleet`] at 1, 2, and 4 shard
//! workers and reports the scaling curve (workers × streams → aggregate
//! tokens/sec). Hard asserts: per-stream tokens bit-identical across
//! every worker count, and a lossless `FleetReport` roll-up (sum of
//! per-shard counters == fleet counters). On hosts with ≥ 4 cores the
//! 4-worker aggregate must beat the 1-worker run by ≥ 1.5× (hard
//! assert); on smaller hosts the ratio is printed PASS/FAIL like the
//! other wall-clock gates.
//!
//! The latency sweep (standalone via `--latency-only`) drives the
//! push-based `Engine` with a bursty mixed-class trace — a wall of long
//! `Batch` generations, then `Latency`/`Normal` arrivals mid-flight — and
//! reports p50/p99 time-to-first-token and mean inter-token gap per
//! priority class, for the priority+preemption run and a FIFO
//! single-queue baseline. Hard assert: `Latency`-class p99 TTFT beats
//! `Batch`-class under priority scheduling.

use ft_bench::{banner, has_flag, HarnessArgs, TextTable};
use ft_core::backend::AttentionBackend;
use ft_core::efta::EftaOptions;
use ft_core::kv::KvCache;
use ft_core::protect::DEFAULT_APPROX_TOL;
use ft_core::serve::{StreamId, StreamSlice};
use ft_num::rng::normal_tensor_f16;
use ft_num::Tensor4F16;
use ft_sim::{BerInjector, FaultInjector, FaultSite, NoFaults};
use ft_transformer::{
    BackendKind, DraftSource, Engine, EngineConfig, EngineEvent, FinishReason, Fleet, FleetConfig,
    FleetReport, GenerationRequest, ModelConfig, Priority, ProtectionLevel, RecoveryPolicy,
    RouterPolicy, SchedulerConfig, SpeculationPolicy, TransformerModel,
};
use std::time::{Duration, Instant};

/// Index of the largest logit.
fn argmax(row: &[f32]) -> u32 {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best as u32
}

/// The pre-scheduler serving strategy: requests decoded one after another,
/// every token — prompt tokens included — fed through one `decode_step`
/// (which runs the full LM head, the only way that API yields logits).
fn sequential_generate(model: &TransformerModel, prompt: &[u32], new_tokens: usize) -> Vec<u32> {
    let mut cache = model.new_cache();
    let mut tokens = prompt.to_vec();
    let mut logits = None;
    for &t in prompt {
        let (l, _) = model.decode_step(t, &mut cache, &NoFaults);
        logits = Some(l);
    }
    for i in 0..new_tokens {
        if tokens.len() >= model.config.max_seq {
            break;
        }
        let next = argmax(logits.as_ref().expect("prompt fed").row(0));
        tokens.push(next);
        if i + 1 < new_tokens && tokens.len() < model.config.max_seq {
            let (l, _) = model.decode_step(next, &mut cache, &NoFaults);
            logits = Some(l);
        }
    }
    tokens
}

fn main() {
    let args = HarnessArgs::parse();
    let smoke = args.smoke;
    banner(
        "serve — continuous-batching scheduler vs sequential decode",
        &args,
    );

    // GPT-2-shaped (12 heads, full 50k vocab) scaled to keep wall-clock
    // sane; causal so decode and prefill compute the same function.
    let (hidden, layers, new_tokens, prompt_cycle, counts): (
        usize,
        usize,
        usize,
        Vec<usize>,
        Vec<usize>,
    ) = if smoke {
        (96, 2, 3, vec![12, 6, 9, 4], vec![1, 4])
    } else {
        (96, 2, 8, vec![64, 32, 16, 8], vec![1, 4, 16, 64])
    };
    let cfg = ModelConfig::gpt2().scaled(hidden, layers);
    let model = TransformerModel::random(11, cfg, BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true);

    let prompts_for = |n: usize| -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| {
                let len = prompt_cycle[i % prompt_cycle.len()];
                (0..len)
                    .map(|t| ((t * 97 + i * 131) % cfg.vocab) as u32)
                    .collect()
            })
            .collect()
    };
    let sched_cfg = SchedulerConfig {
        max_active: 16,
        prefill_chunk: 16,
        ..Default::default()
    };

    if has_flag("--bounded-only") {
        bounded_memory_sweep(&model, &prompts_for, sched_cfg, smoke);
        return;
    }
    if has_flag("--recovery-only") {
        recovery_sweep(&model, &prompts_for, sched_cfg, smoke);
        return;
    }
    if has_flag("--latency-only") {
        latency_sweep(&model, &prompts_for, smoke);
        return;
    }
    if has_flag("--fused-only") {
        fused_sweep(&model, &prompts_for, sched_cfg, new_tokens, smoke);
        return;
    }
    if has_flag("--spec-only") {
        spec_sweep(smoke);
        return;
    }
    if has_flag("--shard-only") {
        shard_sweep(&model, &prompts_for, sched_cfg, smoke);
        return;
    }

    let mut table = TextTable::new(&[
        "streams",
        "prompt toks",
        "sequential tok/s",
        "scheduled tok/s",
        "speedup",
    ]);
    let mut speedup_at_16 = None;
    for &n in &counts {
        let prompts = prompts_for(n);
        let prompt_total: usize = prompts.iter().map(Vec::len).sum();
        let generated = n * new_tokens;

        let t0 = Instant::now();
        let seq_tokens: Vec<Vec<u32>> = prompts
            .iter()
            .map(|p| sequential_generate(&model, p, new_tokens))
            .collect();
        let t_seq = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mut session = model.serve_with(sched_cfg);
        let ids: Vec<_> = prompts
            .iter()
            .map(|p| session.submit_request(GenerationRequest::new(p.clone(), new_tokens)))
            .collect();
        let finished = session.run(&NoFaults);
        let t_sched = t0.elapsed().as_secs_f64();

        // Correctness gate: the scheduler must reproduce sequential decode
        // token for token on every stream.
        for (i, id) in ids.iter().enumerate() {
            let f = finished
                .iter()
                .find(|f| f.id == *id)
                .expect("stream finished");
            assert_eq!(
                f.tokens, seq_tokens[i],
                "stream {i}: scheduled decode diverged from sequential"
            );
        }

        let speedup = t_seq / t_sched;
        if n == 16 {
            speedup_at_16 = Some(speedup);
        }
        table.row(&[
            format!("{n}"),
            format!("{prompt_total}"),
            format!("{:.1}", generated as f64 / t_seq),
            format!("{:.1}", generated as f64 / t_sched),
            format!("{speedup:.2}x"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\ntokens/s counts sampled (new) tokens; both paths also process the \
         prompts ({} new tokens per stream, prompt lengths cycling {:?})",
        new_tokens, prompt_cycle
    );
    if let Some(s) = speedup_at_16 {
        println!(
            "speedup at 16 mixed-length streams: {s:.2}x (acceptance target >= 2x) -> {}",
            if s >= 2.0 { "PASS" } else { "FAIL" }
        );
    }

    // Per-stream fault attribution: cache-resident BER over a small batch
    // with a different graded protection level per stream; every stream
    // keeps its own detected/corrected/tolerated ledger, and tokens match
    // the (same-level) clean run wherever verification still corrects.
    println!("\nper-stream fault attribution (cache-resident BER, mixed protection):");
    let n = 4;
    let prompts = prompts_for(n);
    let mix = [
        ProtectionLevel::Full,
        ProtectionLevel::Lazy,
        ProtectionLevel::Approximate {
            tol: DEFAULT_APPROX_TOL,
        },
        ProtectionLevel::Raw,
    ];
    let mut clean_session = model.serve_with(sched_cfg);
    for (i, p) in prompts.iter().enumerate() {
        clean_session.submit_request(
            GenerationRequest::new(p.clone(), new_tokens).with_protection(mix[i % mix.len()]),
        );
    }
    let clean = clean_session.run(&NoFaults);
    let ber = if smoke { 2e-4 } else { 5e-5 };
    let inj = BerInjector::new(4242, ber).with_sites(&[FaultSite::KvCache]);
    let mut session = model.serve_with(sched_cfg);
    for (i, p) in prompts.iter().enumerate() {
        session.submit_request(
            GenerationRequest::new(p.clone(), new_tokens).with_protection(mix[i % mix.len()]),
        );
    }
    let finished = session.run(&inj);
    let mut table = TextTable::new(&[
        "stream",
        "protection",
        "cache detected",
        "corrected",
        "tolerated",
        "finish",
        "tokens ok",
    ]);
    for (f, c) in finished.iter().zip(&clean) {
        table.row(&[
            format!("{}", f.id),
            format!("{}", f.protection),
            format!("{}", f.attention.cache_detected),
            format!("{}", f.attention.cache_corrected),
            format!("{}", f.attention.cache_tolerated),
            format!("{:?}", f.finish),
            format!("{}", f.tokens == c.tokens),
        ]);
    }
    print!("{}", table.render());
    println!(
        "faults fired {}, attributed per stream: {}",
        inj.fired(),
        finished
            .iter()
            .map(|f| f.attention.cache_detected)
            .sum::<u64>()
    );

    // In smoke (CI) mode the bounded, recovery, and latency sweeps run as
    // their own steps via `--bounded-only` / `--recovery-only` /
    // `--latency-only`; skipping them here keeps the CI smokes disjoint.
    if !smoke {
        bounded_memory_sweep(&model, &prompts_for, sched_cfg, smoke);
        recovery_sweep(&model, &prompts_for, sched_cfg, smoke);
        latency_sweep(&model, &prompts_for, smoke);
        fused_sweep(&model, &prompts_for, sched_cfg, new_tokens, smoke);
        spec_sweep(smoke);
        shard_sweep(&model, &prompts_for, sched_cfg, smoke);
    }
}

/// The shard-parallel scaling sweep (standalone via `--shard-only`):
/// the same mixed-length workload through a [`Fleet`] of 1, 2, and 4
/// shard workers, each worker owning its own scheduler + session over
/// the shared model behind the least-loaded admission router.
///
/// Hard asserts, at every worker count:
/// * per-stream tokens bit-identical to the 1-worker run (sharding and
///   work-stealing must be invisible in the output);
/// * fleet-wide stream ids unique;
/// * lossless [`FleetReport`] roll-up — the sum of per-shard
///   `tokens_emitted` equals the tokens the consumers actually received,
///   and every submitted stream retires on exactly one shard.
///
/// The scaling gate — 4-worker aggregate tokens/sec ≥ 1.5× 1-worker —
/// is a hard assert on hosts with ≥ 4 cores (the serving sweep is
/// dominated by the vocab-wide LM head, whose single-row evaluation is
/// serial per stream, so independent shards genuinely widen it) and a
/// printed PASS/FAIL on smaller hosts, like the other wall-clock gates.
fn shard_sweep(
    model: &TransformerModel,
    prompts_for: &dyn Fn(usize) -> Vec<Vec<u32>>,
    sched_cfg: SchedulerConfig,
    smoke: bool,
) {
    println!("\nshard-parallel fleet (workers x streams -> aggregate tokens/sec):");
    let (n, gen_tokens) = if smoke { (16usize, 3usize) } else { (64, 8) };
    let prompts = prompts_for(n);
    let engine_cfg = EngineConfig {
        scheduler: SchedulerConfig {
            preempt: true,
            priority_aging: Some(64),
            ..sched_cfg
        },
        ..Default::default()
    };

    let run = |workers: usize| -> (Vec<Vec<u32>>, f64, FleetReport) {
        let fleet = Fleet::spawn(
            model.clone(),
            FleetConfig {
                workers,
                router: RouterPolicy::LeastLoaded,
                engine: engine_cfg,
                steal: true,
                shard_threads: None,
            },
        );
        let t0 = Instant::now();
        let consumers: Vec<_> = prompts
            .iter()
            .map(|p| {
                let h = fleet.submit(GenerationRequest::new(p.clone(), gen_tokens));
                std::thread::spawn(move || (h.id(), h.wait().tokens))
            })
            .collect();
        let mut out: Vec<(StreamId, Vec<u32>)> = consumers
            .into_iter()
            .map(|c| c.join().expect("consumer thread"))
            .collect();
        let wall = t0.elapsed().as_secs_f64();
        let report = fleet.shutdown();

        out.sort_by_key(|(id, _)| id.0);
        let mut ids: Vec<u64> = out.iter().map(|(id, _)| id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), n, "{workers} workers: stream ids must be unique");
        let tokens: Vec<Vec<u32>> = out.into_iter().map(|(_, t)| t).collect();

        // Lossless roll-up: per-shard counters must sum to what the
        // consumers actually observed, with every stream on one shard.
        let total = report.total();
        let emitted: u64 = tokens.iter().map(|t| t.len() as u64).sum();
        assert_eq!(report.streams_submitted, n as u64, "{report}");
        assert_eq!(total.streams_finished, n as u64, "{report}");
        assert_eq!(
            total.tokens_emitted, emitted,
            "{workers} workers: shard token counters must sum to the \
             delivered total: {report}"
        );
        let mut finished = total.finished_streams.clone();
        finished.dedup();
        assert_eq!(
            finished.len(),
            n,
            "{workers} workers: every stream retires on exactly one shard: {report}"
        );
        (tokens, wall, report)
    };

    let mut table = TextTable::new(&[
        "workers",
        "streams",
        "agg tok/s",
        "speedup",
        "migrations",
        "shard streams",
    ]);
    let mut baseline: Option<(Vec<Vec<u32>>, f64)> = None;
    let mut speedup_at_4 = None;
    for &workers in &[1usize, 2, 4] {
        let (tokens, wall, report) = run(workers);
        match &baseline {
            None => baseline = Some((tokens, wall)),
            Some((want, _)) => {
                for (i, (got, want)) in tokens.iter().zip(want).enumerate() {
                    assert_eq!(
                        got, want,
                        "{workers} workers, stream {i}: sharded output diverged \
                         from the 1-worker run"
                    );
                }
            }
        }
        let total = report.total();
        let tps = total.tokens_emitted as f64 / wall;
        let base_wall = baseline.as_ref().expect("baseline recorded").1;
        let speedup = base_wall / wall;
        if workers == 4 {
            speedup_at_4 = Some(speedup);
        }
        let per_shard: Vec<String> = report
            .shards
            .iter()
            .map(|s| format!("{}", s.streams_finished))
            .collect();
        table.row(&[
            format!("{workers}"),
            format!("{n}"),
            format!("{tps:.1}"),
            format!("{speedup:.2}x"),
            format!("{}", total.migrations_in),
            per_shard.join("/"),
        ]);
    }
    print!("{}", table.render());

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let s = speedup_at_4.expect("4-worker run measured");
    println!(
        "4-worker speedup at {n} streams: {s:.2}x on {cores} cores \
         (acceptance >= 1.5x with >= 4 cores) -> {}",
        if s >= 1.5 { "PASS" } else { "FAIL" }
    );
    if cores >= 4 {
        // With real parallelism available the scaling win is load-bearing:
        // gate it hard, like the equivalence halves above.
        assert!(
            s >= 1.5,
            "4 workers must beat 1 worker by >= 1.5x at {n} streams on \
             {cores} cores (got {s:.2}x)"
        );
    } else {
        println!("(fewer than 4 cores: scaling gate reported, not asserted)");
    }
    println!(
        "hard-asserted: bit-identical streams across worker counts, unique \
         fleet-wide ids, lossless per-shard report roll-up"
    );
}

/// Run `f` `reps` times, hard-asserting determinism, and return its result
/// with the minimum wall time (min-of-reps filters scheduler noise).
fn timed<R: PartialEq + std::fmt::Debug>(reps: u32, f: impl Fn() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let out = f();
    let mut best = t0.elapsed().as_secs_f64();
    for _ in 1..reps {
        let t0 = Instant::now();
        let again = f();
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(again, out, "timing reps must be deterministic");
    }
    (out, best)
}

/// The speculative-decoding sweep (standalone via `--spec-only`):
/// draft-then-verify decode with checksum-protected rollback, at forced
/// accept rates.
///
/// Greedy decode is deterministic, so the plain scheduled run doubles as
/// the token oracle; a `DraftSource::Scripted` built from that oracle with
/// an evenly-spaced fraction of entries corrupted forces each accept rate
/// exactly. The model is sized to be verification-dominated (long history,
/// modest vocab): the speedup mechanism is the fused multi-row sweep
/// verifying each attended cache block once per tile, while the lazy
/// per-row LM head keeps head cost per *emitted* token identical to plain
/// decode.
///
/// Hard asserts:
/// * emitted tokens bit-identical to plain decode at every forced rate
///   (the rollback contract — rejected drafts leave no trace);
/// * ≥ 1.3× plain scheduled decode at forced accept rates ≥ 0.75;
/// * the accept-rate-0 floor: with every draft rejected, zero-accept
///   backoff converges the stream to plain decode, which must stay
///   ≥ 1.0× the plain-decode (sequential `decode_step`) baseline — the
///   same-engine ratio is printed alongside, a few percent under 1.0 by
///   exactly the pre-backoff verify sweeps' extra rows (the bounded,
///   self-limiting cost of trying speculation on an adversarial stream).
fn spec_sweep(smoke: bool) {
    println!("\nspeculative decode (draft/verify/rollback, forced accept rates):");
    // Generation-heavy split: the timed region covers the whole request,
    // so the prefill (identical in both paths) must not dilute the
    // decode-phase speedup being gated.
    let (prompt_len, gen_tokens, reps) = if smoke { (96, 48, 2) } else { (192, 96, 3) };
    let draft_len = 4usize;
    // Verification-dominated geometry: long attended history, small vocab,
    // ragged 16-row cache blocks (the rollback boundary case).
    let cfg = ModelConfig {
        name: "spec-bench",
        layers: 2,
        heads: 4,
        hidden: 64,
        ffn_dim: 96,
        vocab: 131,
        max_seq: 384,
    };
    let model = TransformerModel::random(21, cfg, BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let prompt: Vec<u32> = (0..prompt_len)
        .map(|t| ((t * 89 + 17) % cfg.vocab) as u32)
        .collect();
    let sched = SchedulerConfig {
        max_active: 4,
        prefill_chunk: 16,
        ..Default::default()
    };
    let run_with = |speculation: Option<SpeculationPolicy>| {
        let mut session = model.serve_with(sched);
        let mut req = GenerationRequest::new(prompt.clone(), gen_tokens);
        if let Some(policy) = speculation {
            req = req.with_speculation(policy);
        }
        session.submit_request(req);
        let f = session.run(&NoFaults).into_iter().next().expect("finished");
        (f.tokens, f.spec_drafted, f.spec_accepted)
    };

    let ((plain_tokens, _, _), t_plain) = timed(reps, || run_with(None));
    let oracle: Vec<u32> = plain_tokens[prompt_len..].to_vec();
    let (seq_tokens, t_seq) = timed(reps, || sequential_generate(&model, &prompt, gen_tokens));
    assert_eq!(
        seq_tokens, plain_tokens,
        "plain scheduled decode must match the sequential baseline"
    );
    let plain_tps = gen_tokens as f64 / t_plain;
    let seq_tps = gen_tokens as f64 / t_seq;

    let mut table = TextTable::new(&[
        "forced accept",
        "drafted",
        "accepted",
        "spec tok/s",
        "plain tok/s",
        "speedup",
        "vs sequential",
    ]);
    let mut floor_ratio = None;
    for &rate in &[0.0f64, 0.5, 0.75, 1.0] {
        // Corrupt an evenly-spaced (1 - rate) fraction of the scripted
        // drafts; a corrupted entry can never match the greedy sample, so
        // the verify sweep rejects exactly there and rolls the rest back.
        let script: Vec<u32> = oracle
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let q = 1.0 - rate;
                let miss = ((i + 1) as f64 * q).floor() > (i as f64 * q).floor();
                if miss {
                    (t + 1 + (i % 7) as u32) % cfg.vocab as u32
                } else {
                    t
                }
            })
            .collect();
        let policy = SpeculationPolicy::new(draft_len)
            .with_source(DraftSource::Scripted(script))
            .with_backoff(Some(2));
        let ((tokens, drafted, accepted), t_spec) = timed(reps, || run_with(Some(policy.clone())));
        assert_eq!(
            tokens, plain_tokens,
            "forced accept {rate}: speculative decode must be bit-identical to plain decode"
        );
        let spec_tps = gen_tokens as f64 / t_spec;
        let speedup = spec_tps / plain_tps;
        if rate >= 0.75 {
            assert!(
                spec_tps >= 1.3 * plain_tps,
                "forced accept {rate}: speculation must beat plain scheduled decode by >= 1.3x \
                 (got {speedup:.2}x)"
            );
        }
        if rate == 0.0 {
            assert_eq!(accepted, 0, "rate 0: every draft must be rejected");
            assert!(
                spec_tps >= seq_tps,
                "accept-rate-0 floor: zero-accept speculation ({spec_tps:.1} tok/s) must stay \
                 >= 1.0x the plain-decode baseline ({seq_tps:.1} tok/s)"
            );
            floor_ratio = Some(speedup);
        }
        if rate == 1.0 {
            assert_eq!(accepted, drafted, "rate 1: every draft must verify");
        }
        table.row(&[
            format!("{rate:.2}"),
            format!("{drafted}"),
            format!("{accepted}"),
            format!("{spec_tps:.1}"),
            format!("{plain_tps:.1}"),
            format!("{speedup:.2}x"),
            format!("{:.2}x", spec_tps / seq_tps),
        ]);
    }
    print!("{}", table.render());
    println!(
        "draft_len {draft_len}, zero-accept backoff after 2 sweeps; prompt {prompt_len}, \
         {gen_tokens} new tokens, min of {reps} reps"
    );
    println!(
        "hard-asserted: bit-identity at every rate, >= 1.3x plain at accept >= 0.75, \
         >= 1.0x plain-decode baseline at accept 0 (same-engine ratio {:.2}x)",
        floor_ratio.expect("rate 0 measured")
    );
}

/// The fused multi-row sweep report (standalone via `--fused-only`): the
/// tiled `(stream, slot)` kernel versus the per-row `(stream, row, slot)`
/// fan-out it replaced.
///
/// Two layers, both hard-asserted:
/// * **Model gate** — a serving session (which now runs fused sweeps under
///   every chunked prefill and batched decode) must reproduce sequential
///   token-at-a-time decode, token for token.
/// * **Kernel gate** — at every chunk width the fused EFTA sweep's rows
///   are bit-identical to the per-row oracle's, and at chunk width ≥ 8 the
///   fused sweep must not be slower (it verifies each attended cache
///   block once per tile where the oracle re-verifies per row).
///
/// The printed acceptance line tracks the ≥ 1.5× chunked-prefill target
/// at chunk width ≥ 8.
fn fused_sweep(
    model: &TransformerModel,
    prompts_for: &dyn Fn(usize) -> Vec<Vec<u32>>,
    sched_cfg: SchedulerConfig,
    new_tokens: usize,
    smoke: bool,
) {
    println!("\nfused multi-row sweep (shared-verification tiles vs per-row fan-out):");

    // Model-level token gate: the scheduler's fused sweeps vs the
    // pre-scheduler sequential loop.
    let n = if smoke { 4 } else { 8 };
    let prompts = prompts_for(n);
    let mut session = model.serve_with(sched_cfg);
    let ids: Vec<_> = prompts
        .iter()
        .map(|p| session.submit_request(GenerationRequest::new(p.clone(), new_tokens)))
        .collect();
    let finished = session.run(&NoFaults);
    for (i, id) in ids.iter().enumerate() {
        let f = finished.iter().find(|f| f.id == *id).expect("finished");
        assert_eq!(
            f.tokens,
            sequential_generate(model, &prompts[i], new_tokens),
            "stream {i}: fused serving diverged from sequential decode"
        );
    }
    println!("model gate: {n} fused-sweep streams == sequential decode (hard-asserted)");

    // Kernel-level wall-clock: one batch of chunked-prefill streams, swept
    // by both paths across chunk widths.
    const HEADS: usize = 4;
    const DIM: usize = 32;
    let scale = 1.0 / (DIM as f32).sqrt();
    let (streams, cache_len, iters) = if smoke {
        (6usize, 48usize, 6u32)
    } else {
        (64, 96, 24)
    };
    let kind = BackendKind::Efta(EftaOptions::optimized());
    let caches: Vec<KvCache> = (0..streams)
        .map(|s| {
            let mut cache = KvCache::new(1, HEADS, DIM, 16, 8, scale);
            let k = normal_tensor_f16(100 + s as u64, 1, HEADS, cache_len, DIM, 0.6);
            let v = normal_tensor_f16(700 + s as u64, 1, HEADS, cache_len, DIM, 0.8);
            assert!(cache.append(&k, &v).clean());
            cache
        })
        .collect();

    let mut table = TextTable::new(&["chunk", "per-row rows/s", "fused rows/s", "speedup"]);
    let mut speedup_at_wide = None;
    for &c in &[1usize, 4, 8, 16] {
        let chunks: Vec<Tensor4F16> = (0..streams)
            .map(|s| normal_tensor_f16(1300 + s as u64, 1, HEADS, c, DIM, 0.6))
            .collect();
        let slices: Vec<StreamSlice<'_>> = (0..streams)
            .map(|s| StreamSlice {
                stream: StreamId(s as u64),
                cache: &caches[s],
                q: &chunks[s],
                window: None,
            })
            .collect();

        // Warm both paths and hard-assert bit-identity while at it.
        let fused = kind.decode_sweep(&slices, &NoFaults, None);
        let per_row = kind
            .try_decode_sweep_per_row(&slices, &NoFaults, None)
            .expect("per-row oracle sweep");
        for (f, p) in fused.iter().zip(&per_row) {
            assert_eq!(
                f.o.max_abs_diff(&p.o),
                0.0,
                "chunk {c}: fused sweep must be bit-identical to per-row"
            );
        }

        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(
                kind.try_decode_sweep_per_row(&slices, &NoFaults, None)
                    .unwrap(),
            );
        }
        let t_per_row = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(kind.decode_sweep(&slices, &NoFaults, None));
        }
        let t_fused = t0.elapsed().as_secs_f64();

        let rows = (streams * c * iters as usize) as f64;
        let speedup = t_per_row / t_fused;
        if c >= 8 {
            // Hard assert: shared verification must not lose to the per-row
            // fan-out once chunks amortise it.
            assert!(
                t_fused <= t_per_row,
                "chunk {c}: fused sweep slower than per-row ({t_fused:.3}s vs {t_per_row:.3}s)"
            );
            speedup_at_wide = Some(speedup_at_wide.unwrap_or(0.0f64).max(speedup));
        }
        table.row(&[
            format!("{c}"),
            format!("{:.0}", rows / t_per_row),
            format!("{:.0}", rows / t_fused),
            format!("{speedup:.2}x"),
        ]);
    }
    print!("{}", table.render());
    let s = speedup_at_wide.expect("chunk >= 8 measured");
    println!(
        "fused chunked-prefill speedup at chunk width >= 8: {s:.2}x over \
         {streams} streams x {cache_len} cached rows (acceptance >= 1.5x) -> {}",
        if s >= 1.5 { "PASS" } else { "FAIL" }
    );
}

/// The fault-recovery serving sweep: cache-resident BER high enough to
/// poison caches (aliased multi-bit hits that checksum location cannot
/// untangle), with every stream requesting
/// `RecoveryPolicy::ReprefillBounded` — the engine drops poisoned caches,
/// replays prompt + emitted tokens through chunked prefill, and aborts
/// streams whose damage keeps coming back. Hard asserts: every stream
/// finishes (recovered, clean, or aborted — never hung), and the BER
/// ladder's top rung actually exercises recovery.
fn recovery_sweep(
    model: &TransformerModel,
    prompts_for: &dyn Fn(usize) -> Vec<Vec<u32>>,
    sched_cfg: SchedulerConfig,
    smoke: bool,
) {
    println!("\nfault-recovery serve (auto re-prefill, bounded retries):");
    let (n, gen_tokens, max_attempts, bers): (usize, usize, u32, Vec<f64>) = if smoke {
        (4, 6, 2, vec![2e-3, 8e-3])
    } else {
        (8, 12, 3, vec![5e-4, 2e-3, 8e-3])
    };
    // Small blocks keep ragged (launder-on-append) windows open; the
    // recovery trigger also fires off the EFTA read path's live
    // uncorrectable detections in full blocks.
    let model = model.clone().with_cache_block(16);
    let prompts = prompts_for(n);

    // Undamaged oracle tokens per stream (greedy decode is deterministic).
    let mut clean_session = model.serve_with(sched_cfg);
    for p in &prompts {
        clean_session.submit_request(GenerationRequest::new(p.clone(), gen_tokens));
    }
    let clean = clean_session.run(&NoFaults);

    let mut table = TextTable::new(&[
        "cache BER",
        "faults",
        "poison events",
        "recoveries",
        "recovered",
        "aborted",
        "finished",
        "tokens ok",
    ]);
    let mut total_recoveries = 0u64;
    for (bi, &ber) in bers.iter().enumerate() {
        let inj = BerInjector::new(7000 + bi as u64, ber).with_sites(&[FaultSite::KvCache]);
        let mut session = model.serve_with(sched_cfg);
        for p in &prompts {
            session.submit_request(
                GenerationRequest::new(p.clone(), gen_tokens)
                    .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts }),
            );
        }
        let mut poison_events = 0u64;
        while !session.idle() {
            for ev in session.sweep_events(&inj) {
                if let EngineEvent::CachePoisoned { events, .. } = ev {
                    poison_events += events;
                }
            }
        }
        let finished = session.take_finished();
        // Hard assert: bounded recovery must never wedge the session —
        // every stream retires with a reason.
        assert_eq!(
            finished.len(),
            prompts.len(),
            "every stream must finish under BER {ber}"
        );
        let recovered = finished
            .iter()
            .filter(|f| f.finish == FinishReason::Recovered)
            .count();
        let aborted = finished
            .iter()
            .filter(|f| matches!(f.finish, FinishReason::AbortedPoisoned { .. }))
            .count();
        // Tokens of non-aborted streams vs the undamaged oracle
        // (informational: corrected reads carry ~1e-7 checksum-fold noise
        // that can flip an FP16 ulp, so this is not a hard gate).
        let tokens_ok = finished
            .iter()
            .zip(&clean)
            .filter(|(f, c)| {
                !matches!(f.finish, FinishReason::AbortedPoisoned { .. }) && f.tokens == c.tokens
            })
            .count();
        total_recoveries += session.recoveries();
        table.row(&[
            format!("{ber:.0e}"),
            format!("{}", inj.fired()),
            format!("{poison_events}"),
            format!("{}", session.recoveries()),
            format!("{recovered}"),
            format!("{aborted}"),
            format!("{}/{}", finished.len(), n),
            format!("{tokens_ok}/{}", n - aborted),
        ]);
    }
    print!("{}", table.render());
    // Hard assert: the sweep must actually exercise the recovery path.
    assert!(
        total_recoveries > 0,
        "the BER ladder must trigger at least one re-prefill recovery"
    );
    println!(
        "{total_recoveries} re-prefill recoveries across the ladder; every \
         stream finished with a typed reason (hard-asserted)"
    );
}

/// The bounded-memory serving sweep: the same mixed-length workload with
/// longer generations, windowed vs unbounded, plus a byte-budget
/// admission demonstration. Peak cache bytes must flatten under the
/// window at ≤ 10% aggregate tokens/sec cost (printed as the acceptance
/// line).
fn bounded_memory_sweep(
    model: &TransformerModel,
    prompts_for: &dyn Fn(usize) -> Vec<Vec<u32>>,
    sched_cfg: SchedulerConfig,
    smoke: bool,
) {
    println!("\nbounded-memory serve (sliding window, block-granular eviction):");
    let (n, cache_block, window, gen_tokens) = if smoke {
        (4usize, 4usize, 8usize, 6usize)
    } else {
        (16, 16, 32, 24)
    };
    let base = model.clone().with_cache_block(cache_block);
    let windowed = base.clone().with_window(window);
    let prompts = prompts_for(n);
    let generated = n * gen_tokens;

    let run = |m: &TransformerModel, budget: Option<u64>| {
        let mut session = m.serve_with(SchedulerConfig {
            memory_budget: budget,
            ..sched_cfg
        });
        for p in &prompts {
            session.submit_request(GenerationRequest::new(p.clone(), gen_tokens));
        }
        let t0 = Instant::now();
        let mut max_active = 0usize;
        while !session.idle() {
            session.sweep_events(&NoFaults);
            max_active = max_active.max(session.active_streams());
        }
        let dt = t0.elapsed().as_secs_f64();
        let finished = session.take_finished();
        let evicted: u64 = finished
            .iter()
            .map(|f| f.attention.cache_evicted_blocks)
            .sum();
        assert_eq!(finished.len(), prompts.len(), "every stream completes");
        // Peak footprint split into FP16 payload vs FP32 protection
        // metadata — the checksum side of the byte budget is visible, not
        // folded into one number.
        (
            dt,
            session.peak_cache_bytes(),
            evicted,
            max_active,
            session.peak_cache_breakdown(),
        )
    };

    let (t_unb, peak_unb, ev_unb, _, split_unb) = run(&base, None);
    let (t_win, peak_win, ev_win, _, split_win) = run(&windowed, None);
    assert_eq!(ev_unb, 0, "unbounded serving never evicts");
    assert!(ev_win > 0, "the windowed run must actually evict blocks");

    let mut table = TextTable::new(&[
        "policy",
        "peak cache bytes",
        "payload B",
        "metadata B",
        "tok/s",
        "evicted blocks",
    ]);
    table.row(&[
        "unbounded".to_string(),
        format!("{peak_unb}"),
        format!("{}", split_unb.payload_bytes),
        format!("{}", split_unb.metadata_bytes()),
        format!("{:.1}", generated as f64 / t_unb),
        "0".to_string(),
    ]);
    table.row(&[
        format!("window {window} (block {cache_block})"),
        format!("{peak_win}"),
        format!("{}", split_win.payload_bytes),
        format!("{}", split_win.metadata_bytes()),
        format!("{:.1}", generated as f64 / t_win),
        format!("{ev_win}"),
    ]);
    print!("{}", table.render());
    // The deterministic half of the acceptance is a hard assert (CI must
    // fail if eviction stops bounding memory); the wall-clock ratio stays
    // a printed PASS/FAIL because timing is machine-dependent.
    assert!(
        peak_win < peak_unb,
        "window must bound peak cache bytes: {peak_win} vs {peak_unb}"
    );
    let ratio = t_unb / t_win;
    println!(
        "peak cache bytes {:.0}% of unbounded at {n} streams, tok/s ratio \
         {ratio:.2} (acceptance: bounded peak and ratio >= 0.90) -> {}",
        100.0 * peak_win as f64 / peak_unb as f64,
        if ratio >= 0.9 { "PASS" } else { "FAIL" }
    );

    // Admission by cache bytes: cap the session well under the windowed
    // peak — pending streams queue for reclaimed bytes instead of growing
    // the footprint, and every stream still finishes.
    let budget = peak_win / 8;
    let (t_bud, peak_bud, _, max_active, _) = run(&windowed, Some(budget));
    println!(
        "byte-budget {budget}: peak {peak_bud}, max concurrent {max_active} \
         of {n} streams, {:.1} tok/s",
        generated as f64 / t_bud
    );
}

/// One stream's observed timeline under the engine: priority class label,
/// submission instant, and the instant of every received token.
struct StreamTrace {
    class: Priority,
    submitted: Instant,
    token_times: Vec<Instant>,
}

/// The `p`-th percentile (0–100) of a sample set, in milliseconds.
fn percentile_ms(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample set");
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[idx]
}

/// Drive one bursty mixed-class trace through the engine: `Batch` wall
/// first, a beat later the `Normal`/`Latency` burst. Every handle gets a
/// consumer thread stamping token arrival times. Returns per-stream
/// traces plus the run's aggregate tokens/sec.
#[allow(clippy::type_complexity)]
fn run_trace(
    model: &TransformerModel,
    trace: &[(Vec<u32>, usize, Priority, bool)],
    engine_cfg: EngineConfig,
    honor_classes: bool,
) -> (Vec<StreamTrace>, f64) {
    let engine = Engine::spawn(model.clone(), engine_cfg);
    let t0 = Instant::now();
    let mut consumers = Vec::new();
    let mut burst_started = false;
    for (p, n, class, in_burst) in trace {
        if *in_burst && !burst_started {
            // The burst arrives mid-flight, once batch work holds the
            // slot table.
            std::thread::sleep(Duration::from_millis(30));
            burst_started = true;
        }
        // The FIFO baseline submits everything as one class (single
        // queue, no preemption) but keeps the label for reporting.
        let submit_class = if honor_classes {
            *class
        } else {
            Priority::Normal
        };
        let handle =
            engine.submit(GenerationRequest::new(p.clone(), *n).with_priority(submit_class));
        let (label, submitted) = (*class, Instant::now());
        consumers.push(std::thread::spawn(move || {
            let mut token_times = Vec::new();
            while let Some(ev) = handle.recv() {
                if matches!(ev, EngineEvent::TokenEmitted { .. }) {
                    token_times.push(Instant::now());
                }
            }
            StreamTrace {
                class: label,
                submitted,
                token_times,
            }
        }));
    }
    let traces: Vec<StreamTrace> = consumers
        .into_iter()
        .map(|c| c.join().expect("consumer thread"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    let tokens: usize = traces.iter().map(|t| t.token_times.len()).sum();
    (traces, tokens as f64 / wall)
}

/// The priority-scheduling latency sweep: p50/p99 time-to-first-token and
/// mean inter-token gap per class, priority+preemption vs a FIFO
/// single-queue baseline over the identical bursty trace.
fn latency_sweep(
    model: &TransformerModel,
    prompts_for: &dyn Fn(usize) -> Vec<Vec<u32>>,
    smoke: bool,
) {
    println!("\nlatency serve (push-based engine, priority + preemption vs FIFO):");
    let (n_batch, n_normal, n_latency, batch_tokens, burst_tokens, max_active) = if smoke {
        (10usize, 3usize, 3usize, 8usize, 3usize, 4usize)
    } else {
        (20, 6, 6, 16, 6, 4)
    };
    let n = n_batch + n_normal + n_latency;
    let prompts = prompts_for(n);
    // Batch wall up front; Normal/Latency interleaved in the later burst.
    let mut trace: Vec<(Vec<u32>, usize, Priority, bool)> = Vec::new();
    for p in prompts.iter().take(n_batch) {
        trace.push((p.clone(), batch_tokens, Priority::Batch, false));
    }
    for (i, p) in prompts.iter().skip(n_batch).enumerate() {
        let class = if i % 2 == 0 && i / 2 < n_latency {
            Priority::Latency
        } else {
            Priority::Normal
        };
        trace.push((p.clone(), burst_tokens, class, true));
    }

    let scheduler = SchedulerConfig {
        max_active,
        prefill_chunk: 16,
        preempt: true,
        priority_aging: Some(32),
        ..Default::default()
    };
    let priority_cfg = EngineConfig {
        scheduler,
        ..Default::default()
    };
    let fifo_cfg = EngineConfig {
        scheduler: SchedulerConfig {
            preempt: false,
            priority_aging: None,
            ..scheduler
        },
        ..Default::default()
    };

    let (fifo, fifo_tps) = run_trace(model, &trace, fifo_cfg, false);
    let (prio, prio_tps) = run_trace(model, &trace, priority_cfg, true);

    let classes = [Priority::Latency, Priority::Normal, Priority::Batch];
    let stats = |traces: &[StreamTrace], class: Priority| -> (f64, f64, f64) {
        let mut ttft: Vec<f64> = traces
            .iter()
            .filter(|t| t.class == class)
            .map(|t| (t.token_times[0] - t.submitted).as_secs_f64() * 1e3)
            .collect();
        let gaps: Vec<f64> = traces
            .iter()
            .filter(|t| t.class == class)
            .flat_map(|t| {
                t.token_times
                    .windows(2)
                    .map(|w| (w[1] - w[0]).as_secs_f64() * 1e3)
                    .collect::<Vec<_>>()
            })
            .collect();
        let mean_gap = if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        };
        (
            percentile_ms(&mut ttft, 50.0),
            percentile_ms(&mut ttft, 99.0),
            mean_gap,
        )
    };

    let mut table = TextTable::new(&[
        "class",
        "streams",
        "fifo p50 ttft",
        "fifo p99 ttft",
        "prio p50 ttft",
        "prio p99 ttft",
        "prio itl (mean)",
    ]);
    for class in classes {
        let count = trace.iter().filter(|(_, _, c, _)| *c == class).count();
        let (f50, f99, _) = stats(&fifo, class);
        let (p50, p99, itl) = stats(&prio, class);
        table.row(&[
            format!("{class}"),
            format!("{count}"),
            format!("{f50:.1} ms"),
            format!("{f99:.1} ms"),
            format!("{p50:.1} ms"),
            format!("{p99:.1} ms"),
            format!("{itl:.1} ms"),
        ]);
    }
    print!("{}", table.render());

    // Deterministic half of the acceptance: under priority scheduling a
    // Latency arrival must not queue behind the Batch wall.
    let (_, lat_p99, _) = stats(&prio, Priority::Latency);
    let (_, batch_p99, _) = stats(&prio, Priority::Batch);
    assert!(
        lat_p99 < batch_p99,
        "priority scheduling must put Latency p99 TTFT ({lat_p99:.1} ms) \
         under Batch p99 TTFT ({batch_p99:.1} ms)"
    );
    // Timing-dependent halves stay printed PASS/FAIL (machine-dependent).
    let (_, fifo_lat_p99, _) = stats(&fifo, Priority::Latency);
    let tps_ratio = prio_tps / fifo_tps;
    println!(
        "Latency p99 TTFT {lat_p99:.1} ms vs {fifo_lat_p99:.1} ms FIFO at {n} \
         mixed streams (acceptance: improves) -> {}",
        if lat_p99 < fifo_lat_p99 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "aggregate {prio_tps:.1} tok/s priority vs {fifo_tps:.1} tok/s FIFO, \
         ratio {tps_ratio:.2} (acceptance: >= 0.90) -> {}",
        if tps_ratio >= 0.9 { "PASS" } else { "FAIL" }
    );
}
