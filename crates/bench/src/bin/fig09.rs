//! Figure 9 — scaled execution time and fault-tolerance overhead of
//! end-to-end FT attention vs the decoupled FT baseline, for the medium
//! (h=16, d=64) and large (h=32, d=128) settings, seq 512…16k at a fixed
//! total token budget.
//!
//! Reproduced quantities:
//! * per-seq wall-clock of {decoupled baseline, decoupled+FT, fused
//!   baseline, fused+FT (EFTA)};
//! * the speedup of fused-FT over decoupled-FT (paper: 398–520% medium,
//!   223–308% large);
//! * the decoupled OOM at seq = 16k for the large setting on a 40 GB card
//!   (reported from the analytic HBM demand at full scale).

use ft_bench::{attention_workload, banner, ms, pct, HarnessArgs, TextTable};
use ft_core::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_core::decoupled::{hbm_demand, DecoupledOptions};
use ft_core::efta::EftaOptions;
use ft_core::{decoupled_analytic_timeline, efta_analytic_stats};
use ft_sim::cost::{CostModel, Timeline};
use ft_sim::device::Device;

fn run_config(name: &str, args: &HarnessArgs, large: bool) {
    let model = CostModel::a100_pcie_40gb();
    println!("--- FT-Attention Mechanism ({name}) ---");
    let mut table = TextTable::new(&[
        "seq",
        "base3k (ms)",
        "FT3k (ms)",
        "e2e (ms)",
        "EFTA (ms)",
        "speedup",
        "simA100 FT3k",
        "simA100 EFTA",
        "sim speedup",
    ]);

    let e2e = BackendKind::Efta(EftaOptions::unprotected());
    let efta_o = BackendKind::Efta(EftaOptions::optimized());
    let dec_base_kind = BackendKind::Decoupled(DecoupledOptions::unprotected());
    let dec_ft_kind = BackendKind::Decoupled(DecoupledOptions::default());

    for (idx, seq) in args.sweep_seqs().into_iter().enumerate() {
        let cfg = if large {
            args.large_cfg(seq)
        } else {
            args.medium_cfg(seq)
        };
        let full = args.full_cfg(&cfg, idx);
        let label = args.sweep_labels()[idx].clone();

        // Analytic simulated-A100 times at FULL paper scale.
        let dec_timeline = decoupled_analytic_timeline(&full, true);
        let sim_dec = dec_timeline.simulated_time(&model);
        let mut efta_tl = Timeline::new();
        efta_tl.push(
            "efta",
            efta_analytic_stats(&full, &EftaOptions::optimized()),
        );
        let sim_efta = efta_tl.simulated_time(&model);

        // OOM check at full scale on the 40 GB card.
        let dev_full = Device::a100_40gb();
        let oom = hbm_demand(&full, true) > dev_full.hbm.capacity();

        // Wall-clock at the working scale. The simulated device for the
        // scaled runs has proportionally scaled capacity so the OOM
        // crossover appears in the same sweep position.
        let scaled_capacity =
            (dev_full.hbm.capacity() as f64 * args.scale * args.scale).max(1e9) as u64;
        let dev = Device::with_capacity(scaled_capacity);

        let (q, k, v) = attention_workload(&cfg, args.seed + idx as u64);
        let req = AttentionRequest::new(cfg, &q, &k, &v);
        let dec_req = req.with_device(&dev);
        let (_, t_e2e) = ft_bench::time_best(2, || e2e.run(&req));
        let (_, t_efta) = ft_bench::time_best(2, || efta_o.run(&req));
        let (dec_base, dec_ft): (String, (String, Option<f64>)) = if oom {
            ("OOM".into(), ("OOM".into(), None))
        } else {
            let base = dec_base_kind.try_run(&dec_req);
            let t0 = std::time::Instant::now();
            let ft = dec_ft_kind.try_run(&dec_req);
            let t_ft = t0.elapsed().as_secs_f64();
            match (base, ft) {
                (Ok(_), Ok(_)) => {
                    let t0 = std::time::Instant::now();
                    let _ = dec_base_kind.try_run(&dec_req);
                    (ms(t0.elapsed().as_secs_f64()), (ms(t_ft), Some(t_ft)))
                }
                _ => ("OOM".into(), ("OOM".into(), None)),
            }
        };

        let speedup = dec_ft
            .1
            .map(|t| format!("{:.0}%", t / t_efta * 100.0))
            .unwrap_or_else(|| "-".into());
        let sim_speedup = format!("{:.0}%", sim_dec / sim_efta * 100.0);

        table.row(&[
            label,
            dec_base,
            dec_ft.0,
            ms(t_e2e),
            ms(t_efta),
            speedup,
            if oom { "OOM".into() } else { ms(sim_dec) },
            ms(sim_efta),
            if oom { "OOM".into() } else { sim_speedup },
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper: medium avg speedup 447% (398-520%); large avg 244% (223-308%), OOM at 16k large\n"
    );
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 9: E2E FT attention vs decoupled FT attention",
        &args,
    );
    // Warm the rayon pool and allocator so the first row is not penalised.
    let warm = args.medium_cfg(64);
    let (q, k, v) = attention_workload(&warm, 1);
    let _ =
        BackendKind::Efta(EftaOptions::optimized()).run(&AttentionRequest::new(warm, &q, &k, &v));
    run_config("head=16, dim=64", &args, false);
    run_config("head=32, dim=128", &args, true);
    let _ = pct(0.0);
}
