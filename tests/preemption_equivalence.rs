//! Preemption-equivalence suite: parking an active stream (drop its
//! cache, keep its emitted tokens) and resuming it later through the
//! chunked re-prefill path must be **invisible in the output** — the
//! preempted stream's tokens are bit-identical to an uninterrupted run on
//! every `BackendKind` — and the fault-recovery machinery must keep
//! working on the rebuilt cache: an SEU that lands *after* park/resume is
//! still detected, re-prefilled, and corrected bit-identically.

mod common;

use common::{prompt, stepwise_generate, tiny_config};
use ft_transformer_suite::attention::backend::BackendKind;
use ft_transformer_suite::num::F16;
use ft_transformer_suite::sim::{FaultInjector, FaultSite, NoFaults, OpCoord, SeuInjector};
use ft_transformer_suite::transformer::{
    serve_expose_step, EngineEvent, FinishReason, FinishedStream, GenerationRequest, ModelConfig,
    Priority, RecoveryPolicy, SchedulerConfig, ServeSession, StreamId, TransformerModel,
};

fn tiny(max_seq: usize) -> ModelConfig {
    tiny_config("preempt-tiny", max_seq)
}

/// One-slot scheduler with preemption on: the ISSUE's park trigger —
/// a higher class arrives while `max_active` is full.
fn one_slot() -> SchedulerConfig {
    SchedulerConfig {
        max_active: 1,
        prefill_chunk: 16,
        preempt: true,
        ..Default::default()
    }
}

/// Drive a session to completion, returning finished streams and events.
fn run_with_events<I: FaultInjector>(
    session: &mut ServeSession<&TransformerModel>,
    inj: &I,
) -> (Vec<FinishedStream>, Vec<EngineEvent>) {
    let mut events = Vec::new();
    while !session.idle() {
        events.extend(session.sweep_events(inj));
    }
    (session.take_finished(), events)
}

/// Two aliased SEUs (rows 0 and 8 of one column — a shared stride-8
/// checksum lane) delivered at one exposure step: the deterministic
/// unlocatable-damage recipe from the recovery suite.
struct PairInjector(SeuInjector, SeuInjector);

impl PairInjector {
    fn aliased_k(step: u64, col: usize) -> Self {
        let coord = |row: u64| OpCoord {
            slot: 0,
            i: row,
            j: col as u64,
            k: 2 * step, // `which` = 0: the K payload
        };
        PairInjector(
            SeuInjector::new(FaultSite::KvCache, coord(0), 13),
            SeuInjector::new(FaultSite::KvCache, coord(8), 13),
        )
    }
}

impl FaultInjector for PairInjector {
    fn corrupt_f32(&self, site: FaultSite, coord: OpCoord, value: f32) -> f32 {
        self.1
            .corrupt_f32(site, coord, self.0.corrupt_f32(site, coord, value))
    }
    fn corrupt_f16(&self, site: FaultSite, coord: OpCoord, value: F16) -> F16 {
        self.1
            .corrupt_f16(site, coord, self.0.corrupt_f16(site, coord, value))
    }
    fn fired(&self) -> u64 {
        self.0.fired() + self.1.fired()
    }
}

/// A `Batch` stream preempted mid-decode by a `Latency` arrival and later
/// resumed emits exactly the tokens of an uninterrupted run — on every
/// backend — and the lifecycle surfaces as `Preempted` → (urgent
/// `Finished`) → `Resumed` in event order.
#[test]
fn preempted_and_resumed_stream_is_bit_identical_on_every_backend() {
    let victim_prompt = prompt(13, 0);
    let urgent_prompt = prompt(9, 1);
    for kind in BackendKind::all() {
        let model = TransformerModel::random(51, tiny(64), kind)
            .with_causal(true)
            .with_cache_block(16);
        let want_victim = stepwise_generate(&model, &victim_prompt, 6);
        let want_urgent = stepwise_generate(&model, &urgent_prompt, 3);

        let mut session = model.serve_with(one_slot());
        let victim = session.submit_request(
            GenerationRequest::new(victim_prompt.clone(), 6).with_priority(Priority::Batch),
        );
        // Two sweeps put the victim mid-decode (prefill + sample, then one
        // decode step); only then does the urgent request arrive.
        session.sweep_events(&NoFaults);
        session.sweep_events(&NoFaults);
        let urgent = session.submit_request(
            GenerationRequest::new(urgent_prompt.clone(), 3).with_priority(Priority::Latency),
        );
        let (finished, events) = run_with_events(&mut session, &NoFaults);

        let fv = finished.iter().find(|f| f.id == victim).unwrap();
        let fu = finished.iter().find(|f| f.id == urgent).unwrap();
        assert_eq!(
            fv.tokens, want_victim,
            "{kind}: preempted+resumed stream diverged from the uninterrupted run"
        );
        assert_eq!(fu.tokens, want_urgent, "{kind}: urgent stream diverged");
        assert_eq!(fv.preemptions, 1, "{kind}: exactly one park");
        assert_eq!(fu.preemptions, 0, "{kind}: the urgent stream never parks");
        assert_eq!(session.preemptions(), 1, "{kind}");
        assert_eq!(fv.finish, FinishReason::MaxTokens, "{kind}");

        let pre = events
            .iter()
            .position(|e| matches!(e, EngineEvent::Preempted { stream } if *stream == victim));
        let res = events
            .iter()
            .position(|e| matches!(e, EngineEvent::Resumed { stream } if *stream == victim));
        let urgent_done = events
            .iter()
            .position(|e| matches!(e, EngineEvent::Finished { stream, .. } if *stream == urgent));
        assert!(
            pre.is_some() && res.is_some() && urgent_done.is_some(),
            "{kind}: missing lifecycle events: {events:?}"
        );
        assert!(
            pre < urgent_done && urgent_done < res,
            "{kind}: the urgent stream must run in the parked window \
             (Preempted at {pre:?}, urgent Finished at {urgent_done:?}, Resumed at {res:?})"
        );
    }
}

/// Recovery still works on a *rebuilt* cache: aliased SEUs that land only
/// after the victim was parked and resumed poison the re-prefilled cache,
/// and `ReprefillBounded` recovers it bit-identically — park/resume and
/// fault recovery compose because they share the same re-prefill path.
#[test]
fn seu_landing_after_resume_still_recovers_bit_identically() {
    let victim_prompt = prompt(13, 0);
    // Decode exposure base 15 (a ragged trailing block, 15 of 16 rows —
    // the recovery suite's laundering geometry) is reached only *after*
    // the park at 15 total tokens: pre-park sweeps expose bases 0 and 13,
    // the resume re-prefill re-exposes base 0, and the first post-resume
    // decode hits 15. After the recovery requeue the re-prefill covers
    // chunk base 0 and decode continues from 16, so the armed coordinate
    // never recurs.
    let step = serve_expose_step(StreamId(0), 15, 2, 0);
    for kind in BackendKind::all() {
        let model = TransformerModel::random(52, tiny(64), kind)
            .with_causal(true)
            .with_cache_block(16);
        let want = stepwise_generate(&model, &victim_prompt, 6);

        let inj = PairInjector::aliased_k(step, 3);
        let mut session = model.serve_with(one_slot());
        let victim = session.submit_request(
            GenerationRequest::new(victim_prompt.clone(), 6)
                .with_priority(Priority::Batch)
                .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 3 }),
        );
        session.sweep_events(&inj);
        session.sweep_events(&inj);
        assert_eq!(
            inj.fired(),
            0,
            "{kind}: the armed step must not be exposed before the park"
        );
        let urgent = session.submit_request(
            GenerationRequest::new(prompt(9, 1), 3).with_priority(Priority::Latency),
        );
        let (finished, events) = run_with_events(&mut session, &inj);
        assert_eq!(
            inj.fired(),
            2,
            "{kind}: both aliased flips must land in the rebuilt cache"
        );

        let fv = finished.iter().find(|f| f.id == victim).unwrap();
        let fu = finished.iter().find(|f| f.id == urgent).unwrap();
        assert_eq!(
            fv.tokens, want,
            "{kind}: post-resume recovery diverged from the undamaged run"
        );
        assert_eq!(fv.preemptions, 1, "{kind}: one park");
        assert_eq!(fv.recoveries, 1, "{kind}: one re-prefill recovery");
        assert_eq!(fv.finish, FinishReason::Recovered, "{kind}");
        assert_eq!(fu.recoveries, 0, "{kind}: the urgent stream stays clean");
        assert!(
            events.iter().any(
                |e| matches!(e, EngineEvent::CachePoisoned { stream, .. } if *stream == victim)
            ),
            "{kind}: poisoning must surface as an event: {events:?}"
        );
        let res = events
            .iter()
            .position(|e| matches!(e, EngineEvent::Resumed { stream } if *stream == victim));
        let rec = events
            .iter()
            .position(|e| matches!(e, EngineEvent::Recovering { stream, .. } if *stream == victim));
        assert!(
            res.is_some() && rec.is_some() && res < rec,
            "{kind}: the SEU must hit after the resume \
             (Resumed at {res:?}, Recovering at {rec:?})"
        );
    }
}
