//! Cross-crate fault-recovery integration: single-event upsets at every
//! protected site of the fused kernel must be repaired end to end, and the
//! full transformer must stay on its fault-free trajectory.

use ft_transformer_suite::attention::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_transformer_suite::attention::config::AttentionConfig;
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::num::Tensor4F16;
use ft_transformer_suite::sim::{
    BerInjector, FaultInjector, FaultSite, NoFaults, OpCoord, SeuInjector,
};
use ft_transformer_suite::transformer::{ModelConfig, TransformerModel};

fn workload(cfg: &AttentionConfig, seed: u64) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
    let q = normal_tensor_f16(seed, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let k = normal_tensor_f16(seed + 1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let v = normal_tensor_f16(seed + 2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
    (q, k, v)
}

/// Every fused-kernel fault site, exercised with a catastrophic (bit 30)
/// SEU: the output must stay close to the fault-free answer and remain
/// finite. Case-3-style in-range corruptions are tolerated by design, so
/// sites repaired only approximately get a looser bound.
#[test]
fn seu_sweep_over_attention_sites() {
    let cfg = AttentionConfig::new(1, 2, 64, 32).with_block(32);
    let (q, k, v) = workload(&cfg, 3000);
    let efta_o = BackendKind::Efta(EftaOptions::optimized());
    let clean = efta_o.run(&AttentionRequest::new(cfg, &q, &k, &v));

    let cases: Vec<(FaultSite, OpCoord, u32, f32)> = vec![
        (FaultSite::GemmIAccum, OpCoord::new(0, 5, 40, 3), 30, 5e-2),
        (FaultSite::GemmIAccum, OpCoord::new(1, 20, 10, 0), 30, 5e-2),
        (FaultSite::GemmIiAccum, OpCoord::new(0, 9, 5, 3), 30, 5e-2),
        (FaultSite::ExpUnit, OpCoord::new(0, 3, 17, 0), 27, 5e-2),
        (FaultSite::Subtract, OpCoord::new(1, 8, 50, 1), 30, 5e-2),
        (FaultSite::MaxReduce, OpCoord::new(0, 2, 0, 0), 31, 5e-2),
        (FaultSite::Normalize, OpCoord::new(0, 4, 9, 1000), 29, 5e-2),
        // Rescale faults on O elements are caught by the final checksum.
        (FaultSite::Rescale, OpCoord::new(0, 6, 3, 4001), 28, 5e-2),
    ];
    for (site, coord, bit, tol) in cases {
        let inj = SeuInjector::new(site, coord, bit).at_chain_step(12);
        let out = efta_o.run(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&inj));
        assert!(inj.fired() >= 1, "{site:?} fault must fire");
        assert!(
            !out.o.has_non_finite(),
            "{site:?} produced non-finite output"
        );
        let diff = out.o.max_abs_diff(&clean.o);
        assert!(
            diff < tol,
            "{site:?} at {coord:?}: residual {diff} exceeds {tol}"
        );
    }
}

#[test]
fn per_step_mode_also_recovers() {
    let cfg = AttentionConfig::new(1, 2, 64, 32).with_block(32);
    let (q, k, v) = workload(&cfg, 3100);
    let efta: BackendKind = "efta".parse().expect("registry name");
    let clean = efta.run(&AttentionRequest::new(cfg, &q, &k, &v));
    let inj =
        SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(0, 7, 33, 3), 30).at_chain_step(5);
    let out = efta.run(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&inj));
    assert!(inj.fired() >= 1);
    assert!(out.report.total_detected() > 0);
    assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
}

#[test]
fn transformer_forward_recovers_from_attention_seu() {
    let cfg = ModelConfig {
        name: "tiny",
        layers: 2,
        heads: 4,
        hidden: 64,
        ffn_dim: 128,
        vocab: 211,
        max_seq: 64,
    };
    let model = TransformerModel::random(9, cfg, BackendKind::Efta(EftaOptions::optimized()));
    let tokens: Vec<u32> = (0..32).map(|i| i * 5 % 211).collect();
    let (clean, _) = model.forward_hidden(&tokens, &NoFaults);
    // One SEU inside every layer's attention (coordinates are layer-local).
    let inj =
        SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(0, 3, 5, 0), 30).at_chain_step(7);
    let (dirty, rep) = model.forward_hidden(&tokens, &inj);
    assert_eq!(
        inj.fired(),
        cfg.layers as u64,
        "one fault per layer's attention"
    );
    assert!(rep.total_repaired > 0);
    let diff = dirty.max_abs_diff(&clean);
    assert!(diff < 0.05, "residual {diff}");
}

#[test]
fn deterministic_replay_under_faults() {
    // The same seeded injector must reproduce the identical output twice
    // (schedule-independent fault placement).
    let cfg = AttentionConfig::new(1, 4, 96, 32).with_block(32);
    let (q, k, v) = workload(&cfg, 3200);
    let run = |seed: u64| {
        let inj =
            BerInjector::new(seed, 1e-5).with_sites(&[FaultSite::GemmIAccum, FaultSite::ExpUnit]);
        BackendKind::Efta(EftaOptions::optimized())
            .run(&AttentionRequest::new(cfg, &q, &k, &v).with_injector(&inj))
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.o.max_abs_diff(&b.o), 0.0, "replay must be bit-identical");
    assert_eq!(a.report, b.report);
}
