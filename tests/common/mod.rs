//! Helpers shared by the serving and eviction equivalence suites.

#![allow(dead_code)] // not every test crate uses every helper

use ft_transformer_suite::sim::NoFaults;
use ft_transformer_suite::transformer::{ModelConfig, TransformerModel};

/// The suites' tiny 2-layer model shape.
pub fn tiny_config(name: &'static str, max_seq: usize) -> ModelConfig {
    ModelConfig {
        name,
        layers: 2,
        heads: 4,
        hidden: 32,
        ffn_dim: 64,
        vocab: 101,
        max_seq,
    }
}

/// Deterministic prompt of `len` tokens, varied by `salt`.
pub fn prompt(len: usize, salt: usize) -> Vec<u32> {
    (0..len)
        .map(|t| ((t * 13 + salt * 29) % 101) as u32)
        .collect()
}

/// Token-at-a-time oracle: the explicit `decode_step` loop (every token,
/// prompt included, one step; greedy sampling) — the pre-scheduler serving
/// strategy whose per-step logits the batched paths must reproduce. Runs
/// whatever decode policy the model is configured with (sliding window
/// included), so it doubles as the windowed oracle.
pub fn stepwise_generate(model: &TransformerModel, prompt: &[u32], new_tokens: usize) -> Vec<u32> {
    let mut cache = model.new_cache();
    let mut tokens = prompt.to_vec();
    let mut logits = None;
    for &t in prompt {
        let (l, _) = model.decode_step(t, &mut cache, &NoFaults);
        logits = Some(l);
    }
    for i in 0..new_tokens {
        if tokens.len() >= model.config.max_seq {
            break;
        }
        let row = logits.as_ref().expect("prompt fed");
        let next = row
            .row(0)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u32)
            .unwrap();
        tokens.push(next);
        if i + 1 < new_tokens && tokens.len() < model.config.max_seq {
            let (l, _) = model.decode_step(next, &mut cache, &NoFaults);
            logits = Some(l);
        }
    }
    tokens
}
