//! Protection-survival suite: a stream's graded [`ProtectionLevel`] is a
//! *request* property, so every cache the serving machinery rebuilds for
//! it — park/resume re-prefill, work-stealing migration between sessions,
//! and `ReprefillBounded` / `ReprefillPartial` fault recovery — must come
//! back at the requested level, with tokens bit-identical to an
//! uninterrupted same-level run. `Raw` streams must sail through the same
//! damage recipes with empty ledgers: nothing verifies, so nothing can
//! detect, poison, or trigger recovery.

mod common;

use common::{prompt, tiny_config};
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::attention::protect::{ProtectionLevel, DEFAULT_APPROX_TOL};
use ft_transformer_suite::num::F16;
use ft_transformer_suite::sim::{FaultInjector, FaultSite, NoFaults, OpCoord, SeuInjector};
use ft_transformer_suite::transformer::{
    serve_expose_step, BackendKind, FinishReason, GenerationRequest, ModelConfig, RecoveryPolicy,
    SchedulerConfig, ServeSession, StreamId, TransformerModel,
};

fn tiny(max_seq: usize) -> ModelConfig {
    tiny_config("protect-tiny", max_seq)
}

/// One stream per rung of the lattice.
fn lattice() -> [ProtectionLevel; 4] {
    [
        ProtectionLevel::Full,
        ProtectionLevel::Lazy,
        ProtectionLevel::Approximate {
            tol: DEFAULT_APPROX_TOL,
        },
        ProtectionLevel::Raw,
    ]
}

fn sched() -> SchedulerConfig {
    SchedulerConfig {
        max_active: 8,
        prefill_chunk: 8,
        ..Default::default()
    }
}

/// Every stream that currently holds a cache must hold it at the level its
/// request asked for.
fn assert_resident_levels<M: std::borrow::Borrow<TransformerModel>>(
    session: &ServeSession<M>,
    ids: &[StreamId],
    levels: &[ProtectionLevel],
) {
    for (i, &id) in ids.iter().enumerate() {
        if let Some(got) = session.stream_cache_protection(id) {
            assert_eq!(
                got, levels[i],
                "stream {i}: resident cache drifted off its requested level"
            );
        }
    }
}

/// Parking a stream drops its cache; the resume re-prefill must rebuild it
/// at the stream's own level, and the interruption stays invisible in the
/// tokens at every rung of the lattice.
#[test]
fn protection_survives_park_and_resume() {
    let model = TransformerModel::random(71, tiny(96), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(8);
    let levels = lattice();
    let new_tokens = 8;
    let prompts: Vec<Vec<u32>> = (0..levels.len()).map(|i| prompt(10 + i, i)).collect();

    let mut reference = model.serve_with(sched());
    for (p, &l) in prompts.iter().zip(&levels) {
        reference.submit_request(GenerationRequest::new(p.clone(), new_tokens).with_protection(l));
    }
    let clean = reference.run(&NoFaults);

    let mut session = model.serve_with(sched());
    let ids: Vec<StreamId> = prompts
        .iter()
        .zip(&levels)
        .map(|(p, &l)| {
            session.submit_request(GenerationRequest::new(p.clone(), new_tokens).with_protection(l))
        })
        .collect();
    for _ in 0..3 {
        session.sweep_events(&NoFaults);
        assert_resident_levels(&session, &ids, &levels);
    }
    for (i, &id) in ids.iter().enumerate() {
        assert!(session.park_stream(id), "stream {i} was active to park");
        assert_eq!(
            session.stream_cache_protection(id),
            None,
            "stream {i}: a parked stream holds no cache"
        );
    }
    while !session.idle() {
        session.sweep_events(&NoFaults);
        assert_resident_levels(&session, &ids, &levels);
    }
    let finished = session.take_finished();
    assert_eq!(finished.len(), levels.len());
    for (i, ((f, c), &l)) in finished.iter().zip(&clean).zip(&levels).enumerate() {
        assert_eq!(
            f.tokens, c.tokens,
            "stream {i} ({l}): park/resume must stay bit-identical"
        );
        assert_eq!(f.protection, l, "stream {i}: level rides the record");
        assert!(f.preemptions >= 1, "stream {i} was actually parked");
        assert_eq!(f.finish, FinishReason::MaxTokens, "stream {i}");
    }
}

/// Work-stealing migration ships scheduler state only — the adopting
/// session rebuilds the cache by chunked re-prefill, and must build it at
/// the migrated stream's own level (the `Migrant` carries the request's
/// level inside its `StreamState`).
#[test]
fn protection_survives_work_stealing_migration() {
    let model = TransformerModel::random(72, tiny(96), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(8);
    let levels = lattice();
    let new_tokens = 8;
    let prompts: Vec<Vec<u32>> = (0..levels.len()).map(|i| prompt(11 + i, i)).collect();

    let mut reference = model.serve_with(sched());
    for (p, &l) in prompts.iter().zip(&levels) {
        reference.submit_request(GenerationRequest::new(p.clone(), new_tokens).with_protection(l));
    }
    let clean = reference.run(&NoFaults);

    let mut donor = model.serve_with(sched());
    let ids: Vec<StreamId> = prompts
        .iter()
        .zip(&levels)
        .map(|(p, &l)| {
            donor.submit_request(GenerationRequest::new(p.clone(), new_tokens).with_protection(l))
        })
        .collect();
    for _ in 0..3 {
        donor.sweep_events(&NoFaults);
    }
    let mut thief = model.serve_with(sched());
    for (i, &id) in ids.iter().enumerate() {
        assert!(donor.park_stream(id), "stream {i} was active to park");
        let (state, report) = donor
            .extract_stream(id)
            .expect("a parked stream is pending and extractable");
        thief.adopt_stream(state, report);
    }
    assert!(donor.idle(), "the donor gave every stream away");
    while !thief.idle() {
        thief.sweep_events(&NoFaults);
        assert_resident_levels(&thief, &ids, &levels);
    }
    let finished = thief.take_finished();
    assert_eq!(finished.len(), levels.len());
    for (i, ((f, c), &l)) in finished.iter().zip(&clean).zip(&levels).enumerate() {
        assert_eq!(
            f.tokens, c.tokens,
            "stream {i} ({l}): migration must stay bit-identical"
        );
        assert_eq!(f.protection, l, "stream {i}: level survives adoption");
    }
}

/// Two aliased SEUs (rows 0 and 8 of one column — a shared stride-8
/// checksum lane) delivered at one exposure step: the deterministic
/// unlocatable-damage recipe from the recovery suites.
struct PairInjector(SeuInjector, SeuInjector);

impl PairInjector {
    fn aliased_k_rows(step: u64, col: usize, base: u64) -> Self {
        let coord = |row: u64| OpCoord {
            slot: 0,
            i: row,
            j: col as u64,
            k: 2 * step, // `which` = 0: the K payload
        };
        PairInjector(
            SeuInjector::new(FaultSite::KvCache, coord(base), 13),
            SeuInjector::new(FaultSite::KvCache, coord(base + 8), 13),
        )
    }
}

impl FaultInjector for PairInjector {
    fn corrupt_f32(&self, site: FaultSite, coord: OpCoord, value: f32) -> f32 {
        self.1
            .corrupt_f32(site, coord, self.0.corrupt_f32(site, coord, value))
    }
    fn corrupt_f16(&self, site: FaultSite, coord: OpCoord, value: F16) -> F16 {
        self.1
            .corrupt_f16(site, coord, self.0.corrupt_f16(site, coord, value))
    }
    fn fired(&self) -> u64 {
        self.0.fired() + self.1.fired()
    }
}

/// Re-prefill recovery rebuilds the dropped cache at the stream's own
/// level, for both bounded and partial policies, at every protected rung
/// — and the recovered tokens match the same-level undamaged run
/// bit-for-bit. `Full` detects the damage at append time; `Lazy` defers
/// it to the attended read; `Approximate`'s tolerance is far below an
/// exponent-bit flip, so it escalates like `Full`.
#[test]
fn protection_survives_reprefill_recovery() {
    let model = TransformerModel::random(73, tiny(64), BackendKind::Efta(EftaOptions::optimized()))
        .with_causal(true)
        .with_cache_block(16);
    let p = prompt(13, 0);
    let new_tokens = 40;
    // Decode append at position 47 lands in the ragged block (rows 32–46);
    // rows 32/40 of one column share a stride-8 checksum lane, so the
    // damage is detected but unlocatable → poison → re-prefill.
    let step = serve_expose_step(StreamId(0), 47, 2, 0);

    let cases: [(ProtectionLevel, RecoveryPolicy); 3] = [
        (
            ProtectionLevel::Full,
            RecoveryPolicy::ReprefillPartial { max_attempts: 3 },
        ),
        (
            ProtectionLevel::Lazy,
            RecoveryPolicy::ReprefillBounded { max_attempts: 3 },
        ),
        (
            ProtectionLevel::Approximate {
                tol: DEFAULT_APPROX_TOL,
            },
            RecoveryPolicy::ReprefillBounded { max_attempts: 3 },
        ),
    ];
    for (level, policy) in cases {
        let mut clean_session = model.serve_with(sched());
        clean_session
            .submit_request(GenerationRequest::new(p.clone(), new_tokens).with_protection(level));
        let clean = clean_session.run(&NoFaults);

        let inj = PairInjector::aliased_k_rows(step, 3, 32);
        let mut session = model.serve_with(sched());
        let id = session.submit_request(
            GenerationRequest::new(p.clone(), new_tokens)
                .with_protection(level)
                .with_recovery(policy),
        );
        while !session.idle() {
            session.sweep_events(&inj);
            if let Some(got) = session.stream_cache_protection(id) {
                assert_eq!(got, level, "{level}: rebuilt cache drifted off-level");
            }
        }
        let finished = session.take_finished();
        assert_eq!(inj.fired(), 2, "{level}: both aliased flips must land");
        let f = &finished[0];
        assert!(f.recoveries >= 1, "{level}: recovery must actually fire");
        assert_eq!(f.finish, FinishReason::Recovered, "{level}");
        assert_eq!(
            f.tokens, clean[0].tokens,
            "{level}: recovery diverged from the undamaged same-level run"
        );
        assert_eq!(f.protection, level);
    }

    // Raw under the identical damage recipe: no metadata, so nothing
    // detects, nothing poisons, and recovery never triggers — the stream
    // runs to its token budget with an empty cache ledger.
    let inj = PairInjector::aliased_k_rows(step, 3, 32);
    let mut session = model.serve_with(sched());
    session.submit_request(
        GenerationRequest::new(p.clone(), new_tokens)
            .with_protection(ProtectionLevel::Raw)
            .with_recovery(RecoveryPolicy::ReprefillBounded { max_attempts: 3 }),
    );
    while !session.idle() {
        session.sweep_events(&inj);
    }
    let finished = session.take_finished();
    assert_eq!(inj.fired(), 2, "raw: both flips still land on the payload");
    let f = &finished[0];
    assert_eq!(f.attention.cache_detected, 0, "raw: nothing verifies");
    assert_eq!(f.attention.cache_corrected, 0);
    assert_eq!(f.recoveries, 0, "raw: recovery has no trigger");
    assert_eq!(f.finish, FinishReason::MaxTokens);
    assert_eq!(f.protection, ProtectionLevel::Raw);
}
