//! Acceptance suite for the checksum-protected KV-cache decode engine.
//!
//! The contract: for **every** backend in the registry, incremental decode
//! over N steps computes the same attention as a full-sequence *causal*
//! prefill (row `t` of causal attention attends to keys `0..=t`, exactly
//! what step `t` of decode sees in its cache), including ragged
//! `seq % block != 0` cache tails — and a fault injected into a cached K/V
//! block is detected and corrected by the EFTA decode path while the
//! unprotected reference decode visibly corrupts.

use ft_transformer_suite::attention::backend::{AttentionBackend, BackendKind};
use ft_transformer_suite::attention::decode::{causal_reference_rows, DecodeRequest};
use ft_transformer_suite::attention::kv::KvCache;
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::num::{Tensor4F16, Tensor4F32};
use ft_transformer_suite::sim::{FaultInjector, FaultSite, OpCoord, SeuInjector};

const HEADS: usize = 2;
const DIM: usize = 16;
const SCALE: f32 = 0.25; // 1/sqrt(16)

fn workload(seq: usize, seed: u64) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
    let q = normal_tensor_f16(seed, 1, HEADS, seq, DIM, 0.6);
    let k = normal_tensor_f16(seed + 1, 1, HEADS, seq, DIM, 0.6);
    let v = normal_tensor_f16(seed + 2, 1, HEADS, seq, DIM, 0.8);
    (q, k, v)
}

/// Single-token slice `t` of a `1 × heads × seq × dim` tensor.
fn token_row(t: &Tensor4F16, i: usize) -> Tensor4F16 {
    Tensor4F16::from_fn(1, HEADS, 1, DIM, |b, h, _, c| t.slot(b, h).get(i, c))
}

/// Run `steps` decode steps of `kind` over a fresh cache with `block`-row
/// blocks, collecting the per-step outputs as rows of a `seq × dim` tensor.
fn decode_rows(
    kind: &BackendKind,
    q: &Tensor4F16,
    k: &Tensor4F16,
    v: &Tensor4F16,
    steps: usize,
    block: usize,
) -> Tensor4F32 {
    let mut cache = KvCache::new(1, HEADS, DIM, block, 8, SCALE);
    let mut out = Tensor4F32::zeros(1, HEADS, steps, DIM);
    for t in 0..steps {
        cache.append(&token_row(k, t), &token_row(v, t));
        let qt = token_row(q, t);
        let req = DecodeRequest::new(&cache, &qt).at_step(t);
        let step_out = kind
            .try_decode(&req)
            .unwrap_or_else(|e| panic!("{kind} failed to decode step {t}: {e}"));
        assert!(
            step_out.report.clean(),
            "{kind} raised false alarms at step {t}: {:?}",
            step_out.report
        );
        for slot in 0..HEADS {
            for c in 0..DIM {
                let (b, h) = out.unflatten(slot);
                let val = step_out.o.slot_flat(slot).get(0, c);
                out.slot_mut(b, h).set(t, c, val);
            }
        }
    }
    out
}

#[test]
fn every_backend_decodes_equal_to_causal_prefill_ragged_and_even() {
    // 24 tokens in 8-row blocks (even) and 21 tokens in 8-row blocks
    // (ragged tail of 5).
    for (steps, block, label) in [
        (24usize, 8usize, "even"),
        (21, 8, "ragged"),
        (13, 16, "ragged"),
    ] {
        let (q, k, v) = workload(steps, 0xDEC0 ^ steps as u64);
        let oracle = causal_reference_rows(&q, &k, &v, SCALE);
        for name in BackendKind::NAMES {
            let kind: BackendKind = name.parse().expect("registry name parses");
            let rows = decode_rows(&kind, &q, &k, &v, steps, block);
            let tol = match kind {
                BackendKind::Efta(_) => 5e-3,
                _ => 1e-4,
            };
            let diff = rows.max_abs_diff(&oracle);
            assert!(
                diff < tol,
                "{name} decode disagrees with causal prefill on {label} \
                 (steps {steps}, block {block}): {diff} >= {tol}"
            );
        }
    }
}

#[test]
fn cached_kv_fault_corrected_by_efta_but_corrupts_reference_decode() {
    let steps = 20;
    let (q, k, v) = workload(steps, 0xFA17);
    let mut cache = KvCache::new(1, HEADS, DIM, 8, 8, SCALE);
    for t in 0..steps {
        cache.append(&token_row(&k, t), &token_row(&v, t));
    }
    let qt = token_row(&q, steps - 1);
    let efta: BackendKind = "efta-o".parse().unwrap();
    let reference: BackendKind = "reference".parse().unwrap();

    let clean_req = DecodeRequest::new(&cache, &qt).at_step(steps - 1);
    let clean = efta.decode(&clean_req);
    assert!(clean.report.clean());

    // Top-exponent-bit flip in a cached K element of slot 1, row 9, col 3 —
    // state that has been sitting in the cache for 10 steps.
    let seu = SeuInjector::new(FaultSite::KvCache, OpCoord::new(1, 9, 3, 0), 14);
    cache.expose(&seu, 0);
    assert_eq!(seu.fired(), 1, "cache exposure must hit exactly once");

    let req = DecodeRequest::new(&cache, &qt).at_step(steps - 1);
    let protected = efta.decode(&req);
    assert!(
        protected.report.cache_detected > 0,
        "EFTA decode must flag the cached-state corruption: {:?}",
        protected.report
    );
    assert!(
        protected.report.cache_corrected > 0,
        "{:?}",
        protected.report
    );
    let diff = protected.o.max_abs_diff(&clean.o);
    assert!(diff < 5e-2, "corrected output off by {diff}");

    let bare = reference.decode(&req);
    assert!(bare.report.clean(), "reference decode has no checks");
    let bare_diff = bare.o.max_abs_diff(&clean.o);
    assert!(
        bare_diff > 1e-2,
        "unprotected decode must visibly corrupt (diff {bare_diff})"
    );
}

#[test]
fn cached_v_fault_is_also_covered() {
    let steps = 12;
    let (q, k, v) = workload(steps, 0xFA18);
    let mut cache = KvCache::new(1, HEADS, DIM, 8, 8, SCALE);
    for t in 0..steps {
        cache.append(&token_row(&k, t), &token_row(&v, t));
    }
    let qt = token_row(&q, steps - 1);
    let efta: BackendKind = "efta-o".parse().unwrap();
    let req = DecodeRequest::new(&cache, &qt).at_step(steps - 1);
    let clean = efta.decode(&req);

    // V payload corruption (`which` = 1 in the exposure coordinate).
    let seu = SeuInjector::new(FaultSite::KvCache, OpCoord::new(0, 5, 11, 1), 14);
    cache.expose(&seu, 0);
    assert_eq!(seu.fired(), 1);

    let req = DecodeRequest::new(&cache, &qt).at_step(steps - 1);
    let out = efta.decode(&req);
    assert!(out.report.cache_corrected > 0, "{:?}", out.report);
    assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
}

#[test]
fn gemm_seu_inside_decode_step_is_repaired() {
    let steps = 16;
    let (q, k, v) = workload(steps, 0xFA19);
    let mut cache = KvCache::new(1, HEADS, DIM, 8, 8, SCALE);
    for t in 0..steps {
        cache.append(&token_row(&k, t), &token_row(&v, t));
    }
    let qt = token_row(&q, steps - 1);
    let efta: BackendKind = "efta-o".parse().unwrap();
    let req = DecodeRequest::new(&cache, &qt).at_step(steps - 1);
    let clean = efta.decode(&req);

    let seu = SeuInjector::new(FaultSite::GemmIAccum, OpCoord::new(0, steps - 1, 11, 3), 30)
        .at_chain_step(7);
    let req = req.with_injector(&seu);
    let out = efta.decode(&req);
    assert_eq!(seu.fired(), 1);
    assert!(out.report.total_detected() > 0, "{:?}", out.report);
    assert!(out.o.max_abs_diff(&clean.o) < 5e-2);
}
