//! Cross-crate integration: all attention backends must agree on
//! fault-free inputs, across shapes and seeds, through the unified
//! `AttentionBackend` API.

use ft_transformer_suite::attention::backend::{AttentionBackend, AttentionRequest, BackendKind};
use ft_transformer_suite::attention::config::AttentionConfig;
use ft_transformer_suite::attention::decoupled::DecoupledOptions;
use ft_transformer_suite::attention::efta::EftaOptions;
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::num::Tensor4F16;
use ft_transformer_suite::sim::device::Device;
use proptest::prelude::*;

fn workload(cfg: &AttentionConfig, seed: u64) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
    let q = normal_tensor_f16(seed, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let k = normal_tensor_f16(seed + 1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let v = normal_tensor_f16(seed + 2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
    (q, k, v)
}

#[test]
fn all_four_kernels_agree_fault_free() {
    let cfg = AttentionConfig::new(2, 4, 96, 32).with_block(32);
    let (q, k, v) = workload(&cfg, 1000);
    let dev = Device::a100_40gb();
    let req = AttentionRequest::new(cfg, &q, &k, &v);

    let reference = BackendKind::Reference.run(&req);
    let flash = BackendKind::Flash.run(&req);
    let efta = BackendKind::Efta(EftaOptions::optimized()).run(&req);
    let efta_ps = BackendKind::Efta(EftaOptions::per_step()).run(&req);
    let dec = BackendKind::Decoupled(DecoupledOptions::default())
        .try_run(&req.with_device(&dev))
        .expect("fits in 40GB");

    assert!(flash.o.max_abs_diff(&reference.o) < 1e-4);
    assert!(
        efta.o.max_abs_diff(&reference.o) < 5e-3,
        "{}",
        efta.o.max_abs_diff(&reference.o)
    );
    assert!(efta_ps.o.max_abs_diff(&reference.o) < 5e-3);
    assert!(dec.o.max_abs_diff(&reference.o) < 5e-3);
    assert!(efta.report.clean());
    assert!(efta_ps.report.clean());
    assert!(dec.report.clean());
}

#[test]
fn launch_count_contract() {
    // seq ≫ head_dim so the O(n²) vs O(n·d) write asymmetry is visible.
    let cfg = AttentionConfig::new(1, 2, 256, 32).with_block(64);
    let (q, k, v) = workload(&cfg, 2000);
    let dev = Device::a100_40gb();
    let req = AttentionRequest::new(cfg, &q, &k, &v);
    let efta = BackendKind::Efta(EftaOptions::optimized()).run(&req);
    let dec = BackendKind::Decoupled(DecoupledOptions::default())
        .try_run(&req.with_device(&dev))
        .unwrap();
    assert_eq!(
        efta.timeline.total().launches,
        1,
        "EFTA is one fused kernel"
    );
    assert_eq!(dec.timeline.total().launches, 3, "decoupled launches three");
    // Decoupled writes O(n²); EFTA writes O(n·d).
    assert!(dec.timeline.total().hbm_written > 10 * efta.timeline.total().hbm_written);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn prop_efta_equals_reference(
        seq in 32usize..120,
        heads in 1usize..4,
        seed in 0u64..1000,
    ) {
        let cfg = AttentionConfig::new(1, heads, seq, 32).with_block(32);
        let (q, k, v) = workload(&cfg, seed);
        let req = AttentionRequest::new(cfg, &q, &k, &v);
        let reference = BackendKind::Reference.run(&req);
        let efta = BackendKind::Efta(EftaOptions::optimized()).run(&req);
        prop_assert!(efta.report.clean(), "false alarms: {:?}", efta.report);
        let diff = efta.o.max_abs_diff(&reference.o);
        prop_assert!(diff < 5e-3, "diff {diff}");
    }
}
