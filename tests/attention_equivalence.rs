//! Cross-crate integration: all four attention implementations must agree
//! on fault-free inputs, across shapes and seeds.

use ft_transformer_suite::attention::config::AttentionConfig;
use ft_transformer_suite::attention::decoupled::{decoupled_ft_attention, DecoupledOptions};
use ft_transformer_suite::attention::efta::{efta_attention, EftaOptions};
use ft_transformer_suite::attention::flash::flash_attention;
use ft_transformer_suite::attention::reference::reference_attention;
use ft_transformer_suite::num::rng::normal_tensor_f16;
use ft_transformer_suite::num::Tensor4F16;
use ft_transformer_suite::sim::device::Device;
use ft_transformer_suite::sim::NoFaults;
use proptest::prelude::*;

fn workload(cfg: &AttentionConfig, seed: u64) -> (Tensor4F16, Tensor4F16, Tensor4F16) {
    let q = normal_tensor_f16(seed, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let k = normal_tensor_f16(seed + 1, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.6);
    let v = normal_tensor_f16(seed + 2, cfg.batch, cfg.heads, cfg.seq, cfg.head_dim, 0.8);
    (q, k, v)
}

#[test]
fn all_four_kernels_agree_fault_free() {
    let cfg = AttentionConfig::new(2, 4, 96, 32).with_block(32);
    let (q, k, v) = workload(&cfg, 1000);
    let dev = Device::a100_40gb();

    let reference = reference_attention(&cfg, &q, &k, &v);
    let flash = flash_attention(&cfg, &q, &k, &v);
    let efta = efta_attention(&cfg, &q, &k, &v, &NoFaults, &EftaOptions::optimized());
    let efta_ps = efta_attention(&cfg, &q, &k, &v, &NoFaults, &EftaOptions::per_step());
    let dec = decoupled_ft_attention(&cfg, &q, &k, &v, &NoFaults, &DecoupledOptions::default(), &dev)
        .expect("fits in 40GB");

    assert!(flash.o.max_abs_diff(&reference) < 1e-4);
    assert!(efta.o.max_abs_diff(&reference) < 5e-3, "{}", efta.o.max_abs_diff(&reference));
    assert!(efta_ps.o.max_abs_diff(&reference) < 5e-3);
    assert!(dec.o.max_abs_diff(&reference) < 5e-3);
    assert!(efta.report.clean());
    assert!(efta_ps.report.clean());
    assert!(dec.report.clean());
}

#[test]
fn launch_count_contract() {
    // seq ≫ head_dim so the O(n²) vs O(n·d) write asymmetry is visible.
    let cfg = AttentionConfig::new(1, 2, 256, 32).with_block(64);
    let (q, k, v) = workload(&cfg, 2000);
    let dev = Device::a100_40gb();
    let efta = efta_attention(&cfg, &q, &k, &v, &NoFaults, &EftaOptions::optimized());
    let dec = decoupled_ft_attention(&cfg, &q, &k, &v, &NoFaults, &DecoupledOptions::default(), &dev)
        .unwrap();
    assert_eq!(efta.timeline.total().launches, 1, "EFTA is one fused kernel");
    assert_eq!(dec.timeline.total().launches, 3, "decoupled launches three");
    // Decoupled writes O(n²); EFTA writes O(n·d).
    assert!(dec.timeline.total().hbm_written > 10 * efta.timeline.total().hbm_written);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn prop_efta_equals_reference(
        seq in 32usize..120,
        heads in 1usize..4,
        seed in 0u64..1000,
    ) {
        let cfg = AttentionConfig::new(1, heads, seq, 32).with_block(32);
        let (q, k, v) = workload(&cfg, seed);
        let reference = reference_attention(&cfg, &q, &k, &v);
        let efta = efta_attention(&cfg, &q, &k, &v, &NoFaults, &EftaOptions::optimized());
        prop_assert!(efta.report.clean(), "false alarms: {:?}", efta.report);
        let diff = efta.o.max_abs_diff(&reference);
        prop_assert!(diff < 5e-3, "diff {diff}");
    }
}
